//! `tfx` — command-line continuous subgraph matching.
//!
//! Two modes:
//!
//! **Run mode** (the original interface). Loads an initial data graph and a
//! query (both in the text format of `tfx_query::parser`), registers the
//! query, then streams update operations from a file (or stdin) and prints
//! every positive / negative match as it appears:
//!
//! ```sh
//! tfx <graph.txt> <query.txt> [--stream <ops.txt>] [--iso] [--quiet]
//! ```
//!
//! **Stream mode** (`tfx stream`). Full ingestion pipeline: a timestamped
//! source (text file or built-in synthetic generator), an optional sliding
//! window that expires old edges, a batching driver, and JSONL delta/stats
//! output on stdout:
//!
//! ```sh
//! tfx stream --query <q.txt> --file <ops.txt> --graph <g.txt> --window time:100
//! tfx stream --query <q.txt> --synthetic netflow --window count:1000 --iso
//! ```
//!
//! Both modes share one stream text format (see `tfx_stream::source`):
//!
//! ```text
//! v 7 User            # vertex 7 arrives with label User
//! + 3 7 knows         # insert edge 3 -knows-> 7
//! - 3 7 knows         # delete it again
//! @120 + 3 8 knows    # the same, at explicit stream time 120
//! ```

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use turboflux::prelude::*;
use turboflux::query::parser;
use turboflux::stream::{
    BatchPolicy, BatchTarget, CountingSink, ErrorMode, FileSource, JsonlSink, SlidingWindow,
    StreamDriver, StreamSource, SyntheticKind, SyntheticSource, WindowSpec,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stream") {
        stream_main(&args[1..])
    } else {
        run_main(&args)
    }
}

// ---------------------------------------------------------------------------
// Run mode (original interface)
// ---------------------------------------------------------------------------

fn usage(code: u8) -> ExitCode {
    eprintln!("usage: tfx <graph.txt> <query.txt> [--stream <ops.txt>|-] [--iso] [--quiet]");
    eprintln!("       tfx stream --help");
    ExitCode::from(code)
}

struct Options {
    graph_path: String,
    query_path: String,
    stream_path: Option<String>,
    semantics: MatchSemantics,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Options, ExitCode> {
    let mut args = args.iter();
    let mut positional = Vec::new();
    let mut stream_path = None;
    let mut semantics = MatchSemantics::Homomorphism;
    let mut quiet = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stream" => {
                let Some(p) = args.next() else {
                    eprintln!("error: --stream requires a path (or - for stdin)");
                    return Err(usage(2));
                };
                stream_path = Some(p.clone());
            }
            "--iso" => semantics = MatchSemantics::Isomorphism,
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(usage(0)),
            other if other.starts_with('-') && other != "-" => {
                eprintln!("error: unknown flag `{other}`");
                return Err(usage(2));
            }
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() != 2 {
        return Err(usage(2));
    }
    let mut it = positional.into_iter();
    Ok(Options {
        graph_path: it.next().expect("checked length"),
        query_path: it.next().expect("checked length"),
        stream_path,
        semantics,
        quiet,
    })
}

/// Opens a path (or stdin for `-`) as a buffered reader.
fn open_reader(path: &str) -> Result<Box<dyn BufRead>, ExitCode> {
    if path == "-" {
        return Ok(Box::new(BufReader::new(std::io::stdin())));
    }
    match std::fs::File::open(path) {
        Ok(f) => Ok(Box::new(BufReader::new(f))),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn load_query(path: &str, interner: &mut LabelInterner) -> Result<QueryGraph, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let q = match parser::parse_query(&text, interner) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    if q.edge_count() == 0 || !q.is_connected() {
        eprintln!("error: the query must be connected and have at least one edge ({path})");
        return Err(ExitCode::FAILURE);
    }
    Ok(q)
}

fn load_graph(path: &str, interner: &mut LabelInterner) -> Result<DynamicGraph, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    match parser::parse_data_graph(&text, interner) {
        Ok(g) => Ok(g),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn run_main(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let mut interner = LabelInterner::new();
    let g0 = match load_graph(&opts.graph_path, &mut interner) {
        Ok(g) => g,
        Err(code) => return code,
    };
    let q = match load_query(&opts.query_path, &mut interner) {
        Ok(q) => q,
        Err(code) => return code,
    };

    eprintln!(
        "graph: {} vertices, {} edges; query: {} vertices, {} edges ({:?})",
        g0.vertex_count(),
        g0.edge_count(),
        q.vertex_count(),
        q.edge_count(),
        opts.semantics,
    );
    let mut engine = TurboFlux::new(q, g0, TurboFluxConfig::with_semantics(opts.semantics));

    let quiet = opts.quiet;
    let mut initial = 0u64;
    engine.initial_matches(&mut |m| {
        initial += 1;
        if !quiet {
            println!("= {m:?}");
        }
    });
    eprintln!("{initial} initial matches; DCG {} edges", engine.dcg().stored_edge_count());

    let Some(stream_path) = opts.stream_path else {
        return ExitCode::SUCCESS;
    };
    let reader = match open_reader(&stream_path) {
        Ok(r) => r,
        Err(code) => return code,
    };

    let (mut pos, mut neg, mut ops) = (0u64, 0u64, 0u64);
    let started = std::time::Instant::now();
    let mut source = FileSource::new(reader, &mut interner, ErrorMode::Strict);
    loop {
        let ev = match source.next_event() {
            Ok(None) => break,
            Ok(Some(ev)) => ev,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        ops += 1;
        engine.apply(&ev.op, &mut |p, m| {
            match p {
                Positiveness::Positive => pos += 1,
                Positiveness::Negative => neg += 1,
            }
            if !quiet {
                let sign = if p == Positiveness::Positive { '+' } else { '-' };
                println!("{sign} {m:?}");
            }
        });
    }
    eprintln!(
        "processed {ops} ops in {:.2?}: {pos} positive, {neg} negative matches; DCG {} edges ({} bytes)",
        started.elapsed(),
        engine.dcg().stored_edge_count(),
        engine.intermediate_result_bytes(),
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Stream mode
// ---------------------------------------------------------------------------

fn stream_usage(code: u8) -> ExitCode {
    eprintln!(
        "usage: tfx stream --query <q.txt> [--query <q2.txt> ...]
                  (--file <ops.txt>|- | --synthetic uniform|hub|lsbench|netflow)
                  [--graph <g.txt>]          initial graph (file source only)
                  [--window time:<W>|count:<N>|none]   sliding window (default none)
                  [--batch-ops <N>]          flush batches at N ops (default 256)
                  [--batch-ticks <T>]        flush batches every T stream ticks
                  [--drain]                  expire the whole window at end of stream
                  [--iso]                    isomorphism semantics (default homomorphism)
                  [--lenient]                skip malformed stream lines (default strict)
                  [--fleet <threads>]        evaluate queries on a fleet with N threads
                  [--shards <N>]             partition the data graph across N shards
                  [--seed <S>]               synthetic generator seed (default 2018)
                  [--ticks-per-event <T>]    synthetic clock rate (default 1)
                  [--quiet]                  suppress JSONL deltas, keep counts

Emits JSONL on stdout: delta lines, per-batch stats lines, one summary line."
    );
    ExitCode::from(code)
}

struct StreamOptions {
    query_paths: Vec<String>,
    graph_path: Option<String>,
    file: Option<String>,
    synthetic: Option<SyntheticKind>,
    window: WindowSpec,
    batch_ops: usize,
    batch_ticks: Option<u64>,
    drain: bool,
    semantics: MatchSemantics,
    mode: ErrorMode,
    fleet_threads: Option<usize>,
    shards: usize,
    seed: u64,
    ticks_per_event: u64,
    quiet: bool,
}

fn parse_stream_args(args: &[String]) -> Result<StreamOptions, ExitCode> {
    let mut o = StreamOptions {
        query_paths: Vec::new(),
        graph_path: None,
        file: None,
        synthetic: None,
        window: WindowSpec::Unbounded,
        batch_ops: 256,
        batch_ticks: None,
        drain: false,
        semantics: MatchSemantics::Homomorphism,
        mode: ErrorMode::Strict,
        fleet_threads: None,
        shards: 1,
        seed: 2018,
        ticks_per_event: 1,
        quiet: false,
    };
    let mut args = args.iter();
    let value = |args: &mut std::slice::Iter<'_, String>, flag: &str| -> Result<String, ExitCode> {
        args.next().cloned().ok_or_else(|| {
            eprintln!("error: {flag} requires a value");
            stream_usage(2)
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--query" => o.query_paths.push(value(&mut args, "--query")?),
            "--graph" => o.graph_path = Some(value(&mut args, "--graph")?),
            "--file" => o.file = Some(value(&mut args, "--file")?),
            "--synthetic" => {
                let v = value(&mut args, "--synthetic")?;
                let Some(kind) = SyntheticKind::parse(&v) else {
                    eprintln!("error: unknown synthetic kind `{v}` (uniform|hub|lsbench|netflow)");
                    return Err(stream_usage(2));
                };
                o.synthetic = Some(kind);
            }
            "--window" => {
                let v = value(&mut args, "--window")?;
                let Some(spec) = WindowSpec::parse(&v) else {
                    eprintln!("error: bad window `{v}` (time:<width>|count:<capacity>|none)");
                    return Err(stream_usage(2));
                };
                o.window = spec;
            }
            "--batch-ops" => {
                let v = value(&mut args, "--batch-ops")?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => o.batch_ops = n,
                    _ => {
                        eprintln!("error: --batch-ops needs an integer >= 1");
                        return Err(stream_usage(2));
                    }
                }
            }
            "--batch-ticks" => {
                let v = value(&mut args, "--batch-ticks")?;
                match v.parse::<u64>() {
                    Ok(n) if n >= 1 => o.batch_ticks = Some(n),
                    _ => {
                        eprintln!("error: --batch-ticks needs an integer >= 1");
                        return Err(stream_usage(2));
                    }
                }
            }
            "--drain" => o.drain = true,
            "--iso" => o.semantics = MatchSemantics::Isomorphism,
            "--lenient" => o.mode = ErrorMode::Lenient,
            "--fleet" => {
                let v = value(&mut args, "--fleet")?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => o.fleet_threads = Some(n),
                    _ => {
                        eprintln!("error: --fleet needs a thread count >= 1");
                        return Err(stream_usage(2));
                    }
                }
            }
            "--shards" => {
                let v = value(&mut args, "--shards")?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => o.shards = n,
                    _ => {
                        eprintln!("error: --shards needs a shard count >= 1");
                        return Err(stream_usage(2));
                    }
                }
            }
            "--seed" => {
                let v = value(&mut args, "--seed")?;
                match v.parse::<u64>() {
                    Ok(n) => o.seed = n,
                    _ => {
                        eprintln!("error: --seed needs an integer");
                        return Err(stream_usage(2));
                    }
                }
            }
            "--ticks-per-event" => {
                let v = value(&mut args, "--ticks-per-event")?;
                match v.parse::<u64>() {
                    Ok(n) => o.ticks_per_event = n,
                    _ => {
                        eprintln!("error: --ticks-per-event needs an integer");
                        return Err(stream_usage(2));
                    }
                }
            }
            "--quiet" => o.quiet = true,
            "--help" | "-h" => return Err(stream_usage(0)),
            other => {
                eprintln!("error: unknown stream flag `{other}`");
                return Err(stream_usage(2));
            }
        }
    }
    if o.query_paths.is_empty() {
        eprintln!("error: at least one --query is required");
        return Err(stream_usage(2));
    }
    match (&o.file, &o.synthetic) {
        (Some(_), Some(_)) => {
            eprintln!("error: --file and --synthetic are mutually exclusive");
            Err(stream_usage(2))
        }
        (None, None) => {
            eprintln!("error: one of --file or --synthetic is required");
            Err(stream_usage(2))
        }
        _ => Ok(o),
    }
}

/// The evaluation target: one engine, a fleet, or a sharded runtime.
enum Target {
    Single(Box<TurboFlux>),
    Fleet(Box<Fleet>),
    Sharded(Box<ShardedEngine>),
}

impl Target {
    fn as_batch_target(&mut self) -> &mut dyn BatchTarget {
        match self {
            Target::Single(e) => &mut **e,
            Target::Fleet(f) => &mut **f,
            Target::Sharded(s) => &mut **s,
        }
    }
}

fn stream_main(args: &[String]) -> ExitCode {
    let opts = match parse_stream_args(args) {
        Ok(o) => o,
        Err(code) => return code,
    };

    // Interner + initial graph + (for synthetic mode) the generated stream.
    let mut interner;
    let g0;
    let mut synthetic_source = None;
    if let Some(kind) = opts.synthetic {
        let (dataset, source) = SyntheticSource::demo(kind, opts.seed, opts.ticks_per_event);
        interner = dataset.interner;
        g0 = dataset.g0;
        synthetic_source = Some(source);
        if opts.graph_path.is_some() {
            eprintln!(
                "error: --graph only applies to --file sources (synthetic brings its own g0)"
            );
            return ExitCode::from(2);
        }
    } else {
        interner = LabelInterner::new();
        g0 = match &opts.graph_path {
            Some(p) => match load_graph(p, &mut interner) {
                Ok(g) => g,
                Err(code) => return code,
            },
            None => DynamicGraph::new(),
        };
    }

    let mut queries = Vec::new();
    for p in &opts.query_paths {
        match load_query(p, &mut interner) {
            Ok(q) => queries.push(q),
            Err(code) => return code,
        }
    }
    eprintln!(
        "stream: g0 {} vertices / {} edges; {} quer{} ({:?}); window {:?}",
        g0.vertex_count(),
        g0.edge_count(),
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        opts.semantics,
        opts.window,
    );

    // Build the target and report initial match counts per engine.
    let cfg =
        TurboFluxConfig { shards: opts.shards, ..TurboFluxConfig::with_semantics(opts.semantics) };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut target = if opts.shards > 1 {
        // Sharded runtime: graph partitioned across shards, every query
        // evaluated on every shard's slice. Worker threads default to one
        // per shard unless --fleet caps them.
        let threads = opts.fleet_threads.unwrap_or(opts.shards);
        let mut engine = ShardedEngine::new(queries, g0, cfg, threads);
        for q in 0..engine.queries() {
            let mut n = 0u64;
            engine.report_initial(q, &mut |_| n += 1);
            let _ = writeln!(out, "{{\"type\":\"init\",\"engine\":{q},\"matches\":{n}}}");
        }
        Target::Sharded(Box::new(engine))
    } else if opts.fleet_threads.is_some() || queries.len() > 1 {
        let threads = opts.fleet_threads.unwrap_or(1);
        let mut fleet = Fleet::with_threads(g0, threads);
        for q in queries {
            fleet.register(q, cfg);
        }
        for id in fleet.engine_ids().to_vec() {
            let mut n = 0u64;
            fleet.report_initial(id, &mut |_| n += 1);
            let _ = writeln!(out, "{{\"type\":\"init\",\"engine\":{id},\"matches\":{n}}}");
        }
        Target::Fleet(Box::new(fleet))
    } else {
        let q = queries.into_iter().next().expect("at least one query");
        let mut engine = TurboFlux::new(q, g0, cfg);
        let mut n = 0u64;
        engine.initial_matches(&mut |_| n += 1);
        let _ = writeln!(out, "{{\"type\":\"init\",\"engine\":0,\"matches\":{n}}}");
        Target::Single(Box::new(engine))
    };

    let mut driver = StreamDriver::new(
        SlidingWindow::new(opts.window),
        BatchPolicy {
            max_ops: opts.batch_ops,
            max_ticks: opts.batch_ticks,
            drain_at_end: opts.drain,
        },
    );

    // Run: the source is either the synthetic stream or the text file.
    let run = |driver: &mut StreamDriver,
               source: &mut dyn StreamSource,
               target: &mut Target,
               out: &mut dyn Write,
               quiet: bool| {
        if quiet {
            let mut sink = CountingSink::default();
            driver.run(source, target.as_batch_target(), &mut sink)
        } else {
            let mut sink = JsonlSink::new(out);
            driver.run(source, target.as_batch_target(), &mut sink)
        }
    };
    let result = if let Some(mut source) = synthetic_source.take() {
        run(&mut driver, &mut source, &mut target, &mut out, opts.quiet)
    } else {
        let path = opts.file.as_deref().expect("file or synthetic");
        let reader = match open_reader(path) {
            Ok(r) => r,
            Err(code) => return code,
        };
        let mut source = FileSource::new(reader, &mut interner, opts.mode);
        let result = run(&mut driver, &mut source, &mut target, &mut out, opts.quiet);
        for d in source.diagnostics() {
            eprintln!("warning: {d}");
        }
        result
    };
    let summary = match result {
        Ok(s) => s,
        Err(e) => {
            let _ = out.flush();
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Multi-query fleets report their routing / shared-index / shared-subtree
    // counters.
    if let Some(s) = target.as_batch_target().fleet_stats() {
        let _ = writeln!(
            out,
            "{{\"type\":\"fleet_stats\",\"ops_routed\":{},\"ops_skipped\":{},\"shared_hits\":{},\"shared_misses\":{},\"subtrees_shared\":{},\"subtree_hits\":{},\"suffix_evals\":{}}}",
            s.ops_routed,
            s.ops_skipped,
            s.shared_hits,
            s.shared_misses,
            s.subtrees_shared,
            s.subtree_hits,
            s.suffix_evals
        );
    }
    // Sharded targets report their partition-routing counters.
    if let Some(s) = target.as_batch_target().shard_stats() {
        let _ = writeln!(
            out,
            "{{\"type\":\"shard_stats\",\"ops_routed\":{},\"cross_shard_edges\":{},\"handoffs\":{},\"inbox_high_water\":{}}}",
            s.ops_routed, s.cross_shard_edges, s.handoffs, s.inbox_high_water
        );
    }
    let _ = out.flush();
    eprintln!(
        "processed {} events -> {} ops in {} batches ({} expiry deletes) in {:.2?}: {} positive, {} negative; window live {}",
        summary.events,
        summary.ops,
        summary.batches,
        summary.expiry_deletes,
        summary.elapsed,
        summary.positive,
        summary.negative,
        driver.window().live_len(),
    );
    ExitCode::SUCCESS
}
