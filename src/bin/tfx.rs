//! `tfx` — command-line continuous subgraph matching.
//!
//! Loads an initial data graph and a query (both in the simple text format
//! of `tfx_query::parser`), registers the query with the TurboFlux engine,
//! then streams update operations from a file (or stdin) and prints every
//! positive / negative match as it appears.
//!
//! ```sh
//! tfx <graph.txt> <query.txt> [--stream <ops.txt>] [--iso] [--quiet]
//! ```
//!
//! Stream format, one operation per line (`#` comments allowed):
//!
//! ```text
//! v 7 User            # vertex 7 arrives with label User
//! + 3 7 knows         # insert edge 3 -knows-> 7
//! - 3 7 knows         # delete it again
//! ```

use std::io::{BufRead, BufReader, Read};
use std::process::ExitCode;
use turboflux::prelude::*;
use turboflux::query::parser;

fn usage(code: u8) -> ExitCode {
    eprintln!("usage: tfx <graph.txt> <query.txt> [--stream <ops.txt>|-] [--iso] [--quiet]");
    ExitCode::from(code)
}

struct Options {
    graph_path: String,
    query_path: String,
    stream_path: Option<String>,
    semantics: MatchSemantics,
    quiet: bool,
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    let mut stream_path = None;
    let mut semantics = MatchSemantics::Homomorphism;
    let mut quiet = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stream" => {
                let Some(p) = args.next() else {
                    eprintln!("error: --stream requires a path (or - for stdin)");
                    return Err(usage(2));
                };
                stream_path = Some(p);
            }
            "--iso" => semantics = MatchSemantics::Isomorphism,
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(usage(0)),
            other if other.starts_with('-') && other != "-" => {
                eprintln!("error: unknown flag `{other}`");
                return Err(usage(2));
            }
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() != 2 {
        return Err(usage(2));
    }
    let mut it = positional.into_iter();
    Ok(Options {
        graph_path: it.next().expect("checked length"),
        query_path: it.next().expect("checked length"),
        stream_path,
        semantics,
        quiet,
    })
}

/// Parses one stream line into an operation. The interner assigns fresh
/// label ids for labels never seen in the graph or query.
fn parse_op(line: &str, lineno: usize, it: &mut LabelInterner) -> Result<Option<UpdateOp>, String> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let op = parts.next().expect("non-empty line");
    let parse_vertex = |s: Option<&str>| -> Result<VertexId, String> {
        s.ok_or_else(|| format!("line {lineno}: missing vertex id"))?
            .parse::<u32>()
            .map(VertexId)
            .map_err(|_| format!("line {lineno}: vertex ids are integers"))
    };
    match op {
        "v" => {
            let id = parse_vertex(parts.next())?;
            let labels: LabelSet = parts.map(|s| it.intern(s)).collect();
            Ok(Some(UpdateOp::AddVertex { id, labels }))
        }
        "+" | "-" => {
            let src = parse_vertex(parts.next())?;
            let dst = parse_vertex(parts.next())?;
            let label = it.intern(
                parts.next().ok_or_else(|| format!("line {lineno}: edge ops need a label"))?,
            );
            if parts.next().is_some() {
                return Err(format!("line {lineno}: trailing tokens"));
            }
            Ok(Some(if op == "+" {
                UpdateOp::InsertEdge { src, label, dst }
            } else {
                UpdateOp::DeleteEdge { src, label, dst }
            }))
        }
        other => Err(format!("line {lineno}: unknown op `{other}` (expected v, + or -)")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let mut interner = LabelInterner::new();

    let graph_text = match std::fs::read_to_string(&opts.graph_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.graph_path);
            return ExitCode::FAILURE;
        }
    };
    let g0 = match parser::parse_data_graph(&graph_text, &mut interner) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.graph_path);
            return ExitCode::FAILURE;
        }
    };
    let query_text = match std::fs::read_to_string(&opts.query_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.query_path);
            return ExitCode::FAILURE;
        }
    };
    let q = match parser::parse_query(&query_text, &mut interner) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.query_path);
            return ExitCode::FAILURE;
        }
    };
    if q.edge_count() == 0 || !q.is_connected() {
        eprintln!("error: the query must be connected and have at least one edge");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "graph: {} vertices, {} edges; query: {} vertices, {} edges ({:?})",
        g0.vertex_count(),
        g0.edge_count(),
        q.vertex_count(),
        q.edge_count(),
        opts.semantics,
    );
    let mut engine = TurboFlux::new(q, g0, TurboFluxConfig::with_semantics(opts.semantics));

    let quiet = opts.quiet;
    let mut initial = 0u64;
    engine.initial_matches(&mut |m| {
        initial += 1;
        if !quiet {
            println!("= {m:?}");
        }
    });
    eprintln!("{initial} initial matches; DCG {} edges", engine.dcg().stored_edge_count());

    let Some(stream_path) = opts.stream_path else {
        return ExitCode::SUCCESS;
    };
    let reader: Box<dyn Read> = if stream_path == "-" {
        Box::new(std::io::stdin())
    } else {
        match std::fs::File::open(&stream_path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("error: cannot read {stream_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let (mut pos, mut neg, mut ops) = (0u64, 0u64, 0u64);
    let started = std::time::Instant::now();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: reading stream: {e}");
                return ExitCode::FAILURE;
            }
        };
        let op = match parse_op(&line, i + 1, &mut interner) {
            Ok(None) => continue,
            Ok(Some(op)) => op,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        };
        ops += 1;
        engine.apply(&op, &mut |p, m| {
            match p {
                Positiveness::Positive => pos += 1,
                Positiveness::Negative => neg += 1,
            }
            if !quiet {
                let sign = if p == Positiveness::Positive { '+' } else { '-' };
                println!("{sign} {m:?}");
            }
        });
    }
    eprintln!(
        "processed {ops} ops in {:.2?}: {pos} positive, {neg} negative matches; DCG {} edges ({} bytes)",
        started.elapsed(),
        engine.dcg().stored_edge_count(),
        engine.intermediate_result_bytes(),
    );
    ExitCode::SUCCESS
}
