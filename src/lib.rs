//! **turboflux** — a from-scratch Rust reproduction of
//! *TurboFlux: A Fast Continuous Subgraph Matching System for Streaming
//! Graph Data* (Kim et al., SIGMOD 2018).
//!
//! Given a query graph and a dynamic data graph (an initial graph plus a
//! stream of edge insertions/deletions), [`TurboFlux`] reports the
//! *positive* matches created by each insertion and the *negative* matches
//! destroyed by each deletion, maintaining a compact **data-centric graph**
//! (DCG) of intermediate results instead of re-running subgraph matching or
//! materializing join state.
//!
//! # Quick start
//!
//! ```
//! use turboflux::prelude::*;
//!
//! // A tiny fraud-ring-ish pattern: Account -transfer-> Account.
//! let mut labels = LabelInterner::new();
//! let account = labels.intern("Account");
//! let transfer = labels.intern("transfer");
//!
//! let mut g0 = DynamicGraph::new();
//! let alice = g0.add_vertex(LabelSet::single(account));
//! let bob = g0.add_vertex(LabelSet::single(account));
//!
//! let mut q = QueryGraph::new();
//! let u0 = q.add_vertex(LabelSet::single(account));
//! let u1 = q.add_vertex(LabelSet::single(account));
//! q.add_edge(u0, u1, Some(transfer));
//!
//! let mut engine = TurboFlux::new(q, g0, TurboFluxConfig::default());
//! let mut found = Vec::new();
//! engine.apply(
//!     &UpdateOp::InsertEdge { src: alice, label: transfer, dst: bob },
//!     &mut |p, m| found.push((p, m.clone())),
//! );
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].0, Positiveness::Positive);
//! ```
//!
//! # Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`graph`] | dynamic labeled multigraph, labels, update streams |
//! | [`query`] | query graphs, query trees, match records, `ContinuousMatcher` |
//! | [`matcher`] | static backtracking homomorphism / isomorphism search |
//! | [`core`] | the TurboFlux engine: DCG + edge transition model |
//! | [`baselines`] | SJ-Tree, Graphflow, IncIsoMat, naive recompute |
//! | [`datagen`] | LSBench-like / Netflow-like generators, query generators |
//! | [`stream`] | ingestion: timestamped sources, sliding windows, batching driver, delta sinks |

pub use tfx_baselines as baselines;
pub use tfx_core as core;
pub use tfx_datagen as datagen;
pub use tfx_graph as graph;
pub use tfx_match as matcher;
pub use tfx_query as query;
pub use tfx_stream as stream;

pub use tfx_core::fleet;
pub use tfx_core::{
    Fleet, FleetDelta, FleetStats, ShardStats, ShardedEngine, TurboFlux, TurboFluxConfig,
};

/// One-stop imports for applications.
pub mod prelude {
    pub use tfx_core::{
        Fleet, FleetDelta, FleetStats, ShardStats, ShardedEngine, TurboFlux, TurboFluxConfig,
    };
    pub use tfx_graph::{
        DynamicGraph, LabelId, LabelInterner, LabelSet, UpdateOp, UpdateStream, VertexId,
    };
    pub use tfx_query::{
        ContinuousMatcher, MatchRecord, MatchSemantics, Positiveness, QVertexId, QueryGraph,
    };
    pub use tfx_stream::{
        BatchPolicy, CallbackSink, CountingSink, DeltaRef, DeltaSink, SlidingWindow, StreamDriver,
        StreamEvent, StreamSource, SyntheticKind, SyntheticSource, WindowSpec,
    };
}
