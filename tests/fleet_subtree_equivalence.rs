//! Randomized byte-equality oracle for shared DCG subtree prefixes
//! (multi-query sharing phase 2).
//!
//! Each scenario registers a set of queries guaranteed to contain two
//! engines with an identical deep tree branch (so a shared subtree
//! instance provably serves ≥ 2 engines) plus random extra queries,
//! applies a first op batch, deregisters one of the sharing engines,
//! re-registers the same prefix query mid-stream (refcount churn:
//! 2 → 1 → 2 on the live instance), and applies a second batch. The
//! emitted delta sequence — sequential and parallel, subtree sharing on
//! and off, homomorphism and isomorphism — must be byte-identical to
//! naive per-engine replay with standalone [`TurboFlux`] engines. The
//! sharing counters must be non-vacuous with the flag on
//! (`subtree_hits > 0`, `suffix_evals > 0`, a live `subtrees_shared`
//! gauge ≥ 1) and exactly zero with it off.

use std::collections::HashSet;
use turboflux::datagen::Pcg32;
use turboflux::prelude::*;
use turboflux::FleetDelta;

type Delta = (usize, usize, Positiveness, MatchRecord);

/// The deterministic prefix query: a 4-vertex chain
/// `L0 -10-> L1 -11-> L2 -12-> L3`. Whatever start vertex the engine
/// derives, a rooted tree over a 4-chain always has a root-child branch
/// with ≥ 2 vertices, and two engines running this exact query derive the
/// identical tree — so their branches canonicalize to the same key and a
/// shared instance provably serves both.
fn chain_query() -> QueryGraph {
    let mut q = QueryGraph::new();
    for i in 0..4 {
        q.add_vertex(LabelSet::single(LabelId(i)));
    }
    q.add_edge(QVertexId(0), QVertexId(1), Some(LabelId(10)));
    q.add_edge(QVertexId(1), QVertexId(2), Some(LabelId(11)));
    q.add_edge(QVertexId(2), QVertexId(3), Some(LabelId(12)));
    q
}

/// A random tree-shaped query over the same label palette, sometimes
/// embedding the chain's prefix edges so cross-query sharing (different
/// suffixes, equal branch) also occurs.
fn random_query(rng: &mut Pcg32, nq: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    for _ in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(rng.below(4) as u32)));
    }
    let mut seen = HashSet::new();
    for child in 1..nq {
        let parent = if rng.below(2) == 0 { child - 1 } else { rng.below(child as usize) as u32 };
        let label = if rng.below(8) == 0 { None } else { Some(LabelId(10 + rng.below(3) as u32)) };
        let (s, d) = if rng.below(4) == 0 { (child, parent) } else { (parent, child) };
        if seen.insert((s, d, label)) {
            q.add_edge(QVertexId(s), QVertexId(d), label);
        }
    }
    q
}

struct Scenario {
    g0: DynamicGraph,
    queries: Vec<QueryGraph>,
    /// Registered against the post-batch-1 graph (another chain copy, so
    /// the churned instance is re-acquired).
    late_query: QueryGraph,
    /// Deregistered between the batches: one of the two chain twins.
    victim: usize,
    ops1: Vec<UpdateOp>,
    ops2: Vec<UpdateOp>,
}

/// Picks an edge compatible with the chain query: `Lk -(10+k)-> Lk+1` for a
/// random layer `k`, with both endpoints drawn among vertices of the right
/// label. Falls back to a fully random edge when a layer is unpopulated.
fn chain_aligned_edge(rng: &mut Pcg32, vlabels: &[u32]) -> (VertexId, LabelId, VertexId) {
    let k = rng.below(3) as u32;
    let srcs: Vec<u32> = (0..vlabels.len() as u32).filter(|&v| vlabels[v as usize] == k).collect();
    let dsts: Vec<u32> =
        (0..vlabels.len() as u32).filter(|&v| vlabels[v as usize] == k + 1).collect();
    if srcs.is_empty() || dsts.is_empty() {
        let a = VertexId(rng.below(vlabels.len()) as u32);
        let b = VertexId(rng.below(vlabels.len()) as u32);
        return (a, LabelId(10 + rng.below(4) as u32), b);
    }
    let a = VertexId(srcs[rng.below(srcs.len())]);
    let b = VertexId(dsts[rng.below(dsts.len())]);
    (a, LabelId(10 + k), b)
}

fn random_ops(
    rng: &mut Pcg32,
    n: usize,
    vlabels: &mut Vec<u32>,
    live: &mut Vec<(VertexId, LabelId, VertexId)>,
) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for _ in 0..n {
        match rng.below(10) {
            0 => {
                let l = rng.below(4) as u32;
                ops.push(UpdateOp::AddVertex {
                    id: VertexId(vlabels.len() as u32),
                    labels: LabelSet::single(LabelId(l)),
                });
                vlabels.push(l);
            }
            1..=3 if !live.is_empty() => {
                let (a, l, b) = live.swap_remove(rng.below(live.len()));
                ops.push(UpdateOp::DeleteEdge { src: a, label: l, dst: b });
            }
            4..=5 => {
                let a = VertexId(rng.below(vlabels.len()) as u32);
                let b = VertexId(rng.below(vlabels.len()) as u32);
                let l = LabelId(10 + rng.below(4) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b));
            }
            _ => {
                let (a, l, b) = chain_aligned_edge(rng, vlabels);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b));
            }
        }
    }
    ops
}

fn random_scenario(rng: &mut Pcg32) -> Scenario {
    // Initial graph: vertices over the chain's 4 labels, pre-seeded with
    // chain-label edges so the shared branch has candidates from the start.
    let nv = 8 + rng.below(4) as u32;
    let mut g = DynamicGraph::new();
    let mut vlabels = Vec::new();
    for i in 0..nv {
        g.add_vertex(LabelSet::single(LabelId(i % 4)));
        vlabels.push(i % 4);
    }
    // One guaranteed full chain embedding plus chain-biased noise.
    for k in 0..3u32 {
        g.insert_edge(VertexId(k), LabelId(10 + k), VertexId(k + 1));
    }
    let noise = 4 + rng.below(8);
    for _ in 0..noise {
        let (a, l, b) = chain_aligned_edge(rng, &vlabels);
        g.insert_edge(a, l, b);
    }

    // Engines 0 and 1 are the chain twins; the rest are random.
    let mut queries = vec![chain_query(), chain_query()];
    let extra = 1 + rng.below(2);
    for _ in 0..extra {
        let nq = 3 + rng.below(3) as u32;
        queries.push(random_query(rng, nq));
    }
    let victim = rng.below(2); // always one of the twins
    let late_query = chain_query();

    let mut live: Vec<(VertexId, LabelId, VertexId)> =
        g.edges().map(|e| (e.src, e.label, e.dst)).collect();
    let n1 = 8 + rng.below(8);
    let ops1 = random_ops(rng, n1, &mut vlabels, &mut live);
    let n2 = 8 + rng.below(8);
    let ops2 = random_ops(rng, n2, &mut vlabels, &mut live);
    Scenario { g0: g, queries, late_query, victim, ops1, ops2 }
}

/// Naive per-engine replay: one standalone engine per query applying ops
/// one at a time; the victim stops after batch 1, the late engine starts
/// from `g_mid`.
fn standalone_deltas(
    s: &Scenario,
    cfg: &TurboFluxConfig,
    g_mid: &DynamicGraph,
) -> (Vec<Delta>, Vec<Delta>) {
    let mut batch1 = Vec::new();
    let mut batch2 = Vec::new();
    for (id, q) in s.queries.iter().enumerate() {
        let mut engine = TurboFlux::new(q.clone(), s.g0.clone(), *cfg);
        for (op_index, op) in s.ops1.iter().enumerate() {
            engine.apply_op(op, &mut |p, r| batch1.push((id, op_index, p, r.clone())));
        }
        if id == s.victim {
            continue;
        }
        for (op_index, op) in s.ops2.iter().enumerate() {
            engine.apply_op(op, &mut |p, r| batch2.push((id, op_index, p, r.clone())));
        }
    }
    let late_id = s.queries.len();
    let mut engine = TurboFlux::new(s.late_query.clone(), g_mid.clone(), *cfg);
    for (op_index, op) in s.ops2.iter().enumerate() {
        engine.apply_op(op, &mut |p, r| batch2.push((late_id, op_index, p, r.clone())));
    }
    (batch1, batch2)
}

/// Runs the full scenario on one fleet configuration; returns the two
/// batches' delta sequences, the final stats, the mid-stream graph, and
/// the `subtrees_shared` gauge observed right after initial registration.
fn fleet_deltas(
    s: &Scenario,
    cfg: &TurboFluxConfig,
    threads: usize,
    parallel: bool,
) -> (Vec<Delta>, Vec<Delta>, turboflux::FleetStats, DynamicGraph, u64) {
    let mut fleet = Fleet::with_threads(s.g0.clone(), threads);
    let mut ids = Vec::new();
    for q in &s.queries {
        ids.push(fleet.register(q.clone(), *cfg));
    }
    let gauge_after_register = fleet.stats().subtrees_shared;
    let collect = |fleet: &mut Fleet, ops: &[UpdateOp], parallel: bool| {
        let mut out: Vec<Delta> = Vec::new();
        let mut sink = |d: FleetDelta<'_>| {
            out.push((d.engine, d.op_index, d.positiveness, d.record.clone()));
        };
        if parallel {
            fleet.apply_batch(ops, &mut sink);
        } else {
            fleet.apply_batch_sequential(ops, &mut sink);
        }
        out
    };
    let batch1 = collect(&mut fleet, &s.ops1, parallel);
    let g_mid = fleet.graph().clone();
    assert!(fleet.deregister(ids[s.victim]));
    let late_id = fleet.register(s.late_query.clone(), *cfg);
    assert_eq!(late_id, s.queries.len(), "stable ids continue past deregistration");
    let batch2 = collect(&mut fleet, &s.ops2, parallel);
    let stats = fleet.stats();
    (batch1, batch2, stats, g_mid, gauge_after_register)
}

fn run(seed: u64, semantics: MatchSemantics) {
    let mut rng = Pcg32::new(seed);
    let shared_on = TurboFluxConfig { semantics, ..TurboFluxConfig::default() };
    let shared_off = TurboFluxConfig { fleet_shared_subtrees: false, ..shared_on };
    let mut exercised = 0;
    let mut nonempty = 0;
    let (mut hits_total, mut suffix_total) = (0u64, 0u64);
    for _ in 0..25 {
        let s = random_scenario(&mut rng);
        let valid = |q: &QueryGraph| q.edge_count() > 0 && q.is_connected();
        if !s.queries.iter().all(valid) {
            continue;
        }
        exercised += 1;
        // Reference run (sequential, sharing on) also yields the graph
        // state at the late engine's registration, which the oracle needs.
        let (f1, f2, stats, g_mid, gauge) = fleet_deltas(&s, &shared_on, 1, false);
        let (want1, want2) = standalone_deltas(&s, &shared_on, &g_mid);
        assert_eq!(f1, want1, "sequential shared-subtree fleet != naive replay (batch 1)");
        assert_eq!(f2, want2, "sequential shared-subtree fleet != naive replay (batch 2)");
        assert!(gauge >= 1, "chain twins must share an instance (refs >= 2)");
        hits_total += stats.subtree_hits;
        suffix_total += stats.suffix_evals;

        for (cfg, threads, parallel, what) in [
            (&shared_on, 4, true, "parallel shared-subtree"),
            (&shared_off, 1, false, "sequential unshared"),
            (&shared_off, 4, true, "parallel unshared"),
        ] {
            let (b1, b2, st, _, _) = fleet_deltas(&s, cfg, threads, parallel);
            assert_eq!(b1, want1, "{what} fleet != naive replay (batch 1)");
            assert_eq!(b2, want2, "{what} fleet != naive replay (batch 2)");
            if !cfg.fleet_shared_subtrees {
                assert_eq!(st.subtrees_shared, 0, "{what}: flag off must not bind branches");
                assert_eq!(st.subtree_hits, 0, "{what}: flag off must not skip regions");
                assert_eq!(st.suffix_evals, 0, "{what}: flag off runs plain evals");
            }
        }
        if !want1.is_empty() || !want2.is_empty() {
            nonempty += 1;
        }
    }
    assert!(exercised >= 10, "only {exercised} scenarios exercised");
    assert!(nonempty >= 3, "only {nonempty} scenarios produced matches");
    assert!(hits_total > 0, "shared instances never served a region (vacuous)");
    assert!(suffix_total > 0, "no suffix evaluations ran against shared branches");
}

#[test]
fn subtree_shared_fleet_matches_naive_replay_homomorphism() {
    run(0x51_B7EE5, MatchSemantics::Homomorphism);
}

#[test]
fn subtree_shared_fleet_matches_naive_replay_isomorphism() {
    run(0x150_5B75, MatchSemantics::Isomorphism);
}
