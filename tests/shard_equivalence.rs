//! Randomized byte-equality oracle for the sharded execution runtime:
//! for arbitrary scenarios (K queries over one stream of inserts /
//! deletes / vertex additions in uniform, hub, and explosive shapes,
//! always drained back to an empty edge set), the sharded engine at
//! shards ∈ {1, 2, 4, 8} — parallel and sequential batch paths alike —
//! must produce exactly the same delta sequence as the unsharded
//! standalone engines and as a fleet over the same queries, under both
//! homomorphism and isomorphism semantics. Matching-order adjustment is
//! pinned off everywhere: that is the static plan the sharded runtime
//! locks in (see `ShardedEngine::new`).

use std::collections::HashSet;
use turboflux::datagen::Pcg32;
use turboflux::prelude::*;

type Delta = (usize, usize, Positiveness, MatchRecord);

#[derive(Clone, Copy, Debug)]
enum StreamShape {
    /// Endpoints uniform over the vertex set.
    Uniform,
    /// Half of all edges incident to the hub vertex 0.
    Hub,
    /// A small source core fanning out to everyone (dense match growth).
    Explosive,
}

fn random_query(rng: &mut Pcg32, nq: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    for i in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    let mut seen = HashSet::new();
    for child in 1..nq {
        let parent = rng.below(child as usize) as u32;
        let label = if rng.below(3) == 0 { None } else { Some(LabelId(10 + rng.below(2) as u32)) };
        let (s, d) = if rng.below(2) == 0 { (parent, child) } else { (child, parent) };
        if seen.insert((s, d, label)) {
            q.add_edge(QVertexId(s), QVertexId(d), label);
        }
    }
    q
}

struct Scenario {
    g0: DynamicGraph,
    queries: Vec<QueryGraph>,
    ops: Vec<UpdateOp>,
}

fn pick_endpoints(rng: &mut Pcg32, shape: StreamShape, vertices: u32) -> (VertexId, VertexId) {
    let uniform = |rng: &mut Pcg32| VertexId(rng.below(vertices as usize) as u32);
    match shape {
        StreamShape::Uniform => (uniform(rng), uniform(rng)),
        StreamShape::Hub => {
            let a = if rng.below(2) == 0 { VertexId(0) } else { uniform(rng) };
            let b = uniform(rng);
            if rng.below(2) == 0 {
                (a, b)
            } else {
                (b, a)
            }
        }
        StreamShape::Explosive => {
            (VertexId(rng.below(3.min(vertices as usize)) as u32), uniform(rng))
        }
    }
}

fn random_scenario(rng: &mut Pcg32, shape: StreamShape) -> Scenario {
    // Enough vertices that every shard count in {2, 4, 8} sees
    // cross-shard edges mid-stream.
    let nv = 10 + rng.below(8) as u32;
    let mut g = DynamicGraph::new();
    for i in 0..nv {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for _ in 0..rng.below(8) {
        let (a, b) = pick_endpoints(rng, shape, nv);
        g.insert_edge(a, LabelId(10 + rng.below(2) as u32), b);
    }

    let nqueries = 1 + rng.below(3); // 1..=3 queries
    let queries: Vec<QueryGraph> = (0..nqueries)
        .map(|_| {
            let nq = 2 + rng.below(3) as u32;
            random_query(rng, nq)
        })
        .collect();

    // A mixed op sequence over a growing vertex set; `live` mirrors the
    // graph so deletes mostly hit real edges (misses are exercised too).
    let mut ops = Vec::new();
    let mut live: Vec<(VertexId, LabelId, VertexId)> =
        g.edges().map(|e| (e.src, e.label, e.dst)).collect();
    let mut vertices = nv;
    for _ in 0..(12 + rng.below(16)) {
        match rng.below(10) {
            0 => {
                ops.push(UpdateOp::AddVertex {
                    id: VertexId(vertices),
                    labels: LabelSet::single(LabelId(rng.below(2) as u32)),
                });
                vertices += 1;
            }
            1 => {
                // Insert touching a brand-new (implicitly created) vertex.
                let a = VertexId(rng.below(vertices as usize) as u32);
                let b = VertexId(vertices);
                vertices += 1;
                let l = LabelId(10 + rng.below(2) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b));
            }
            2..=3 if !live.is_empty() => {
                let (a, l, b) = live.swap_remove(rng.below(live.len()));
                ops.push(UpdateOp::DeleteEdge { src: a, label: l, dst: b });
            }
            _ => {
                let (a, b) = pick_endpoints(rng, shape, vertices);
                let l = LabelId(10 + rng.below(2) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b)); // duplicates allowed: exercises skips
            }
        }
    }
    // Drain to empty: every surviving edge is deleted, in random order, so
    // the full DCG teardown path runs in every scenario.
    rng.shuffle(&mut live);
    for (a, l, b) in live {
        ops.push(UpdateOp::DeleteEdge { src: a, label: l, dst: b });
    }
    Scenario { g0: g, queries, ops }
}

/// Unsharded reference: K standalone engines (static matching order)
/// applying ops one at a time. Also returns each query's initial matches.
fn standalone(s: &Scenario, cfg: &TurboFluxConfig) -> (Vec<Vec<MatchRecord>>, Vec<Delta>) {
    let mut out = Vec::new();
    let mut initial = Vec::new();
    for (id, q) in s.queries.iter().enumerate() {
        let mut engine = TurboFlux::new(q.clone(), s.g0.clone(), *cfg);
        let mut init = Vec::new();
        engine.report_initial(&mut |r| init.push(r.clone()));
        initial.push(init);
        for (op_index, op) in s.ops.iter().enumerate() {
            engine.apply_op(op, &mut |p, r| out.push((id, op_index, p, r.clone())));
        }
    }
    (initial, out)
}

fn fleet_deltas(s: &Scenario, cfg: &TurboFluxConfig) -> Vec<Delta> {
    let mut fleet = Fleet::with_threads(s.g0.clone(), 2);
    for q in &s.queries {
        fleet.register(q.clone(), *cfg);
    }
    let mut out: Vec<Delta> = Vec::new();
    fleet.apply_batch(&s.ops, &mut |d: FleetDelta<'_>| {
        out.push((d.engine, d.op_index, d.positiveness, d.record.clone()));
    });
    out
}

/// Runs the sharded engine and returns (initials per query, deltas, stats).
fn sharded(
    s: &Scenario,
    cfg: &TurboFluxConfig,
    shards: usize,
    threads: usize,
    parallel: bool,
) -> (Vec<Vec<MatchRecord>>, Vec<Delta>, ShardStats) {
    let cfg = TurboFluxConfig { shards, ..*cfg };
    let mut engine = ShardedEngine::new(s.queries.clone(), s.g0.clone(), cfg, threads);
    let mut initial = Vec::new();
    for q in 0..s.queries.len() {
        let mut init = Vec::new();
        engine.report_initial(q, &mut |r| init.push(r.clone()));
        initial.push(init);
    }
    let mut out: Vec<Delta> = Vec::new();
    if parallel {
        engine.apply_batch(&s.ops, &mut |q, op, p, r| out.push((q, op, p, r.clone())));
    } else {
        // Split the stream into two sequential batches so mid-stream
        // construction state (not just end-to-end totals) is exercised;
        // op indices are batch-relative (the `Fleet` convention), so the
        // second batch is offset back to stream positions.
        let mid = s.ops.len() / 2;
        engine.apply_batch_sequential(&s.ops[..mid], &mut |q, op, p, r| {
            out.push((q, op, p, r.clone()))
        });
        engine.apply_batch_sequential(&s.ops[mid..], &mut |q, op, p, r| {
            out.push((q, mid + op, p, r.clone()))
        });
    }
    (initial, out, engine.stats())
}

fn run(seed: u64, semantics: MatchSemantics) {
    let mut rng = Pcg32::new(seed);
    // The sharded runtime pins the matching order static; the honest
    // unsharded reference is the engine with the same static order.
    let cfg =
        TurboFluxConfig { semantics, adjust_matching_order: false, ..TurboFluxConfig::default() };
    let mut exercised = 0;
    let mut nonempty = 0;
    let mut agg = ShardStats::default();
    let shapes = [StreamShape::Uniform, StreamShape::Hub, StreamShape::Explosive];
    for round in 0..36 {
        let shape = shapes[round % shapes.len()];
        let s = random_scenario(&mut rng, shape);
        if s.queries.iter().any(|q| q.edge_count() == 0 || !q.is_connected()) {
            continue;
        }
        exercised += 1;
        let (want_init, want) = standalone(&s, &cfg);
        assert_eq!(fleet_deltas(&s, &cfg), want, "fleet != standalone ({shape:?})");
        for shards in [1usize, 2, 4, 8] {
            let parallel = shards % 2 == 0; // alternate both batch paths
            let (init, got, stats) = sharded(&s, &cfg, shards, 4, parallel);
            assert_eq!(init, want_init, "initial matches diverge at shards={shards} ({shape:?})");
            // Output is (query, op) ordered *per batch*; re-key the
            // whole-stream reference for the two-batch sequential run.
            let want_here = if parallel {
                want.clone()
            } else {
                let mid = s.ops.len() / 2;
                let mut w = want.clone();
                w.sort_by_key(|&(q, op, _, _)| (op >= mid, q));
                w
            };
            assert_eq!(got, want_here, "deltas diverge at shards={shards} ({shape:?})");
            if shards > 1 {
                agg.ops_routed += stats.ops_routed;
                agg.cross_shard_edges += stats.cross_shard_edges;
                agg.handoffs += stats.handoffs;
                agg.inbox_high_water = agg.inbox_high_water.max(stats.inbox_high_water);
            }
        }
        if !want.is_empty() {
            nonempty += 1;
        }
    }
    assert!(exercised >= 20, "only {exercised} scenarios exercised");
    assert!(nonempty >= 5, "only {nonempty} scenarios produced matches");
    // Non-vacuity: the sharded runs actually routed ops, mirrored
    // cross-shard edges, and delivered handoffs.
    assert!(agg.ops_routed > 0, "no ops routed: {agg:?}");
    assert!(agg.cross_shard_edges > 0, "no cross-shard edges: {agg:?}");
    assert!(agg.handoffs > 0, "no handoffs: {agg:?}");
    assert!(agg.inbox_high_water > 0, "inboxes stayed empty: {agg:?}");
}

#[test]
fn sharded_matches_unsharded_homomorphism() {
    run(0x05AA_D001, MatchSemantics::Homomorphism);
}

#[test]
fn sharded_matches_unsharded_isomorphism() {
    run(0x05AA_D002, MatchSemantics::Isomorphism);
}
