//! End-to-end test of the `tfx` CLI binary: graph + query + stream files
//! in, match lines out.

use std::process::Command;

fn tfx_bin() -> &'static str {
    env!("CARGO_BIN_EXE_tfx")
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).expect("write test file");
    p
}

#[test]
fn cli_streams_matches_end_to_end() {
    let dir = std::env::temp_dir().join(format!("tfx-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let graph = write(&dir, "g.txt", "v 0 Person\nv 1 Person\nv 2 Company\ne 0 2 worksAt\n");
    let query = write(
        &dir,
        "q.txt",
        "v 0 Person\nv 1 Person\nv 2 Company\ne 0 1 knows\ne 0 2 worksAt\ne 1 2 worksAt\n",
    );
    let stream = write(&dir, "s.txt", "+ 1 2 worksAt\n+ 0 1 knows\n- 0 2 worksAt\n");

    let out = Command::new(tfx_bin())
        .args([graph.to_str().unwrap(), query.to_str().unwrap(), "--stream"])
        .arg(&stream)
        .output()
        .expect("run tfx");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let positives = stdout.lines().filter(|l| l.starts_with('+')).count();
    let negatives = stdout.lines().filter(|l| l.starts_with('-')).count();
    assert_eq!(positives, 1, "stdout: {stdout}");
    assert_eq!(negatives, 1, "stdout: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0 initial matches"), "stderr: {stderr}");
    assert!(stderr.contains("1 positive, 1 negative"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_unknown_flags_and_bad_streams() {
    let out = Command::new(tfx_bin()).arg("--bogus").output().expect("run tfx");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    let dir = std::env::temp_dir().join(format!("tfx-cli2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let graph = write(&dir, "g.txt", "v 0 A\nv 1 B\ne 0 1 r\n");
    let query = write(&dir, "q.txt", "v 0 A\nv 1 B\ne 0 1 r\n");
    let stream = write(&dir, "s.txt", "+ 0 oops r\n");
    let out = Command::new(tfx_bin())
        .args([graph.to_str().unwrap(), query.to_str().unwrap(), "--stream"])
        .arg(&stream)
        .output()
        .expect("run tfx");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("vertex ids are integers"));
    std::fs::remove_dir_all(&dir).ok();
}

fn testdata(name: &str) -> String {
    format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn cli_stream_subcommand_windowed_file_run() {
    let out = Command::new(tfx_bin())
        .args([
            "stream",
            "--query",
            &testdata("demo_query.txt"),
            "--graph",
            &testdata("demo_graph.txt"),
            "--file",
            &testdata("demo_stream.txt"),
            "--window",
            "count:3",
        ])
        .output()
        .expect("run tfx stream");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let deltas: Vec<&str> = stdout.lines().filter(|l| l.contains("\"type\":\"delta\"")).collect();
    assert_eq!(deltas.len(), 4, "stdout: {stdout}");
    assert_eq!(deltas.iter().filter(|l| l.contains("\"sign\":\"+\"")).count(), 2);
    let summary =
        stdout.lines().find(|l| l.contains("\"type\":\"summary\"")).expect("summary line");
    assert!(
        summary.contains("\"events\":6") && summary.contains("\"expiry_deletes\":1"),
        "{summary}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("window live 3"));
}

#[test]
fn cli_stream_subcommand_synthetic_fleet() {
    let run = || {
        let out = Command::new(tfx_bin())
            .args([
                "stream",
                "--query",
                &testdata("netflow_query.txt"),
                "--query",
                &testdata("netflow_query.txt"),
                "--synthetic",
                "netflow",
                "--window",
                "count:1000",
                "--fleet",
                "2",
                "--quiet",
            ])
            .output()
            .expect("run tfx stream");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        (stdout, stderr)
    };
    let (stdout, stderr) = run();
    // Two engines over the same query: two init lines, identical counts.
    assert_eq!(stdout.lines().filter(|l| l.contains("\"type\":\"init\"")).count(), 2);
    // The fleet stats line carries the phase-1 index counters and the
    // phase-2 shared-subtree counters.
    let fs = stdout
        .lines()
        .find(|l| l.contains("\"type\":\"fleet_stats\""))
        .expect("fleet_stats JSONL line");
    for key in ["ops_routed", "shared_hits", "subtrees_shared", "subtree_hits", "suffix_evals"] {
        assert!(fs.contains(key), "fleet_stats line missing {key}: {fs}");
    }
    assert!(stderr.contains("processed 4000 events"), "stderr: {stderr}");
    // Deterministic: the generator is seeded, so a second run reports the
    // same delta totals (strip the timing from the summary line first).
    let counts = |s: &str| {
        s.lines().find(|l| l.starts_with("processed")).map(|l| {
            l.split(" in ").next().unwrap().to_string() + l.split(':').next_back().unwrap()
        })
    };
    let (_, stderr2) = run();
    assert_eq!(counts(&stderr), counts(&stderr2));
}

#[test]
fn cli_stream_subcommand_lenient_recovers_strict_fails() {
    let dir = std::env::temp_dir().join(format!("tfx-cli4-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let stream = write(&dir, "s.txt", "+ 1 2 worksAt\n+ 0 oops knows\n+ 0 1 knows\n");
    let base = [
        "stream",
        "--query",
        &testdata("demo_query.txt"),
        "--graph",
        &testdata("demo_graph.txt"),
        "--file",
    ];
    let strict = Command::new(tfx_bin()).args(base).arg(&stream).output().expect("run tfx stream");
    assert_eq!(strict.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&strict.stderr).contains("line 2"));

    let lenient = Command::new(tfx_bin())
        .args(base)
        .arg(&stream)
        .arg("--lenient")
        .output()
        .expect("run tfx stream");
    assert!(lenient.status.success(), "stderr: {}", String::from_utf8_lossy(&lenient.stderr));
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(stderr.contains("warning") && stderr.contains("line 2"), "stderr: {stderr}");
    assert!(stderr.contains("processed 2 events"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_isomorphism_flag_changes_semantics() {
    let dir = std::env::temp_dir().join(format!("tfx-cli3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    // Query B <- A -> B over one data A->B: 1 homomorphism, 0 isomorphisms.
    let graph = write(&dir, "g.txt", "v 0 A\nv 1 B\n");
    let query = write(&dir, "q.txt", "v 0 A\nv 1 B\nv 2 B\ne 0 1 r\ne 0 2 r\n");
    let stream = write(&dir, "s.txt", "+ 0 1 r\n");
    let hom = Command::new(tfx_bin())
        .args([graph.to_str().unwrap(), query.to_str().unwrap(), "--stream"])
        .arg(&stream)
        .output()
        .expect("run tfx");
    assert!(String::from_utf8_lossy(&hom.stderr).contains("1 positive"));
    let iso = Command::new(tfx_bin())
        .args([graph.to_str().unwrap(), query.to_str().unwrap(), "--iso", "--stream"])
        .arg(&stream)
        .output()
        .expect("run tfx");
    assert!(String::from_utf8_lossy(&iso.stderr).contains("0 positive"));
    std::fs::remove_dir_all(&dir).ok();
}
