//! Randomized oracle for the streaming ingestion subsystem: a windowed,
//! batched driver run must produce deltas **byte-identical** to replaying
//! the window's emitted op sequence one op at a time on a fresh engine.
//!
//! The window is a pure op-sequence transformer (inserts in, inserts plus
//! expiry deletes out) and batching only changes *when* ops reach the
//! target, never *what* — so for any scenario, window spec, batch policy,
//! semantics, and target (single engine, fleet sequential, fleet
//! parallel), the recorded `(global_op, engine, sign, embedding)` stream
//! must match the replay exactly, in order.

use std::collections::HashSet;
use turboflux::datagen::Pcg32;
use turboflux::prelude::*;
use turboflux::stream::VecSource;

/// `(global_op, engine, positiveness, record)` — the full identity of a
/// delta as far as a downstream consumer can observe it.
type Delta = (usize, usize, Positiveness, MatchRecord);

/// Records the window's emitted ops (via `on_ops`) and every delta.
#[derive(Default)]
struct RecordingSink {
    ops: Vec<UpdateOp>,
    deltas: Vec<Delta>,
}

impl DeltaSink for RecordingSink {
    fn on_ops(&mut self, _batch: usize, ops: &[UpdateOp]) {
        self.ops.extend_from_slice(ops);
    }
    fn on_delta(&mut self, d: &DeltaRef<'_>) {
        self.deltas.push((d.global_op, d.engine, d.positiveness, d.record.clone()));
    }
}

fn random_query(rng: &mut Pcg32, nq: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    for i in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    let mut seen = HashSet::new();
    for child in 1..nq {
        let parent = rng.below(child as usize) as u32;
        let label = if rng.below(3) == 0 { None } else { Some(LabelId(10 + rng.below(2) as u32)) };
        let (s, d) = if rng.below(2) == 0 { (parent, child) } else { (child, parent) };
        if seen.insert((s, d, label)) {
            q.add_edge(QVertexId(s), QVertexId(d), label);
        }
    }
    q
}

struct Scenario {
    g0: DynamicGraph,
    queries: Vec<QueryGraph>,
    events: Vec<StreamEvent>,
}

/// A small random graph, 1–3 random queries, and a timestamped event
/// sequence biased toward inserts, with enough duplicate edges and
/// upstream deletes to exercise the window's multigraph bookkeeping.
fn random_scenario(rng: &mut Pcg32) -> Scenario {
    let nv = 3 + rng.below(4) as u32;
    let mut g = DynamicGraph::new();
    for i in 0..nv {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for _ in 0..rng.below(5) {
        let a = VertexId(rng.below(nv as usize) as u32);
        let b = VertexId(rng.below(nv as usize) as u32);
        g.insert_edge(a, LabelId(10 + rng.below(2) as u32), b);
    }

    let nqueries = 1 + rng.below(3);
    let queries: Vec<QueryGraph> = (0..nqueries)
        .map(|_| {
            let nq = 2 + rng.below(3) as u32;
            random_query(rng, nq)
        })
        .collect();

    let mut events = Vec::new();
    let mut inserted: Vec<(VertexId, LabelId, VertexId)> = Vec::new();
    let mut vertices = nv;
    let mut ts = 0u64;
    for _ in 0..(10 + rng.below(20)) {
        ts += rng.below(3) as u64; // non-decreasing, frequent ties
        match rng.below(12) {
            0 => {
                events.push(StreamEvent::new(
                    ts,
                    UpdateOp::AddVertex {
                        id: VertexId(vertices),
                        labels: LabelSet::single(LabelId(rng.below(2) as u32)),
                    },
                ));
                vertices += 1;
            }
            1 | 2 if !inserted.is_empty() => {
                // Upstream delete of a still-windowed insert: the window
                // must cancel the pending expiry, not double-delete.
                let (s, l, d) = inserted[rng.below(inserted.len())];
                events
                    .push(StreamEvent::new(ts, UpdateOp::DeleteEdge { src: s, label: l, dst: d }));
            }
            _ => {
                let s = VertexId(rng.below(vertices as usize) as u32);
                let d = VertexId(rng.below(vertices as usize) as u32);
                let l = LabelId(10 + rng.below(2) as u32);
                // ~1 in 4 inserts duplicates an earlier edge key.
                let (s, l, d) = if !inserted.is_empty() && rng.below(4) == 0 {
                    inserted[rng.below(inserted.len())]
                } else {
                    (s, l, d)
                };
                events
                    .push(StreamEvent::new(ts, UpdateOp::InsertEdge { src: s, label: l, dst: d }));
                inserted.push((s, l, d));
            }
        }
    }
    Scenario { g0: g, queries, events }
}

fn random_window(rng: &mut Pcg32) -> WindowSpec {
    match rng.below(3) {
        0 => WindowSpec::Time { width: 1 + rng.below(8) as u64 },
        1 => WindowSpec::Count { capacity: 1 + rng.below(6) },
        _ => WindowSpec::Unbounded,
    }
}

fn random_policy(rng: &mut Pcg32) -> BatchPolicy {
    BatchPolicy {
        max_ops: 1 + rng.below(7),
        max_ticks: if rng.below(2) == 0 { Some(1 + rng.below(5) as u64) } else { None },
        drain_at_end: rng.below(2) == 0,
    }
}

/// Runs the windowed driver against `target`, returning the emitted op
/// sequence and the delta stream.
fn windowed_run(
    scenario: &Scenario,
    spec: WindowSpec,
    policy: BatchPolicy,
    target: &mut dyn turboflux::stream::BatchTarget,
) -> (Vec<UpdateOp>, Vec<Delta>) {
    let mut source = VecSource::new(scenario.events.clone());
    let mut driver = StreamDriver::new(SlidingWindow::new(spec), policy);
    let mut sink = RecordingSink::default();
    driver.run(&mut source, target, &mut sink).expect("vec sources never fail");
    (sink.ops, sink.deltas)
}

/// Replays `ops` one per batch on a fresh fleet — the ground truth.
fn replay(scenario: &Scenario, semantics: MatchSemantics, ops: &[UpdateOp]) -> Vec<Delta> {
    let mut fleet = Fleet::with_threads(scenario.g0.clone(), 1);
    for q in &scenario.queries {
        fleet.register(q.clone(), TurboFluxConfig::with_semantics(semantics));
    }
    let mut deltas = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        fleet.apply_batch(std::slice::from_ref(op), &mut |d| {
            deltas.push((i, d.engine, d.positiveness, d.record.clone()));
        });
    }
    deltas
}

/// Stable-sorts by engine, preserving each engine's own delta order.
fn by_engine(mut deltas: Vec<Delta>) -> Vec<Delta> {
    deltas.sort_by_key(|d| d.1);
    deltas
}

fn check_seed(seed: u64, semantics: MatchSemantics) {
    let mut rng = Pcg32::new(seed);
    let scenario = random_scenario(&mut rng);
    let spec = random_window(&mut rng);
    let policy = random_policy(&mut rng);

    // Target 1: single sequential engine (first query only).
    let mut engine = TurboFlux::new(
        scenario.queries[0].clone(),
        scenario.g0.clone(),
        TurboFluxConfig::with_semantics(semantics),
    );
    let (ops, got) = windowed_run(&scenario, spec, policy, &mut engine);
    let single = Scenario {
        g0: scenario.g0.clone(),
        queries: vec![scenario.queries[0].clone()],
        events: Vec::new(),
    };
    let want = replay(&single, semantics, &ops);
    assert_eq!(got, want, "single engine diverged from replay (seed {seed}, {spec:?}, {policy:?})");

    // Target 2: parallel fleet over all queries.
    let mut fleet = Fleet::with_threads(scenario.g0.clone(), 4);
    for q in &scenario.queries {
        fleet.register(q.clone(), TurboFluxConfig::with_semantics(semantics));
    }
    let (fleet_ops, fleet_got) = windowed_run(&scenario, spec, policy, &mut fleet);
    assert_eq!(ops, fleet_ops, "window output must not depend on the target (seed {seed})");
    // The fleet's contract orders deltas (engine, op, emission) *within a
    // batch*, so the cross-engine interleave depends on batch granularity;
    // each engine's own delta stream must match the replay exactly.
    let fleet_want = replay(&scenario, semantics, &ops);
    assert_eq!(
        by_engine(fleet_got),
        by_engine(fleet_want),
        "fleet diverged from replay (seed {seed}, {spec:?}, {policy:?})"
    );

    // Batching invariance: a different policy over the same window spec
    // yields the identical delta stream.
    let mut engine2 = TurboFlux::new(
        scenario.queries[0].clone(),
        scenario.g0.clone(),
        TurboFluxConfig::with_semantics(semantics),
    );
    let other = BatchPolicy { max_ops: 1, max_ticks: None, drain_at_end: policy.drain_at_end };
    let (ops2, got2) = windowed_run(&scenario, spec, other, &mut engine2);
    assert_eq!(ops, ops2, "op sequence must not depend on batching (seed {seed})");
    assert_eq!(got, got2, "deltas must not depend on batching (seed {seed})");
}

#[test]
fn windowed_runs_match_replay_homomorphism() {
    for seed in 0..40 {
        check_seed(seed, MatchSemantics::Homomorphism);
    }
}

#[test]
fn windowed_runs_match_replay_isomorphism() {
    for seed in 100..140 {
        check_seed(seed, MatchSemantics::Isomorphism);
    }
}

/// The fleet path with one worker must agree with the parallel path under
/// windowing too (the fleet tests pin this for raw batches; this pins it
/// end-to-end through the driver).
#[test]
fn fleet_thread_counts_agree_under_windowing() {
    for seed in 200..215 {
        let mut rng = Pcg32::new(seed);
        let scenario = random_scenario(&mut rng);
        let spec = random_window(&mut rng);
        let policy = random_policy(&mut rng);
        let mut runs = Vec::new();
        for threads in [1, 4] {
            let mut fleet = Fleet::with_threads(scenario.g0.clone(), threads);
            for q in &scenario.queries {
                fleet.register(
                    q.clone(),
                    TurboFluxConfig::with_semantics(MatchSemantics::Homomorphism),
                );
            }
            runs.push(windowed_run(&scenario, spec, policy, &mut fleet));
        }
        assert_eq!(runs[0], runs[1], "thread count changed windowed deltas (seed {seed})");
    }
}

/// A drained window leaves the engine back at its initial-graph state:
/// every positive delta is paired with a negative one.
#[test]
fn drain_restores_zero_sum() {
    for seed in 300..320 {
        let mut rng = Pcg32::new(seed);
        let scenario = random_scenario(&mut rng);
        // Insert-only variant so drain teardown is the only delete source,
        // and no streamed insert shadows a pre-existing g0 edge (expiring
        // such an insert would tear down state the stream never created).
        let g0_edges: HashSet<(VertexId, LabelId, VertexId)> =
            scenario.g0.edges().map(|e| (e.src, e.label, e.dst)).collect();
        let events: Vec<StreamEvent> = scenario
            .events
            .iter()
            .filter(|e| match e.op {
                UpdateOp::DeleteEdge { .. } => false,
                UpdateOp::InsertEdge { src, label, dst } => !g0_edges.contains(&(src, label, dst)),
                _ => true,
            })
            .cloned()
            .collect();
        let mut engine = TurboFlux::new(
            scenario.queries[0].clone(),
            scenario.g0.clone(),
            TurboFluxConfig::default(),
        );
        let mut source = VecSource::new(events);
        let mut driver = StreamDriver::new(
            SlidingWindow::new(WindowSpec::Count { capacity: 3 }),
            BatchPolicy { drain_at_end: true, ..BatchPolicy::default() },
        );
        let mut sink = CountingSink::default();
        let summary = driver.run(&mut source, &mut engine, &mut sink).unwrap();
        assert_eq!(sink.positive, sink.negative, "drain must cancel every match (seed {seed})");
        assert_eq!(driver.window().live_len(), 0);
        assert_eq!(summary.positive, sink.positive);
    }
}
