//! Proves the per-update hot path is allocation-free in steady state: after
//! a warm-up pass grows every scratch buffer and adjacency list to its
//! high-water capacity, repeating the same insert/delete cycles must hit
//! the global allocator zero times.
//!
//! This file contains a single test because the counting `#[global_allocator]`
//! is process-wide: a concurrent test allocating on another thread would
//! pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use turboflux::prelude::*;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Frees are fine in steady state; only acquisitions are counted.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A 3-vertex query (path with a back non-tree edge once closed by data)
/// over a small dense-ish graph, driven through repeated insert/delete
/// cycles that produce real positive and negative matches every cycle.
#[test]
fn steady_state_updates_do_not_allocate() {
    let mut g = DynamicGraph::new();
    for i in 0..8u32 {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    // Static backbone so the DCG has standing partial results.
    for i in 0..8u32 {
        g.insert_edge(VertexId(i), LabelId(10), VertexId((i + 1) % 8));
    }

    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(LabelId(0)));
    let u1 = q.add_vertex(LabelSet::single(LabelId(1)));
    let u2 = q.add_vertex(LabelSet::single(LabelId(0)));
    q.add_edge(u0, u1, Some(LabelId(10)));
    q.add_edge(u1, u2, Some(LabelId(10)));
    q.add_edge(u0, u2, Some(LabelId(11))); // becomes a non-tree edge

    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());

    // One cycle: close the triangle edge (positive matches), add another
    // tree-matching edge, then fan v0's u1-run past the DCG's inline
    // capacity (the run promotes into a pool slot and demotes back when
    // the edges go away — slot reuse must come from the free list, not the
    // allocator), then delete everything (negative matches).
    let cycle = [
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(11), dst: VertexId(2) },
        UpdateOp::InsertEdge { src: VertexId(2), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(3) },
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(7) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(7) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(3) },
        UpdateOp::DeleteEdge { src: VertexId(2), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(11), dst: VertexId(2) },
    ];

    let mut matches = 0usize;
    let run_cycles = |engine: &mut TurboFlux, n: usize, matches: &mut usize| {
        for _ in 0..n {
            for op in &cycle {
                engine.apply(op, &mut |_, _| *matches += 1);
            }
        }
    };

    // Warm-up: reach every code path's high-water scratch capacity.
    run_cycles(&mut engine, 8, &mut matches);
    assert!(matches > 0, "warm-up must produce matches, or the test is vacuous");
    assert!(
        engine.dcg().storage_stats().carved_entries > 0,
        "the cycle must push a DCG run through the pool, or slot reuse goes untested"
    );

    ARMED.store(true, Ordering::SeqCst);
    let before = ALLOCS.load(Ordering::SeqCst);
    run_cycles(&mut engine, 64, &mut matches);
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(during, 0, "steady-state insert/delete cycles must not allocate");
}
