//! Proves the per-update hot path is allocation-free in steady state: after
//! a warm-up pass grows every scratch buffer and adjacency list to its
//! high-water capacity, repeating the same insert/delete cycles must hit
//! the global allocator zero times.
//!
//! Runs without the libtest harness (`harness = false` in Cargo.toml): the
//! counting `#[global_allocator]` is process-wide, and the harness's main
//! thread lazily initializes channel thread-locals while it waits on the
//! test thread — inside the armed window, at a racy point in time. With no
//! harness the process stays single-threaded and the count is exact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use turboflux::core::INTERSECT_MIN_FRONTIER;
use turboflux::prelude::*;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Frees are fine in steady state; only acquisitions are counted.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A 3-vertex query (path with a back non-tree edge) over a graph with one
/// wide hub frontier, driven through repeated insert/delete cycles that
/// produce real positive and negative matches every cycle — through both
/// the plain enumeration path and the intersection-prefilter path
/// (`search.rs`), whose scratch segments must likewise reach a high-water
/// capacity and stop allocating.
fn main() {
    let mut g = DynamicGraph::new();
    for i in 0..20u32 {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    // Static backbone so the DCG has standing partial results.
    for i in 0..8u32 {
        g.insert_edge(VertexId(i), LabelId(10), VertexId((i + 1) % 8));
    }
    // Hub: v1 fans out to enough even vertices that the explicit DCG
    // frontier of (v1, u2) crosses INTERSECT_MIN_FRONTIER, steering the
    // enumeration of u2 through the intersection prefilter whenever m(u1)=1.
    for i in 0..(INTERSECT_MIN_FRONTIER as u32 + 1) {
        let dst = VertexId(i * 2);
        if !g.has_edge(VertexId(1), LabelId(10), dst) {
            g.insert_edge(VertexId(1), LabelId(10), dst);
        }
    }
    // Standing non-tree support: the prefilter intersects the frontier with
    // out-l11 runs of the bound u0 image (v0 and the hub parent v4).
    g.insert_edge(VertexId(0), LabelId(11), VertexId(4));
    g.insert_edge(VertexId(0), LabelId(11), VertexId(6));
    g.insert_edge(VertexId(4), LabelId(11), VertexId(0));
    g.insert_edge(VertexId(4), LabelId(11), VertexId(2));

    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(LabelId(0)));
    let u1 = q.add_vertex(LabelSet::single(LabelId(1)));
    let u2 = q.add_vertex(LabelSet::single(LabelId(0)));
    q.add_edge(u0, u1, Some(LabelId(10)));
    q.add_edge(u1, u2, Some(LabelId(10)));
    q.add_edge(u0, u2, Some(LabelId(11))); // becomes a non-tree edge

    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());

    // One cycle: close the triangle edge (positive matches), add another
    // tree-matching edge, then fan v0's u1-run past the DCG's inline
    // capacity (the run promotes into a pool slot and demotes back when
    // the edges go away — slot reuse must come from the free list, not the
    // allocator), toggle a tree edge into the hub v1 so u2 is enumerated
    // over the wide frontier (intersection prefilter), then delete
    // everything (negative matches).
    let cycle = [
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(11), dst: VertexId(2) },
        UpdateOp::InsertEdge { src: VertexId(2), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(3) },
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::InsertEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(7) },
        UpdateOp::InsertEdge { src: VertexId(4), label: LabelId(10), dst: VertexId(1) },
        UpdateOp::DeleteEdge { src: VertexId(4), label: LabelId(10), dst: VertexId(1) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(7) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(10), dst: VertexId(3) },
        UpdateOp::DeleteEdge { src: VertexId(2), label: LabelId(10), dst: VertexId(5) },
        UpdateOp::DeleteEdge { src: VertexId(0), label: LabelId(11), dst: VertexId(2) },
    ];

    let mut matches = 0usize;
    let mut hub_matches = 0usize;
    {
        // The hub tree-edge toggle must produce matches of its own — that
        // insertion enumerates u2 over the ≥ INTERSECT_MIN_FRONTIER
        // explicit frontier of v1, i.e. through the prefilter. (4, l11, 0)
        // and (4, l11, 2) close the triangle for m(u0)=4.
        let op = UpdateOp::InsertEdge { src: VertexId(4), label: LabelId(10), dst: VertexId(1) };
        engine.apply(&op, &mut |_, _| hub_matches += 1);
        assert!(hub_matches > 0, "hub toggle must route matches through the wide frontier");
        let undo = UpdateOp::DeleteEdge { src: VertexId(4), label: LabelId(10), dst: VertexId(1) };
        engine.apply(&undo, &mut |_, _| {});
    }

    let run_cycles = |engine: &mut TurboFlux, n: usize, matches: &mut usize| {
        for _ in 0..n {
            for op in &cycle {
                engine.apply(op, &mut |_, _| *matches += 1);
            }
        }
    };

    // Warm-up: reach every code path's high-water scratch capacity.
    run_cycles(&mut engine, 8, &mut matches);
    assert!(matches > 0, "warm-up must produce matches, or the test is vacuous");
    assert!(
        engine.dcg().storage_stats().carved_entries > 0,
        "the cycle must push a DCG run through the pool, or slot reuse goes untested"
    );

    ARMED.store(true, Ordering::SeqCst);
    let before = ALLOCS.load(Ordering::SeqCst);
    run_cycles(&mut engine, 64, &mut matches);
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(during, 0, "steady-state insert/delete cycles must not allocate");
    println!("test steady_state_updates_do_not_allocate ... ok");
}
