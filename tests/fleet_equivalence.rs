//! Randomized equivalence oracle for the multi-query fleet: for arbitrary
//! scenarios (K queries, one shared stream of inserts / deletes / vertex
//! additions), the parallel batched evaluation, the sequential batched
//! evaluation, and K standalone engines applying the ops one by one must
//! produce exactly the same delta sequence — same matches, same order —
//! under both homomorphism and isomorphism semantics.

use std::collections::HashSet;
use turboflux::datagen::Pcg32;
use turboflux::prelude::*;
use turboflux::FleetDelta;

type Delta = (usize, usize, Positiveness, MatchRecord);

fn random_query(rng: &mut Pcg32, nq: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    for i in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    let mut seen = HashSet::new();
    for child in 1..nq {
        let parent = rng.below(child as usize) as u32;
        let label = if rng.below(3) == 0 { None } else { Some(LabelId(10 + rng.below(2) as u32)) };
        let (s, d) = if rng.below(2) == 0 { (parent, child) } else { (child, parent) };
        if seen.insert((s, d, label)) {
            q.add_edge(QVertexId(s), QVertexId(d), label);
        }
    }
    q
}

struct Scenario {
    g0: DynamicGraph,
    queries: Vec<QueryGraph>,
    ops: Vec<UpdateOp>,
}

fn random_scenario(rng: &mut Pcg32) -> Scenario {
    let nv = 3 + rng.below(4) as u32;
    let mut g = DynamicGraph::new();
    for i in 0..nv {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for _ in 0..rng.below(6) {
        let a = VertexId(rng.below(nv as usize) as u32);
        let b = VertexId(rng.below(nv as usize) as u32);
        g.insert_edge(a, LabelId(10 + rng.below(2) as u32), b);
    }

    let nqueries = 2 + rng.below(3); // 2..=4 engines
    let queries: Vec<QueryGraph> = (0..nqueries)
        .map(|_| {
            let nq = 2 + rng.below(3) as u32;
            random_query(rng, nq)
        })
        .collect();

    // A mixed op sequence over a growing vertex set. `live` mirrors the
    // graph so deletes mostly hit real edges (misses are exercised too).
    let mut ops = Vec::new();
    let mut live: Vec<(VertexId, LabelId, VertexId)> =
        g.edges().map(|e| (e.src, e.label, e.dst)).collect();
    let mut vertices = nv;
    for _ in 0..(6 + rng.below(10)) {
        match rng.below(10) {
            0 => {
                // Explicit vertex addition.
                ops.push(UpdateOp::AddVertex {
                    id: VertexId(vertices),
                    labels: LabelSet::single(LabelId(rng.below(2) as u32)),
                });
                vertices += 1;
            }
            1 => {
                // Insert touching a brand-new (implicitly created) vertex.
                let a = VertexId(rng.below(vertices as usize) as u32);
                let b = VertexId(vertices);
                vertices += 1;
                let l = LabelId(10 + rng.below(2) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b));
            }
            2..=4 if !live.is_empty() => {
                let (a, l, b) = live.swap_remove(rng.below(live.len()));
                ops.push(UpdateOp::DeleteEdge { src: a, label: l, dst: b });
            }
            _ => {
                let a = VertexId(rng.below(vertices as usize) as u32);
                let b = VertexId(rng.below(vertices as usize) as u32);
                let l = LabelId(10 + rng.below(2) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b)); // duplicates allowed: exercises skips
            }
        }
    }
    Scenario { g0: g, queries, ops }
}

fn standalone_deltas(s: &Scenario, cfg: &TurboFluxConfig) -> Vec<Delta> {
    let mut out = Vec::new();
    for (id, q) in s.queries.iter().enumerate() {
        let mut engine = TurboFlux::new(q.clone(), s.g0.clone(), *cfg);
        for (op_index, op) in s.ops.iter().enumerate() {
            engine.apply_op(op, &mut |p, r| out.push((id, op_index, p, r.clone())));
        }
    }
    out
}

fn fleet_deltas(s: &Scenario, cfg: &TurboFluxConfig, threads: usize, parallel: bool) -> Vec<Delta> {
    let mut fleet = Fleet::with_threads(s.g0.clone(), threads);
    for q in &s.queries {
        fleet.register(q.clone(), *cfg);
    }
    let mut out = Vec::new();
    let mut sink = |d: FleetDelta<'_>| {
        out.push((d.engine, d.op_index, d.positiveness, d.record.clone()));
    };
    if parallel {
        fleet.apply_batch(&s.ops, &mut sink);
    } else {
        fleet.apply_batch_sequential(&s.ops, &mut sink);
    }
    out
}

fn run(seed: u64, semantics: MatchSemantics) {
    let mut rng = Pcg32::new(seed);
    let cfg = TurboFluxConfig { semantics, ..TurboFluxConfig::default() };
    let mut exercised = 0;
    let mut nonempty = 0;
    for _ in 0..60 {
        let s = random_scenario(&mut rng);
        if s.queries.iter().any(|q| q.edge_count() == 0 || !q.is_connected()) {
            continue;
        }
        exercised += 1;
        let want = standalone_deltas(&s, &cfg);
        let seq = fleet_deltas(&s, &cfg, 1, false);
        let par = fleet_deltas(&s, &cfg, 4, true);
        assert_eq!(seq, want, "sequential fleet != standalone engines");
        assert_eq!(par, want, "parallel fleet != standalone engines");
        if !want.is_empty() {
            nonempty += 1;
        }
    }
    assert!(exercised >= 20, "only {exercised} scenarios exercised");
    assert!(nonempty >= 5, "only {nonempty} scenarios produced matches");
}

#[test]
fn fleet_matches_standalone_homomorphism() {
    run(0xF1EE7, MatchSemantics::Homomorphism);
}

#[test]
fn fleet_matches_standalone_isomorphism() {
    run(0x150_F1EE7, MatchSemantics::Isomorphism);
}
