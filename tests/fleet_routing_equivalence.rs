//! Randomized byte-equality oracle for fleet-level multi-query
//! optimization (op routing + shared candidate index + deregistration).
//!
//! Each scenario registers K random queries over a random initial graph,
//! applies a first op batch, deregisters one engine, registers a fresh
//! query mid-stream, and applies a second batch. The emitted delta
//! sequence — under 1 and 4 threads, parallel and sequential, shared index
//! on and off — must be byte-identical to naive per-engine replay:
//! standalone [`TurboFlux`] engines applying the same ops one at a time,
//! with the deregistered engine silent in batch 2 and the late engine
//! starting from the registration-time graph state. Ops are drawn from a
//! label palette wider than any query's so routing provably skips engines
//! (`ops_skipped > 0` asserted across the run), and query shapes are deep
//! enough for the shared index to serve runs (`shared_hits > 0`).

use std::collections::HashSet;
use turboflux::datagen::Pcg32;
use turboflux::prelude::*;
use turboflux::FleetDelta;

type Delta = (usize, usize, Positiveness, MatchRecord);

/// A random tree-shaped query: 2 vertex labels, edge labels 10..=12 with an
/// occasional wildcard. Chains (parent = previous vertex) are common, so
/// many queries share deep signatures.
fn random_query(rng: &mut Pcg32, nq: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    for i in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    let mut seen = HashSet::new();
    for child in 1..nq {
        let parent = if rng.below(2) == 0 { child - 1 } else { rng.below(child as usize) as u32 };
        let label = if rng.below(8) == 0 { None } else { Some(LabelId(10 + rng.below(3) as u32)) };
        let (s, d) = if rng.below(4) == 0 { (child, parent) } else { (parent, child) };
        if seen.insert((s, d, label)) {
            q.add_edge(QVertexId(s), QVertexId(d), label);
        }
    }
    q
}

struct Scenario {
    g0: DynamicGraph,
    queries: Vec<QueryGraph>,
    /// Registered against the post-batch-1 graph.
    late_query: QueryGraph,
    /// Deregistered between the batches.
    victim: usize,
    ops1: Vec<UpdateOp>,
    ops2: Vec<UpdateOp>,
}

/// Ops use edge labels 10..=14 while queries only mention 10..=12: labels
/// 13/14 interest no engine (except wildcards), so routing must skip.
fn random_ops(
    rng: &mut Pcg32,
    n: usize,
    vertices: &mut u32,
    live: &mut Vec<(VertexId, LabelId, VertexId)>,
) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for _ in 0..n {
        match rng.below(10) {
            0 => {
                ops.push(UpdateOp::AddVertex {
                    id: VertexId(*vertices),
                    labels: LabelSet::single(LabelId(rng.below(2) as u32)),
                });
                *vertices += 1;
            }
            1 => {
                // Insert touching a brand-new (implicitly created) vertex.
                let a = VertexId(rng.below(*vertices as usize) as u32);
                let b = VertexId(*vertices);
                *vertices += 1;
                let l = LabelId(10 + rng.below(5) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b));
            }
            2..=4 if !live.is_empty() => {
                let (a, l, b) = live.swap_remove(rng.below(live.len()));
                ops.push(UpdateOp::DeleteEdge { src: a, label: l, dst: b });
            }
            _ => {
                let a = VertexId(rng.below(*vertices as usize) as u32);
                let b = VertexId(rng.below(*vertices as usize) as u32);
                let l = LabelId(10 + rng.below(5) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b)); // duplicates allowed: exercises skips
            }
        }
    }
    ops
}

fn random_scenario(rng: &mut Pcg32) -> Scenario {
    let nv = 4 + rng.below(4) as u32;
    let mut g = DynamicGraph::new();
    for i in 0..nv {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for _ in 0..(3 + rng.below(6)) {
        let a = VertexId(rng.below(nv as usize) as u32);
        let b = VertexId(rng.below(nv as usize) as u32);
        g.insert_edge(a, LabelId(10 + rng.below(3) as u32), b);
    }

    let nqueries = 2 + rng.below(3); // 2..=4 engines
    let queries: Vec<QueryGraph> = (0..nqueries)
        .map(|_| {
            let nq = 2 + rng.below(4) as u32;
            random_query(rng, nq)
        })
        .collect();
    let late_nq = 2 + rng.below(3) as u32;
    let late_query = random_query(rng, late_nq);
    let victim = rng.below(nqueries);

    let mut vertices = nv;
    let mut live: Vec<(VertexId, LabelId, VertexId)> =
        g.edges().map(|e| (e.src, e.label, e.dst)).collect();
    let n1 = 5 + rng.below(8);
    let ops1 = random_ops(rng, n1, &mut vertices, &mut live);
    let n2 = 5 + rng.below(8);
    let ops2 = random_ops(rng, n2, &mut vertices, &mut live);
    Scenario { g0: g, queries, late_query, victim, ops1, ops2 }
}

/// Naive per-engine replay: one standalone engine per query applying ops
/// one at a time; the victim stops after batch 1, the late engine starts
/// from `g_mid` (the graph state at its registration). Returns the two
/// per-batch delta sequences, each in `(engine id, op_index)` order.
fn standalone_deltas(
    s: &Scenario,
    cfg: &TurboFluxConfig,
    g_mid: &DynamicGraph,
) -> (Vec<Delta>, Vec<Delta>) {
    let mut batch1 = Vec::new();
    let mut batch2 = Vec::new();
    for (id, q) in s.queries.iter().enumerate() {
        let mut engine = TurboFlux::new(q.clone(), s.g0.clone(), *cfg);
        for (op_index, op) in s.ops1.iter().enumerate() {
            engine.apply_op(op, &mut |p, r| batch1.push((id, op_index, p, r.clone())));
        }
        if id == s.victim {
            continue;
        }
        for (op_index, op) in s.ops2.iter().enumerate() {
            engine.apply_op(op, &mut |p, r| batch2.push((id, op_index, p, r.clone())));
        }
    }
    // The late engine's stable id follows the initially issued ones.
    let late_id = s.queries.len();
    let mut engine = TurboFlux::new(s.late_query.clone(), g_mid.clone(), *cfg);
    for (op_index, op) in s.ops2.iter().enumerate() {
        engine.apply_op(op, &mut |p, r| batch2.push((late_id, op_index, p, r.clone())));
    }
    (batch1, batch2)
}

/// Runs the full scenario on one fleet configuration; returns the two
/// batches' delta sequences plus the fleet's final stats.
fn fleet_deltas(
    s: &Scenario,
    cfg: &TurboFluxConfig,
    threads: usize,
    parallel: bool,
) -> (Vec<Delta>, Vec<Delta>, turboflux::FleetStats, DynamicGraph) {
    let mut fleet = Fleet::with_threads(s.g0.clone(), threads);
    let mut ids = Vec::new();
    for q in &s.queries {
        ids.push(fleet.register(q.clone(), *cfg));
    }
    let collect = |fleet: &mut Fleet, ops: &[UpdateOp], parallel: bool| {
        let mut out: Vec<Delta> = Vec::new();
        let mut sink = |d: FleetDelta<'_>| {
            out.push((d.engine, d.op_index, d.positiveness, d.record.clone()));
        };
        if parallel {
            fleet.apply_batch(ops, &mut sink);
        } else {
            fleet.apply_batch_sequential(ops, &mut sink);
        }
        out
    };
    let batch1 = collect(&mut fleet, &s.ops1, parallel);
    let g_mid = fleet.graph().clone();
    assert!(fleet.deregister(ids[s.victim]));
    let late_id = fleet.register(s.late_query.clone(), *cfg);
    assert_eq!(late_id, s.queries.len(), "stable ids continue past deregistration");
    let batch2 = collect(&mut fleet, &s.ops2, parallel);
    let stats = fleet.stats();
    (batch1, batch2, stats, g_mid)
}

fn run(seed: u64, semantics: MatchSemantics) {
    let mut rng = Pcg32::new(seed);
    let shared_on = TurboFluxConfig { semantics, ..TurboFluxConfig::default() };
    let shared_off = TurboFluxConfig { fleet_shared_index: false, ..shared_on };
    let mut exercised = 0;
    let mut nonempty = 0;
    let (mut skipped_total, mut hits_total) = (0u64, 0u64);
    for _ in 0..40 {
        let s = random_scenario(&mut rng);
        let valid = |q: &QueryGraph| q.edge_count() > 0 && q.is_connected();
        if !s.queries.iter().all(valid) || !valid(&s.late_query) {
            continue;
        }
        exercised += 1;
        // Reference run (sequential, shared on) also yields the graph state
        // at the late engine's registration, which the oracle needs.
        let (f1, f2, stats, g_mid) = fleet_deltas(&s, &shared_on, 1, false);
        let (want1, want2) = standalone_deltas(&s, &shared_on, &g_mid);
        assert_eq!(f1, want1, "sequential shared fleet != naive replay (batch 1)");
        assert_eq!(f2, want2, "sequential shared fleet != naive replay (batch 2)");
        skipped_total += stats.ops_skipped;
        hits_total += stats.shared_hits;

        for (cfg, threads, parallel, what) in [
            (&shared_on, 4, true, "parallel shared"),
            (&shared_off, 1, false, "sequential unshared"),
            (&shared_off, 4, true, "parallel unshared"),
        ] {
            let (b1, b2, st, _) = fleet_deltas(&s, cfg, threads, parallel);
            assert_eq!(b1, want1, "{what} fleet != naive replay (batch 1)");
            assert_eq!(b2, want2, "{what} fleet != naive replay (batch 2)");
            if !cfg.fleet_shared_index {
                assert_eq!(st.shared_hits, 0, "{what}: flag off must not consult the index");
            }
            skipped_total += st.ops_skipped;
        }
        if !want1.is_empty() || !want2.is_empty() {
            nonempty += 1;
        }
    }
    assert!(exercised >= 15, "only {exercised} scenarios exercised");
    assert!(nonempty >= 5, "only {nonempty} scenarios produced matches");
    assert!(skipped_total > 0, "routing never skipped an engine (vacuous)");
    assert!(hits_total > 0, "shared index never served a run (vacuous)");
}

#[test]
fn routed_fleet_matches_naive_replay_homomorphism() {
    run(0x0007_F10C5, MatchSemantics::Homomorphism);
}

#[test]
fn routed_fleet_matches_naive_replay_isomorphism() {
    run(0x0150_F10C5, MatchSemantics::Isomorphism);
}
