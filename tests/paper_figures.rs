//! End-to-end reconstruction of the paper's running example (Figures 1
//! and 2).
//!
//! The figures fully determine the observable numbers:
//!
//! * `g0` has 412 edges; `Δo1` inserts `(v1, v2)` and reports nothing;
//!   `Δo2` inserts `(v104, v414)` and reports **200 positive matches**;
//! * SJ-Tree materializes **11 311 / 22 412 / 22 613** partial solutions
//!   for `g0` / `g1` / `g2` (Figure 2b);
//! * the DCG stores **213 / 214 / 215** edges (Figure 2c–e).
//!
//! Reconstructed query (labels from Figure 1a, edge labels per the paper's
//! note that the implementation supports them): `u0:A -e1-> u1:B`,
//! `u1 -e2-> u2:C`, `u1 -e3-> u3:C`, `u3 -e4-> u4:D`.

use turboflux::prelude::*;

struct Fig1 {
    g0: DynamicGraph,
    q: QueryGraph,
    do1: UpdateOp,
    do2: UpdateOp,
}

fn build_fig1() -> Fig1 {
    let mut it = LabelInterner::new();
    let a = it.intern("A");
    let b = it.intern("B");
    let c = it.intern("C");
    let d = it.intern("D");
    let e1 = it.intern("e1");
    let e2 = it.intern("e2");
    let e3 = it.intern("e3");
    let e4 = it.intern("e4");
    let e5 = it.intern("e5");

    let mut g = DynamicGraph::new();
    // v0, v1 : A
    for _ in 0..2 {
        g.add_vertex(LabelSet::single(a));
    }
    // v2 : B
    g.add_vertex(LabelSet::single(b));
    // v3 : D
    g.add_vertex(LabelSet::single(d));
    // v4..=v103 : 100 C's matching u2
    for _ in 0..100 {
        g.add_vertex(LabelSet::single(c));
    }
    // v104..=v213 : 110 C's matching u3
    for _ in 0..110 {
        g.add_vertex(LabelSet::single(c));
    }
    // v214..=v413 : 200 D's (never matching u4's edge label)
    for _ in 0..200 {
        g.add_vertex(LabelSet::single(d));
    }
    // v414 : D (isolated until Δo2)
    g.add_vertex(LabelSet::single(d));
    // Two further B vertices so that, as in the paper's narration of
    // `ChooseStartQVertex`, the A-side of the most selective edge (u0, u1)
    // has fewer matching vertices and u0 becomes the starting query vertex.
    g.add_vertex(LabelSet::single(b));
    g.add_vertex(LabelSet::single(b));
    assert_eq!(g.vertex_count(), 417);

    let v = VertexId;
    g.insert_edge(v(0), e1, v(2)); // v0:A -> v2:B
    for i in 4..104 {
        g.insert_edge(v(2), e2, v(i)); // 100 × (u1,u2) images
    }
    for i in 104..214 {
        g.insert_edge(v(2), e3, v(i)); // 110 × (u1,u3) images
    }
    for i in 0..200u32 {
        // D's hang off the u3-candidate C's with a non-query edge label.
        g.insert_edge(v(104 + i % 110), e5, v(214 + i));
    }
    g.insert_edge(v(1), e5, v(3)); // the A -> D edge the IncIsoMat text mentions
    assert_eq!(g.edge_count(), 412, "Figure 1b: g0 has 412 edges");

    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(a));
    let u1 = q.add_vertex(LabelSet::single(b));
    let u2 = q.add_vertex(LabelSet::single(c));
    let u3 = q.add_vertex(LabelSet::single(c));
    let u4 = q.add_vertex(LabelSet::single(d));
    q.add_edge(u0, u1, Some(e1));
    q.add_edge(u1, u2, Some(e2));
    q.add_edge(u1, u3, Some(e3));
    q.add_edge(u3, u4, Some(e4));

    Fig1 {
        g0: g,
        q,
        do1: UpdateOp::InsertEdge { src: v(1), label: e1, dst: v(2) },
        do2: UpdateOp::InsertEdge { src: v(104), label: e4, dst: v(414) },
    }
}

#[test]
fn turboflux_reports_0_then_200_positive_matches() {
    let f = build_fig1();
    let mut engine = TurboFlux::new(f.q, f.g0, TurboFluxConfig::default());
    let mut initial = 0;
    engine.initial_matches(&mut |_| initial += 1);
    assert_eq!(initial, 0, "g0 has no complete match");

    let mut n1 = 0;
    engine.apply(&f.do1, &mut |_, _| n1 += 1);
    assert_eq!(n1, 0, "Δo1 reports nothing (no data edge matches (u3,u4))");

    let mut reports = Vec::new();
    engine.apply(&f.do2, &mut |p, m| reports.push((p, m.clone())));
    assert_eq!(reports.len(), 200, "Δo2 incurs 200 positive matches");
    assert!(reports.iter().all(|(p, _)| *p == Positiveness::Positive));
    // 100 map u0 -> v0 and 100 map u0 -> v1; all map u3 -> v104, u4 -> v414.
    let with_v0 = reports.iter().filter(|(_, m)| m.get(QVertexId(0)) == VertexId(0)).count();
    assert_eq!(with_v0, 100);
    for (_, m) in &reports {
        assert_eq!(m.get(QVertexId(1)), VertexId(2));
        assert_eq!(m.get(QVertexId(3)), VertexId(104));
        assert_eq!(m.get(QVertexId(4)), VertexId(414));
    }
}

#[test]
fn dcg_stores_213_214_215_edges() {
    let f = build_fig1();
    let mut engine = TurboFlux::new(f.q, f.g0, TurboFluxConfig::default());
    assert_eq!(engine.dcg().stored_edge_count(), 213, "Figure 2c (g0)");
    engine.apply(&f.do1, &mut |_, _| {});
    assert_eq!(engine.dcg().stored_edge_count(), 214, "Figure 2d (g1)");
    engine.apply(&f.do2, &mut |_, _| {});
    assert_eq!(engine.dcg().stored_edge_count(), 215, "Figure 2e (g2)");
}

#[test]
fn sj_tree_materializes_11311_22412_22613_partial_solutions() {
    let f = build_fig1();
    let mut engine = turboflux::baselines::SjTree::new(f.q, f.g0, MatchSemantics::Homomorphism);
    assert_eq!(engine.materialized_tuples(), 11_311, "Figure 2b (g0)");

    let mut n = 0;
    engine.apply(&f.do1, &mut |_, _| n += 1);
    assert_eq!(n, 0);
    assert_eq!(engine.materialized_tuples(), 22_412, "Figure 2b (g1)");

    engine.apply(&f.do2, &mut |_, _| n += 1);
    assert_eq!(n, 200);
    assert_eq!(engine.materialized_tuples(), 22_613, "Figure 2b (g2)");
}

#[test]
fn graphflow_and_incisomat_agree_on_the_figure() {
    let f = build_fig1();
    let mut gf = turboflux::baselines::Graphflow::new(
        f.q.clone(),
        f.g0.clone(),
        MatchSemantics::Homomorphism,
    );
    let mut inc = turboflux::baselines::IncIsoMat::new(
        f.q.clone(),
        f.g0.clone(),
        MatchSemantics::Homomorphism,
    );
    for engine in [&mut gf as &mut dyn ContinuousMatcher, &mut inc] {
        let mut n1 = 0;
        engine.apply(&f.do1, &mut |_, _| n1 += 1);
        assert_eq!(n1, 0, "{}", engine.name());
        let mut n2 = 0;
        engine.apply(&f.do2, &mut |_, _| n2 += 1);
        assert_eq!(n2, 200, "{}", engine.name());
    }
}

/// The storage gap the paper's Figure 2 illustrates: SJ-Tree holds ~53×
/// more entries than the DCG on `g2` (22 613 tuples vs 215 edges; the
/// byte-level ratio depends on tuple widths).
#[test]
fn storage_gap_matches_the_figure() {
    let f = build_fig1();
    let mut tf = TurboFlux::new(f.q.clone(), f.g0.clone(), TurboFluxConfig::default());
    let mut sj = turboflux::baselines::SjTree::new(f.q, f.g0, MatchSemantics::Homomorphism);
    for op in [&f.do1, &f.do2] {
        tf.apply(op, &mut |_, _| {});
        sj.apply(op, &mut |_, _| {});
    }
    let ratio = sj.intermediate_result_bytes() as f64 / tf.intermediate_result_bytes() as f64;
    assert!(ratio > 10.0, "SJ-Tree must store much more ({ratio:.1}x)");
}
