//! Randomized equivalence oracle for intra-update parallel enumeration:
//! an engine that fans every update's frontier out across 4 worker threads
//! must emit the *byte-identical* delta sequence — same records, same
//! order — as a sequential engine, for uniform random streams and for
//! adversarial match-exploding updates, under both homomorphism and
//! isomorphism semantics. Also checks that a wall-clock deadline expiring
//! while workers are mid-enumeration latches cleanly instead of
//! panicking or corrupting the DCG.

use std::collections::HashSet;
use turboflux::datagen::Pcg32;
use turboflux::prelude::*;

type Delta = (Positiveness, MatchRecord);

/// Parallel config: 4 workers, fan out even single-candidate frontiers so
/// every enumerated update takes the threaded path.
fn par_cfg(semantics: MatchSemantics) -> TurboFluxConfig {
    TurboFluxConfig {
        parallel_workers: 4,
        parallel_min_frontier: 1,
        ..TurboFluxConfig::with_semantics(semantics)
    }
}

fn seq_cfg(semantics: MatchSemantics) -> TurboFluxConfig {
    TurboFluxConfig { parallel_workers: 1, ..TurboFluxConfig::with_semantics(semantics) }
}

/// Runs the whole lifecycle — initial reporting plus the op stream — and
/// records every delta in emission order.
fn deltas(q: &QueryGraph, g0: &DynamicGraph, cfg: TurboFluxConfig, ops: &[UpdateOp]) -> Vec<Delta> {
    let mut engine = TurboFlux::new(q.clone(), g0.clone(), cfg);
    let mut out = Vec::new();
    engine.initial_matches(&mut |r| out.push((Positiveness::Positive, r.clone())));
    for op in ops {
        engine.apply(op, &mut |p, r| out.push((p, r.clone())));
    }
    assert!(!engine.timed_out(), "no deadline set, so no timeout");
    out
}

fn random_query(rng: &mut Pcg32, nq: u32) -> QueryGraph {
    let mut q = QueryGraph::new();
    for i in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    let mut seen = HashSet::new();
    for child in 1..nq {
        let parent = rng.below(child as usize) as u32;
        let label = if rng.below(3) == 0 { None } else { Some(LabelId(10 + rng.below(2) as u32)) };
        let (s, d) = if rng.below(2) == 0 { (parent, child) } else { (child, parent) };
        if seen.insert((s, d, label)) {
            q.add_edge(QVertexId(s), QVertexId(d), label);
        }
    }
    // Occasional extra (non-tree) edge to exercise `IsJoinable` under the
    // parallel split.
    if rng.below(2) == 0 && nq >= 3 {
        let a = rng.below(nq as usize) as u32;
        let b = rng.below(nq as usize) as u32;
        let label = Some(LabelId(10 + rng.below(2) as u32));
        if seen.insert((a, b, label)) {
            q.add_edge(QVertexId(a), QVertexId(b), label);
        }
    }
    q
}

struct Scenario {
    g0: DynamicGraph,
    q: QueryGraph,
    ops: Vec<UpdateOp>,
}

fn uniform_scenario(rng: &mut Pcg32) -> Scenario {
    let nv = 4 + rng.below(5) as u32;
    let mut g = DynamicGraph::new();
    for i in 0..nv {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for _ in 0..(3 + rng.below(8)) {
        let a = VertexId(rng.below(nv as usize) as u32);
        let b = VertexId(rng.below(nv as usize) as u32);
        g.insert_edge(a, LabelId(10 + rng.below(2) as u32), b);
    }
    let nq = 3 + rng.below(3) as u32;
    let q = random_query(rng, nq);

    let mut ops = Vec::new();
    let mut live: Vec<(VertexId, LabelId, VertexId)> =
        g.edges().map(|e| (e.src, e.label, e.dst)).collect();
    let mut vertices = nv;
    for _ in 0..(10 + rng.below(20)) {
        match rng.below(10) {
            0 => {
                ops.push(UpdateOp::AddVertex {
                    id: VertexId(vertices),
                    labels: LabelSet::single(LabelId(rng.below(2) as u32)),
                });
                vertices += 1;
            }
            1..=3 if !live.is_empty() => {
                let (a, l, b) = live.swap_remove(rng.below(live.len()));
                ops.push(UpdateOp::DeleteEdge { src: a, label: l, dst: b });
            }
            _ => {
                let a = VertexId(rng.below(vertices as usize) as u32);
                let b = VertexId(rng.below(vertices as usize) as u32);
                let l = LabelId(10 + rng.below(2) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b));
            }
        }
    }
    Scenario { g0: g, q, ops }
}

/// Star-of-stars: source `a:A`, hub `h:H`, `mids` M-vertices each carrying
/// `leaves` L-children. Query `u0:A -f-> u1:H -m-> u2:M -l-> u3:L`. The
/// data is pre-wired below the hub; the returned feed op `a -f-> h`
/// explodes `mids × leaves` matches in one update, with a frontier of
/// `mids` explicit candidates at the parallel split depth.
fn explosive_scenario(mids: u32, leaves: u32) -> (DynamicGraph, QueryGraph, UpdateOp) {
    const A: u32 = 0;
    const H: u32 = 1;
    const M: u32 = 2;
    const L: u32 = 3;
    let (f, m, lv) = (LabelId(10), LabelId(11), LabelId(12));
    let mut g = DynamicGraph::new();
    let a = g.add_vertex(LabelSet::single(LabelId(A)));
    let h = g.add_vertex(LabelSet::single(LabelId(H)));
    for _ in 0..mids {
        let mid = g.add_vertex(LabelSet::single(LabelId(M)));
        g.insert_edge(h, m, mid);
        for _ in 0..leaves {
            let leaf = g.add_vertex(LabelSet::single(LabelId(L)));
            g.insert_edge(mid, lv, leaf);
        }
    }
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(LabelId(A)));
    let u1 = q.add_vertex(LabelSet::single(LabelId(H)));
    let u2 = q.add_vertex(LabelSet::single(LabelId(M)));
    let u3 = q.add_vertex(LabelSet::single(LabelId(L)));
    q.add_edge(u0, u1, Some(f));
    q.add_edge(u1, u2, Some(m));
    q.add_edge(u2, u3, Some(lv));
    (g, q, UpdateOp::InsertEdge { src: a, label: f, dst: h })
}

fn run_uniform(seed: u64, semantics: MatchSemantics) {
    let mut rng = Pcg32::new(seed);
    let mut exercised = 0;
    let mut nonempty = 0;
    for _ in 0..40 {
        let s = uniform_scenario(&mut rng);
        if s.q.edge_count() == 0 || !s.q.is_connected() {
            continue;
        }
        exercised += 1;
        let par = deltas(&s.q, &s.g0, par_cfg(semantics), &s.ops);
        let seq = deltas(&s.q, &s.g0, seq_cfg(semantics), &s.ops);
        assert_eq!(par, seq, "parallel deltas diverge from sequential");
        if !par.is_empty() {
            nonempty += 1;
        }
    }
    assert!(exercised >= 15, "only {exercised} scenarios exercised");
    assert!(nonempty >= 5, "only {nonempty} scenarios produced matches");
}

#[test]
fn uniform_streams_homomorphism() {
    run_uniform(0x9A12A11E1, MatchSemantics::Homomorphism);
}

#[test]
fn uniform_streams_isomorphism() {
    run_uniform(0x150_9A12A11E1, MatchSemantics::Isomorphism);
}

#[test]
fn explosive_updates_match_and_unmatch_identically() {
    let (g0, q, feed) = explosive_scenario(40, 8);
    let unfeed = match feed {
        UpdateOp::InsertEdge { src, label, dst } => UpdateOp::DeleteEdge { src, label, dst },
        _ => unreachable!(),
    };
    for semantics in [MatchSemantics::Homomorphism, MatchSemantics::Isomorphism] {
        let ops = [feed.clone(), unfeed.clone()];
        // Realistic threshold too: 40 explicit mid-candidates ≥ 16.
        let realistic = TurboFluxConfig { parallel_min_frontier: 16, ..par_cfg(semantics) };
        let par = deltas(&q, &g0, par_cfg(semantics), &ops);
        let mid = deltas(&q, &g0, realistic, &ops);
        let seq = deltas(&q, &g0, seq_cfg(semantics), &ops);
        assert_eq!(par, seq, "explosive parallel deltas diverge ({semantics:?})");
        assert_eq!(mid, seq, "threshold-gated parallel deltas diverge ({semantics:?})");
        let positives = seq.iter().filter(|(p, _)| *p == Positiveness::Positive).count();
        let negatives = seq.len() - positives;
        assert_eq!(positives, 40 * 8, "feed insert explodes mids × leaves matches");
        assert_eq!(negatives, 40 * 8, "feed delete retracts them all");
    }
}

/// A deadline that expires while 4 workers are mid-enumeration must latch
/// `timed_out`, stop cleanly (possibly with truncated output — the one
/// permitted divergence from sequential), and leave the engine usable.
#[test]
fn deadline_latches_under_parallel_enumeration() {
    let (g0, q, feed) = explosive_scenario(64, 32);
    let mut engine = TurboFlux::new(q, g0, par_cfg(MatchSemantics::Homomorphism));
    engine.set_deadline(Some(std::time::Instant::now() - std::time::Duration::from_millis(1)));
    let mut reported = 0usize;
    engine.apply(&feed, &mut |_, _| reported += 1);
    assert!(engine.timed_out(), "already-past deadline must latch during the update");
    assert!(reported <= 64 * 32, "never more than the true match count");
    // Lifting the deadline restores complete (and still deterministic)
    // evaluation: deleting and re-inserting the feed edge reports the full
    // negative + positive delta sets.
    engine.set_deadline(None);
    let (src, label, dst) = match feed {
        UpdateOp::InsertEdge { src, label, dst } => (src, label, dst),
        _ => unreachable!(),
    };
    let mut negatives = 0usize;
    engine.apply(&UpdateOp::DeleteEdge { src, label, dst }, &mut |p, _| {
        assert_eq!(p, Positiveness::Negative);
        negatives += 1;
    });
    assert_eq!(negatives, 64 * 32, "post-deadline evaluation is complete");
    assert!(!engine.timed_out(), "set_deadline(None) clears the latch");
}
