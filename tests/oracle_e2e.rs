//! End-to-end oracle checks on *generated* workloads: every engine must
//! report the same positive/negative match counts on real
//! generator-produced datasets and queries (the unit-level oracle tests use
//! synthetic random graphs; this exercises the full pipeline
//! datagen → query gen → engines).

use turboflux::baselines::{Graphflow, IncIsoMat, NaiveRecompute, SjTree};
use turboflux::datagen::{lsbench, netflow, queries, LsBenchConfig, NetflowConfig, Pcg32};
use turboflux::prelude::*;

fn drive(engine: &mut dyn ContinuousMatcher, stream: &UpdateStream) -> (u64, u64, u64) {
    let mut initial = 0u64;
    engine.initial_matches(&mut |_| initial += 1);
    let (mut pos, mut neg) = (0u64, 0u64);
    for op in stream {
        engine.apply(op, &mut |p, _| match p {
            Positiveness::Positive => pos += 1,
            Positiveness::Negative => neg += 1,
        });
    }
    assert!(!engine.timed_out(), "{} timed out mid-oracle", engine.name());
    (initial, pos, neg)
}

#[test]
fn lsbench_insert_stream_all_engines_agree() {
    let d = lsbench::generate(&LsBenchConfig { users: 60, seed: 31, stream_frac: 0.15 });
    let mut rng = Pcg32::new(5);
    for size in [3usize, 5] {
        let q = queries::random_tree_query(&d.schema, size, &mut rng);
        let expected = drive(
            &mut NaiveRecompute::new(q.clone(), d.g0.clone(), MatchSemantics::Homomorphism),
            &d.stream,
        );
        let mut tf = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
        assert_eq!(drive(&mut tf, &d.stream), expected, "TurboFlux, size {size}");
        let mut sj = SjTree::new(q.clone(), d.g0.clone(), MatchSemantics::Homomorphism);
        assert_eq!(drive(&mut sj, &d.stream), expected, "SJ-Tree, size {size}");
        let mut gf = Graphflow::new(q.clone(), d.g0.clone(), MatchSemantics::Homomorphism);
        assert_eq!(drive(&mut gf, &d.stream), expected, "Graphflow, size {size}");
        let mut inc = IncIsoMat::new(q, d.g0.clone(), MatchSemantics::Homomorphism);
        assert_eq!(drive(&mut inc, &d.stream), expected, "IncIsoMat, size {size}");
    }
}

#[test]
fn lsbench_cyclic_query_with_deletions() {
    let mut d = lsbench::generate(&LsBenchConfig { users: 50, seed: 77, stream_frac: 0.15 });
    d.append_deletions(0.3, 9);
    let mut rng = Pcg32::new(11);
    let q = queries::random_cyclic_query(&d.schema, 3, 4, &mut rng).expect("triangle query");
    for semantics in [MatchSemantics::Homomorphism, MatchSemantics::Isomorphism] {
        let expected =
            drive(&mut NaiveRecompute::new(q.clone(), d.g0.clone(), semantics), &d.stream);
        let mut tf =
            TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::with_semantics(semantics));
        assert_eq!(drive(&mut tf, &d.stream), expected, "TurboFlux {semantics:?}");
        let mut gf = Graphflow::new(q.clone(), d.g0.clone(), semantics);
        assert_eq!(drive(&mut gf, &d.stream), expected, "Graphflow {semantics:?}");
        let mut inc = IncIsoMat::new(q.clone(), d.g0.clone(), semantics);
        assert_eq!(drive(&mut inc, &d.stream), expected, "IncIsoMat {semantics:?}");
    }
}

#[test]
fn netflow_unlabeled_vertices_all_engines_agree() {
    let d = netflow::generate(&NetflowConfig { hosts: 40, flows: 400, seed: 13, stream_frac: 0.2 });
    let mut rng = Pcg32::new(21);
    let q = queries::random_path_query(&d.schema, 3, &mut rng);
    let expected = drive(
        &mut NaiveRecompute::new(q.clone(), d.g0.clone(), MatchSemantics::Homomorphism),
        &d.stream,
    );
    assert!(expected.0 > 0 || expected.1 > 0, "workload should produce matches");
    let mut tf = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
    assert_eq!(drive(&mut tf, &d.stream), expected, "TurboFlux");
    let mut sj = SjTree::new(q.clone(), d.g0.clone(), MatchSemantics::Homomorphism);
    assert_eq!(drive(&mut sj, &d.stream), expected, "SJ-Tree");
    let mut gf = Graphflow::new(q, d.g0.clone(), MatchSemantics::Homomorphism);
    assert_eq!(drive(&mut gf, &d.stream), expected, "Graphflow");
}

#[test]
fn turboflux_dcg_stays_consistent_over_a_generated_stream() {
    let mut d = lsbench::generate(&LsBenchConfig { users: 40, seed: 3, stream_frac: 0.2 });
    d.append_deletions(0.4, 4);
    let mut rng = Pcg32::new(17);
    let q = queries::random_tree_query(&d.schema, 6, &mut rng);
    let mut tf = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
    let mut g = d.g0.clone();
    for (i, op) in d.stream.ops().iter().enumerate() {
        tf.apply(op, &mut |_, _| {});
        g.apply(op);
        if i % 37 == 0 {
            tf.dcg().check_consistency();
            let want = turboflux::core::reference_dcg(&g, tf.query(), tf.query_tree());
            assert_eq!(tf.dcg().snapshot(), want, "DCG diverged at op {i}");
        }
    }
    tf.dcg().check_consistency();
}
