//! Property-based tests (proptest) over the core data structures and the
//! engine's key invariants:
//!
//! * `LabelSet` behaves like a mathematical set (subset laws),
//! * update streams replay cleanly and truncation is prefix-monotone,
//! * applying a random insert burst and then deleting it in any order
//!   returns the DCG and the match set to their initial state,
//! * engine reports are exactly the oracle's set difference for arbitrary
//!   op sequences.

use proptest::prelude::*;
use std::collections::HashSet;
use turboflux::matcher::match_set;
use turboflux::prelude::*;

fn label_set_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..12, 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn label_set_subset_laws(a in label_set_strategy(), b in label_set_strategy()) {
        let sa = LabelSet::from_labels(a.iter().map(|&i| LabelId(i)).collect());
        let sb = LabelSet::from_labels(b.iter().map(|&i| LabelId(i)).collect());
        let union: LabelSet =
            sa.iter().chain(sb.iter()).collect();
        // a ⊆ a ∪ b, b ⊆ a ∪ b, a ⊆ a.
        prop_assert!(sa.is_subset_of(&union));
        prop_assert!(sb.is_subset_of(&union));
        prop_assert!(sa.is_subset_of(&sa));
        // subset agrees with element-wise containment
        let subset = sa.iter().all(|l| sb.contains(l));
        prop_assert_eq!(sa.is_subset_of(&sb), subset);
        // transitivity via union: a ⊆ b implies a ∪ b == b (as sets)
        if sa.is_subset_of(&sb) {
            prop_assert_eq!(union.as_slice(), sb.as_slice());
        }
    }

    #[test]
    fn stream_truncation_is_a_prefix(n in 0usize..20, keep in 0usize..20) {
        let ops: Vec<UpdateOp> = (0..n as u32)
            .map(|i| UpdateOp::InsertEdge {
                src: VertexId(i),
                label: LabelId(0),
                dst: VertexId(i + 1),
            })
            .collect();
        let s = UpdateStream::from_ops(ops.clone());
        let t = s.truncate_edge_ops(keep);
        prop_assert_eq!(t.len(), keep.min(n));
        prop_assert_eq!(t.ops(), &ops[..keep.min(n)]);
    }
}

/// A small random scenario: labeled graph + tree-ish query + ops.
#[derive(Debug, Clone)]
struct Scenario {
    g0_edges: Vec<(u32, u32, u32)>,
    q_edges: Vec<(u32, u32, Option<u32>)>,
    nq: u32,
    nv: u32,
    burst: Vec<(u32, u32, u32)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (3u32..7, 2u32..5).prop_flat_map(|(nv, nq)| {
        let edge = (0..nv, 0..nv, 0u32..2);
        let qedge_label = proptest::option::of(0u32..2);
        // a connected query: vertex i attaches to some j < i
        let qedges = proptest::collection::vec(
            (any::<bool>(), 0u32..nq.max(1), qedge_label),
            (nq - 1) as usize,
        );
        (
            proptest::collection::vec(edge.clone(), 2..10),
            qedges,
            proptest::collection::vec(edge, 1..6),
        )
            .prop_map(move |(g0_edges, raw_q, burst)| {
                let q_edges = raw_q
                    .into_iter()
                    .enumerate()
                    .map(|(i, (dirn, j, l))| {
                        let child = (i + 1) as u32;
                        let parent = j % child;
                        if dirn {
                            (parent, child, l)
                        } else {
                            (child, parent, l)
                        }
                    })
                    .collect();
                Scenario { g0_edges, q_edges, nq, nv, burst }
            })
    })
}

fn build_scenario(s: &Scenario) -> (DynamicGraph, QueryGraph, Vec<UpdateOp>) {
    let mut g = DynamicGraph::new();
    for i in 0..s.nv {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for &(a, b, l) in &s.g0_edges {
        g.insert_edge(VertexId(a), LabelId(10 + l), VertexId(b));
    }
    let mut q = QueryGraph::new();
    for i in 0..s.nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    let mut seen = std::collections::HashSet::new();
    for &(a, b, l) in &s.q_edges {
        if seen.insert((a, b, l)) {
            q.add_edge(QVertexId(a), QVertexId(b), l.map(|x| LabelId(10 + x)));
        }
    }
    let burst: Vec<UpdateOp> = s
        .burst
        .iter()
        .filter(|&&(a, b, l)| !g.has_edge(VertexId(a), LabelId(10 + l), VertexId(b)))
        .map(|&(a, b, l)| UpdateOp::InsertEdge {
            src: VertexId(a),
            label: LabelId(10 + l),
            dst: VertexId(b),
        })
        .collect();
    (g, q, burst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insert a burst of edges, then delete them in reverse: DCG snapshot,
    /// DCG counters, and match set must return exactly to the originals,
    /// and positives must equal negatives as sets.
    #[test]
    fn insert_then_delete_restores_everything(s in scenario_strategy()) {
        let (g0, q, burst) = build_scenario(&s);
        prop_assume!(q.edge_count() > 0 && q.is_connected());
        // dedup burst triples
        let mut uniq = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for op in burst {
            if let UpdateOp::InsertEdge { src, label, dst } = &op {
                if seen.insert((*src, *label, *dst)) {
                    uniq.push(op);
                }
            }
        }
        prop_assume!(!uniq.is_empty());

        let mut engine = TurboFlux::new(q.clone(), g0.clone(), TurboFluxConfig::default());
        let snapshot0 = engine.dcg().snapshot();
        let bytes0 = engine.intermediate_result_bytes();

        let mut pos: HashSet<MatchRecord> = HashSet::new();
        for op in &uniq {
            engine.apply(op, &mut |p, m| {
                assert_eq!(p, Positiveness::Positive);
                pos.insert(m.clone());
            });
        }
        let mut neg: HashSet<MatchRecord> = HashSet::new();
        for op in uniq.iter().rev() {
            let UpdateOp::InsertEdge { src, label, dst } = op else { unreachable!() };
            let del = UpdateOp::DeleteEdge { src: *src, label: *label, dst: *dst };
            engine.apply(&del, &mut |p, m| {
                assert_eq!(p, Positiveness::Negative);
                neg.insert(m.clone());
            });
        }
        engine.dcg().check_consistency();
        prop_assert_eq!(engine.dcg().snapshot(), snapshot0);
        prop_assert_eq!(engine.intermediate_result_bytes(), bytes0);
        prop_assert_eq!(pos, neg);
    }

    /// Arbitrary op application equals the oracle's set difference.
    #[test]
    fn reports_equal_oracle_difference(s in scenario_strategy()) {
        let (g0, q, burst) = build_scenario(&s);
        prop_assume!(q.edge_count() > 0 && q.is_connected());
        let mut engine = TurboFlux::new(q.clone(), g0.clone(), TurboFluxConfig::default());
        let mut shadow = g0;
        for op in &burst {
            let before = match_set(&shadow, &q, MatchSemantics::Homomorphism);
            shadow.apply(op);
            let after = match_set(&shadow, &q, MatchSemantics::Homomorphism);
            let mut got: HashSet<MatchRecord> = HashSet::new();
            engine.apply(op, &mut |_, m| {
                got.insert(m.clone());
            });
            let want: HashSet<MatchRecord> = after.difference(&before).cloned().collect();
            prop_assert_eq!(got, want);
        }
    }
}
