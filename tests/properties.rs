//! Randomized property tests over the core data structures and the
//! engine's key invariants (formerly proptest-based; rewritten as
//! deterministic Pcg32-driven loops because the build environment cannot
//! fetch external crates):
//!
//! * `LabelSet` behaves like a mathematical set (subset laws),
//! * update streams replay cleanly and truncation is prefix-monotone,
//! * applying a random insert burst and then deleting it in reverse
//!   returns the DCG and the match set to their initial state,
//! * engine reports are exactly the oracle's set difference for arbitrary
//!   op sequences.

use std::collections::HashSet;
use turboflux::datagen::Pcg32;
use turboflux::matcher::match_set;
use turboflux::prelude::*;

fn random_label_set(rng: &mut Pcg32) -> LabelSet {
    let n = rng.below(6);
    (0..n).map(|_| LabelId(rng.below(12) as u32)).collect()
}

#[test]
fn label_set_subset_laws() {
    let mut rng = Pcg32::new(0x5e7);
    for _ in 0..64 {
        let sa = random_label_set(&mut rng);
        let sb = random_label_set(&mut rng);
        let union: LabelSet = sa.iter().chain(sb.iter()).collect();
        // a ⊆ a ∪ b, b ⊆ a ∪ b, a ⊆ a.
        assert!(sa.is_subset_of(&union));
        assert!(sb.is_subset_of(&union));
        assert!(sa.is_subset_of(&sa));
        // subset agrees with element-wise containment
        let subset = sa.iter().all(|l| sb.contains(l));
        assert_eq!(sa.is_subset_of(&sb), subset);
        // transitivity via union: a ⊆ b implies a ∪ b == b (as sets)
        if sa.is_subset_of(&sb) {
            assert_eq!(union.as_slice(), sb.as_slice());
        }
    }
}

#[test]
fn stream_truncation_is_a_prefix() {
    let mut rng = Pcg32::new(0x7ab);
    for _ in 0..64 {
        let n = rng.below(20);
        let keep = rng.below(20);
        let ops: Vec<UpdateOp> = (0..n as u32)
            .map(|i| UpdateOp::InsertEdge {
                src: VertexId(i),
                label: LabelId(0),
                dst: VertexId(i + 1),
            })
            .collect();
        let s = UpdateStream::from_ops(ops.clone());
        let t = s.truncate_edge_ops(keep);
        assert_eq!(t.len(), keep.min(n));
        assert_eq!(t.ops(), &ops[..keep.min(n)]);
    }
}

/// A small random scenario: labeled graph + connected query + insert burst.
struct Scenario {
    g0: DynamicGraph,
    q: QueryGraph,
    burst: Vec<UpdateOp>,
}

fn random_scenario(rng: &mut Pcg32) -> Scenario {
    let nv = 3 + rng.below(4) as u32; // 3..=6 data vertices
    let nq = 2 + rng.below(3) as u32; // 2..=4 query vertices

    let mut g = DynamicGraph::new();
    for i in 0..nv {
        g.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for _ in 0..(2 + rng.below(8)) {
        let a = VertexId(rng.below(nv as usize) as u32);
        let b = VertexId(rng.below(nv as usize) as u32);
        g.insert_edge(a, LabelId(10 + rng.below(2) as u32), b);
    }

    // A connected query: vertex i attaches to some j < i, random direction,
    // random (possibly wildcard) edge label.
    let mut q = QueryGraph::new();
    for i in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    let mut seen = HashSet::new();
    for child in 1..nq {
        let parent = rng.below(child as usize) as u32;
        let label = if rng.below(3) == 0 { None } else { Some(LabelId(10 + rng.below(2) as u32)) };
        let (s, d) = if rng.below(2) == 0 { (parent, child) } else { (child, parent) };
        if seen.insert((s, d, label)) {
            q.add_edge(QVertexId(s), QVertexId(d), label);
        }
    }

    let mut burst = Vec::new();
    let mut live: HashSet<(VertexId, LabelId, VertexId)> =
        g.edges().map(|e| (e.src, e.label, e.dst)).collect();
    for _ in 0..(1 + rng.below(5)) {
        let a = VertexId(rng.below(nv as usize) as u32);
        let b = VertexId(rng.below(nv as usize) as u32);
        let l = LabelId(10 + rng.below(2) as u32);
        if live.insert((a, l, b)) {
            burst.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
        }
    }
    Scenario { g0: g, q, burst }
}

/// Insert a burst of edges, then delete them in reverse: DCG snapshot,
/// DCG counters, and match set must return exactly to the originals,
/// and positives must equal negatives as sets.
#[test]
fn insert_then_delete_restores_everything() {
    let mut rng = Pcg32::new(0xD0_0D);
    let mut exercised = 0;
    for _ in 0..200 {
        let s = random_scenario(&mut rng);
        if s.q.edge_count() == 0 || !s.q.is_connected() || s.burst.is_empty() {
            continue;
        }
        exercised += 1;

        let mut engine = TurboFlux::new(s.q.clone(), s.g0.clone(), TurboFluxConfig::default());
        let snapshot0 = engine.dcg().snapshot();

        let mut pos: HashSet<MatchRecord> = HashSet::new();
        for op in &s.burst {
            engine.apply(op, &mut |p, m| {
                assert_eq!(p, Positiveness::Positive);
                pos.insert(m.clone());
            });
        }
        let mut neg: HashSet<MatchRecord> = HashSet::new();
        for op in s.burst.iter().rev() {
            let UpdateOp::InsertEdge { src, label, dst } = op else { unreachable!() };
            let del = UpdateOp::DeleteEdge { src: *src, label: *label, dst: *dst };
            engine.apply(&del, &mut |p, m| {
                assert_eq!(p, Positiveness::Negative);
                neg.insert(m.clone());
            });
        }
        engine.dcg().check_consistency();
        assert_eq!(engine.dcg().snapshot(), snapshot0);
        assert_eq!(pos, neg);

        // `resident_bytes` accounts reserved storage (capacities, arena
        // slots), which only the *warmed* engine restores: run one more
        // burst + teardown cycle to finish warming (the first teardown
        // still sizes free-list stacks), record its peak and trough, then
        // replay the identical cycle and require both to be exact
        // fixpoints — any drift is a storage leak.
        let run_cycle = |engine: &mut TurboFlux| {
            for op in &s.burst {
                engine.apply(op, &mut |_, _| {});
            }
            let peak = engine.intermediate_result_bytes();
            for op in s.burst.iter().rev() {
                let UpdateOp::InsertEdge { src, label, dst } = op else { unreachable!() };
                let del = UpdateOp::DeleteEdge { src: *src, label: *label, dst: *dst };
                engine.apply(&del, &mut |_, _| {});
            }
            (peak, engine.intermediate_result_bytes())
        };
        let warm = run_cycle(&mut engine);
        assert_eq!(run_cycle(&mut engine), warm, "warm (peak, trough) bytes leak");
        engine.dcg().check_consistency();
        assert_eq!(engine.dcg().snapshot(), snapshot0);
    }
    assert!(exercised >= 48, "only {exercised} scenarios exercised");
}

/// Arbitrary op application equals the oracle's set difference.
#[test]
fn reports_equal_oracle_difference() {
    let mut rng = Pcg32::new(0xFACE);
    let mut exercised = 0;
    for _ in 0..200 {
        let s = random_scenario(&mut rng);
        if s.q.edge_count() == 0 || !s.q.is_connected() {
            continue;
        }
        exercised += 1;
        let mut engine = TurboFlux::new(s.q.clone(), s.g0.clone(), TurboFluxConfig::default());
        let mut shadow = s.g0;
        for op in &s.burst {
            let before = match_set(&shadow, &s.q, MatchSemantics::Homomorphism);
            shadow.apply(op);
            let after = match_set(&shadow, &s.q, MatchSemantics::Homomorphism);
            let mut got: HashSet<MatchRecord> = HashSet::new();
            engine.apply(op, &mut |_, m| {
                got.insert(m.clone());
            });
            let want: HashSet<MatchRecord> = after.difference(&before).cloned().collect();
            assert_eq!(got, want);
        }
    }
    assert!(exercised >= 48, "only {exercised} scenarios exercised");
}
