//! Randomized oracle for the label-partitioned adjacency index.
//!
//! Two layers of defense:
//!
//! * **Structural**: a deterministic Pcg32 stream of interleaved edge
//!   inserts and deletes — on few vertices with many labels, so degrees
//!   repeatedly cross the `PROMOTE_DEGREE` small↔promoted boundary — is
//!   applied to both a [`DynamicGraph`] and a trivially-correct flat
//!   reference model. Every accessor (full / labeled / mode-filtered
//!   neighbor iteration, degrees, label membership, edge predicates) must
//!   agree with the reference at every step, and the two
//!   [`AdjacencyMode`]s must agree with each other.
//! * **Behavioral**: the engine ablation flag
//!   (`TurboFluxConfig::label_indexed_adjacency`) only switches the access
//!   path over the same storage, so engines with the flag on and off must
//!   emit byte-identical delta sequences on random query/stream scenarios.

use turboflux::datagen::Pcg32;
use turboflux::graph::{AdjacencyMode, PROMOTE_DEGREE};
use turboflux::prelude::*;

/// Flat reference adjacency: per-vertex `(label, neighbor)` lists kept in
/// the same `(label, neighbor)` sort order the index promises.
#[derive(Default)]
struct Reference {
    out: Vec<Vec<(LabelId, VertexId)>>,
    inc: Vec<Vec<(LabelId, VertexId)>>,
}

impl Reference {
    fn with_vertices(n: usize) -> Self {
        Reference { out: vec![Vec::new(); n], inc: vec![Vec::new(); n] }
    }

    fn insert(&mut self, src: VertexId, label: LabelId, dst: VertexId) {
        self.out[src.index()].push((label, dst));
        self.out[src.index()].sort_unstable();
        self.inc[dst.index()].push((label, src));
        self.inc[dst.index()].sort_unstable();
    }

    fn remove(&mut self, src: VertexId, label: LabelId, dst: VertexId) {
        self.out[src.index()].retain(|&e| e != (label, dst));
        self.inc[dst.index()].retain(|&e| e != (label, src));
    }
}

fn check_vertex(g: &DynamicGraph, r: &Reference, v: VertexId, labels: &[LabelId]) {
    for (dir, refl) in [("out", &r.out[v.index()]), ("in", &r.inc[v.index()])] {
        let full: Vec<(VertexId, LabelId)> =
            if dir == "out" { g.out_neighbors(v).collect() } else { g.in_neighbors(v).collect() };
        let want: Vec<(VertexId, LabelId)> = refl.iter().map(|&(l, w)| (w, l)).collect();
        assert_eq!(full, want, "{dir}-neighbors of {v:?} in (label, neighbor) order");
        let deg = if dir == "out" { g.out_degree(v) } else { g.in_degree(v) };
        assert_eq!(deg, refl.len(), "{dir}-degree of {v:?}");

        for &l in labels {
            let group: Vec<VertexId> = if dir == "out" {
                g.out_neighbors_labeled(v, l).collect()
            } else {
                g.in_neighbors_labeled(v, l).collect()
            };
            let want: Vec<VertexId> =
                refl.iter().filter(|&&(gl, _)| gl == l).map(|&(_, w)| w).collect();
            assert_eq!(group, want, "{dir}-group {l:?} of {v:?}");
            let (dl, has) = if dir == "out" {
                (g.out_degree_labeled(v, l), g.has_out_label(v, l))
            } else {
                (g.in_degree_labeled(v, l), g.has_in_label(v, l))
            };
            assert_eq!(dl, want.len());
            assert_eq!(has, !want.is_empty());
        }

        // Both access modes agree, for concrete labels and the wildcard.
        for qlabel in labels.iter().copied().map(Some).chain([None]) {
            let (indexed, flat): (Vec<VertexId>, Vec<VertexId>) = if dir == "out" {
                (
                    g.out_neighbors_matching(v, qlabel, AdjacencyMode::Indexed).collect(),
                    g.out_neighbors_matching(v, qlabel, AdjacencyMode::FlatScan).collect(),
                )
            } else {
                (
                    g.in_neighbors_matching(v, qlabel, AdjacencyMode::Indexed).collect(),
                    g.in_neighbors_matching(v, qlabel, AdjacencyMode::FlatScan).collect(),
                )
            };
            assert_eq!(indexed, flat, "mode disagreement: {dir} {v:?} {qlabel:?}");
            let want: Vec<VertexId> = refl
                .iter()
                .filter(|&&(gl, _)| qlabel.is_none_or(|ql| ql == gl))
                .map(|&(_, w)| w)
                .collect();
            assert_eq!(indexed, want, "matching-iterator: {dir} {v:?} {qlabel:?}");
        }
    }
}

#[test]
fn partitioned_adjacency_matches_flat_reference() {
    let nv = 6usize;
    let labels: Vec<LabelId> = (0..10).map(LabelId).collect();
    let mut rng = Pcg32::new(0xAD7_ACE);
    let mut g = DynamicGraph::new();
    for _ in 0..nv {
        g.add_vertex(LabelSet::empty());
    }
    let mut r = Reference::with_vertices(nv);
    let mut live: Vec<(VertexId, LabelId, VertexId)> = Vec::new();
    let mut crossed_up = 0usize;
    let mut deleted_from_promoted = 0usize;

    for step in 0..4000 {
        // Phased bias so degrees sweep up through the promotion boundary,
        // back down, and up again (promotion is sticky; deletions after
        // promotion exercise tombstoned groups).
        let insert_bias = match step / 1000 {
            0 | 2 => 8,
            _ => 3,
        };
        if live.is_empty() || rng.below(10) < insert_bias {
            let src = VertexId(rng.below(nv) as u32);
            let dst = VertexId(rng.below(nv) as u32);
            let l = labels[rng.below(labels.len())];
            let before = g.out_degree(src);
            if g.insert_edge(src, l, dst) {
                r.insert(src, l, dst);
                live.push((src, l, dst));
                if before == PROMOTE_DEGREE {
                    crossed_up += 1;
                }
            }
        } else {
            let (src, l, dst) = live.swap_remove(rng.below(live.len()));
            if g.out_is_promoted(src) {
                deleted_from_promoted += 1;
            }
            assert!(g.delete_edge(src, l, dst));
            r.remove(src, l, dst);
        }
        if step % 50 == 0 || step + 1 == 4000 {
            for v in 0..nv {
                check_vertex(&g, &r, VertexId(v as u32), &labels);
            }
            for &(src, l, dst) in &live {
                assert!(g.has_edge(src, l, dst));
                assert!(g.has_edge_matching(src, dst, Some(l)));
                assert!(g.has_edge_matching(src, dst, None));
                let want = r.out[src.index()].iter().filter(|&&e| e == (l, dst)).count();
                assert_eq!(g.count_edges_matching(src, dst, Some(l)), want);
            }
        }
    }
    assert!(crossed_up >= 5, "only {crossed_up} promotions exercised");
    assert!(
        deleted_from_promoted >= 100,
        "only {deleted_from_promoted} deletions hit promoted vertices"
    );
}

fn random_query(rng: &mut Pcg32) -> QueryGraph {
    let nq = 2 + rng.below(3) as u32;
    let mut q = QueryGraph::new();
    for i in 0..nq {
        q.add_vertex(LabelSet::single(LabelId(i % 2)));
    }
    for child in 1..nq {
        let parent = rng.below(child as usize) as u32;
        let label = if rng.below(3) == 0 { None } else { Some(LabelId(10 + rng.below(2) as u32)) };
        let (s, d) = if rng.below(2) == 0 { (parent, child) } else { (child, parent) };
        q.add_edge(QVertexId(s), QVertexId(d), label);
    }
    q
}

#[test]
fn ablation_flag_preserves_delta_sequences() {
    let mut rng = Pcg32::new(0xAB1A7E);
    let mut exercised = 0;
    let mut nonempty = 0;
    for _ in 0..40 {
        let nv = 3 + rng.below(4) as u32;
        let mut g0 = DynamicGraph::new();
        for i in 0..nv {
            g0.add_vertex(LabelSet::single(LabelId(i % 2)));
        }
        for _ in 0..rng.below(8) {
            let a = VertexId(rng.below(nv as usize) as u32);
            let b = VertexId(rng.below(nv as usize) as u32);
            g0.insert_edge(a, LabelId(10 + rng.below(2) as u32), b);
        }
        let q = random_query(&mut rng);
        if q.edge_count() == 0 || !q.is_connected() {
            continue;
        }
        exercised += 1;

        let mut ops = Vec::new();
        let mut live: Vec<(VertexId, LabelId, VertexId)> =
            g0.edges().map(|e| (e.src, e.label, e.dst)).collect();
        for _ in 0..(8 + rng.below(12)) {
            if !live.is_empty() && rng.below(10) < 4 {
                let (a, l, b) = live.swap_remove(rng.below(live.len()));
                ops.push(UpdateOp::DeleteEdge { src: a, label: l, dst: b });
            } else {
                let a = VertexId(rng.below(nv as usize) as u32);
                let b = VertexId(rng.below(nv as usize) as u32);
                let l = LabelId(10 + rng.below(2) as u32);
                ops.push(UpdateOp::InsertEdge { src: a, label: l, dst: b });
                live.push((a, l, b));
            }
        }

        let run = |indexed: bool| {
            let cfg = TurboFluxConfig { label_indexed_adjacency: indexed, ..Default::default() };
            let mut engine = TurboFlux::new(q.clone(), g0.clone(), cfg);
            let mut out: Vec<(usize, Positiveness, MatchRecord)> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                engine.apply_op(op, &mut |p, m| out.push((i, p, m.clone())));
            }
            out
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on, off, "ablation flag changed the delta sequence");
        if !on.is_empty() {
            nonempty += 1;
        }
    }
    assert!(exercised >= 20, "only {exercised} scenarios exercised");
    assert!(nonempty >= 5, "only {nonempty} scenarios produced matches");
}
