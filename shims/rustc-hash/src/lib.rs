//! Vendored stand-in for the `rustc-hash` crate so the workspace builds
//! without network access. Implements the classic FxHash mixing function
//! (as used by rustc and Firefox): a non-cryptographic, DoS-vulnerable,
//! very fast hash for small keys such as integers and short tuples.
//!
//! Only the subset of the upstream API this workspace uses is provided:
//! [`FxHasher`], [`FxBuildHasher`], [`FxHashMap`], [`FxHashSet`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: `hash = (hash.rotate_left(5) ^ word) * SEED` per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishing() {
        let mut a = FxHasher::default();
        a.write_u64(42);
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn byte_stream_tail_handling() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
    }
}
