//! Vendored minimal stand-in for the `criterion` crate so benches build and
//! run without network access. It implements the subset of the API this
//! workspace uses — `criterion_group!` / `criterion_main!`, benchmark
//! groups, `Bencher::iter`, `BenchmarkId`, `Throughput` — with a simple
//! warmup-then-sample measurement loop instead of criterion's statistical
//! machinery.
//!
//! Tuning (environment variables):
//!
//! * `TFX_BENCH_WARMUP_MS` — warmup per benchmark (default 200).
//! * `TFX_BENCH_MEASURE_MS` — total measurement budget per benchmark
//!   (default 500).
//! * `TFX_BENCH_JSON` — when set to a path, one JSON line per benchmark is
//!   appended to that file (used by `scripts/bench_snapshot.sh`).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: per-iteration element or byte counts.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the whole
    /// batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default))
}

/// The benchmark driver. Holds an optional substring filter taken from the
/// command line.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from `std::env::args`, treating the first
    /// non-flag argument as a substring filter (flags like `--bench` that
    /// cargo passes are ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None, _sample_size: 0 }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    _sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for criterion compatibility; the shim sizes samples by
    /// wall-clock budget instead.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.c.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let warmup = env_ms("TFX_BENCH_WARMUP_MS", 200);
        let measure = env_ms("TFX_BENCH_MEASURE_MS", 500);

        // Estimate the per-iteration cost with single-iteration calls.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let mut est = b.elapsed.max(Duration::from_nanos(1));

        // Warmup for the configured wall-clock budget.
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < warmup {
            f(&mut b);
            est = (est + b.elapsed.max(Duration::from_nanos(1))) / 2;
        }

        // Sample: split the measurement budget into ~10 samples.
        let samples = 10usize;
        let per_sample = measure / samples as u32;
        let iters = (per_sample.as_nanos() / est.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = per_iter_ns[0];
        let max = *per_iter_ns.last().unwrap();
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        let mut line =
            format!("{full:<48} time: [{} {} {}]", fmt_ns(min), fmt_ns(mean), fmt_ns(max));
        let mut elems_per_sec = None;
        if let Some(Throughput::Elements(n)) = self.throughput {
            let eps = n as f64 * 1e9 / mean;
            elems_per_sec = Some(eps);
            line.push_str(&format!("  thrpt: {:.3} Melem/s", eps / 1e6));
        }
        println!("{line}");

        if let Ok(path) = std::env::var("TFX_BENCH_JSON") {
            let elements = match self.throughput {
                Some(Throughput::Elements(n)) => n.to_string(),
                _ => "null".into(),
            };
            let eps = elems_per_sec.map_or("null".into(), |e| format!("{e:.1}"));
            let json = format!(
                "{{\"id\":\"{full}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"iters_per_sample\":{iters},\"elements\":{elements},\"elems_per_sec\":{eps}}}\n",
            );
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = file.write_all(json.as_bytes());
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut n = 0u64;
        let mut b = Bencher { iters: 5, elapsed: Duration::ZERO };
        b.iter(|| n += 1);
        assert_eq!(n, 5);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn group_runs_and_filters() {
        std::env::set_var("TFX_BENCH_WARMUP_MS", "1");
        std::env::set_var("TFX_BENCH_MEASURE_MS", "5");
        let mut c = Criterion { filter: Some("hit".into()) };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("hit_me", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        let mut skipped = false;
        group.bench_function("other", |b| {
            skipped = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
        assert!(!skipped);
    }
}
