//! Quickstart: register a pattern, stream edge updates, receive positive
//! and negative matches.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use turboflux::prelude::*;

fn main() {
    // Labels are interned strings.
    let mut labels = LabelInterner::new();
    let person = labels.intern("Person");
    let company = labels.intern("Company");
    let works_at = labels.intern("worksAt");
    let knows = labels.intern("knows");

    // The initial data graph g0: two people, one company, one employment.
    let mut g0 = DynamicGraph::new();
    let ada = g0.add_vertex(LabelSet::single(person));
    let grace = g0.add_vertex(LabelSet::single(person));
    let acme = g0.add_vertex(LabelSet::single(company));
    g0.insert_edge(ada, works_at, acme);

    // The pattern: two acquainted people working at the same company.
    //   u0:Person -knows-> u1:Person, u0 -worksAt-> u2:Company,
    //   u1 -worksAt-> u2
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(person));
    let u1 = q.add_vertex(LabelSet::single(person));
    let u2 = q.add_vertex(LabelSet::single(company));
    q.add_edge(u0, u1, Some(knows));
    q.add_edge(u0, u2, Some(works_at));
    q.add_edge(u1, u2, Some(works_at));

    // Register the query; the engine builds its DCG over g0.
    let mut engine = TurboFlux::new(q, g0, TurboFluxConfig::default());
    println!(
        "registered query; initial DCG holds {} intermediate edges",
        engine.dcg().stored_edge_count()
    );

    let mut on_report = |p: Positiveness, m: &MatchRecord| {
        let sign = if p == Positiveness::Positive { "+" } else { "-" };
        println!("  {sign} match: {m:?}");
    };

    // Stream updates. Nothing matches until the pattern closes.
    println!("insert grace -worksAt-> acme");
    engine.apply(&UpdateOp::InsertEdge { src: grace, label: works_at, dst: acme }, &mut on_report);

    println!("insert ada -knows-> grace (completes the pattern)");
    engine.apply(&UpdateOp::InsertEdge { src: ada, label: knows, dst: grace }, &mut on_report);

    // New vertices can arrive mid-stream.
    println!("a new colleague joins");
    let lin = VertexId(3);
    engine
        .apply(&UpdateOp::AddVertex { id: lin, labels: LabelSet::single(person) }, &mut on_report);
    engine.apply(&UpdateOp::InsertEdge { src: lin, label: works_at, dst: acme }, &mut on_report);
    engine.apply(&UpdateOp::InsertEdge { src: ada, label: knows, dst: lin }, &mut on_report);

    // Deletions report the matches that vanish.
    println!("ada leaves acme");
    engine.apply(&UpdateOp::DeleteEdge { src: ada, label: works_at, dst: acme }, &mut on_report);

    println!(
        "done; DCG now holds {} intermediate edges ({} bytes)",
        engine.dcg().stored_edge_count(),
        engine.intermediate_result_bytes()
    );
}
