//! Social-media monitoring on the LSBench-like stream, comparing TurboFlux
//! against the Graphflow baseline live on the same query.
//!
//! The monitored pattern is a "coordinated amplification" shape: two users
//! who know each other both like a post created by a third user, and that
//! post is tagged. Emergency-response and moderation pipelines watch for
//! exactly this kind of pattern spike.
//!
//! ```sh
//! cargo run --release --example social_stream
//! ```

use std::time::Instant;
use turboflux::baselines::Graphflow;
use turboflux::datagen::{lsbench, LsBenchConfig};
use turboflux::prelude::*;

fn main() {
    let dataset = lsbench::generate(&LsBenchConfig { users: 1500, seed: 7, stream_frac: 0.1 });
    let it = &dataset.interner;
    let (user, post, tag) = (
        it.get("User").expect("schema label"),
        it.get("Post").expect("schema label"),
        it.get("Tag").expect("schema label"),
    );
    let (knows, likes, creator, has_tag) = (
        it.get("knows").expect("schema label"),
        it.get("likes").expect("schema label"),
        it.get("creatorOfPost").expect("schema label"),
        it.get("hasTag").expect("schema label"),
    );
    println!(
        "social stream: |V|={}, |E(g0)|={}, stream={} inserts",
        dataset.g0.vertex_count(),
        dataset.g0.edge_count(),
        dataset.stream.insert_count()
    );

    // Coordinated amplification: an author u3's tagged post u2 is liked by
    // two users u0, u1 where u0 knows u1 — fanning out over the heavy
    // `likes` relation, which is where maintained intermediate results pay
    // off against per-update re-enumeration.
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(user));
    let u1 = q.add_vertex(LabelSet::single(user));
    let u2 = q.add_vertex(LabelSet::single(post));
    let u3 = q.add_vertex(LabelSet::single(user));
    let u4 = q.add_vertex(LabelSet::single(tag));
    q.add_edge(u0, u1, Some(knows));
    q.add_edge(u0, u2, Some(likes));
    q.add_edge(u1, u2, Some(likes));
    q.add_edge(u3, u2, Some(creator));
    q.add_edge(u2, u4, Some(has_tag));

    // TurboFlux.
    let t = Instant::now();
    let mut tf = TurboFlux::new(q.clone(), dataset.g0.clone(), TurboFluxConfig::default());
    let build = t.elapsed();
    let t = Instant::now();
    let mut tf_pos = 0u64;
    for op in &dataset.stream {
        tf.apply(op, &mut |_, _| tf_pos += 1);
    }
    let tf_time = t.elapsed();
    println!(
        "TurboFlux : built DCG in {build:.2?}; stream in {tf_time:.2?}; {tf_pos} new matches; {} KB intermediate",
        tf.intermediate_result_bytes() / 1024
    );

    // Graphflow (no intermediate state, recomputes per update).
    let mut gf = Graphflow::new(q, dataset.g0.clone(), MatchSemantics::Homomorphism);
    let t = Instant::now();
    let mut gf_pos = 0u64;
    for op in &dataset.stream {
        gf.apply(op, &mut |_, _| gf_pos += 1);
    }
    let gf_time = t.elapsed();
    println!("Graphflow : stream in {gf_time:.2?}; {gf_pos} new matches; 0 KB intermediate");

    assert_eq!(tf_pos, gf_pos, "engines must agree");
    println!(
        "speedup: {:.1}x on this workload",
        gf_time.as_secs_f64() / tf_time.as_secs_f64().max(1e-9)
    );
}
