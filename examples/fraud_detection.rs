//! Fraud-ring detection over a streaming transaction graph — the banking
//! motivation from the paper's introduction ("fraudsters organize into
//! fraud rings, which can be detected by subgraph matching using a query
//! graph having a ring shape").
//!
//! The pattern is a directed 3-cycle of `transfer` edges between accounts
//! where every account in the ring also `uses` the same device — a classic
//! money-mule signature. The stream interleaves a large volume of benign
//! transfers with two planted rings; TurboFlux raises each alert the moment
//! the closing edge arrives.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use turboflux::datagen::Pcg32;
use turboflux::prelude::*;

const ACCOUNTS: u32 = 2_000;
const DEVICES: u32 = 300;
const BENIGN_TRANSFERS: usize = 20_000;

fn main() {
    let mut labels = LabelInterner::new();
    let account = labels.intern("Account");
    let device = labels.intern("Device");
    let transfer = labels.intern("transfer");
    let uses = labels.intern("uses");

    // g0: accounts, devices, and each account using one device.
    let mut g0 = DynamicGraph::new();
    let mut rng = Pcg32::new(0xF4A6D);
    for _ in 0..ACCOUNTS {
        g0.add_vertex(LabelSet::single(account));
    }
    for _ in 0..DEVICES {
        g0.add_vertex(LabelSet::single(device));
    }
    let dev_id = |d: u32| VertexId(ACCOUNTS + d);
    for a in 0..ACCOUNTS {
        let d = rng.below(DEVICES as usize) as u32;
        g0.insert_edge(VertexId(a), uses, dev_id(d));
    }

    // The ring pattern: u0 -> u1 -> u2 -> u0 transfers, all using device u3.
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(account));
    let u1 = q.add_vertex(LabelSet::single(account));
    let u2 = q.add_vertex(LabelSet::single(account));
    let u3 = q.add_vertex(LabelSet::single(device));
    q.add_edge(u0, u1, Some(transfer));
    q.add_edge(u1, u2, Some(transfer));
    q.add_edge(u2, u0, Some(transfer));
    q.add_edge(u0, u3, Some(uses));
    q.add_edge(u1, u3, Some(uses));
    q.add_edge(u2, u3, Some(uses));

    let cfg = TurboFluxConfig::with_semantics(MatchSemantics::Isomorphism);
    let mut engine = TurboFlux::new(q, g0, cfg);

    // Build the stream: benign transfers + two planted rings whose members
    // share a device.
    let mut ops = Vec::new();
    for _ in 0..BENIGN_TRANSFERS {
        let a = VertexId(rng.below(ACCOUNTS as usize) as u32);
        let b = VertexId(rng.below(ACCOUNTS as usize) as u32);
        if a != b {
            ops.push(UpdateOp::InsertEdge { src: a, label: transfer, dst: b });
        }
    }
    let plant_ring = |ops: &mut Vec<UpdateOp>, members: [u32; 3], dev: u32, at: usize| {
        let [a, b, c] = members.map(VertexId);
        let d = dev_id(dev);
        let ring = vec![
            UpdateOp::InsertEdge { src: a, label: uses, dst: d },
            UpdateOp::InsertEdge { src: b, label: uses, dst: d },
            UpdateOp::InsertEdge { src: c, label: uses, dst: d },
            UpdateOp::InsertEdge { src: a, label: transfer, dst: b },
            UpdateOp::InsertEdge { src: b, label: transfer, dst: c },
            UpdateOp::InsertEdge { src: c, label: transfer, dst: a },
        ];
        for (i, op) in ring.into_iter().enumerate() {
            ops.insert((at + i * 700).min(ops.len()), op);
        }
    };
    plant_ring(&mut ops, [11, 12, 13], 7, 2_000);
    plant_ring(&mut ops, [500, 777, 900], 42, 9_000);

    // Drive the stream.
    let t = std::time::Instant::now();
    let mut alerts = 0usize;
    for (i, op) in ops.iter().enumerate() {
        engine.apply(op, &mut |p, m| {
            if p == Positiveness::Positive {
                alerts += 1;
                println!(
                    "ALERT after {i} events: ring {} -> {} -> {} on device {}",
                    m.get(QVertexId(0)),
                    m.get(QVertexId(1)),
                    m.get(QVertexId(2)),
                    m.get(QVertexId(3)),
                );
            }
        });
    }
    let elapsed = t.elapsed();
    println!(
        "processed {} events in {elapsed:.2?} ({:.0} events/s), {} ring alerts, DCG {} bytes",
        ops.len(),
        ops.len() as f64 / elapsed.as_secs_f64(),
        alerts,
        engine.intermediate_result_bytes(),
    );
    // Each planted ring fires 3 rotations × ... under isomorphism the ring
    // is reported once per rotation of the cycle mapping; at least the two
    // planted rings must be visible.
    assert!(alerts >= 2, "both planted rings must be detected");
}
