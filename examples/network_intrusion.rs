//! Cyber-security monitoring over a network-flow stream — the paper's
//! second motivating domain ("cyber security applications should detect
//! cyber intrusions and attacks in computer network traffic as soon as
//! they appear").
//!
//! The data is a Netflow-like trace (unlabeled hosts, eight protocol edge
//! labels) from the built-in generator. The monitored pattern is a
//! lateral-movement chain: an external host reaches an internal host over
//! `tcp`, which then fans out over `tcp` to two further hosts that both
//! call back to the *same* command-and-control host over `udp`.
//!
//! ```sh
//! cargo run --release --example network_intrusion
//! ```

use turboflux::datagen::{netflow, NetflowConfig};
use turboflux::prelude::*;

fn main() {
    let dataset = netflow::generate(&NetflowConfig {
        hosts: 800,
        flows: 12_000,
        seed: 0x5EC,
        stream_frac: 0.15,
    });
    let tcp = dataset.interner.get("tcp").expect("generator defines tcp");
    let udp = dataset.interner.get("udp").expect("generator defines udp");
    println!(
        "netflow trace: {} hosts, {} initial flows, {} streamed flows",
        dataset.g0.vertex_count(),
        dataset.g0.edge_count(),
        dataset.stream.insert_count()
    );

    // Lateral movement with C2 rendezvous:
    //   u0 -tcp-> u1 -tcp-> {u2, u3};  u2 -udp-> u4 <-udp- u3
    let mut q = QueryGraph::new();
    let hosts: Vec<QVertexId> = (0..5).map(|_| q.add_vertex(LabelSet::empty())).collect();
    q.add_edge(hosts[0], hosts[1], Some(tcp));
    q.add_edge(hosts[1], hosts[2], Some(tcp));
    q.add_edge(hosts[1], hosts[3], Some(tcp));
    q.add_edge(hosts[2], hosts[4], Some(udp));
    q.add_edge(hosts[3], hosts[4], Some(udp)); // non-tree edge: the rendezvous

    let cfg = TurboFluxConfig::with_semantics(MatchSemantics::Isomorphism);
    let mut engine = TurboFlux::new(q, dataset.g0.clone(), cfg);

    let mut initial = 0u64;
    engine.initial_matches(&mut |_| initial += 1);
    println!("{initial} instances already present in the initial trace");

    let t = std::time::Instant::now();
    let mut appeared = 0u64;
    let mut first: Option<(usize, String)> = None;
    for (i, op) in dataset.stream.ops().iter().enumerate() {
        engine.apply(op, &mut |p, m| {
            if p == Positiveness::Positive {
                appeared += 1;
                if first.is_none() {
                    first = Some((
                        i,
                        format!(
                            "{} -> {} -> [{}, {}] ~> C2 {}",
                            m.get(QVertexId(0)),
                            m.get(QVertexId(1)),
                            m.get(QVertexId(2)),
                            m.get(QVertexId(3)),
                            m.get(QVertexId(4)),
                        ),
                    ));
                }
            }
        });
    }
    let elapsed = t.elapsed();
    if let Some((i, desc)) = &first {
        println!("first new intrusion instance appeared at stream position {i}: {desc}");
    }
    println!(
        "streamed {} flows in {elapsed:.2?} ({:.0} flows/s); {appeared} new pattern instances; DCG {} KB",
        dataset.stream.len(),
        dataset.stream.len() as f64 / elapsed.as_secs_f64(),
        engine.intermediate_result_bytes() / 1024,
    );
}
