//! Cyber-security monitoring over a network-flow stream — the paper's
//! second motivating domain ("cyber security applications should detect
//! cyber intrusions and attacks in computer network traffic as soon as
//! they appear").
//!
//! The data is a Netflow-like trace (unlabeled hosts, eight protocol edge
//! labels) from the built-in generator, replayed through a **time-based
//! sliding window**: each flow record carries a timestamp, and flows older
//! than the window width expire automatically instead of being deleted by
//! hand. The monitored pattern is a lateral-movement chain: an external
//! host reaches an internal host over `tcp`, which then fans out over
//! `tcp` to two further hosts that both call back to the *same*
//! command-and-control host over `udp`.
//!
//! ```sh
//! cargo run --release --example network_intrusion
//! ```

use turboflux::datagen::{netflow, NetflowConfig};
use turboflux::prelude::*;

fn main() {
    let mut dataset = netflow::generate(&NetflowConfig {
        hosts: 800,
        flows: 12_000,
        seed: 0x5EC,
        stream_frac: 0.15,
    });
    let tcp = dataset.interner.get("tcp").expect("generator defines tcp");
    let udp = dataset.interner.get("udp").expect("generator defines udp");
    println!(
        "netflow trace: {} hosts, {} initial flows, {} streamed flows",
        dataset.g0.vertex_count(),
        dataset.g0.edge_count(),
        dataset.stream.insert_count()
    );

    // Lateral movement with C2 rendezvous:
    //   u0 -tcp-> u1 -tcp-> {u2, u3};  u2 -udp-> u4 <-udp- u3
    let mut q = QueryGraph::new();
    let hosts: Vec<QVertexId> = (0..5).map(|_| q.add_vertex(LabelSet::empty())).collect();
    q.add_edge(hosts[0], hosts[1], Some(tcp));
    q.add_edge(hosts[1], hosts[2], Some(tcp));
    q.add_edge(hosts[1], hosts[3], Some(tcp));
    q.add_edge(hosts[2], hosts[4], Some(udp));
    q.add_edge(hosts[3], hosts[4], Some(udp)); // non-tree edge: the rendezvous

    let cfg = TurboFluxConfig::with_semantics(MatchSemantics::Isomorphism);
    let mut engine = TurboFlux::new(q, dataset.g0.clone(), cfg);

    let mut initial = 0u64;
    engine.initial_matches(&mut |_| initial += 1);
    println!("{initial} instances already present in the initial trace");

    // One tick per flow record, so a width of 600 keeps the 600 most
    // recent flows alive; anything older expires out of the match state.
    let width = 600;
    let source = SyntheticSource::from_stream(std::mem::take(&mut dataset.stream), 1);
    let mut driver =
        StreamDriver::new(SlidingWindow::new(WindowSpec::Time { width }), BatchPolicy::by_ops(256));

    let mut appeared = 0u64;
    let mut vanished = 0u64;
    let mut first: Option<(usize, String)> = None;
    let mut sink = CallbackSink::new(|d: &DeltaRef<'_>| {
        if d.positiveness == Positiveness::Positive {
            appeared += 1;
            if first.is_none() {
                let m = d.record;
                first = Some((
                    d.global_op,
                    format!(
                        "{} -> {} -> [{}, {}] ~> C2 {}",
                        m.get(QVertexId(0)),
                        m.get(QVertexId(1)),
                        m.get(QVertexId(2)),
                        m.get(QVertexId(3)),
                        m.get(QVertexId(4)),
                    ),
                ));
            }
        } else {
            vanished += 1;
        }
    });
    let summary = {
        let mut source = source;
        driver.run(&mut source, &mut engine, &mut sink).expect("synthetic source never fails")
    };

    if let Some((op, desc)) = &first {
        println!("first new intrusion instance appeared at op {op}: {desc}");
    }
    println!(
        "streamed {} flows -> {} ops ({} window expiries) in {:.2?} ({:.0} flows/s)",
        summary.events,
        summary.ops,
        summary.expiry_deletes,
        summary.elapsed,
        summary.events as f64 / summary.elapsed.as_secs_f64(),
    );
    println!(
        "{appeared} pattern instances appeared, {vanished} aged out of the {width}-tick window; \
         {} flows still live; DCG {} KB",
        driver.window().live_len(),
        engine.intermediate_result_bytes() / 1024,
    );
}
