#!/usr/bin/env bash
# Reproduces every figure of the paper's evaluation at laptop scale.
# Output: results/<target>.txt — summarized in EXPERIMENTS.md.
set -u
export TFX_USERS="${TFX_USERS:-400}"
export TFX_HOSTS="${TFX_HOSTS:-1200}"
export TFX_FLOWS="${TFX_FLOWS:-25000}"
export TFX_QUERIES="${TFX_QUERIES:-10}"
export TFX_TIMEOUT_MS="${TFX_TIMEOUT_MS:-3000}"
mkdir -p results
for bin in fig03_tradeoff fig06_lsbench_tree fig07_lsbench_graph fig08_insertion_rate \
           fig09_dataset_size fig10_isomorphism fig11_deletion_rate fig12_incisomat \
           fig13_netflow_tree fig14_netflow_graph fig15_netflow_paths fig16_netflow_btrees \
           fig17_selectivity ablation_dcg appb5_sjtree_nec; do
  echo "=== running $bin ==="
  start=$(date +%s.%N)
  if ./target/release/$bin > "results/$bin.txt" 2> "results/$bin.log"; then
    end=$(date +%s.%N)
    echo "ok: $bin ($(echo "$end $start" | awk '{printf "%.1f", $1-$2}')s)"
  else
    echo "FAILED: $bin"
  fi
done
