#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests, bench compile.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (workspace, -D warnings) ==="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --offline --release

echo "=== cargo test (workspace) ==="
cargo test --offline --workspace -q

echo "=== cargo bench --no-run ==="
cargo bench --offline --no-run -p tfx-bench

echo "=== adjacency_scan (quick) ==="
# One short sample per benchmark: catches index/ablation path breakage
# (panics, mode disagreements) without paying for a full measurement run.
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench adjacency_scan

echo "=== dcg_ops (quick) ==="
# Exercises arena promote/grow/demote and the climb/enumerate slices on
# both run shapes under the release profile.
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench dcg_ops

echo "=== explosive_update (quick) ==="
# Exercises the intra-update parallel fan-out (workers/4) and the
# small-frontier sequential fallback under the release profile.
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench explosive_update

echo "=== window_churn (quick) ==="
# Exercises the sliding-window eviction path, the batching driver, and the
# stream-file parser under the release profile.
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench window_churn

echo "=== fleet shared-index / subtrees / routing (quick) ==="
# Every invocation of the fleet bench runs ALL the sanity blocks (overlap
# index hits, prefix subtree hits + three-way delta agreement, disjoint
# routing skips) before its filtered timing groups, so the self-checks run
# regardless of filter. Three filtered invocations keep the timing cheap:
# an unfiltered run would also pay for the slow random-query
# fleet_throughput groups and the large prefix_q{16,64} ablation series.
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench fleet_throughput -- fleet_shared/overlap
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench fleet_throughput -- fleet_shared/prefix_q4
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench fleet_throughput -- fleet_routing

echo "=== shard_scaling guard (quick) ==="
# Runs the pre-timing sanity asserts: delta agreement at shards {1,2,4,8}
# and the shards=1 fast-path regression guard (min-of-7 within 1.5x of the
# unsharded engine on uniform and hub — see DESIGN.md). The shards1 filter
# skips the multi-shard timing series, which are pure barrier churn on a
# 1-core host.
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench shard_scaling -- shards1

echo "=== motif (quick) ==="
# Asserts PivotScan and Intersect count the same motifs before timing, and
# exercises the merge/gallop/SIMD intersection kernels under release.
TFX_BENCH_WARMUP_MS=20 TFX_BENCH_MEASURE_MS=50 \
  cargo bench --offline -p tfx-bench --bench motif

echo "=== tfx stream smoke ==="
# The CLI subcommand end to end against the checked-in testdata: a count-3
# window over the demo stream must evict exactly one edge and report the
# same four deltas every run.
deltas=$(target/release/tfx stream \
  --query testdata/demo_query.txt --graph testdata/demo_graph.txt \
  --file testdata/demo_stream.txt --window count:3 \
  | grep -c '"type":"delta"')
if [ "$deltas" != "4" ]; then
  echo "tfx stream smoke: expected 4 deltas, got $deltas" >&2
  exit 1
fi

echo "=== tfx sharded smoke ==="
# The sharded runtime's determinism contract, end to end through the CLI:
# for the demo trio, --shards 2 must emit byte-identical init/delta lines
# to --shards 1 (the unsharded target), and must report a shard_stats
# line with live cross-shard traffic.
tmp_shard="$(mktemp -d)"
trap 'rm -rf "$tmp_shard"' EXIT
for case in \
  "demo_query --graph testdata/demo_graph.txt --file testdata/demo_stream.txt" \
  "demo_query_disjoint --graph testdata/demo_graph.txt --file testdata/demo_stream.txt" \
  "netflow_query --synthetic netflow --window count:1000"; do
  name="${case%% *}"
  args="${case#* }"
  for s in 1 2; do
    # shellcheck disable=SC2086
    target/release/tfx stream --query "testdata/${name}.txt" $args --shards "$s" \
      | grep -E '"type":"(init|delta)"' > "$tmp_shard/${name}_${s}.txt"
  done
  if ! cmp -s "$tmp_shard/${name}_1.txt" "$tmp_shard/${name}_2.txt"; then
    echo "tfx sharded smoke: ${name}: --shards 2 deltas differ from --shards 1" >&2
    exit 1
  fi
done
crossed=$(target/release/tfx stream \
  --query testdata/netflow_query.txt --synthetic netflow --window count:1000 --shards 2 \
  | grep -o '"cross_shard_edges":[0-9]*' | head -n1 | cut -d: -f2)
if [ -z "$crossed" ] || [ "$crossed" -eq 0 ]; then
  echo "tfx sharded smoke: expected cross_shard_edges > 0, got '${crossed:-no shard_stats line}'" >&2
  exit 1
fi

echo "=== tfx fleet smoke ==="
# Two-query fleet where the second query's edge label (`follows`) never
# appears in the stream: the fleet routing table must skip that engine for
# every edge op, and the CLI must report it in the fleet_stats line.
skipped=$(target/release/tfx stream \
  --query testdata/demo_query.txt --query testdata/demo_query_disjoint.txt \
  --graph testdata/demo_graph.txt --file testdata/demo_stream.txt --fleet 2 \
  | grep -o '"ops_skipped":[0-9]*' | head -n1 | cut -d: -f2)
if [ -z "$skipped" ] || [ "$skipped" -eq 0 ]; then
  echo "tfx fleet smoke: expected ops_skipped > 0, got '${skipped:-no fleet_stats line}'" >&2
  exit 1
fi

echo "ci: all green"
