#!/usr/bin/env bash
# Records a benchmark snapshot as BENCH_<date>.json in the repo root:
# one JSON line per benchmark (from the criterion harness's TFX_BENCH_JSON
# hook) plus a leading host-info line, so numbers from different machines
# are never compared blind (the fleet benchmarks are core-count sensitive).
#
# Tunables (defaults keep a full run under a few minutes):
#   TFX_BENCH_WARMUP_MS   warmup per benchmark        (default 100)
#   TFX_BENCH_MEASURE_MS  measurement per benchmark   (default 300)
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date +%F).json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

cores=$(nproc 2>/dev/null || echo 1)
# Shard/worker configuration of the parallel benchmark groups, recorded
# next to the core count so scaling numbers are never read blind: the
# shard_scaling groups run shards ∈ {1,2,4,8} with one worker per shard,
# and the fleet groups parallelize across engines.
printf '{"host":{"date":"%s","cores":%s,"kernel":"%s","rustc":"%s","shard_counts":[1,2,4,8],"workers_per_shard":1,"fleet_threads":%s}}\n' \
  "$(date -u +%FT%TZ)" "$cores" "$(uname -r)" \
  "$(rustc --version | tr -d '"')" "$cores" > "$tmp"

export TFX_BENCH_WARMUP_MS="${TFX_BENCH_WARMUP_MS:-100}"
export TFX_BENCH_MEASURE_MS="${TFX_BENCH_MEASURE_MS:-300}"
export TFX_BENCH_JSON="$tmp"

# fleet_throughput also covers the fleet_shared/overlap_q* ablation
# (shared candidate-prefix index vs per-engine scans), the
# fleet_shared/prefix_q* shared-DCG-subtree sweep (phase 2 vs phase 1 vs
# naive on a common-prefix fleet), and the fleet_routing/disjoint
# label-routing sweep.
cargo bench --offline -p tfx-bench --bench fleet_throughput
cargo bench --offline -p tfx-bench --bench micro
cargo bench --offline -p tfx-bench --bench adjacency_scan
cargo bench --offline -p tfx-bench --bench dcg_ops
cargo bench --offline -p tfx-bench --bench explosive_update
cargo bench --offline -p tfx-bench --bench window_churn
cargo bench --offline -p tfx-bench --bench motif

# shard_scaling measures cross-partition speedup; on a single core the
# worker barriers can only add overhead, so a 1-core snapshot would
# record pure scheduler churn as if it were the runtime's scaling curve.
if [ "$cores" -gt 1 ]; then
  cargo bench --offline -p tfx-bench --bench shard_scaling
else
  echo "bench_snapshot: skipping shard_scaling — host has 1 core;" \
       "shard speedups need a multi-core runner (shards=1 parity is" \
       "still covered by the overhead assertions in the bench itself)" >&2
fi

mv "$tmp" "$out"
trap - EXIT
echo "wrote $out ($(wc -l < "$out") lines)"
