//! `tfx-match` — a static subgraph matching engine (backtracking search in
//! the style of TurboHom++ [17], simplified).
//!
//! TurboFlux itself only needs a matcher for its *intermediate-result-aware*
//! `SubgraphSearch`, which lives in `tfx-core`. This crate provides the
//! classic *data-graph* matcher the paper's ecosystem depends on:
//!
//! * the IncIsoMat baseline runs a full static match on the affected
//!   subgraph before and after each update,
//! * the naive-recompute baseline (and the test oracle) match the whole
//!   graph per update,
//! * the selectivity study (Fig. 17) counts positive matches per query.
//!
//! The matcher supports both graph homomorphism and subgraph isomorphism,
//! directed labeled edges, wildcard edge labels, and multi-label vertices.

pub mod backtrack;
pub mod candidates;
pub mod order;

pub use backtrack::{
    count_matches, enumerate_matches, enumerate_matches_with, match_set, Enumeration,
    ExtendStrategy,
};
pub use candidates::{candidate_vertices, NeighborhoodFilter};
pub use order::matching_order;
