//! Matching-order selection for the static matcher.
//!
//! Classic candidate-size-first heuristic: start from the query vertex with
//! the fewest candidates, then repeatedly append the connected (already
//! adjacent to the chosen prefix) vertex with the fewest candidates. A
//! connected order guarantees every vertex after the first can be enumerated
//! from a matched neighbor's adjacency list instead of the whole graph.

use tfx_graph::DynamicGraph;
use tfx_query::{QVertexId, QueryGraph};

use crate::candidates::candidate_vertices;

/// Computes a connected matching order for `q` against `g`.
///
/// Panics if `q` is empty or disconnected.
pub fn matching_order(g: &DynamicGraph, q: &QueryGraph) -> Vec<QVertexId> {
    assert!(q.vertex_count() > 0, "empty query");
    assert!(q.is_connected(), "query must be connected");
    let n = q.vertex_count();
    let card: Vec<usize> = q.vertices().map(|u| candidate_vertices(g, q, u).len()).collect();

    let mut order = Vec::with_capacity(n);
    let mut chosen = vec![false; n];
    let first = q.vertices().min_by_key(|u| (card[u.index()], u.index())).expect("non-empty query");
    order.push(first);
    chosen[first.index()] = true;

    while order.len() < n {
        let next = q
            .vertices()
            .filter(|&u| !chosen[u.index()])
            .filter(|&u| {
                q.out_adj(u).iter().chain(q.in_adj(u).iter()).any(|&(w, _)| chosen[w.index()])
            })
            .min_by_key(|u| (card[u.index()], u.index()))
            .expect("connected query always has an adjacent unchosen vertex");
        order.push(next);
        chosen[next.index()] = true;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{LabelId, LabelSet};

    #[test]
    fn order_is_connected_and_complete() {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        let c = q.add_vertex(LabelSet::empty());
        let d = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(b, c, None);
        q.add_edge(c, d, None);
        let g = DynamicGraph::new();
        let order = matching_order(&g, &q);
        assert_eq!(order.len(), 4);
        let mut seen = [false; 4];
        seen[order[0].index()] = true;
        for &u in &order[1..] {
            assert!(
                q.out_adj(u).iter().chain(q.in_adj(u).iter()).any(|&(w, _)| seen[w.index()]),
                "vertex {u} not adjacent to prefix"
            );
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rare_label_goes_first() {
        let mut g = DynamicGraph::new();
        let rare = LabelSet::single(LabelId(0));
        let common = LabelSet::single(LabelId(1));
        let r = g.add_vertex(rare.clone());
        let mut last = r;
        for _ in 0..5 {
            let v = g.add_vertex(common.clone());
            g.insert_edge(last, LabelId(9), v);
            last = v;
        }
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(common.clone());
        let u1 = q.add_vertex(rare);
        q.add_edge(u1, u0, None);
        let order = matching_order(&g, &q);
        assert_eq!(order[0], u1, "vertex with 1 candidate ordered first");
    }
}
