//! Backtracking enumeration of homomorphisms / isomorphisms.

use rustc_hash::FxHashSet;
use tfx_graph::{intersect_into, AdjacencyMode, DynamicGraph, LabeledNeighbors, VertexId};
use tfx_query::{MatchRecord, MatchSemantics, QVertexId, QueryGraph};

use crate::candidates::NeighborhoodFilter;
use crate::order::matching_order;

/// Result summary of an enumeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Enumeration {
    /// Number of matches delivered to the sink.
    pub matches: u64,
    /// False iff the sink aborted the search early.
    pub completed: bool,
}

/// How candidates for the next query vertex are produced once at least one
/// of its neighbors is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtendStrategy {
    /// Scan the single cheapest bound neighbor's adjacency list and let
    /// `joinable` reject candidates edge by edge (hash-probe per edge).
    PivotScan,
    /// Intersect *all* bound neighbors' sorted adjacency runs through the
    /// vectorized kernels ([`tfx_graph::intersect_into`]); `joinable` then
    /// only has to verify self-loops and wildcard-collapsed duplicates.
    #[default]
    Intersect,
}

struct Search<'a> {
    g: &'a DynamicGraph,
    q: &'a QueryGraph,
    semantics: MatchSemantics,
    strategy: ExtendStrategy,
    order: Vec<QVertexId>,
    /// One precomputed neighborhood filter per query vertex (indexed by
    /// `u.index()`), so per-candidate checks don't rebuild label lists.
    filters: Vec<NeighborhoodFilter>,
    mapping: Vec<Option<VertexId>>,
    used: FxHashSet<VertexId>,
    found: u64,
}

/// A candidate source list: either a zero-copy borrow of a promoted
/// adjacency run or a materialized (sorted, duplicate-free) buffer.
enum SrcList<'g> {
    Borrowed(&'g [VertexId]),
    Owned(Vec<VertexId>),
}

impl SrcList<'_> {
    fn as_slice(&self) -> &[VertexId] {
        match self {
            SrcList::Borrowed(s) => s,
            SrcList::Owned(v) => v,
        }
    }
}

fn push_run<'g>(sources: &mut Vec<SrcList<'g>>, run: LabeledNeighbors<'g>) {
    match run.as_id_slice() {
        Some(ids) => sources.push(SrcList::Borrowed(ids)),
        None => {
            let mut buf = Vec::with_capacity(run.len());
            run.extend_into(&mut buf);
            sources.push(SrcList::Owned(buf));
        }
    }
}

impl<'a> Search<'a> {
    /// Verifies every query edge between `u` (about to be mapped to `v`) and
    /// already-mapped query vertices, plus self-loops on `u`.
    fn joinable(&self, u: QVertexId, v: VertexId) -> bool {
        for &(w, e) in self.q.out_adj(u) {
            if w == u {
                // self-loop: needs a data self-loop at v
                if !self.g.has_edge_matching(v, v, self.q.edge(e).label) {
                    return false;
                }
                continue;
            }
            if let Some(mw) = self.mapping[w.index()] {
                if !self.g.has_edge_matching(v, mw, self.q.edge(e).label) {
                    return false;
                }
            }
        }
        for &(w, e) in self.q.in_adj(u) {
            if w == u {
                continue; // self-loop handled above
            }
            if let Some(mw) = self.mapping[w.index()] {
                if !self.g.has_edge_matching(mw, v, self.q.edge(e).label) {
                    return false;
                }
            }
        }
        true
    }

    /// Candidates for `order[depth]`, enumerated from the cheapest matched
    /// neighbor's adjacency list.
    fn candidates_from_pivot(&self, u: QVertexId) -> Vec<VertexId> {
        // (pivot data vertex, true = follow out-edges of pivot)
        let mut best: Option<(usize, VertexId, bool, Option<tfx_graph::LabelId>)> = None;
        for &(w, e) in self.q.in_adj(u) {
            if w == u {
                continue;
            }
            if let Some(mw) = self.mapping[w.index()] {
                // edge w -> u: follow out-edges of m(w); a concrete edge
                // label narrows the cost to its own group.
                let label = self.q.edge(e).label;
                let cost = match label {
                    Some(l) => self.g.out_degree_labeled(mw, l),
                    None => self.g.out_degree(mw),
                };
                if best.is_none_or(|(c, _, _, _)| cost < c) {
                    best = Some((cost, mw, true, label));
                }
            }
        }
        for &(w, e) in self.q.out_adj(u) {
            if w == u {
                continue;
            }
            if let Some(mw) = self.mapping[w.index()] {
                // edge u -> w: follow in-edges of m(w)
                let label = self.q.edge(e).label;
                let cost = match label {
                    Some(l) => self.g.in_degree_labeled(mw, l),
                    None => self.g.in_degree(mw),
                };
                if best.is_none_or(|(c, _, _, _)| cost < c) {
                    best = Some((cost, mw, false, label));
                }
            }
        }
        let (_, pivot, follow_out, label) =
            best.expect("connected matching order guarantees a mapped neighbor");
        let mut out: Vec<VertexId> = if follow_out {
            self.g.out_neighbors_matching(pivot, label, AdjacencyMode::Indexed).collect()
        } else {
            self.g.in_neighbors_matching(pivot, label, AdjacencyMode::Indexed).collect()
        };
        // A concrete label yields one already-sorted, duplicate-free group;
        // the wildcard path can repeat neighbors across label groups.
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidates for `u` as the intersection of *every* bound neighbor's
    /// relevant adjacency run, folded smallest-first through the graph
    /// crate's merge/gallop kernels.
    ///
    /// Equivalent to [`Search::candidates_from_pivot`] filtered by
    /// `joinable`: membership in the run of `m(w)` for edge `(u, w)` is
    /// exactly the `has_edge_matching` probe `joinable` applies for that
    /// edge, so the intersection drops only candidates `joinable` would
    /// reject — and the result stays sorted, so enumeration order is
    /// deterministic without a sort+dedup pass.
    fn candidates_intersect(&self, u: QVertexId) -> Vec<VertexId> {
        let mut sources: Vec<SrcList<'a>> = Vec::new();
        for &(w, e) in self.q.in_adj(u) {
            if w == u {
                continue; // self-loops are joinable's job
            }
            let Some(mw) = self.mapping[w.index()] else { continue };
            // edge w -> u: candidates live among out-neighbors of m(w)
            match self.q.edge(e).label {
                Some(l) => push_run(&mut sources, self.g.out_neighbors_labeled(mw, l)),
                None => {
                    let mut buf: Vec<VertexId> =
                        self.g.out_neighbors_matching(mw, None, AdjacencyMode::Indexed).collect();
                    buf.sort_unstable();
                    buf.dedup();
                    sources.push(SrcList::Owned(buf));
                }
            }
        }
        for &(w, e) in self.q.out_adj(u) {
            if w == u {
                continue;
            }
            let Some(mw) = self.mapping[w.index()] else { continue };
            // edge u -> w: candidates live among in-neighbors of m(w)
            match self.q.edge(e).label {
                Some(l) => push_run(&mut sources, self.g.in_neighbors_labeled(mw, l)),
                None => {
                    let mut buf: Vec<VertexId> =
                        self.g.in_neighbors_matching(mw, None, AdjacencyMode::Indexed).collect();
                    buf.sort_unstable();
                    buf.dedup();
                    sources.push(SrcList::Owned(buf));
                }
            }
        }
        // Smallest-first keeps every intermediate no larger than the
        // smallest source and lets the gallop kernel exploit size skew.
        sources.sort_by_key(|s| s.as_slice().len());
        let mut iter = sources.iter();
        let first = iter.next().expect("connected matching order guarantees a mapped neighbor");
        let mut cur: Vec<VertexId> = first.as_slice().to_vec();
        let mut tmp: Vec<VertexId> = Vec::new();
        for s in iter {
            if cur.is_empty() {
                break;
            }
            tmp.clear();
            intersect_into(&cur, s.as_slice(), &mut tmp);
            std::mem::swap(&mut cur, &mut tmp);
        }
        cur
    }

    fn recurse(&mut self, depth: usize, sink: &mut dyn FnMut(&MatchRecord) -> bool) -> bool {
        if depth == self.order.len() {
            self.found += 1;
            let rec = MatchRecord::from_partial(&self.mapping);
            return sink(&rec);
        }
        let u = self.order[depth];
        let cands = if depth == 0 {
            let filter = &self.filters[u.index()];
            self.g.vertices().filter(|&v| filter.matches(self.g, v)).collect()
        } else {
            match self.strategy {
                ExtendStrategy::PivotScan => self.candidates_from_pivot(u),
                ExtendStrategy::Intersect => self.candidates_intersect(u),
            }
        };
        for v in cands {
            if self.semantics == MatchSemantics::Isomorphism && self.used.contains(&v) {
                continue;
            }
            if !self.filters[u.index()].matches(self.g, v) {
                continue;
            }
            if !self.joinable(u, v) {
                continue;
            }
            self.mapping[u.index()] = Some(v);
            if self.semantics == MatchSemantics::Isomorphism {
                self.used.insert(v);
            }
            let keep_going = self.recurse(depth + 1, sink);
            self.mapping[u.index()] = None;
            if self.semantics == MatchSemantics::Isomorphism {
                self.used.remove(&v);
            }
            if !keep_going {
                return false;
            }
        }
        true
    }
}

/// Enumerates every match of `q` in `g` under `semantics`, streaming each
/// into `sink`. The sink returns `false` to abort the search early.
///
/// Uses the default [`ExtendStrategy::Intersect`]; see
/// [`enumerate_matches_with`] to pick the extension strategy explicitly
/// (benchmark ablations, mostly).
pub fn enumerate_matches(
    g: &DynamicGraph,
    q: &QueryGraph,
    semantics: MatchSemantics,
    sink: &mut dyn FnMut(&MatchRecord) -> bool,
) -> Enumeration {
    enumerate_matches_with(g, q, semantics, ExtendStrategy::default(), sink)
}

/// [`enumerate_matches`] with an explicit candidate-extension strategy.
pub fn enumerate_matches_with(
    g: &DynamicGraph,
    q: &QueryGraph,
    semantics: MatchSemantics,
    strategy: ExtendStrategy,
    sink: &mut dyn FnMut(&MatchRecord) -> bool,
) -> Enumeration {
    let order = matching_order(g, q);
    let filters = q.vertices().map(|u| NeighborhoodFilter::new(q, u)).collect();
    let mut search = Search {
        g,
        q,
        semantics,
        strategy,
        order,
        filters,
        mapping: vec![None; q.vertex_count()],
        used: FxHashSet::default(),
        found: 0,
    };
    let completed = search.recurse(0, sink);
    Enumeration { matches: search.found, completed }
}

/// Counts matches without materializing them.
pub fn count_matches(g: &DynamicGraph, q: &QueryGraph, semantics: MatchSemantics) -> u64 {
    enumerate_matches(g, q, semantics, &mut |_| true).matches
}

/// Collects all matches into a set (the oracle representation: matches are
/// *sets* of mappings, per the problem statement).
pub fn match_set(
    g: &DynamicGraph,
    q: &QueryGraph,
    semantics: MatchSemantics,
) -> FxHashSet<MatchRecord> {
    let mut out = FxHashSet::default();
    enumerate_matches(g, q, semantics, &mut |m| {
        let fresh = out.insert(m.clone());
        debug_assert!(fresh, "backtracking enumeration must not produce duplicates");
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{LabelId, LabelSet};

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// Data: a0 -> {b0, b1}, a1 -> b0. Query: A -> B.
    fn simple() -> (DynamicGraph, QueryGraph) {
        let mut g = DynamicGraph::new();
        let a0 = g.add_vertex(LabelSet::single(l(0)));
        let a1 = g.add_vertex(LabelSet::single(l(0)));
        let b0 = g.add_vertex(LabelSet::single(l(1)));
        let b1 = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a0, l(9), b0);
        g.insert_edge(a0, l(9), b1);
        g.insert_edge(a1, l(9), b0);
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(u0, u1, Some(l(9)));
        (g, q)
    }

    #[test]
    fn single_edge_query() {
        let (g, q) = simple();
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 3);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Isomorphism), 3);
    }

    #[test]
    fn homomorphism_vs_isomorphism() {
        // Query path B <- A -> B can map both Bs to the same data vertex
        // under homomorphism but not isomorphism.
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a, l(9), b);
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        let u2 = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(u0, u1, Some(l(9)));
        q.add_edge(u0, u2, Some(l(9)));
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 1);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Isomorphism), 0);
    }

    #[test]
    fn triangle_query() {
        let mut g = DynamicGraph::new();
        let v: Vec<_> = (0..4).map(|_| g.add_vertex(LabelSet::empty())).collect();
        // One directed triangle 0->1->2->0 plus a distractor edge 0->3.
        g.insert_edge(v[0], l(0), v[1]);
        g.insert_edge(v[1], l(0), v[2]);
        g.insert_edge(v[2], l(0), v[0]);
        g.insert_edge(v[0], l(0), v[3]);
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        let c = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(b, c, None);
        q.add_edge(c, a, None);
        // Three rotations of the triangle.
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 3);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Isomorphism), 3);
    }

    #[test]
    fn self_loop_query() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::empty());
        let b = g.add_vertex(LabelSet::empty());
        g.insert_edge(a, l(0), a);
        g.insert_edge(a, l(0), b);
        let mut q = QueryGraph::new();
        let u = q.add_vertex(LabelSet::empty());
        q.add_edge(u, u, None);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 1);
    }

    #[test]
    fn early_abort() {
        let (g, q) = simple();
        let mut seen = 0;
        let res = enumerate_matches(&g, &q, MatchSemantics::Homomorphism, &mut |_| {
            seen += 1;
            seen < 2
        });
        assert_eq!(res.matches, 2);
        assert!(!res.completed);
    }

    #[test]
    fn match_set_contents() {
        let (g, q) = simple();
        let set = match_set(&g, &q, MatchSemantics::Homomorphism);
        assert_eq!(set.len(), 3);
        assert!(set.contains(&MatchRecord::new(vec![VertexId(0), VertexId(2)])));
        assert!(set.contains(&MatchRecord::new(vec![VertexId(0), VertexId(3)])));
        assert!(set.contains(&MatchRecord::new(vec![VertexId(1), VertexId(2)])));
    }

    #[test]
    fn wildcard_vertex_and_edge_labels() {
        let (g, q0) = simple();
        let _ = q0;
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, None);
        // every data edge matches: 3
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 3);
    }

    /// Both extension strategies must enumerate the same match set — the
    /// intersection path only pre-applies checks `joinable` would make.
    #[test]
    fn strategies_agree_on_random_graph() {
        let mut state = 0x9e37_79b9_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut g = DynamicGraph::new();
        let n = 40u64;
        for i in 0..n {
            g.add_vertex(LabelSet::single(l((i % 3) as u32)));
        }
        for _ in 0..300 {
            let s = VertexId((rng() % n) as u32);
            let d = VertexId((rng() % n) as u32);
            let lab = l((rng() % 3) as u32);
            if !g.has_edge(s, lab, d) {
                g.insert_edge(s, lab, d);
            }
        }

        // Labeled triangle, wildcard path, and a diamond with a repeated
        // label exercise concrete runs, wildcard lists, and dedup.
        let mut queries = Vec::new();
        {
            let mut q = QueryGraph::new();
            let a = q.add_vertex(LabelSet::single(l(0)));
            let b = q.add_vertex(LabelSet::single(l(1)));
            let c = q.add_vertex(LabelSet::empty());
            q.add_edge(a, b, Some(l(0)));
            q.add_edge(b, c, Some(l(1)));
            q.add_edge(c, a, Some(l(2)));
            queries.push(q);
        }
        {
            let mut q = QueryGraph::new();
            let a = q.add_vertex(LabelSet::empty());
            let b = q.add_vertex(LabelSet::empty());
            let c = q.add_vertex(LabelSet::empty());
            q.add_edge(a, b, None);
            q.add_edge(b, c, None);
            queries.push(q);
        }
        {
            let mut q = QueryGraph::new();
            let a = q.add_vertex(LabelSet::empty());
            let b = q.add_vertex(LabelSet::single(l(1)));
            let c = q.add_vertex(LabelSet::single(l(2)));
            let d = q.add_vertex(LabelSet::empty());
            q.add_edge(a, b, Some(l(0)));
            q.add_edge(a, c, Some(l(0)));
            q.add_edge(b, d, None);
            q.add_edge(c, d, Some(l(1)));
            queries.push(q);
        }

        for q in &queries {
            for sem in [MatchSemantics::Homomorphism, MatchSemantics::Isomorphism] {
                let mut pivot = FxHashSet::default();
                enumerate_matches_with(&g, q, sem, ExtendStrategy::PivotScan, &mut |m| {
                    pivot.insert(m.clone());
                    true
                });
                let mut isect = FxHashSet::default();
                enumerate_matches_with(&g, q, sem, ExtendStrategy::Intersect, &mut |m| {
                    assert!(isect.insert(m.clone()), "intersect path produced a duplicate");
                    true
                });
                assert_eq!(pivot, isect, "strategies disagree ({sem:?})");
            }
        }
    }

    #[test]
    fn no_match_when_labels_absent() {
        let (g, _) = simple();
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(7)));
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, None);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 0);
    }
}
