//! Backtracking enumeration of homomorphisms / isomorphisms.

use rustc_hash::FxHashSet;
use tfx_graph::{AdjacencyMode, DynamicGraph, VertexId};
use tfx_query::{MatchRecord, MatchSemantics, QVertexId, QueryGraph};

use crate::candidates::{candidate_vertices, vertex_matches};
use crate::order::matching_order;

/// Result summary of an enumeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Enumeration {
    /// Number of matches delivered to the sink.
    pub matches: u64,
    /// False iff the sink aborted the search early.
    pub completed: bool,
}

struct Search<'a> {
    g: &'a DynamicGraph,
    q: &'a QueryGraph,
    semantics: MatchSemantics,
    order: Vec<QVertexId>,
    mapping: Vec<Option<VertexId>>,
    used: FxHashSet<VertexId>,
    found: u64,
}

impl<'a> Search<'a> {
    /// Verifies every query edge between `u` (about to be mapped to `v`) and
    /// already-mapped query vertices, plus self-loops on `u`.
    fn joinable(&self, u: QVertexId, v: VertexId) -> bool {
        for &(w, e) in self.q.out_adj(u) {
            if w == u {
                // self-loop: needs a data self-loop at v
                if !self.g.has_edge_matching(v, v, self.q.edge(e).label) {
                    return false;
                }
                continue;
            }
            if let Some(mw) = self.mapping[w.index()] {
                if !self.g.has_edge_matching(v, mw, self.q.edge(e).label) {
                    return false;
                }
            }
        }
        for &(w, e) in self.q.in_adj(u) {
            if w == u {
                continue; // self-loop handled above
            }
            if let Some(mw) = self.mapping[w.index()] {
                if !self.g.has_edge_matching(mw, v, self.q.edge(e).label) {
                    return false;
                }
            }
        }
        true
    }

    /// Candidates for `order[depth]`, enumerated from the cheapest matched
    /// neighbor's adjacency list.
    fn candidates_from_pivot(&self, u: QVertexId) -> Vec<VertexId> {
        // (pivot data vertex, true = follow out-edges of pivot)
        let mut best: Option<(usize, VertexId, bool, Option<tfx_graph::LabelId>)> = None;
        for &(w, e) in self.q.in_adj(u) {
            if w == u {
                continue;
            }
            if let Some(mw) = self.mapping[w.index()] {
                // edge w -> u: follow out-edges of m(w); a concrete edge
                // label narrows the cost to its own group.
                let label = self.q.edge(e).label;
                let cost = match label {
                    Some(l) => self.g.out_degree_labeled(mw, l),
                    None => self.g.out_degree(mw),
                };
                if best.is_none_or(|(c, _, _, _)| cost < c) {
                    best = Some((cost, mw, true, label));
                }
            }
        }
        for &(w, e) in self.q.out_adj(u) {
            if w == u {
                continue;
            }
            if let Some(mw) = self.mapping[w.index()] {
                // edge u -> w: follow in-edges of m(w)
                let label = self.q.edge(e).label;
                let cost = match label {
                    Some(l) => self.g.in_degree_labeled(mw, l),
                    None => self.g.in_degree(mw),
                };
                if best.is_none_or(|(c, _, _, _)| cost < c) {
                    best = Some((cost, mw, false, label));
                }
            }
        }
        let (_, pivot, follow_out, label) =
            best.expect("connected matching order guarantees a mapped neighbor");
        let mut out: Vec<VertexId> = if follow_out {
            self.g.out_neighbors_matching(pivot, label, AdjacencyMode::Indexed).collect()
        } else {
            self.g.in_neighbors_matching(pivot, label, AdjacencyMode::Indexed).collect()
        };
        // A concrete label yields one already-sorted, duplicate-free group;
        // the wildcard path can repeat neighbors across label groups.
        out.sort_unstable();
        out.dedup();
        out
    }

    fn recurse(&mut self, depth: usize, sink: &mut dyn FnMut(&MatchRecord) -> bool) -> bool {
        if depth == self.order.len() {
            self.found += 1;
            let rec = MatchRecord::from_partial(&self.mapping);
            return sink(&rec);
        }
        let u = self.order[depth];
        let cands = if depth == 0 {
            candidate_vertices(self.g, self.q, u)
        } else {
            self.candidates_from_pivot(u)
        };
        for v in cands {
            if self.semantics == MatchSemantics::Isomorphism && self.used.contains(&v) {
                continue;
            }
            if !vertex_matches(self.g, self.q, u, v) {
                continue;
            }
            if !self.joinable(u, v) {
                continue;
            }
            self.mapping[u.index()] = Some(v);
            if self.semantics == MatchSemantics::Isomorphism {
                self.used.insert(v);
            }
            let keep_going = self.recurse(depth + 1, sink);
            self.mapping[u.index()] = None;
            if self.semantics == MatchSemantics::Isomorphism {
                self.used.remove(&v);
            }
            if !keep_going {
                return false;
            }
        }
        true
    }
}

/// Enumerates every match of `q` in `g` under `semantics`, streaming each
/// into `sink`. The sink returns `false` to abort the search early.
pub fn enumerate_matches(
    g: &DynamicGraph,
    q: &QueryGraph,
    semantics: MatchSemantics,
    sink: &mut dyn FnMut(&MatchRecord) -> bool,
) -> Enumeration {
    let order = matching_order(g, q);
    let mut search = Search {
        g,
        q,
        semantics,
        order,
        mapping: vec![None; q.vertex_count()],
        used: FxHashSet::default(),
        found: 0,
    };
    let completed = search.recurse(0, sink);
    Enumeration { matches: search.found, completed }
}

/// Counts matches without materializing them.
pub fn count_matches(g: &DynamicGraph, q: &QueryGraph, semantics: MatchSemantics) -> u64 {
    enumerate_matches(g, q, semantics, &mut |_| true).matches
}

/// Collects all matches into a set (the oracle representation: matches are
/// *sets* of mappings, per the problem statement).
pub fn match_set(
    g: &DynamicGraph,
    q: &QueryGraph,
    semantics: MatchSemantics,
) -> FxHashSet<MatchRecord> {
    let mut out = FxHashSet::default();
    enumerate_matches(g, q, semantics, &mut |m| {
        let fresh = out.insert(m.clone());
        debug_assert!(fresh, "backtracking enumeration must not produce duplicates");
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{LabelId, LabelSet};

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// Data: a0 -> {b0, b1}, a1 -> b0. Query: A -> B.
    fn simple() -> (DynamicGraph, QueryGraph) {
        let mut g = DynamicGraph::new();
        let a0 = g.add_vertex(LabelSet::single(l(0)));
        let a1 = g.add_vertex(LabelSet::single(l(0)));
        let b0 = g.add_vertex(LabelSet::single(l(1)));
        let b1 = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a0, l(9), b0);
        g.insert_edge(a0, l(9), b1);
        g.insert_edge(a1, l(9), b0);
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(u0, u1, Some(l(9)));
        (g, q)
    }

    #[test]
    fn single_edge_query() {
        let (g, q) = simple();
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 3);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Isomorphism), 3);
    }

    #[test]
    fn homomorphism_vs_isomorphism() {
        // Query path B <- A -> B can map both Bs to the same data vertex
        // under homomorphism but not isomorphism.
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a, l(9), b);
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        let u2 = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(u0, u1, Some(l(9)));
        q.add_edge(u0, u2, Some(l(9)));
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 1);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Isomorphism), 0);
    }

    #[test]
    fn triangle_query() {
        let mut g = DynamicGraph::new();
        let v: Vec<_> = (0..4).map(|_| g.add_vertex(LabelSet::empty())).collect();
        // One directed triangle 0->1->2->0 plus a distractor edge 0->3.
        g.insert_edge(v[0], l(0), v[1]);
        g.insert_edge(v[1], l(0), v[2]);
        g.insert_edge(v[2], l(0), v[0]);
        g.insert_edge(v[0], l(0), v[3]);
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        let c = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(b, c, None);
        q.add_edge(c, a, None);
        // Three rotations of the triangle.
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 3);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Isomorphism), 3);
    }

    #[test]
    fn self_loop_query() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::empty());
        let b = g.add_vertex(LabelSet::empty());
        g.insert_edge(a, l(0), a);
        g.insert_edge(a, l(0), b);
        let mut q = QueryGraph::new();
        let u = q.add_vertex(LabelSet::empty());
        q.add_edge(u, u, None);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 1);
    }

    #[test]
    fn early_abort() {
        let (g, q) = simple();
        let mut seen = 0;
        let res = enumerate_matches(&g, &q, MatchSemantics::Homomorphism, &mut |_| {
            seen += 1;
            seen < 2
        });
        assert_eq!(res.matches, 2);
        assert!(!res.completed);
    }

    #[test]
    fn match_set_contents() {
        let (g, q) = simple();
        let set = match_set(&g, &q, MatchSemantics::Homomorphism);
        assert_eq!(set.len(), 3);
        assert!(set.contains(&MatchRecord::new(vec![VertexId(0), VertexId(2)])));
        assert!(set.contains(&MatchRecord::new(vec![VertexId(0), VertexId(3)])));
        assert!(set.contains(&MatchRecord::new(vec![VertexId(1), VertexId(2)])));
    }

    #[test]
    fn wildcard_vertex_and_edge_labels() {
        let (g, q0) = simple();
        let _ = q0;
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, None);
        // every data edge matches: 3
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 3);
    }

    #[test]
    fn no_match_when_labels_absent() {
        let (g, _) = simple();
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(7)));
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, None);
        assert_eq!(count_matches(&g, &q, MatchSemantics::Homomorphism), 0);
    }
}
