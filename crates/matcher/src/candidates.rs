//! Candidate filtering: cheap necessary conditions for `m(u) = v`.

use tfx_graph::{DynamicGraph, VertexId};
use tfx_query::{QVertexId, QueryGraph};

/// True iff `v` passes the label and neighborhood-structure filters for `u`.
///
/// Conditions (all necessary under homomorphism, hence also isomorphism):
/// * `L(u) ⊆ L(v)`;
/// * for every concrete out-edge label of `u`, `v` has at least one out-edge
///   with that label (and symmetrically for in-edges);
/// * if `u` has any out-edge (resp. in-edge), so does `v`.
///
/// Degree counting is deliberately "at least one per distinct label" rather
/// than per-edge: under homomorphism several query edges may map onto the
/// same data edge.
pub fn vertex_matches(g: &DynamicGraph, q: &QueryGraph, u: QVertexId, v: VertexId) -> bool {
    if !q.labels(u).is_subset_of(g.labels(v)) {
        return false;
    }
    let out_q = q.out_adj(u);
    let in_q = q.in_adj(u);
    if !out_q.is_empty() && g.out_degree(v) == 0 {
        return false;
    }
    if !in_q.is_empty() && g.in_degree(v) == 0 {
        return false;
    }
    for &(_, e) in out_q {
        if let Some(l) = q.edge(e).label {
            if !g.has_out_label(v, l) {
                return false;
            }
        }
    }
    for &(_, e) in in_q {
        if let Some(l) = q.edge(e).label {
            if !g.has_in_label(v, l) {
                return false;
            }
        }
    }
    true
}

/// All data vertices passing [`vertex_matches`] for `u`.
pub fn candidate_vertices(g: &DynamicGraph, q: &QueryGraph, u: QVertexId) -> Vec<VertexId> {
    g.vertices().filter(|&v| vertex_matches(g, q, u, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{LabelId, LabelSet};

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    #[test]
    fn label_filter() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        let mut q = QueryGraph::new();
        let u = q.add_vertex(LabelSet::single(l(0)));
        assert!(vertex_matches(&g, &q, u, a));
        assert!(!vertex_matches(&g, &q, u, b));
    }

    #[test]
    fn structural_filter() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::empty());
        let b = g.add_vertex(LabelSet::empty());
        let c = g.add_vertex(LabelSet::empty());
        g.insert_edge(a, l(5), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, Some(l(5)));

        // u0 needs an out-edge labeled 5: only `a` qualifies.
        assert_eq!(candidate_vertices(&g, &q, u0), vec![a]);
        // u1 needs an in-edge labeled 5: only `b` qualifies.
        assert_eq!(candidate_vertices(&g, &q, u1), vec![b]);
        let _ = c;
    }

    #[test]
    fn wildcard_edge_only_requires_some_edge() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::empty());
        let b = g.add_vertex(LabelSet::empty());
        let iso = g.add_vertex(LabelSet::empty());
        g.insert_edge(a, l(1), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, None);
        assert!(vertex_matches(&g, &q, u0, a));
        assert!(!vertex_matches(&g, &q, u0, iso), "isolated vertex has no out edge");
        assert!(!vertex_matches(&g, &q, u0, b), "b has no out edge");
    }
}
