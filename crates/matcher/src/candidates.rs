//! Candidate filtering: cheap necessary conditions for `m(u) = v`.

use tfx_graph::{DynamicGraph, LabelId, LabelSet, VertexId};
use tfx_query::{QVertexId, QueryGraph};

/// Precomputed neighborhood-structure filter for one query vertex.
///
/// The per-candidate filter asks, for every *distinct* concrete edge label
/// incident to `u`, whether `v` has at least one matching out/in edge.
/// Probing `has_out_label` per query edge re-locates one label run per
/// probe; this filter instead sorts the required labels once at
/// construction and [`NeighborhoodFilter::matches`] merge-joins them
/// against the vertex's label runs — one pass over each direction's runs
/// per candidate, regardless of how many query edges ask.
#[derive(Clone, Debug)]
pub struct NeighborhoodFilter {
    /// Vertex labels `v` must carry (`L(u) ⊆ L'(v)`).
    labels: LabelSet,
    /// Sorted, duplicate-free concrete labels required among out-edges.
    out_labels: Vec<LabelId>,
    /// Sorted, duplicate-free concrete labels required among in-edges.
    in_labels: Vec<LabelId>,
    /// `u` has at least one out-edge (resp. in-edge) — wildcard-labeled
    /// edges still demand *some* edge in that direction.
    needs_out: bool,
    needs_in: bool,
}

impl NeighborhoodFilter {
    /// Builds the filter for `u`. Hot enumeration loops construct one per
    /// query vertex up front and reuse it across candidates.
    pub fn new(q: &QueryGraph, u: QVertexId) -> Self {
        let collect = |adj: &[(QVertexId, tfx_query::EdgeId)]| {
            let mut labels: Vec<LabelId> =
                adj.iter().filter_map(|&(_, e)| q.edge(e).label).collect();
            labels.sort_unstable();
            labels.dedup();
            labels
        };
        NeighborhoodFilter {
            labels: q.labels(u).clone(),
            out_labels: collect(q.out_adj(u)),
            in_labels: collect(q.in_adj(u)),
            needs_out: !q.out_adj(u).is_empty(),
            needs_in: !q.in_adj(u).is_empty(),
        }
    }

    /// True iff every required label appears among the vertex's label runs
    /// (both sorted ascending — a single merge-join pass).
    fn runs_cover(required: &[LabelId], runs: impl Iterator<Item = (LabelId, usize)>) -> bool {
        let mut i = 0;
        if required.is_empty() {
            return true;
        }
        for (label, _) in runs {
            if required[i] < label {
                return false; // runs are ascending: required[i] cannot appear later
            }
            if required[i] == label {
                i += 1;
                if i == required.len() {
                    return true;
                }
            }
        }
        false
    }

    /// True iff `v` passes the label and neighborhood-structure filters.
    pub fn matches(&self, g: &DynamicGraph, v: VertexId) -> bool {
        if !self.labels.is_subset_of(g.labels(v)) {
            return false;
        }
        if self.needs_out && g.out_degree(v) == 0 {
            return false;
        }
        if self.needs_in && g.in_degree(v) == 0 {
            return false;
        }
        Self::runs_cover(&self.out_labels, g.out_label_runs(v))
            && Self::runs_cover(&self.in_labels, g.in_label_runs(v))
    }
}

/// True iff `v` passes the label and neighborhood-structure filters for `u`.
///
/// Conditions (all necessary under homomorphism, hence also isomorphism):
/// * `L(u) ⊆ L(v)`;
/// * for every concrete out-edge label of `u`, `v` has at least one out-edge
///   with that label (and symmetrically for in-edges);
/// * if `u` has any out-edge (resp. in-edge), so does `v`.
///
/// Degree counting is deliberately "at least one per distinct label" rather
/// than per-edge: under homomorphism several query edges may map onto the
/// same data edge.
///
/// One-shot convenience over [`NeighborhoodFilter`]; loops testing many
/// candidates against the same `u` should build the filter once instead.
pub fn vertex_matches(g: &DynamicGraph, q: &QueryGraph, u: QVertexId, v: VertexId) -> bool {
    NeighborhoodFilter::new(q, u).matches(g, v)
}

/// All data vertices passing [`vertex_matches`] for `u`.
pub fn candidate_vertices(g: &DynamicGraph, q: &QueryGraph, u: QVertexId) -> Vec<VertexId> {
    let filter = NeighborhoodFilter::new(q, u);
    g.vertices().filter(|&v| filter.matches(g, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    #[test]
    fn label_filter() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        let mut q = QueryGraph::new();
        let u = q.add_vertex(LabelSet::single(l(0)));
        assert!(vertex_matches(&g, &q, u, a));
        assert!(!vertex_matches(&g, &q, u, b));
    }

    #[test]
    fn structural_filter() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::empty());
        let b = g.add_vertex(LabelSet::empty());
        let c = g.add_vertex(LabelSet::empty());
        g.insert_edge(a, l(5), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, Some(l(5)));

        // u0 needs an out-edge labeled 5: only `a` qualifies.
        assert_eq!(candidate_vertices(&g, &q, u0), vec![a]);
        // u1 needs an in-edge labeled 5: only `b` qualifies.
        assert_eq!(candidate_vertices(&g, &q, u1), vec![b]);
        let _ = c;
    }

    #[test]
    fn wildcard_edge_only_requires_some_edge() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::empty());
        let b = g.add_vertex(LabelSet::empty());
        let iso = g.add_vertex(LabelSet::empty());
        g.insert_edge(a, l(1), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, None);
        assert!(vertex_matches(&g, &q, u0, a));
        assert!(!vertex_matches(&g, &q, u0, iso), "isolated vertex has no out edge");
        assert!(!vertex_matches(&g, &q, u0, b), "b has no out edge");
    }

    #[test]
    fn merge_join_requires_every_distinct_label() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::empty());
        let b = g.add_vertex(LabelSet::empty());
        g.insert_edge(a, l(1), b);
        g.insert_edge(a, l(3), b);
        g.insert_edge(a, l(5), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        let u2 = q.add_vertex(LabelSet::empty());
        let u3 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, Some(l(5)));
        q.add_edge(u0, u2, Some(l(1)));
        q.add_edge(u0, u3, Some(l(1))); // duplicate label: dedup'd

        let f = NeighborhoodFilter::new(&q, u0);
        assert!(f.matches(&g, a), "labels 1 and 5 both present");
        assert!(!f.matches(&g, b), "no out-edges at all");

        // A label strictly between two present runs must be caught by the
        // merge-join (1 < 2 < 3: the run scan passes 1, then sees 3 > 2).
        let mut q2 = QueryGraph::new();
        let w0 = q2.add_vertex(LabelSet::empty());
        let w1 = q2.add_vertex(LabelSet::empty());
        q2.add_edge(w0, w1, Some(l(2)));
        assert!(!NeighborhoodFilter::new(&q2, w0).matches(&g, a));
    }
}
