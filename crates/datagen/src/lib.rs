//! `tfx-datagen` — deterministic workload generators for the TurboFlux
//! reproduction (§5.1 of the paper).
//!
//! The paper evaluates on two datasets:
//!
//! * **LSBench** — a Linked-Stream-Benchmark social-media stream, scaled by
//!   a user count. We generate a structurally equivalent stream from a
//!   fixed social-media schema ([`lsbench`]): labeled entities, skewed
//!   one-to-many relations, 90% initial graph + 10% insertion stream.
//! * **Netflow** — CAIDA backbone traces: *no vertex labels, eight edge
//!   labels*, heavy-tailed degrees ([`netflow`]).
//!
//! Queries are generated per §5.1 ([`queries`]): tree queries by random
//! schema-graph traversal (sizes 3–12), cyclic "graph" queries grown from
//! triangles/squares/pentagons, plus the path and binary-tree querysets of
//! the SJ-Tree paper [7] used in Appendix B.6.
//!
//! Everything is reproducible from a `u64` seed via a small PCG generator
//! ([`rng::Pcg32`]); no external RNG crate is used so datasets are stable
//! across platforms and toolchains.

pub mod dataset;
pub mod hub;
pub mod lsbench;
pub mod netflow;
pub mod queries;
pub mod rng;
pub mod schema;
pub mod uniform;

pub use dataset::Dataset;
pub use hub::HubConfig;
pub use lsbench::LsBenchConfig;
pub use netflow::NetflowConfig;
pub use queries::QueryGenConfig;
pub use rng::Pcg32;
pub use schema::Schema;
pub use uniform::UniformConfig;
