//! A minimal PCG-XSH-RR 64/32 generator.
//!
//! Datasets and querysets must be byte-identical across platforms and
//! toolchain versions for the experiments to be reproducible, so we use a
//! 30-line fixed-algorithm generator instead of pulling in an RNG crate
//! whose stream might change between versions.

/// PCG-XSH-RR 64/32 (O'Neill 2014), the `pcg32` reference variant.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const MUL: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seeds the generator; `seed` selects the starting state, `stream`
    /// selects one of 2^63 independent sequences.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Seeds the generator on the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xDA3E39CB94B95BDB)
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MUL).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform value in `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Debiased Lemire-style rejection on 32-bit draws.
        let n = n as u64;
        if n == 1 {
            return 0;
        }
        let zone = u64::from(u32::MAX) - (u64::from(u32::MAX).wrapping_add(1) % n);
        loop {
            let x = u64::from(self.next_u32());
            if x <= zone {
                return (x % n) as usize;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        f64::from(self.next_u32()) / (f64::from(u32::MAX) + 1.0)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly picks an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A geometric-ish heavy-tailed count: `floor(base / U^alpha)` clamped
    /// to `[1, cap]` (a bounded Pareto). Drives the skewed one-to-many
    /// relations that blow up SJ-Tree's partial solutions.
    pub fn pareto_count(&mut self, base: f64, alpha: f64, cap: usize) -> usize {
        let u = self.f64().max(1e-9);
        let x = base / u.powf(alpha);
        (x as usize).clamp(1, cap)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::new(7);
        let mut b = Pcg32::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg32::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(4);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pareto_count_bounds() {
        let mut r = Pcg32::new(5);
        let mut max = 0;
        for _ in 0..1000 {
            let c = r.pareto_count(1.5, 1.0, 50);
            assert!((1..=50).contains(&c));
            max = max.max(c);
        }
        assert!(max > 5, "heavy tail should reach larger counts");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Pcg32::new(6);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle is almost surely nontrivial");
    }

    /// Reference-vector check: PCG32 with known seed/stream produces the
    /// published sequence (O'Neill's demo uses seed 42, stream 54).
    #[test]
    fn matches_pcg_reference_vector() {
        let mut r = Pcg32::with_stream(42, 54);
        let got: Vec<u32> = (0..6).map(|_| r.next_u32()).collect();
        assert_eq!(
            got,
            vec![0xa15c02b7, 0x7b47f409, 0xba1d3330, 0x83d2f293, 0xbfa4784b, 0xcbed606e]
        );
    }
}
