//! Schema graphs: typed vertices and typed relations.
//!
//! The paper generates tree queries "by randomly traversing schema graphs"
//! (§5.1). A schema is itself a small graph whose vertices are entity types
//! (vertex labels) and whose edges are relations (edge labels) between
//! types; both datasets expose one.

use tfx_graph::{LabelId, LabelInterner, LabelSet};

/// A typed relation `src_type -label-> dst_type` of a schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Index of the source vertex type (into [`Schema::vertex_types`]),
    pub src_type: usize,
    /// the interned edge label,
    pub label: LabelId,
    /// and the index of the destination vertex type.
    pub dst_type: usize,
}

/// A dataset schema: vertex types plus typed relations.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    vertex_type_labels: Vec<Option<LabelId>>,
    vertex_type_names: Vec<String>,
    relations: Vec<Relation>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex type; `label` is `None` for untyped vertices (as in
    /// Netflow, which has no vertex labels). Returns the type index.
    pub fn add_vertex_type(&mut self, name: &str, label: Option<LabelId>) -> usize {
        self.vertex_type_names.push(name.to_owned());
        self.vertex_type_labels.push(label);
        self.vertex_type_names.len() - 1
    }

    /// Adds a relation between two type indices.
    pub fn add_relation(&mut self, src_type: usize, label: LabelId, dst_type: usize) {
        assert!(src_type < self.type_count() && dst_type < self.type_count());
        self.relations.push(Relation { src_type, label, dst_type });
    }

    /// Number of vertex types.
    pub fn type_count(&self) -> usize {
        self.vertex_type_names.len()
    }

    /// The relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The label set for a vertex of type `t` (empty for untyped).
    pub fn type_label_set(&self, t: usize) -> LabelSet {
        match self.vertex_type_labels[t] {
            Some(l) => LabelSet::single(l),
            None => LabelSet::empty(),
        }
    }

    /// Name of type `t`.
    pub fn type_name(&self, t: usize) -> &str {
        &self.vertex_type_names[t]
    }

    /// Relations incident (either direction) to type `t`.
    pub fn incident_relations(&self, t: usize) -> Vec<Relation> {
        self.relations.iter().copied().filter(|r| r.src_type == t || r.dst_type == t).collect()
    }

    /// Relations from `t` to itself (usable for cycles of one type).
    pub fn self_relations(&self, t: usize) -> Vec<Relation> {
        self.relations.iter().copied().filter(|r| r.src_type == t && r.dst_type == t).collect()
    }
}

/// Builds the LSBench-like social-media schema (see `lsbench`).
pub fn social_schema(interner: &mut LabelInterner) -> Schema {
    let mut s = Schema::new();
    let vt = |s: &mut Schema, name: &str, it: &mut LabelInterner| {
        let l = it.intern(name);
        s.add_vertex_type(name, Some(l))
    };
    let user = vt(&mut s, "User", interner);
    let post = vt(&mut s, "Post", interner);
    let comment = vt(&mut s, "Comment", interner);
    let photo = vt(&mut s, "Photo", interner);
    let channel = vt(&mut s, "Channel", interner);
    let tag = vt(&mut s, "Tag", interner);
    let city = vt(&mut s, "City", interner);

    let rel = |s: &mut Schema, a: usize, name: &str, b: usize, it: &mut LabelInterner| {
        let l = it.intern(name);
        s.add_relation(a, l, b);
    };
    rel(&mut s, user, "knows", user, interner);
    rel(&mut s, user, "follows", channel, interner);
    rel(&mut s, user, "creatorOfPost", post, interner);
    rel(&mut s, user, "creatorOfComment", comment, interner);
    rel(&mut s, user, "creatorOfPhoto", photo, interner);
    rel(&mut s, user, "likes", post, interner);
    rel(&mut s, user, "locatedIn", city, interner);
    rel(&mut s, comment, "replyOf", post, interner);
    rel(&mut s, post, "postedIn", channel, interner);
    rel(&mut s, post, "hasTag", tag, interner);
    rel(&mut s, photo, "hasTag", tag, interner);
    rel(&mut s, photo, "takenAt", city, interner);
    s
}

/// Builds the Netflow-like schema: one untyped host type and eight
/// protocol edge labels (the paper: "Netflow has only eight edge labels
/// and no vertex label").
pub fn netflow_schema(interner: &mut LabelInterner) -> Schema {
    let mut s = Schema::new();
    let host = s.add_vertex_type("Host", None);
    for proto in ["tcp", "udp", "icmp", "gre", "esp", "sctp", "ospf", "other"] {
        let l = interner.intern(proto);
        s.add_relation(host, l, host);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_schema_shape() {
        let mut it = LabelInterner::new();
        let s = social_schema(&mut it);
        assert_eq!(s.type_count(), 7);
        assert_eq!(s.relations().len(), 12);
        assert_eq!(s.type_name(0), "User");
        assert!(!s.type_label_set(0).is_empty());
        assert_eq!(s.self_relations(0).len(), 1, "knows is the only self relation");
        assert!(s.incident_relations(0).len() >= 7);
    }

    #[test]
    fn netflow_schema_shape() {
        let mut it = LabelInterner::new();
        let s = netflow_schema(&mut it);
        assert_eq!(s.type_count(), 1);
        assert_eq!(s.relations().len(), 8);
        assert!(s.type_label_set(0).is_empty(), "hosts are unlabeled");
        assert_eq!(s.self_relations(0).len(), 8);
    }
}
