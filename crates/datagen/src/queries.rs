//! Query workload generators (§5.1 and Appendix B.6).
//!
//! * Tree queries: random traversal of the schema graph, attaching one
//!   schema-compatible triple at a time (query size = number of triples).
//! * Smaller tree queries: random edge removal keeping connectivity.
//! * Graph (cyclic) queries: a schema-compatible cycle of length 3/4/5
//!   (triangle / square / pentagon) grown to the target size with random
//!   triples.
//! * Path and complete-binary-tree queries: the querysets of the SJ-Tree
//!   paper [7] used for Appendix B.6.

use tfx_query::{QVertexId, QueryGraph};

use crate::rng::Pcg32;
use crate::schema::{Relation, Schema};

/// Configuration for building query sets.
#[derive(Clone, Debug)]
pub struct QueryGenConfig {
    /// Base RNG seed; query `i` of a set uses `seed + i`.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig { seed: 42 }
    }
}

struct Builder {
    q: QueryGraph,
    types: Vec<usize>,
}

impl Builder {
    fn new() -> Self {
        Builder { q: QueryGraph::new(), types: Vec::new() }
    }

    fn add_vertex(&mut self, schema: &Schema, ty: usize) -> QVertexId {
        self.types.push(ty);
        self.q.add_vertex(schema.type_label_set(ty))
    }

    /// Attaches a new vertex to `at` via a random schema relation incident
    /// to `at`'s type. Returns the new vertex.
    fn attach(&mut self, schema: &Schema, at: QVertexId, rng: &mut Pcg32) -> QVertexId {
        let ty = self.types[at.index()];
        let rels = schema.incident_relations(ty);
        let r = *rng.pick(&rels);
        // A self-relation can extend in either direction.
        let outward =
            if r.src_type == ty && r.dst_type == ty { rng.below(2) == 0 } else { r.src_type == ty };
        if outward {
            let nv = self.add_vertex(schema, r.dst_type);
            self.q.add_edge_dedup(at, nv, Some(r.label));
            nv
        } else {
            let nv = self.add_vertex(schema, r.src_type);
            self.q.add_edge_dedup(nv, at, Some(r.label));
            nv
        }
    }
}

// QueryGraph rejects duplicate edges; trees attach fresh vertices so
// duplicates cannot occur, but cyclic growth can collide. A tolerant
// extension trait keeps the generators simple.
trait AddEdgeDedup {
    fn add_edge_dedup(
        &mut self,
        src: QVertexId,
        dst: QVertexId,
        label: Option<tfx_graph::LabelId>,
    ) -> bool;
}

impl AddEdgeDedup for QueryGraph {
    fn add_edge_dedup(
        &mut self,
        src: QVertexId,
        dst: QVertexId,
        label: Option<tfx_graph::LabelId>,
    ) -> bool {
        if self.edges().iter().any(|e| e.src == src && e.dst == dst && e.label == label) {
            return false;
        }
        self.add_edge(src, dst, label);
        true
    }
}

/// A random tree query of `size` triples by schema traversal.
pub fn random_tree_query(schema: &Schema, size: usize, rng: &mut Pcg32) -> QueryGraph {
    assert!(size >= 1);
    let mut b = Builder::new();
    let r = *rng.pick(schema.relations());
    let s = b.add_vertex(schema, r.src_type);
    let d = b.add_vertex(schema, r.dst_type);
    b.q.add_edge(s, d, Some(r.label));
    while b.q.edge_count() < size {
        let at = QVertexId(rng.below(b.q.vertex_count()) as u32);
        b.attach(schema, at, rng);
    }
    b.q
}

/// A random path query of `size` triples (the path queryset of [7]).
pub fn random_path_query(schema: &Schema, size: usize, rng: &mut Pcg32) -> QueryGraph {
    assert!(size >= 1);
    let mut b = Builder::new();
    let r = *rng.pick(schema.relations());
    let s = b.add_vertex(schema, r.src_type);
    let d = b.add_vertex(schema, r.dst_type);
    b.q.add_edge(s, d, Some(r.label));
    let mut tail = d;
    while b.q.edge_count() < size {
        tail = b.attach(schema, tail, rng);
    }
    b.q
}

/// A complete-binary-tree query of `size` triples (the tree queryset of
/// [7]): vertex `i`'s parent is vertex `(i-1)/2`.
pub fn random_binary_tree_query(schema: &Schema, size: usize, rng: &mut Pcg32) -> QueryGraph {
    assert!(size >= 1);
    let mut b = Builder::new();
    let r = *rng.pick(schema.relations());
    let root = b.add_vertex(schema, r.src_type);
    let _ = root;
    while b.q.edge_count() < size {
        let next = b.q.vertex_count() as u32; // vertex about to be created
        let parent = QVertexId((next - 1) / 2);
        b.attach(schema, parent, rng);
    }
    b.q
}

/// A cyclic query: a schema-compatible undirected cycle of `cycle_len`
/// (3 = triangle, 4 = square, 5 = pentagon) grown with random triples to
/// `size` total. Returns `None` if no schema cycle of that length was
/// found within the attempt budget.
pub fn random_cyclic_query(
    schema: &Schema,
    cycle_len: usize,
    size: usize,
    rng: &mut Pcg32,
) -> Option<QueryGraph> {
    assert!(cycle_len >= 3 && size >= cycle_len);
    'attempt: for _ in 0..200 {
        // Random undirected walk over the type graph of length cycle_len-1,
        // then close the cycle with a compatible relation.
        let start_ty = rng.below(schema.type_count());
        let mut b = Builder::new();
        let v0 = b.add_vertex(schema, start_ty);
        let mut cur = v0;
        let mut cur_ty = start_ty;
        let mut walk: Vec<(Relation, bool)> = Vec::new(); // (relation, walked src→dst)
        for _ in 0..cycle_len - 1 {
            let rels = schema.incident_relations(cur_ty);
            if rels.is_empty() {
                continue 'attempt;
            }
            let r = *rng.pick(&rels);
            let forward = if r.src_type == cur_ty && r.dst_type == cur_ty {
                rng.below(2) == 0
            } else {
                r.src_type == cur_ty
            };
            let next_ty = if forward { r.dst_type } else { r.src_type };
            let nv = b.add_vertex(schema, next_ty);
            if forward {
                b.q.add_edge(cur, nv, Some(r.label));
            } else {
                b.q.add_edge(nv, cur, Some(r.label));
            }
            walk.push((r, forward));
            cur = nv;
            cur_ty = next_ty;
        }
        // Close back to v0.
        let closers: Vec<(Relation, bool)> = schema
            .relations()
            .iter()
            .flat_map(|&r| {
                let mut out = Vec::new();
                if r.src_type == cur_ty && r.dst_type == start_ty {
                    out.push((r, true));
                }
                if r.dst_type == cur_ty && r.src_type == start_ty {
                    out.push((r, false));
                }
                out
            })
            .collect();
        if closers.is_empty() {
            continue 'attempt;
        }
        let (r, forward) = *rng.pick(&closers);
        let added = if forward {
            b.q.add_edge_dedup(cur, v0, Some(r.label))
        } else {
            b.q.add_edge_dedup(v0, cur, Some(r.label))
        };
        if !added {
            continue 'attempt;
        }
        // Grow to the target size.
        let mut guard = 0;
        while b.q.edge_count() < size && guard < 200 {
            guard += 1;
            let at = QVertexId(rng.below(b.q.vertex_count()) as u32);
            b.attach(schema, at, rng);
        }
        if b.q.edge_count() == size {
            return Some(b.q);
        }
    }
    None
}

/// Randomly removes edges until `q` has `target_size` triples, keeping it
/// connected (the paper derives smaller tree queries from the size-12
/// set this way). Returns `None` if the target cannot be reached.
pub fn shrink_query(q: &QueryGraph, target_size: usize, rng: &mut Pcg32) -> Option<QueryGraph> {
    assert!(target_size >= 1);
    let edges: Vec<usize> = (0..q.edge_count()).collect();
    let mut keep: Vec<bool> = vec![true; q.edge_count()];
    let mut remaining = q.edge_count();
    let mut guard = 0;
    while remaining > target_size && guard < 10_000 {
        guard += 1;
        let i = *rng.pick(&edges);
        if !keep[i] {
            continue;
        }
        keep[i] = false;
        if rebuild(q, &keep).is_some() {
            remaining -= 1;
        } else {
            keep[i] = true; // removal would disconnect (or isolate)
        }
    }
    if remaining == target_size {
        rebuild(q, &keep)
    } else {
        None
    }
}

/// Rebuilds the subquery induced by the kept edges (dropping isolated
/// vertices); `None` if disconnected.
fn rebuild(q: &QueryGraph, keep: &[bool]) -> Option<QueryGraph> {
    let mut used = vec![false; q.vertex_count()];
    for (i, e) in q.edges().iter().enumerate() {
        if keep[i] {
            used[e.src.index()] = true;
            used[e.dst.index()] = true;
        }
    }
    let mut remap = vec![u32::MAX; q.vertex_count()];
    let mut out = QueryGraph::new();
    for u in q.vertices() {
        if used[u.index()] {
            let nu = out.add_vertex(q.labels(u).clone());
            remap[u.index()] = nu.0;
        }
    }
    if out.vertex_count() == 0 {
        return None;
    }
    for (i, e) in q.edges().iter().enumerate() {
        if keep[i] {
            out.add_edge(QVertexId(remap[e.src.index()]), QVertexId(remap[e.dst.index()]), e.label);
        }
    }
    if out.is_connected() {
        Some(out)
    } else {
        None
    }
}

/// Builds a set of `n` queries via `make` (one derived seed per query),
/// skipping failed generations.
pub fn query_set(
    n: usize,
    cfg: &QueryGenConfig,
    mut make: impl FnMut(&mut Pcg32) -> Option<QueryGraph>,
) -> Vec<QueryGraph> {
    let mut out = Vec::with_capacity(n);
    let mut attempt = 0u64;
    while out.len() < n && attempt < (n as u64) * 50 {
        let mut rng = Pcg32::with_stream(cfg.seed.wrapping_add(attempt), 0x9E37);
        attempt += 1;
        if let Some(q) = make(&mut rng) {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{netflow_schema, social_schema};
    use tfx_graph::LabelInterner;

    fn schemas() -> (Schema, Schema) {
        let mut it = LabelInterner::new();
        let social = social_schema(&mut it);
        let netflow = netflow_schema(&mut it);
        (social, netflow)
    }

    #[test]
    fn tree_queries_are_trees() {
        let (social, netflow) = schemas();
        for schema in [&social, &netflow] {
            for size in [1, 3, 6, 9, 12] {
                let mut rng = Pcg32::new(size as u64);
                let q = random_tree_query(schema, size, &mut rng);
                assert_eq!(q.edge_count(), size);
                assert_eq!(q.vertex_count(), size + 1, "a tree has size+1 vertices");
                assert!(q.is_connected());
            }
        }
    }

    #[test]
    fn tree_query_labels_respect_schema() {
        let (social, _) = schemas();
        let mut rng = Pcg32::new(9);
        let q = random_tree_query(&social, 8, &mut rng);
        // every edge label belongs to a schema relation whose endpoint
        // types match the vertex labels
        for e in q.edges() {
            let rel = social
                .relations()
                .iter()
                .find(|r| Some(r.label) == e.label)
                .expect("edge label from schema");
            assert_eq!(q.labels(e.src), &social.type_label_set(rel.src_type));
            assert_eq!(q.labels(e.dst), &social.type_label_set(rel.dst_type));
        }
    }

    #[test]
    fn path_queries_are_paths() {
        let (social, _) = schemas();
        let mut rng = Pcg32::new(4);
        let q = random_path_query(&social, 5, &mut rng);
        assert_eq!(q.edge_count(), 5);
        assert_eq!(q.vertex_count(), 6);
        // no vertex has undirected degree > 2
        assert!(q.vertices().all(|u| q.degree(u) <= 2));
    }

    #[test]
    fn binary_tree_queries_have_heap_shape() {
        let (social, _) = schemas();
        let mut rng = Pcg32::new(4);
        let q = random_binary_tree_query(&social, 6, &mut rng);
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.vertex_count(), 7);
        // every vertex has at most 2 children ⇒ degree ≤ 3
        assert!(q.vertices().all(|u| q.degree(u) <= 3));
        assert!(q.is_connected());
    }

    #[test]
    fn cyclic_queries_contain_a_cycle() {
        let (social, netflow) = schemas();
        for schema in [&social, &netflow] {
            for len in [3, 4, 5] {
                let mut rng = Pcg32::new(100 + len as u64);
                let q = random_cyclic_query(schema, len, len + 3, &mut rng)
                    .expect("cycle should be found");
                assert_eq!(q.edge_count(), len + 3);
                assert!(q.is_connected());
                assert!(
                    q.edge_count() >= q.vertex_count(),
                    "cyclic query has at least as many edges as vertices"
                );
            }
        }
    }

    #[test]
    fn shrink_preserves_connectivity() {
        let (social, _) = schemas();
        let mut rng = Pcg32::new(77);
        let q12 = random_tree_query(&social, 12, &mut rng);
        for target in [9, 6, 3] {
            let q = shrink_query(&q12, target, &mut rng).expect("shrinkable");
            assert_eq!(q.edge_count(), target);
            assert!(q.is_connected());
        }
    }

    #[test]
    fn query_set_is_deterministic() {
        let (social, _) = schemas();
        let cfg = QueryGenConfig { seed: 5 };
        let a = query_set(10, &cfg, |rng| Some(random_tree_query(&social, 6, rng)));
        let b = query_set(10, &cfg, |rng| Some(random_tree_query(&social, 6, rng)));
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }
}
