//! The LSBench-like social-media stream generator.
//!
//! The Linked Stream Benchmark generates an RDF stream of social-media
//! activity scaled by a user count; the paper uses 0.1M/1M/10M users with
//! ~21M initial triples at the smallest scale. This generator reproduces
//! the *structural* properties the evaluation depends on at laptop scale:
//!
//! * a fixed entity/relation schema ([`crate::schema::social_schema`]),
//! * skewed one-to-many relations (bounded-Pareto out-degrees and
//!   preferential attachment for `knows`/`likes`) — the source of
//!   SJ-Tree's partial-solution explosion,
//! * a timestamp-ordered edge list split into `g0` and a ~10% insertion
//!   stream, matching the paper's `|Δg| / |g0|` ratio.

use tfx_graph::{LabelInterner, LabelSet, VertexId};

use crate::dataset::{split_into_dataset, Dataset};
use crate::rng::Pcg32;
use crate::schema::{social_schema, Schema};

/// Configuration for [`generate`].
#[derive(Clone, Debug)]
pub struct LsBenchConfig {
    /// Number of users (the LSBench scale factor).
    pub users: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of edges that form the insertion stream (paper: ~0.1).
    pub stream_frac: f64,
}

impl Default for LsBenchConfig {
    fn default() -> Self {
        LsBenchConfig { users: 1000, seed: 2018, stream_frac: 0.1 }
    }
}

impl LsBenchConfig {
    /// Scale the dataset by a user count.
    pub fn with_users(users: usize) -> Self {
        LsBenchConfig { users, ..Self::default() }
    }
}

struct TypeIds {
    user: usize,
    post: usize,
    comment: usize,
    photo: usize,
    channel: usize,
    tag: usize,
    city: usize,
}

/// Generates an LSBench-like dataset.
pub fn generate(cfg: &LsBenchConfig) -> Dataset {
    assert!(cfg.users >= 10, "need at least 10 users");
    let mut interner = LabelInterner::new();
    let schema = social_schema(&mut interner);
    let t = TypeIds { user: 0, post: 1, comment: 2, photo: 3, channel: 4, tag: 5, city: 6 };
    let mut rng = Pcg32::with_stream(cfg.seed, 0x15BE7C);

    let rel_label = |s: &Schema, src: usize, dst: usize, nth: usize| {
        s.relations()
            .iter()
            .filter(|r| r.src_type == src && r.dst_type == dst)
            .nth(nth)
            .expect("relation exists in social schema")
            .label
    };
    let knows = rel_label(&schema, t.user, t.user, 0);
    let follows = rel_label(&schema, t.user, t.channel, 0);
    let creator_post = rel_label(&schema, t.user, t.post, 0);
    let creator_comment = rel_label(&schema, t.user, t.comment, 0);
    let creator_photo = rel_label(&schema, t.user, t.photo, 0);
    let likes = rel_label(&schema, t.user, t.post, 1);
    let located = rel_label(&schema, t.user, t.city, 0);
    let reply = rel_label(&schema, t.comment, t.post, 0);
    let posted_in = rel_label(&schema, t.post, t.channel, 0);
    let post_tag = rel_label(&schema, t.post, t.tag, 0);
    let photo_tag = rel_label(&schema, t.photo, t.tag, 0);
    let taken_at = rel_label(&schema, t.photo, t.city, 0);

    // Entity pools. Counts scale with the user count, with fixed-size
    // dictionary entities (channels, tags, cities) growing sublinearly.
    let n_users = cfg.users;
    let n_channels = (n_users / 20).max(4);
    let n_tags = (n_users / 10).max(8);
    let n_cities = (n_users / 50).max(4);

    let mut vertex_labels: Vec<LabelSet> = Vec::new();
    let mut vertex_types: Vec<usize> = Vec::new();
    let new_vertex = |ty: usize,
                      vertex_labels: &mut Vec<LabelSet>,
                      vertex_types: &mut Vec<usize>,
                      schema: &Schema| {
        vertex_labels.push(schema.type_label_set(ty));
        vertex_types.push(ty);
        VertexId((vertex_labels.len() - 1) as u32)
    };

    let users: Vec<VertexId> = (0..n_users)
        .map(|_| new_vertex(t.user, &mut vertex_labels, &mut vertex_types, &schema))
        .collect();
    let channels: Vec<VertexId> = (0..n_channels)
        .map(|_| new_vertex(t.channel, &mut vertex_labels, &mut vertex_types, &schema))
        .collect();
    let tags: Vec<VertexId> = (0..n_tags)
        .map(|_| new_vertex(t.tag, &mut vertex_labels, &mut vertex_types, &schema))
        .collect();
    let cities: Vec<VertexId> = (0..n_cities)
        .map(|_| new_vertex(t.city, &mut vertex_labels, &mut vertex_types, &schema))
        .collect();

    let mut edges: Vec<(VertexId, tfx_graph::LabelId, VertexId)> = Vec::new();
    // Preferential-attachment pool for `knows`: every edge feeds both
    // endpoints back, so high-degree users keep attracting edges.
    let mut knows_pool: Vec<VertexId> = users.clone();

    for &u in &users {
        // Friendships (heavy-tailed).
        let n_friends = rng.pareto_count(1.2, 0.9, 60);
        for _ in 0..n_friends {
            let f = *rng.pick(&knows_pool);
            if f != u {
                edges.push((u, knows, f));
                knows_pool.push(u);
                knows_pool.push(f);
            }
        }
        // Channel subscriptions.
        for _ in 0..rng.pareto_count(1.0, 0.7, 12) {
            edges.push((u, follows, *rng.pick(&channels)));
        }
        // Home city.
        edges.push((u, located, *rng.pick(&cities)));

        // Content: posts with tags/channels/likes/comments, photos.
        let n_posts = rng.pareto_count(1.0, 0.8, 25);
        for _ in 0..n_posts {
            let p = new_vertex(t.post, &mut vertex_labels, &mut vertex_types, &schema);
            edges.push((u, creator_post, p));
            edges.push((p, posted_in, *rng.pick(&channels)));
            for _ in 0..rng.pareto_count(0.8, 0.7, 6) {
                edges.push((p, post_tag, *rng.pick(&tags)));
            }
            // Likes come from the preferential pool (popular users like a
            // lot and popular posts... kept simple: uniform over pool).
            for _ in 0..rng.pareto_count(0.7, 1.0, 40) {
                edges.push((*rng.pick(&knows_pool), likes, p));
            }
            for _ in 0..rng.pareto_count(0.5, 0.9, 15) {
                let c = new_vertex(t.comment, &mut vertex_labels, &mut vertex_types, &schema);
                edges.push((*rng.pick(&knows_pool), creator_comment, c));
                edges.push((c, reply, p));
            }
        }
        let n_photos = rng.pareto_count(0.6, 0.8, 12);
        for _ in 0..n_photos {
            let ph = new_vertex(t.photo, &mut vertex_labels, &mut vertex_types, &schema);
            edges.push((u, creator_photo, ph));
            edges.push((ph, taken_at, *rng.pick(&cities)));
            for _ in 0..rng.pareto_count(0.8, 0.6, 5) {
                edges.push((ph, photo_tag, *rng.pick(&tags)));
            }
        }
    }

    // Dedup exact duplicate triples (the graph rejects them anyway) while
    // keeping first-occurrence order, then shuffle lightly within a window
    // to interleave entity timelines like a real stream.
    let mut seen = rustc_hash::FxHashSet::default();
    edges.retain(|e| seen.insert(*e));
    window_shuffle(&mut edges, 512, &mut rng);

    split_into_dataset(edges, vertex_labels, vertex_types, cfg.stream_frac, interner, schema)
}

/// Shuffles within consecutive windows: preserves global "time" ordering
/// (entities created earlier stream earlier) while interleaving activity.
fn window_shuffle<T>(items: &mut [T], window: usize, rng: &mut Pcg32) {
    let mut i = 0;
    while i < items.len() {
        let end = (i + window).min(items.len());
        rng.shuffle(&mut items[i..end]);
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = LsBenchConfig { users: 50, seed: 7, stream_frac: 0.1 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.g0.vertex_count(), b.g0.vertex_count());
        assert_eq!(a.g0.edge_count(), b.g0.edge_count());
        assert_eq!(a.stream.ops(), b.stream.ops());
    }

    #[test]
    fn stream_fraction_roughly_holds() {
        let d = generate(&LsBenchConfig { users: 200, seed: 1, stream_frac: 0.1 });
        let total = d.g0.edge_count() + d.stream.insert_count();
        let frac = d.stream.insert_count() as f64 / total as f64;
        assert!((0.08..=0.12).contains(&frac), "stream fraction {frac}");
        assert!(total > 2000, "200 users should generate thousands of edges, got {total}");
    }

    #[test]
    fn labels_cover_schema_types() {
        let d = generate(&LsBenchConfig { users: 50, seed: 3, stream_frac: 0.1 });
        let user = d.interner.get("User").unwrap();
        let post = d.interner.get("Post").unwrap();
        let n_users = d.g0.vertices().filter(|&v| d.g0.labels(v).contains(user)).count();
        let n_posts = d.g0.vertices().filter(|&v| d.g0.labels(v).contains(post)).count();
        assert_eq!(n_users, 50);
        assert!(n_posts > 20);
        assert!(d.interner.get("knows").is_some());
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let d = generate(&LsBenchConfig { users: 300, seed: 5, stream_frac: 0.1 });
        let g = d.final_graph();
        let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let max = degs[0];
        let median = degs[degs.len() / 2];
        assert!(max >= 20 * median.max(1), "max {max} vs median {median}");
    }

    #[test]
    fn stream_replays_cleanly() {
        let d = generate(&LsBenchConfig { users: 50, seed: 9, stream_frac: 0.1 });
        let mut g = d.g0.clone();
        for op in &d.stream {
            assert!(g.apply(op), "stream op must change the graph: {op:?}");
        }
    }

    #[test]
    fn append_deletions_matches_rate() {
        let mut d = generate(&LsBenchConfig { users: 50, seed: 9, stream_frac: 0.1 });
        let ins = d.stream.insert_count();
        d.append_deletions(0.5, 77);
        assert_eq!(d.stream.insert_count(), ins);
        let expect = ((ins as f64) * 0.5).round() as usize;
        assert_eq!(d.stream.delete_count(), expect);
        // Deletions reference previously inserted edges → replay works.
        let mut g = d.g0.clone();
        for op in &d.stream {
            assert!(g.apply(op));
        }
    }
}
