//! Uniform-random workload: labeled vertices, uniform endpoint and label
//! choice.
//!
//! The unskewed counterpart to [`crate::hub`] and [`crate::netflow`]: every
//! vertex gets one of `vertex_labels` type labels round-robin, every edge
//! draws its endpoints and its label uniformly. Average degree stays low
//! and label groups stay balanced, which makes this the neutral baseline
//! workload for streaming and windowing tests — nothing about the data
//! favors any particular access path.

use tfx_graph::{LabelInterner, LabelSet, VertexId};

use crate::dataset::{split_into_dataset, Dataset};
use crate::rng::Pcg32;
use crate::schema::Schema;

/// Configuration for [`generate`].
#[derive(Clone, Copy, Debug)]
pub struct UniformConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of distinct vertex type labels (`T0`, `T1`, …).
    pub vertex_labels: usize,
    /// Number of distinct edge labels (`r0`, `r1`, …).
    pub edge_labels: usize,
    /// Number of distinct edges to generate.
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of edges that form the insertion stream.
    pub stream_frac: f64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        UniformConfig {
            vertices: 400,
            vertex_labels: 4,
            edge_labels: 4,
            edges: 4000,
            seed: 2018,
            stream_frac: 0.25,
        }
    }
}

/// Generates a uniform-random dataset.
pub fn generate(cfg: &UniformConfig) -> Dataset {
    assert!(cfg.vertices >= 2 && cfg.vertex_labels >= 1 && cfg.edge_labels >= 1);
    let mut interner = LabelInterner::new();
    let mut schema = Schema::new();
    let types: Vec<usize> = (0..cfg.vertex_labels)
        .map(|i| {
            let name = format!("T{i}");
            let l = interner.intern(&name);
            schema.add_vertex_type(&name, Some(l))
        })
        .collect();
    let rels: Vec<tfx_graph::LabelId> =
        (0..cfg.edge_labels).map(|k| interner.intern(&format!("r{k}"))).collect();
    // Every (type, label, type) combination is legal in this workload; the
    // schema records one relation per label over the first type pair so
    // query tooling sees every label (full cross products add nothing).
    for (k, &l) in rels.iter().enumerate() {
        schema.add_relation(types[k % types.len()], l, types[(k + 1) % types.len()]);
    }

    let vertex_types: Vec<usize> = (0..cfg.vertices).map(|i| types[i % types.len()]).collect();
    let vertex_labels: Vec<LabelSet> =
        vertex_types.iter().map(|&t| schema.type_label_set(t)).collect();

    let mut rng = Pcg32::with_stream(cfg.seed, 0x00F0_12A7);
    let mut seen = rustc_hash::FxHashSet::default();
    let mut edges = Vec::with_capacity(cfg.edges);
    let mut attempts = 0usize;
    while edges.len() < cfg.edges && attempts < cfg.edges * 4 {
        attempts += 1;
        let s = VertexId(rng.below(cfg.vertices) as u32);
        let d = VertexId(rng.below(cfg.vertices) as u32);
        if s == d {
            continue;
        }
        let l = rels[rng.below(rels.len())];
        if seen.insert((s, l, d)) {
            edges.push((s, l, d));
        }
    }

    split_into_dataset(edges, vertex_labels, vertex_types, cfg.stream_frac, interner, schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = UniformConfig { vertices: 50, edges: 600, seed: 9, ..UniformConfig::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.stream.ops(), b.stream.ops());
        assert_eq!(a.g0.edge_count(), b.g0.edge_count());
        let total = a.g0.edge_count() + a.stream.insert_count();
        assert!(total >= 550, "close to requested edge count, got {total}");
    }

    #[test]
    fn labels_round_robin_and_all_edge_labels_appear() {
        let cfg = UniformConfig::default();
        let d = generate(&cfg);
        assert_eq!(d.g0.vertex_count(), cfg.vertices);
        for i in 0..cfg.vertex_labels {
            assert!(d.interner.get(&format!("T{i}")).is_some());
        }
        let mut labels = rustc_hash::FxHashSet::default();
        for e in d.g0.edges() {
            labels.insert(e.label);
        }
        assert_eq!(labels.len(), cfg.edge_labels);
    }

    #[test]
    fn stream_replays_cleanly() {
        let d = generate(&UniformConfig { seed: 3, ..UniformConfig::default() });
        let mut g = d.g0.clone();
        for op in &d.stream {
            assert!(g.apply(op));
        }
        assert!(d.stream.insert_count() > 100);
    }
}
