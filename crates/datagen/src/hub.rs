//! Skewed hub workload: a power-law-style graph whose update stream keeps
//! rebuilding DCG subtrees under high-out-degree hubs.
//!
//! Uniform-random streams hide the cost of flat adjacency scans — average
//! degree is low, so O(deg) and O(|label group|) are the same handful of
//! entries. This workload makes the difference visible, the way skewed real
//! graphs do:
//!
//! * **Hub** vertices carry a large bulk fan-out (`spokes_per_hub` edges
//!   spread over `bulk_labels` labels) plus a *few* `probe`-labeled edges.
//! * The registered query ([`probe_query`]) is the path
//!   `Source -feed-> Hub -probe-> Spoke`, so candidate enumeration under a
//!   hub only ever needs the tiny `probe` group — but a flat scan walks all
//!   of the hub's bulk edges to find it.
//! * The stream alternately inserts and deletes a `feed` edge into each
//!   unseeded hub. Each insert is the hub's first incoming `feed` edge, so
//!   the engine's check-and-avoid rule fires and `BuildDCG` re-enumerates
//!   the hub's children on *every* round — one adjacency scan per update,
//!   which is exactly the hot path the label-partitioned index targets.
//!
//! A few hubs get a standing feed edge in `g0` ("seeded") so that the feed
//! relation is the most selective query edge and `ChooseStartQVertex` roots
//! the tree at `Source`; counts satisfy `#feed < #probe < #bulk` and
//! `#Source < #Hub < #Spoke`.

use tfx_graph::{LabelInterner, LabelSet, UpdateOp, UpdateStream, VertexId};
use tfx_query::QueryGraph;

use crate::dataset::Dataset;
use crate::rng::Pcg32;
use crate::schema::Schema;

/// Configuration for the hub workload generator.
#[derive(Clone, Copy, Debug)]
pub struct HubConfig {
    /// Number of `Source` vertices.
    pub sources: usize,
    /// Number of `Hub` vertices.
    pub hubs: usize,
    /// Bulk out-edges per hub (the skew; spread over `bulk_labels`).
    pub spokes_per_hub: usize,
    /// Number of distinct bulk edge labels.
    pub bulk_labels: usize,
    /// `probe`-labeled out-edges per hub (the rare label the query wants).
    pub probe_edges_per_hub: usize,
    /// Insert+delete rounds over the unseeded hubs in the stream.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            sources: 16,
            hubs: 64,
            spokes_per_hub: 256,
            bulk_labels: 8,
            probe_edges_per_hub: 4,
            rounds: 4,
            seed: 2018,
        }
    }
}

impl HubConfig {
    /// Default configuration at a given hub fan-out.
    pub fn with_spokes_per_hub(spokes_per_hub: usize) -> Self {
        HubConfig { spokes_per_hub, ..Self::default() }
    }
}

/// Generates the hub workload. Vertex layout: sources `0..S`, hubs
/// `S..S+H`, spokes after that (twice the per-hub fan-out, shared by all
/// hubs).
pub fn generate(cfg: &HubConfig) -> Dataset {
    assert!(cfg.sources >= 1 && cfg.hubs >= 2 && cfg.bulk_labels >= 1);
    let mut interner = LabelInterner::new();
    let mut schema = Schema::new();
    let src_t = {
        let l = interner.intern("Source");
        schema.add_vertex_type("Source", Some(l))
    };
    let hub_t = {
        let l = interner.intern("Hub");
        schema.add_vertex_type("Hub", Some(l))
    };
    let spoke_t = {
        let l = interner.intern("Spoke");
        schema.add_vertex_type("Spoke", Some(l))
    };
    let feed = interner.intern("feed");
    schema.add_relation(src_t, feed, hub_t);
    let bulk: Vec<_> = (0..cfg.bulk_labels).map(|k| interner.intern(&format!("bulk{k}"))).collect();
    for &l in &bulk {
        schema.add_relation(hub_t, l, spoke_t);
    }
    let probe = interner.intern("probe");
    schema.add_relation(hub_t, probe, spoke_t);

    let n_spokes = (cfg.spokes_per_hub * 2).max(cfg.probe_edges_per_hub * 2).max(2);
    let mut g0 = tfx_graph::DynamicGraph::new();
    let mut vertex_types = Vec::new();
    for _ in 0..cfg.sources {
        g0.add_vertex(schema.type_label_set(src_t));
        vertex_types.push(src_t);
    }
    for _ in 0..cfg.hubs {
        g0.add_vertex(schema.type_label_set(hub_t));
        vertex_types.push(hub_t);
    }
    for _ in 0..n_spokes {
        g0.add_vertex(schema.type_label_set(spoke_t));
        vertex_types.push(spoke_t);
    }
    let source_v = |i: usize| VertexId(i as u32);
    let hub_v = |i: usize| VertexId((cfg.sources + i) as u32);
    let spoke_v = |i: usize| VertexId((cfg.sources + cfg.hubs + i) as u32);

    let mut rng = Pcg32::with_stream(cfg.seed, 0x4B5B);
    for h in 0..cfg.hubs {
        // Bulk fan-out: duplicates are dropped by the edge set, so actual
        // degree can be slightly below `spokes_per_hub`. That is fine — the
        // skew, not the exact count, is the point.
        for _ in 0..cfg.spokes_per_hub {
            let l = bulk[rng.below(bulk.len())];
            g0.insert_edge(hub_v(h), l, spoke_v(rng.below(n_spokes)));
        }
        // A few distinct probe edges: the rare group the query asks for.
        let mut targets: Vec<usize> = (0..n_spokes).collect();
        rng.shuffle(&mut targets);
        for &t in targets.iter().take(cfg.probe_edges_per_hub) {
            g0.insert_edge(hub_v(h), probe, spoke_v(t));
        }
    }
    // Seed a standing feed edge into the first quarter of the hubs so the
    // feed relation is the most selective query edge in g0 (the tree then
    // roots at Source) and the initial result set is non-empty.
    let seeded = (cfg.hubs / 4).max(1);
    for h in 0..seeded {
        g0.insert_edge(source_v(h % cfg.sources), feed, hub_v(h));
    }

    // Stream: per round, give every unseeded hub its first feed edge, then
    // take it away again. `in_count(hub, u_hub)` oscillates 0 ↔ 1, so every
    // insert re-runs BuildDCG below the hub (check-and-avoid fires) and
    // every delete clears it.
    let mut ops = Vec::new();
    for _ in 0..cfg.rounds {
        let mut round: Vec<(VertexId, VertexId)> = Vec::new();
        for h in seeded..cfg.hubs {
            round.push((source_v(rng.below(cfg.sources)), hub_v(h)));
        }
        for &(s, h) in &round {
            ops.push(UpdateOp::InsertEdge { src: s, label: feed, dst: h });
        }
        for &(s, h) in &round {
            ops.push(UpdateOp::DeleteEdge { src: s, label: feed, dst: h });
        }
    }

    Dataset { g0, stream: UpdateStream::from_ops(ops), interner, schema, vertex_types }
}

/// The query the workload is built for: `Source -feed-> Hub -probe-> Spoke`.
pub fn probe_query(d: &Dataset) -> QueryGraph {
    let label = |n: &str| d.interner.get(n).expect("hub dataset label");
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(label("Source")));
    let u1 = q.add_vertex(LabelSet::single(label("Hub")));
    let u2 = q.add_vertex(LabelSet::single(label("Spoke")));
    q.add_edge(u0, u1, Some(label("feed")));
    q.add_edge(u1, u2, Some(label("probe")));
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{GraphStats, PROMOTE_DEGREE};
    use tfx_query::choose_start_vertex;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&HubConfig::default());
        let b = generate(&HubConfig::default());
        assert_eq!(a.g0.edge_count(), b.g0.edge_count());
        assert_eq!(a.stream.ops(), b.stream.ops());
        let mut ea: Vec<_> = a.g0.edges().collect();
        let mut eb: Vec<_> = b.g0.edges().collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb);
    }

    #[test]
    fn hubs_are_promoted_and_probe_groups_stay_small() {
        let cfg = HubConfig::default();
        let d = generate(&cfg);
        let probe = d.interner.get("probe").unwrap();
        for h in 0..cfg.hubs {
            let hub = VertexId((cfg.sources + h) as u32);
            assert!(d.g0.out_degree(hub) > PROMOTE_DEGREE, "hub fan-out is the skew");
            assert!(d.g0.out_is_promoted(hub));
            let group = d.g0.out_neighbors_labeled(hub, probe);
            assert_eq!(group.len(), cfg.probe_edges_per_hub);
            assert!(group.len() * 8 < d.g0.out_degree(hub), "probe group is the rare one");
        }
    }

    #[test]
    fn stream_oscillates_feed_edges() {
        let cfg = HubConfig::default();
        let d = generate(&cfg);
        let feed = d.interner.get("feed").unwrap();
        let unseeded = cfg.hubs - (cfg.hubs / 4).max(1);
        assert_eq!(d.stream.ops().len(), cfg.rounds * unseeded * 2);
        let mut g = d.g0.clone();
        let base: Vec<usize> = d.g0.vertices().map(|v| d.g0.in_degree_labeled(v, feed)).collect();
        for op in &d.stream {
            g.apply(op);
        }
        // Every round returns the graph to its initial feed state.
        for v in g.vertices() {
            assert_eq!(g.in_degree_labeled(v, feed), base[v.index()]);
        }
        for op in d.stream.ops() {
            match op {
                UpdateOp::InsertEdge { label, .. } | UpdateOp::DeleteEdge { label, .. } => {
                    assert_eq!(*label, feed);
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn probe_query_roots_at_source() {
        let d = generate(&HubConfig::default());
        let q = probe_query(&d);
        let stats = GraphStats::new(&d.g0);
        assert_eq!(choose_start_vertex(&q, &stats), tfx_query::QVertexId(0), "root is Source");
    }
}
