//! The Netflow-like trace generator.
//!
//! The paper's Netflow dataset is a CAIDA passive backbone trace whose
//! difficulty comes from exactly two properties (§B.4): *no vertex labels*
//! and *only eight edge labels*, i.e. almost every data edge matches almost
//! every query edge, producing enormous intermediate results for
//! materializing engines. This generator reproduces those properties plus
//! heavy-tailed host degrees (backbone traffic concentrates on few hosts)
//! with a preferential-attachment endpoint pool.

use tfx_graph::{LabelId, LabelInterner, LabelSet, VertexId};

use crate::dataset::{split_into_dataset, Dataset};
use crate::rng::Pcg32;
use crate::schema::netflow_schema;

/// Configuration for [`generate`].
#[derive(Clone, Debug)]
pub struct NetflowConfig {
    /// Number of hosts (IP addresses).
    pub hosts: usize,
    /// Number of flow edges to generate.
    pub flows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of edges that form the insertion stream (paper: ~0.1).
    pub stream_frac: f64,
}

impl Default for NetflowConfig {
    fn default() -> Self {
        NetflowConfig { hosts: 2000, flows: 40_000, seed: 2018, stream_frac: 0.1 }
    }
}

/// Generates a Netflow-like dataset.
pub fn generate(cfg: &NetflowConfig) -> Dataset {
    assert!(cfg.hosts >= 10);
    let mut interner = LabelInterner::new();
    let schema = netflow_schema(&mut interner);
    let protocols: Vec<LabelId> = schema.relations().iter().map(|r| r.label).collect();
    assert_eq!(protocols.len(), 8);
    let mut rng = Pcg32::with_stream(cfg.seed, 0x0E7F10);

    let vertex_labels: Vec<LabelSet> = (0..cfg.hosts).map(|_| LabelSet::empty()).collect();
    let vertex_types = vec![0usize; cfg.hosts];

    // Preferential attachment pool seeded with every host once.
    let mut pool: Vec<VertexId> = (0..cfg.hosts as u32).map(VertexId).collect();
    // Protocol mix is skewed like real traffic: tcp/udp dominate.
    let proto_weights = [40usize, 25, 10, 6, 6, 5, 4, 4];
    let weight_total: usize = proto_weights.iter().sum();

    let mut edges = Vec::with_capacity(cfg.flows);
    let mut seen = rustc_hash::FxHashSet::default();
    let mut attempts = 0usize;
    while edges.len() < cfg.flows && attempts < cfg.flows * 4 {
        attempts += 1;
        let s = *rng.pick(&pool);
        let d = *rng.pick(&pool);
        if s == d {
            continue;
        }
        let mut roll = rng.below(weight_total);
        let mut proto = protocols[0];
        for (i, &w) in proto_weights.iter().enumerate() {
            if roll < w {
                proto = protocols[i];
                break;
            }
            roll -= w;
        }
        let e = (s, proto, d);
        if seen.insert(e) {
            edges.push(e);
            pool.push(s);
            pool.push(d);
        }
    }

    split_into_dataset(edges, vertex_labels, vertex_types, cfg.stream_frac, interner, schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = NetflowConfig { hosts: 100, flows: 2000, seed: 11, stream_frac: 0.1 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.stream.ops(), b.stream.ops());
        let total = a.g0.edge_count() + a.stream.insert_count();
        assert!(total >= 1900, "close to requested flow count, got {total}");
    }

    #[test]
    fn hosts_are_unlabeled_with_eight_protocols() {
        let d = generate(&NetflowConfig { hosts: 50, flows: 500, seed: 1, stream_frac: 0.1 });
        assert!(d.g0.vertices().all(|v| d.g0.labels(v).is_empty()));
        let mut protos = rustc_hash::FxHashSet::default();
        for e in d.g0.edges() {
            protos.insert(e.label);
        }
        assert!(protos.len() >= 6, "most of the 8 protocols appear: {}", protos.len());
        assert!(d.interner.get("tcp").is_some());
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let d = generate(&NetflowConfig { hosts: 500, flows: 10_000, seed: 3, stream_frac: 0.1 });
        let g = d.final_graph();
        let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(degs[0] >= 5 * degs[degs.len() / 2].max(1));
    }

    #[test]
    fn stream_replays_cleanly() {
        let d = generate(&NetflowConfig { hosts: 50, flows: 500, seed: 5, stream_frac: 0.2 });
        let mut g = d.g0.clone();
        for op in &d.stream {
            assert!(g.apply(op));
        }
        assert!(d.stream.insert_count() > 50);
    }
}
