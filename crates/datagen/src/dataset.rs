//! A generated dynamic-graph workload: initial graph + update stream.

use tfx_graph::{DynamicGraph, LabelInterner, UpdateOp, UpdateStream, VertexId};

use crate::rng::Pcg32;
use crate::schema::Schema;

/// A dataset instance: the initial graph `g0`, the update stream `Δg`, the
/// label interner that names everything, and the schema it was drawn from.
pub struct Dataset {
    /// The initial data graph `g0`.
    pub g0: DynamicGraph,
    /// The update stream `Δg` (insertions; deletions can be appended with
    /// [`Dataset::append_deletions`]).
    pub stream: UpdateStream,
    /// Interner for all vertex/edge labels used.
    pub interner: LabelInterner,
    /// The schema the dataset was generated from.
    pub schema: Schema,
    /// The vertex type index of every vertex (for query-aware tooling).
    pub vertex_types: Vec<usize>,
}

impl Dataset {
    /// The graph after replaying the whole stream (useful for selectivity
    /// statistics).
    pub fn final_graph(&self) -> DynamicGraph {
        let mut g = self.g0.clone();
        for op in &self.stream {
            g.apply(op);
        }
        g
    }

    /// Scales the insertion stream to `rate` (a fraction of the full
    /// stream's edge operations), as in the insertion-rate experiment
    /// (Fig. 8).
    pub fn stream_at_rate(&self, rate: f64) -> UpdateStream {
        let edge_ops =
            self.stream.ops().iter().filter(|o| !matches!(o, UpdateOp::AddVertex { .. })).count();
        let keep = ((edge_ops as f64) * rate).round() as usize;
        self.stream.truncate_edge_ops(keep)
    }

    /// Appends deletions of `rate × (#insertions)` randomly chosen inserted
    /// edges to the stream (the deletion-rate experiment, Fig. 11; the
    /// paper's deletion rate is #deletions / #insertions).
    pub fn append_deletions(&mut self, rate: f64, seed: u64) {
        let mut rng = Pcg32::with_stream(seed, 0xDE1E7E);
        let inserted: Vec<(VertexId, tfx_graph::LabelId, VertexId)> = self
            .stream
            .ops()
            .iter()
            .filter_map(|o| match o {
                UpdateOp::InsertEdge { src, label, dst } => Some((*src, *label, *dst)),
                _ => None,
            })
            .collect();
        let n_del = ((inserted.len() as f64) * rate).round() as usize;
        let mut picked = inserted;
        rng.shuffle(&mut picked);
        picked.truncate(n_del);
        let mut ops: Vec<UpdateOp> = self.stream.ops().to_vec();
        for (src, label, dst) in picked {
            ops.push(UpdateOp::DeleteEdge { src, label, dst });
        }
        self.stream = UpdateStream::from_ops(ops);
    }
}

/// Splits a timestamp-ordered edge list into `g0` (first `1 - stream_frac`
/// of the edges) and an insertion stream. All vertices are declared up
/// front with their labels — vertex ids are dense and labels must be known
/// to every engine before an incident edge streams in.
pub(crate) fn split_into_dataset(
    edges: Vec<(VertexId, tfx_graph::LabelId, VertexId)>,
    vertex_labels: Vec<tfx_graph::LabelSet>,
    vertex_types: Vec<usize>,
    stream_frac: f64,
    interner: LabelInterner,
    schema: Schema,
) -> Dataset {
    let split = ((edges.len() as f64) * (1.0 - stream_frac)).round() as usize;
    let mut g0 = DynamicGraph::new();
    for labels in &vertex_labels {
        g0.add_vertex(labels.clone());
    }
    for &(s, l, d) in &edges[..split] {
        g0.insert_edge(s, l, d);
    }
    let ops = edges[split..]
        .iter()
        .map(|&(s, l, d)| UpdateOp::InsertEdge { src: s, label: l, dst: d })
        .collect();
    Dataset { g0, stream: UpdateStream::from_ops(ops), interner, schema, vertex_types }
}
