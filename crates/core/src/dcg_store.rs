//! Arena storage for the DCG's adjacency runs.
//!
//! The DCG keeps, per non-root query vertex `u`, two directed adjacency
//! indexes (parent→children and child→parents). Prior to this module each
//! index was a `HashMap<VertexId, Vec<(VertexId, EdgeState)>>`: one heap
//! allocation per (vertex, u) pair, pointer-chasing on every probe, and no
//! reuse across insert/delete churn. The arena replaces that with three
//! flat structures:
//!
//! * [`OpenMap`] — an open-addressed, linear-probing hash table from
//!   `u32` keys to small `Copy` values (Fibonacci hashing, backward-shift
//!   deletion, so there are no tombstones and a warmed table never
//!   rehashes under self-inverting churn);
//! * [`RunRef`] — the per-(vertex, u) map value: either an *inline* run of
//!   up to [`INLINE_CAP`] edges stored directly in the table slot (the
//!   common low-fanout case costs zero extra allocations), or a `u32`
//!   handle into the pool;
//! * [`RunPool`] — a slot arena carved out of one big `Vec`. Slots come in
//!   power-of-two size classes with a per-class LIFO free list; a run that
//!   outgrows its slot is copied to the next class and its old slot is
//!   recycled. Once pooled, a run stays pooled until it empties (demoting
//!   at the inline boundary would make runs hovering around it pay an
//!   alloc + copy + release on every churn cycle). Freed storage is
//!   reused, never returned, so steady-state churn allocates nothing and
//!   reserved bytes are an exact, replay-deterministic measure.
//!
//! Runs are kept sorted by far-end vertex id: lookups binary-search, and
//! enumeration order is canonical (independent of insertion/removal
//! history), which the equivalence oracles rely on.

use tfx_graph::VertexId;

use crate::dcg::EdgeState;

/// Maximum number of edges stored inline in a table slot before a run is
/// promoted to the pool. Two covers the typical DCG fanout away from hubs.
pub const INLINE_CAP: usize = 2;

/// Smallest pooled-slot capacity (size class 0). Classes double from here.
const MIN_CLASS_CAP: u32 = 4;

const NIL_EDGE: (VertexId, EdgeState) = (VertexId(0), EdgeState::Implicit);

/// Explicit-edge count of a (short, inline) run; pooled runs keep this on
/// their slot metadata instead.
#[inline]
fn count_expl(run: &[(VertexId, EdgeState)]) -> u32 {
    run.iter().filter(|&&(_, st)| st == EdgeState::Explicit).count() as u32
}

#[inline]
fn class_cap(class: u8) -> u32 {
    MIN_CLASS_CAP << class
}

// ---------------------------------------------------------------------------
// OpenMap
// ---------------------------------------------------------------------------

/// Open-addressed hash table from `u32` keys to `Copy` values.
///
/// Linear probing with Fibonacci hashing over a power-of-two capacity and
/// *backward-shift deletion* (Knuth 6.4 algorithm R): removals restore the
/// table to the state it would have had if the key were never inserted, so
/// there are no tombstones, `live` is the only occupancy measure, and a
/// table that has reached its high-water capacity never rehashes again
/// under insert/delete churn — the allocation-free steady state the engine
/// promises.
pub struct OpenMap<V> {
    /// `None` = empty bucket. Capacity is a power of two (or zero).
    slots: Vec<Option<(u32, V)>>,
    live: usize,
}

impl<V: Copy> Default for OpenMap<V> {
    fn default() -> Self {
        OpenMap { slots: Vec::new(), live: 0 }
    }
}

impl<V: Copy> OpenMap<V> {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(&self, key: u32) -> usize {
        // Fibonacci hashing: multiply and keep the top log2(cap) bits.
        let k = self.slots.len().trailing_zeros();
        (key.wrapping_mul(0x9E37_79B9) >> (32 - k)) as usize
    }

    /// Index of `key`'s bucket, if present.
    #[inline]
    pub fn find(&self, key: u32) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket_of(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    #[inline]
    pub fn get(&self, key: u32) -> Option<V> {
        self.find(key).map(|i| self.slots[i].as_ref().unwrap().1)
    }

    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.find(key).is_some()
    }

    #[inline]
    pub fn val_mut(&mut self, i: usize) -> &mut V {
        &mut self.slots[i].as_mut().unwrap().1
    }

    #[inline]
    pub fn val(&self, i: usize) -> &V {
        &self.slots[i].as_ref().unwrap().1
    }

    /// Finds `key`, inserting `default` if absent (growing as needed).
    /// Returns the bucket index and whether the entry was freshly inserted.
    pub fn ensure(&mut self, key: u32, default: V) -> (usize, bool) {
        if (self.live + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket_of(key);
        loop {
            match &self.slots[i] {
                None => {
                    self.slots[i] = Some((key, default));
                    self.live += 1;
                    return (i, true);
                }
                Some((k, _)) if *k == key => return (i, false),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts or overwrites, returning the previous value.
    pub fn insert(&mut self, key: u32, value: V) -> Option<V> {
        let (i, fresh) = self.ensure(key, value);
        if fresh {
            None
        } else {
            Some(std::mem::replace(self.val_mut(i), value))
        }
    }

    /// Removes the entry at bucket `i` (backward-shifting the cluster so no
    /// tombstone is left behind).
    pub fn remove_at(&mut self, mut i: usize) {
        self.live -= 1;
        self.slots[i] = None;
        let mask = self.slots.len() - 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let Some(&(k, _)) = self.slots[j].as_ref() else { return };
            let home = self.bucket_of(k);
            // The entry at j may move into the hole at i iff its probe path
            // (home..=j) passes through i.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.slots.swap(i, j);
                i = j;
            }
        }
    }

    pub fn remove(&mut self, key: u32) -> Option<V> {
        let i = self.find(key)?;
        let old = self.slots[i].as_ref().unwrap().1;
        self.remove_at(i);
        Some(old)
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        let mask = new_cap - 1;
        for slot in old.into_iter().flatten() {
            let mut i = self.bucket_of(slot.0);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(slot);
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, &V)> {
        self.slots.iter().flatten().map(|(k, v)| (*k, v))
    }

    /// Reserved bytes: every bucket is charged whether live or not —
    /// capacity is what the process actually holds.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<(u32, V)>>()
    }

    /// Asserts the probe invariant: every live entry is reachable from its
    /// home bucket, i.e. backward-shift deletion left no stranded keys.
    pub fn validate(&self) {
        let mut live = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(&(k, _)) = slot.as_ref() {
                live += 1;
                assert_eq!(self.find(k), Some(i), "key {k} stranded by deletion shifts");
            }
        }
        assert_eq!(live, self.live, "live count drifted");
    }
}

// ---------------------------------------------------------------------------
// RunPool
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    /// First entry in `RunPool::data`. Slots never move once carved.
    off: u32,
    /// Live entries (≤ `class_cap(class)`).
    len: u32,
    /// Explicit-state entries among the live ones (the per-run counter
    /// behind O(1) `out_expl_count` / `in_expl_count`).
    expl: u32,
    /// Size class: capacity is `MIN_CLASS_CAP << class`.
    class: u8,
    /// False while the slot sits on a free list.
    live: bool,
}

/// Slot arena for edge runs that outgrow the inline layout.
///
/// All runs live in one contiguous `data` vec. A slot is carved from the
/// end exactly once and identified by a `u32` index into `meta`; freed
/// slots go on a per-size-class LIFO free list and are recycled before any
/// new carving, so after warm-up the pool never allocates.
#[derive(Default)]
pub struct RunPool {
    data: Vec<(VertexId, EdgeState)>,
    meta: Vec<SlotMeta>,
    /// Per size class: indices of free slots.
    free: Vec<Vec<u32>>,
    free_slots: usize,
}

impl RunPool {
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc(&mut self, class: u8) -> u32 {
        while self.free.len() <= class as usize {
            self.free.push(Vec::new());
        }
        if let Some(slot) = self.free[class as usize].pop() {
            self.free_slots -= 1;
            let m = &mut self.meta[slot as usize];
            debug_assert!(!m.live && m.class == class);
            m.live = true;
            m.len = 0;
            m.expl = 0;
            slot
        } else {
            let cap = class_cap(class);
            let off = u32::try_from(self.data.len()).expect("DCG run pool exceeds u32 offsets");
            self.data.resize(self.data.len() + cap as usize, NIL_EDGE);
            self.meta.push(SlotMeta { off, len: 0, expl: 0, class, live: true });
            (self.meta.len() - 1) as u32
        }
    }

    fn release(&mut self, slot: u32) {
        let m = &mut self.meta[slot as usize];
        debug_assert!(m.live);
        m.live = false;
        self.free[m.class as usize].push(slot);
        self.free_slots += 1;
    }

    #[inline]
    pub fn slice(&self, slot: u32) -> &[(VertexId, EdgeState)] {
        let m = &self.meta[slot as usize];
        &self.data[m.off as usize..(m.off + m.len) as usize]
    }

    #[inline]
    fn len_of(&self, slot: u32) -> u32 {
        self.meta[slot as usize].len
    }

    #[inline]
    fn expl_of(&self, slot: u32) -> u32 {
        self.meta[slot as usize].expl
    }

    #[inline]
    fn class_of(&self, slot: u32) -> u8 {
        self.meta[slot as usize].class
    }

    /// Seeds a freshly allocated slot with an already-sorted run.
    fn write_initial(&mut self, slot: u32, entries: &[(VertexId, EdgeState)]) {
        let m = self.meta[slot as usize];
        debug_assert!(m.len == 0 && entries.len() <= class_cap(m.class) as usize);
        let base = m.off as usize;
        self.data[base..base + entries.len()].copy_from_slice(entries);
        let mm = &mut self.meta[slot as usize];
        mm.len = entries.len() as u32;
        mm.expl = entries.iter().filter(|&&(_, s)| s == EdgeState::Explicit).count() as u32;
    }

    /// Inserts or updates `(v, st)` in the sorted run. Returns the previous
    /// state and the (possibly moved, if the run changed size class) slot.
    fn set(&mut self, slot: u32, v: VertexId, st: EdgeState) -> (Option<EdgeState>, u32) {
        let m = self.meta[slot as usize];
        let base = m.off as usize;
        let run = &mut self.data[base..base + m.len as usize];
        match run.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                let old = run[i].1;
                run[i].1 = st;
                let mm = &mut self.meta[slot as usize];
                if old == EdgeState::Explicit && st != EdgeState::Explicit {
                    mm.expl -= 1;
                } else if old != EdgeState::Explicit && st == EdgeState::Explicit {
                    mm.expl += 1;
                }
                (Some(old), slot)
            }
            Err(i) if m.len < class_cap(m.class) => {
                self.data.copy_within(base + i..base + m.len as usize, base + i + 1);
                self.data[base + i] = (v, st);
                let mm = &mut self.meta[slot as usize];
                mm.len += 1;
                if st == EdgeState::Explicit {
                    mm.expl += 1;
                }
                (None, slot)
            }
            Err(i) => {
                // Full: copy into a slot of the next class, splicing the new
                // entry in at its sorted position, and recycle the old slot.
                let new = self.alloc(m.class + 1);
                let dst = self.meta[new as usize].off as usize;
                self.data.copy_within(base..base + i, dst);
                self.data[dst + i] = (v, st);
                self.data.copy_within(base + i..base + m.len as usize, dst + i + 1);
                let nm = &mut self.meta[new as usize];
                nm.len = m.len + 1;
                nm.expl = m.expl + u32::from(st == EdgeState::Explicit);
                self.release(slot);
                (None, new)
            }
        }
    }

    /// Removes `v` from the sorted run (the caller releases the slot when
    /// the run empties).
    fn remove(&mut self, slot: u32, v: VertexId) -> Option<EdgeState> {
        let m = self.meta[slot as usize];
        let base = m.off as usize;
        let run = &self.data[base..base + m.len as usize];
        let i = run.binary_search_by_key(&v, |&(w, _)| w).ok()?;
        let old = self.data[base + i].1;
        self.data.copy_within(base + i + 1..base + m.len as usize, base + i);
        let mm = &mut self.meta[slot as usize];
        mm.len -= 1;
        if old == EdgeState::Explicit {
            mm.expl -= 1;
        }
        Some(old)
    }

    /// Reserved bytes: the carved pool, slot metadata, and free-list stacks.
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<(VertexId, EdgeState)>()
            + self.meta.capacity() * std::mem::size_of::<SlotMeta>()
            + self.free.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.free.iter().map(|f| f.capacity() * 4).sum::<usize>()
    }

    #[inline]
    pub fn live_slots(&self) -> usize {
        self.meta.len() - self.free_slots
    }

    #[inline]
    pub fn free_slot_count(&self) -> usize {
        self.free_slots
    }

    /// Total slots ever carved (live + free).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.meta.len()
    }

    /// Total carved entries (live or free) — the pool's footprint in edges.
    #[inline]
    pub fn carved_entries(&self) -> usize {
        self.data.len()
    }

    /// Arena invariants, given `referenced[slot]` marks from the run
    /// indexes: every live slot referenced exactly once (no aliasing, no
    /// leaks), every free slot on exactly one free list, and the slot
    /// extents tile the carved pool.
    pub fn validate(&self, referenced: &[bool]) {
        assert_eq!(referenced.len(), self.meta.len());
        let mut off = 0u32;
        for (s, m) in self.meta.iter().enumerate() {
            assert_eq!(m.off, off, "slot {s} not contiguous");
            off += class_cap(m.class);
            assert!(m.len <= class_cap(m.class), "slot {s} overflows its class");
            assert_eq!(m.live, referenced[s], "slot {s} leaked or aliased");
            if !m.live {
                continue;
            }
            let run = self.slice(s as u32);
            assert!(run.windows(2).all(|w| w[0].0 < w[1].0), "slot {s} run unsorted");
            let expl = run.iter().filter(|&&(_, st)| st == EdgeState::Explicit).count();
            assert_eq!(expl as u32, m.expl, "slot {s} expl counter drifted");
            assert!(!run.is_empty(), "slot {s} holds an empty run");
        }
        assert_eq!(off as usize, self.data.len(), "carved extents do not tile the pool");
        let mut free_seen = vec![false; self.meta.len()];
        for (class, stack) in self.free.iter().enumerate() {
            for &s in stack {
                let m = &self.meta[s as usize];
                assert!(!m.live && m.class as usize == class, "free list misfiled slot {s}");
                assert!(!free_seen[s as usize], "slot {s} on a free list twice");
                free_seen[s as usize] = true;
            }
        }
        let free_total = free_seen.iter().filter(|&&b| b).count();
        assert_eq!(free_total, self.free_slots, "free-slot count drifted");
        assert_eq!(free_total + self.live_slots(), self.meta.len());
    }
}

// ---------------------------------------------------------------------------
// RunIndex
// ---------------------------------------------------------------------------

/// Per-(vertex, u) run handle: small runs live inline in the table slot,
/// larger ones in the pool. `Warm` marks a pooled run that emptied out —
/// its slot went back to the free lists, but the entry remembers the
/// high-water size class so a rebuild allocates that class directly
/// instead of copying through every class on the way up (hub runs are
/// torn down and rebuilt wholesale by the engine's check-and-avoid rule,
/// which made class-by-class regrowth the dominant cost there).
#[derive(Clone, Copy, Debug)]
pub enum RunRef {
    Inline { len: u8, edges: [(VertexId, EdgeState); INLINE_CAP] },
    Pooled { slot: u32 },
    Warm { class: u8 },
}

/// One direction of one query vertex's DCG adjacency: an [`OpenMap`] from
/// the near-side data vertex to its (sorted) edge run. All mutating calls
/// thread the shared [`RunPool`] explicitly so the `Dcg` can keep one pool
/// across all `2·|V(q)|` indexes.
#[derive(Default)]
pub struct RunIndex {
    map: OpenMap<RunRef>,
}

impl RunIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// The run for `key` as a sorted borrowed slice (empty if absent).
    #[inline]
    pub fn slice<'a>(&'a self, pool: &'a RunPool, key: VertexId) -> &'a [(VertexId, EdgeState)] {
        match self.map.find(key.0) {
            None => &[],
            Some(i) => match self.map.val(i) {
                RunRef::Inline { len, edges } => &edges[..*len as usize],
                RunRef::Pooled { slot } => pool.slice(*slot),
                RunRef::Warm { .. } => &[],
            },
        }
    }

    #[inline]
    pub fn get(&self, pool: &RunPool, key: VertexId, v: VertexId) -> Option<EdgeState> {
        let run = self.slice(pool, key);
        let i = run.binary_search_by_key(&v, |&(w, _)| w).ok()?;
        Some(run[i].1)
    }

    #[inline]
    pub fn run_len(&self, pool: &RunPool, key: VertexId) -> usize {
        match self.map.find(key.0) {
            None => 0,
            Some(i) => match self.map.val(i) {
                RunRef::Inline { len, .. } => *len as usize,
                RunRef::Pooled { slot } => pool.len_of(*slot) as usize,
                RunRef::Warm { .. } => 0,
            },
        }
    }

    #[inline]
    pub fn expl_count(&self, pool: &RunPool, key: VertexId) -> usize {
        match self.map.find(key.0) {
            None => 0,
            Some(i) => match self.map.val(i) {
                RunRef::Inline { len, edges } => count_expl(&edges[..*len as usize]) as usize,
                RunRef::Pooled { slot } => pool.expl_of(*slot) as usize,
                RunRef::Warm { .. } => 0,
            },
        }
    }

    /// Sets the state of edge `v` in `key`'s run (inserting the run and/or
    /// the edge as needed), returning the previous state and the run's
    /// explicit-edge count after the write — the counter is already on the
    /// slot metadata, so callers maintaining derived explicit-edge indexes
    /// avoid a second table probe. Promotes inline runs to the pool when
    /// they outgrow [`INLINE_CAP`].
    pub fn set(
        &mut self,
        pool: &mut RunPool,
        key: VertexId,
        v: VertexId,
        st: EdgeState,
    ) -> (Option<EdgeState>, u32) {
        let (i, fresh) = self.map.ensure(key.0, RunRef::Inline { len: 0, edges: [NIL_EDGE; 2] });
        match self.map.val_mut(i) {
            RunRef::Inline { len, edges } => {
                let n = *len as usize;
                debug_assert!(fresh == (n == 0));
                let pos = edges[..n].partition_point(|&(w, _)| w < v);
                if pos < n && edges[pos].0 == v {
                    let old = std::mem::replace(&mut edges[pos].1, st);
                    (Some(old), count_expl(&edges[..n]))
                } else if n < INLINE_CAP {
                    edges.copy_within(pos..n, pos + 1);
                    edges[pos] = (v, st);
                    *len += 1;
                    (None, count_expl(&edges[..n + 1]))
                } else {
                    // Promote: the run becomes INLINE_CAP + 1 entries.
                    let mut spill = [NIL_EDGE; INLINE_CAP + 1];
                    spill[..pos].copy_from_slice(&edges[..pos]);
                    spill[pos] = (v, st);
                    spill[pos + 1..].copy_from_slice(&edges[pos..]);
                    let slot = pool.alloc(0);
                    pool.write_initial(slot, &spill);
                    *self.map.val_mut(i) = RunRef::Pooled { slot };
                    (None, pool.expl_of(slot))
                }
            }
            RunRef::Pooled { slot } => {
                let (old, moved) = pool.set(*slot, v, st);
                *slot = moved;
                (old, pool.expl_of(moved))
            }
            RunRef::Warm { class } => {
                let slot = pool.alloc(*class);
                pool.write_initial(slot, &[(v, st)]);
                *self.map.val_mut(i) = RunRef::Pooled { slot };
                (None, u32::from(st == EdgeState::Explicit))
            }
        }
    }

    /// Removes edge `v` from `key`'s run, returning its state and the run's
    /// explicit-edge count after the removal (0 when the edge or run was
    /// absent). A pooled run stays pooled until it empties — demoting back
    /// inline the moment a run dips to [`INLINE_CAP`] made every run that
    /// hovers around the boundary pay an alloc + copy + release per churn
    /// cycle (2–3× the per-op cost on low-fanout mirror runs). An emptied
    /// inline run drops its map entry; an emptied pooled run releases its
    /// slot but leaves a [`RunRef::Warm`] entry behind as a rebuild hint.
    pub fn remove(
        &mut self,
        pool: &mut RunPool,
        key: VertexId,
        v: VertexId,
    ) -> (Option<EdgeState>, u32) {
        let Some(i) = self.map.find(key.0) else { return (None, 0) };
        match self.map.val_mut(i) {
            RunRef::Inline { len, edges } => {
                let n = *len as usize;
                let Some(pos) = edges[..n].iter().position(|&(w, _)| w == v) else {
                    return (None, count_expl(&edges[..n]));
                };
                let old = edges[pos].1;
                edges.copy_within(pos + 1..n, pos);
                *len -= 1;
                let expl = count_expl(&edges[..n - 1]);
                if *len == 0 {
                    self.map.remove_at(i);
                }
                (Some(old), expl)
            }
            RunRef::Pooled { slot } => {
                let s = *slot;
                let Some(old) = pool.remove(s, v) else { return (None, pool.expl_of(s)) };
                let expl = pool.expl_of(s);
                if pool.len_of(s) == 0 {
                    let class = pool.class_of(s);
                    pool.release(s);
                    *self.map.val_mut(i) = RunRef::Warm { class };
                }
                (Some(old), expl)
            }
            RunRef::Warm { .. } => (None, 0),
        }
    }

    /// Calls `f` with every (key, sorted run) pair. Map iteration order is
    /// table order — callers must be order-independent (snapshots collect
    /// into a `BTreeMap`, consistency checks assert per-entry facts).
    pub fn for_each_run<'a>(
        &'a self,
        pool: &'a RunPool,
        mut f: impl FnMut(VertexId, &[(VertexId, EdgeState)]),
    ) {
        for (k, rr) in self.map.iter() {
            match rr {
                RunRef::Inline { len, edges } => f(VertexId(k), &edges[..*len as usize]),
                RunRef::Pooled { slot } => f(VertexId(k), pool.slice(*slot)),
                RunRef::Warm { .. } => {}
            }
        }
    }

    /// (inline, pooled, warm) run counts — storage-stats support.
    pub fn repr_counts(&self) -> (usize, usize, usize) {
        let mut inline = 0;
        let mut pooled = 0;
        let mut warm = 0;
        for (_, rr) in self.map.iter() {
            match rr {
                RunRef::Inline { .. } => inline += 1,
                RunRef::Pooled { .. } => pooled += 1,
                RunRef::Warm { .. } => warm += 1,
            }
        }
        (inline, pooled, warm)
    }

    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.map.resident_bytes()
    }

    /// Index-side arena invariants: probe reachability, the inline/pooled
    /// representation boundary, and slot-reference marks for
    /// [`RunPool::validate`].
    pub fn validate(&self, referenced: &mut [bool]) {
        self.map.validate();
        for (k, rr) in self.map.iter() {
            match rr {
                RunRef::Inline { len, edges } => {
                    let n = *len as usize;
                    assert!((1..=INLINE_CAP).contains(&n), "empty inline run for key {k}");
                    assert!(
                        edges[..n].windows(2).all(|w| w[0].0 < w[1].0),
                        "inline run unsorted for key {k}"
                    );
                }
                RunRef::Pooled { slot } => {
                    let s = *slot as usize;
                    assert!(!referenced[s], "slot {s} aliased by key {k}");
                    referenced[s] = true;
                }
                RunRef::Warm { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Same xorshift as the engine's randomized tests.
    struct Rng(u64);

    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
        }

        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    #[test]
    fn open_map_matches_btreemap_under_churn() {
        let mut rng = Rng::new(0xA11CE);
        let mut m: OpenMap<u64> = OpenMap::new();
        let mut shadow: BTreeMap<u32, u64> = BTreeMap::new();
        for step in 0..20_000 {
            let key = rng.below(64) as u32;
            match rng.below(3) {
                0 => {
                    let val = step as u64;
                    assert_eq!(m.insert(key, val), shadow.insert(key, val));
                }
                1 => assert_eq!(m.remove(key), shadow.remove(&key)),
                _ => assert_eq!(m.get(key), shadow.get(&key).copied()),
            }
            if step % 1024 == 0 {
                m.validate();
            }
        }
        m.validate();
        assert_eq!(m.len(), shadow.len());
        let mut got: Vec<(u32, u64)> = m.iter().map(|(k, &val)| (k, val)).collect();
        got.sort_unstable();
        let want: Vec<(u32, u64)> = shadow.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn open_map_is_capacity_stable_under_self_inverting_churn() {
        let mut m: OpenMap<u32> = OpenMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        for k in 0..100 {
            m.remove(k);
        }
        let warm = m.resident_bytes();
        assert!(warm > 0);
        for _ in 0..50 {
            for k in 0..100 {
                m.insert(k, k);
            }
            for k in (0..100).rev() {
                m.remove(k);
            }
            // No tombstones ⇒ no rehash ⇒ reserved bytes are a fixpoint.
            assert_eq!(m.resident_bytes(), warm);
        }
        m.validate();
        assert_eq!(m.len(), 0);
    }

    fn expl(i: usize) -> EdgeState {
        if i.is_multiple_of(3) {
            EdgeState::Explicit
        } else {
            EdgeState::Implicit
        }
    }

    #[test]
    fn run_index_promotes_demotes_and_matches_model() {
        let mut rng = Rng::new(0xD1CE);
        let mut pool = RunPool::new();
        let mut idx = RunIndex::new();
        let mut shadow: BTreeMap<u32, BTreeMap<u32, EdgeState>> = BTreeMap::new();
        for step in 0..30_000 {
            let key = v(rng.below(8) as u32);
            let far = v(rng.below(40) as u32);
            let st = expl(step);
            if rng.below(2) == 0 {
                let (old, expl) = idx.set(&mut pool, key, far, st);
                let entry = shadow.entry(key.0).or_default();
                assert_eq!(old, entry.insert(far.0, st));
                let want = entry.values().filter(|&&s| s == EdgeState::Explicit).count();
                assert_eq!(expl as usize, want, "post-set explicit count diverged");
            } else {
                let (old, expl) = idx.remove(&mut pool, key, far);
                let entry = shadow.entry(key.0).or_default();
                assert_eq!(old, entry.remove(&far.0));
                let want = entry.values().filter(|&&s| s == EdgeState::Explicit).count();
                assert_eq!(expl as usize, want, "post-remove explicit count diverged");
                if entry.is_empty() {
                    shadow.remove(&key.0);
                }
            }
            if step % 2048 == 0 {
                let mut referenced = vec![false; pool.meta.len()];
                idx.validate(&mut referenced);
                pool.validate(&referenced);
            }
        }
        for (&k, run) in &shadow {
            let got: Vec<(u32, EdgeState)> =
                idx.slice(&pool, v(k)).iter().map(|&(w, st)| (w.0, st)).collect();
            let want: Vec<(u32, EdgeState)> = run.iter().map(|(&w, &st)| (w, st)).collect();
            assert_eq!(got, want, "run for key {k} diverged");
            let want_expl = run.values().filter(|&&st| st == EdgeState::Explicit).count();
            assert_eq!(idx.expl_count(&pool, v(k)), want_expl);
            assert_eq!(idx.run_len(&pool, v(k)), run.len());
        }
        let mut referenced = vec![false; pool.meta.len()];
        idx.validate(&mut referenced);
        pool.validate(&referenced);
    }

    #[test]
    fn pool_slots_are_recycled_not_carved() {
        let mut pool = RunPool::new();
        let mut idx = RunIndex::new();
        // Push one run through promote → grow → full teardown, twice; the
        // second pass must reuse the first pass's slots.
        let cycle = |pool: &mut RunPool, idx: &mut RunIndex| {
            for i in 0..20 {
                idx.set(pool, v(0), v(i), EdgeState::Implicit);
            }
            for i in 0..20 {
                idx.remove(pool, v(0), v(i));
            }
        };
        cycle(&mut pool, &mut idx);
        let carved = pool.carved_entries();
        let slots = pool.meta.len();
        assert!(carved > 0 && pool.free_slot_count() == slots, "all slots back on free lists");
        cycle(&mut pool, &mut idx);
        assert_eq!(pool.carved_entries(), carved, "steady-state churn carved new storage");
        assert_eq!(pool.meta.len(), slots);
        assert_eq!(idx.run_len(&pool, v(0)), 0);
    }

    #[test]
    fn inline_runs_use_no_pool_storage() {
        let mut pool = RunPool::new();
        let mut idx = RunIndex::new();
        for k in 0..100 {
            idx.set(&mut pool, v(k), v(1), EdgeState::Implicit);
            idx.set(&mut pool, v(k), v(0), EdgeState::Explicit);
        }
        assert_eq!(pool.carved_entries(), 0, "low-fanout runs must stay inline");
        for k in 0..100 {
            assert_eq!(
                idx.slice(&pool, v(k)),
                &[(v(0), EdgeState::Explicit), (v(1), EdgeState::Implicit)]
            );
            assert_eq!(idx.expl_count(&pool, v(k)), 1);
        }
        // One more edge promotes exactly one run.
        idx.set(&mut pool, v(7), v(5), EdgeState::Implicit);
        assert_eq!(pool.carved_entries(), MIN_CLASS_CAP as usize);
        assert_eq!(idx.run_len(&pool, v(7)), 3);
    }
}
