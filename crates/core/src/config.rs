//! Engine configuration.

use tfx_graph::AdjacencyMode;
use tfx_query::MatchSemantics;

/// Tunable options for a [`crate::TurboFlux`] engine instance.
#[derive(Clone, Copy, Debug)]
pub struct TurboFluxConfig {
    /// Matching semantics (homomorphism by default, §2.1).
    pub semantics: MatchSemantics,
    /// Enable `AdjustMatchingOrder` (§4.1): recompute the matching order
    /// when per-query-vertex explicit-edge counts drift. Disable for the
    /// static-order ablation.
    pub adjust_matching_order: bool,
    /// Drift factor that triggers an order recomputation (paper: "a
    /// significant change"; we use 2×).
    pub order_drift_factor: f64,
    /// Count floor below which drift is ignored (avoids churn on tiny
    /// counts).
    pub order_drift_floor: u64,
    /// Check drift only for query vertices whose explicit count actually
    /// changed since the last check (tracked by a dirty bitmask in the
    /// DCG), instead of scanning all counts on every update. Equivalent to
    /// the full scan — an unchanged count cannot start drifting — so this
    /// exists purely as an ablation hook for the incremental
    /// [`crate::order::OrderMaintenance`] path.
    pub incremental_drift_check: bool,
    /// Use the label-partitioned adjacency index for candidate enumeration
    /// (O(log + |label group|) per lookup). Disabling falls back to the
    /// flat full-list scan over the same storage — candidates, order, and
    /// deltas are identical either way, so this exists purely as an
    /// ablation switch for benchmarking the index.
    pub label_indexed_adjacency: bool,
    /// Worker threads for intra-update parallel match enumeration: a single
    /// update whose explicit DCG frontier (or initial root-candidate set)
    /// is at least [`Self::parallel_min_frontier`] wide is split into
    /// chunks evaluated on scoped worker threads, with deltas merged in
    /// chunk order so output stays byte-identical to sequential
    /// evaluation. `0` means one worker per available core; `1` disables
    /// parallelism. A [`crate::fleet::Fleet`] additionally caps this so
    /// fleet-level × update-level workers never exceed its thread budget.
    pub parallel_workers: usize,
    /// Minimum frontier width before an update fans out; narrower
    /// frontiers run sequentially so small updates never pay thread-spawn
    /// cost (and stay allocation-free).
    pub parallel_min_frontier: usize,
    /// When the engine runs inside a [`crate::fleet::Fleet`], source child
    /// candidates for shareable execution-tree edges from the fleet's
    /// [`crate::shared_index::SharedCandidateIndex`] (maintained once per
    /// update for all queries) instead of re-filtering adjacency scans per
    /// engine. Candidates, order, and deltas are identical either way —
    /// this is the multi-query-optimization ablation switch. Ignored by
    /// standalone engines.
    pub fleet_shared_index: bool,
    /// When the engine runs inside a [`crate::fleet::Fleet`], fold complete
    /// root-child execution-tree branches that are label-path-identical
    /// across engines into refcounted shared subtree instances
    /// ([`crate::shared_subtree::SharedSubtrees`]): the fleet driver
    /// maintains each shared branch's DCG state once per op, and every
    /// sharing engine reads it instead of rebuilding the branch privately.
    /// Deltas are identical either way — this is the phase-2
    /// multi-query-optimization ablation switch (off falls back to the
    /// per-edge shared candidate index). Ignored by standalone engines.
    pub fleet_shared_subtrees: bool,
    /// Shard count for the sharded execution runtime
    /// ([`crate::shard::ShardedEngine`]): data-graph vertices are
    /// hash-partitioned across this many worker shards, each maintaining a
    /// partition-local graph and DCG slice. `1` (the default) keeps the
    /// classic single-slice engine. Only consulted by the sharded runtime —
    /// standalone engines and fleets ignore it.
    pub shards: usize,
}

impl Default for TurboFluxConfig {
    fn default() -> Self {
        TurboFluxConfig {
            semantics: MatchSemantics::Homomorphism,
            adjust_matching_order: true,
            order_drift_factor: 2.0,
            order_drift_floor: 64,
            incremental_drift_check: true,
            label_indexed_adjacency: true,
            parallel_workers: 0,
            parallel_min_frontier: 64,
            fleet_shared_index: true,
            fleet_shared_subtrees: true,
            shards: 1,
        }
    }
}

impl TurboFluxConfig {
    /// Default configuration with the given semantics.
    pub fn with_semantics(semantics: MatchSemantics) -> Self {
        TurboFluxConfig { semantics, ..Self::default() }
    }

    /// The adjacency access path selected by
    /// [`Self::label_indexed_adjacency`].
    pub fn adjacency_mode(&self) -> AdjacencyMode {
        if self.label_indexed_adjacency {
            AdjacencyMode::Indexed
        } else {
            AdjacencyMode::FlatScan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = TurboFluxConfig::default();
        assert_eq!(c.semantics, MatchSemantics::Homomorphism);
        assert!(c.adjust_matching_order);
        assert!(c.incremental_drift_check);
        assert!(c.label_indexed_adjacency);
        assert_eq!(c.parallel_workers, 0, "auto-sized by default");
        assert!(c.parallel_min_frontier > 1, "small updates stay sequential");
        assert!(c.fleet_shared_index, "shared candidate index on by default");
        assert!(c.fleet_shared_subtrees, "shared DCG subtrees on by default");
        assert_eq!(c.shards, 1, "unsharded by default");
        assert_eq!(c.adjacency_mode(), AdjacencyMode::Indexed);
        let flat = TurboFluxConfig { label_indexed_adjacency: false, ..c };
        assert_eq!(flat.adjacency_mode(), AdjacencyMode::FlatScan);
        assert_eq!(
            TurboFluxConfig::with_semantics(MatchSemantics::Isomorphism).semantics,
            MatchSemantics::Isomorphism
        );
    }
}
