//! Engine configuration.

use tfx_query::MatchSemantics;

/// Tunable options for a [`crate::TurboFlux`] engine instance.
#[derive(Clone, Copy, Debug)]
pub struct TurboFluxConfig {
    /// Matching semantics (homomorphism by default, §2.1).
    pub semantics: MatchSemantics,
    /// Enable `AdjustMatchingOrder` (§4.1): recompute the matching order
    /// when per-query-vertex explicit-edge counts drift. Disable for the
    /// static-order ablation.
    pub adjust_matching_order: bool,
    /// Drift factor that triggers an order recomputation (paper: "a
    /// significant change"; we use 2×).
    pub order_drift_factor: f64,
    /// Count floor below which drift is ignored (avoids churn on tiny
    /// counts).
    pub order_drift_floor: u64,
}

impl Default for TurboFluxConfig {
    fn default() -> Self {
        TurboFluxConfig {
            semantics: MatchSemantics::Homomorphism,
            adjust_matching_order: true,
            order_drift_factor: 2.0,
            order_drift_floor: 64,
        }
    }
}

impl TurboFluxConfig {
    /// Default configuration with the given semantics.
    pub fn with_semantics(semantics: MatchSemantics) -> Self {
        TurboFluxConfig { semantics, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = TurboFluxConfig::default();
        assert_eq!(c.semantics, MatchSemantics::Homomorphism);
        assert!(c.adjust_matching_order);
        assert_eq!(
            TurboFluxConfig::with_semantics(MatchSemantics::Isomorphism).semantics,
            MatchSemantics::Isomorphism
        );
    }
}
