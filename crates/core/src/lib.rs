//! `tfx-core` — the TurboFlux continuous subgraph matching engine
//! (Kim et al., SIGMOD 2018).
//!
//! Given a query graph and an initial data graph, [`TurboFlux`] maintains a
//! *data-centric graph* ([`Dcg`]) — a concise, incrementally updatable
//! representation of partial solutions — and, for every edge
//! insertion/deletion of a graph update stream, reports the positive /
//! negative matches `M(g_i, q) − M(g_{i−1}, q)` / `M(g_{i−1}, q) − M(g_i, q)`
//! without recomputing subgraph matching from scratch and without the
//! explosive materialized join state of SJ-Tree.
//!
//! ```
//! use tfx_core::{TurboFlux, TurboFluxConfig};
//! use tfx_graph::{DynamicGraph, LabelId, LabelSet, UpdateOp};
//! use tfx_query::{ContinuousMatcher, QueryGraph};
//!
//! // Data: a:A, b:B; query: A -> B.
//! let mut g = DynamicGraph::new();
//! let a = g.add_vertex(LabelSet::single(LabelId(0)));
//! let b = g.add_vertex(LabelSet::single(LabelId(1)));
//! let mut q = QueryGraph::new();
//! let u0 = q.add_vertex(LabelSet::single(LabelId(0)));
//! let u1 = q.add_vertex(LabelSet::single(LabelId(1)));
//! q.add_edge(u0, u1, Some(LabelId(7)));
//!
//! let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
//! let mut positives = 0;
//! engine.apply(
//!     &UpdateOp::InsertEdge { src: a, label: LabelId(7), dst: b },
//!     &mut |_, _| positives += 1,
//! );
//! assert_eq!(positives, 1);
//! ```

pub mod config;
pub mod dcg;
mod dcg_store;
pub mod engine;
pub mod fleet;
mod ops_delete;
mod ops_insert;
pub mod order;
mod parallel;
mod scratch;
mod search;
pub mod shard;
pub mod shared_index;
pub mod shared_subtree;
pub mod spec;
pub mod tree_nav;

pub use config::TurboFluxConfig;
pub use dcg::{Dcg, EdgeState};
pub use engine::TurboFlux;
pub use fleet::{Fleet, FleetDelta, FleetStats};
pub use order::OrderMaintenance;
pub use search::INTERSECT_MIN_FRONTIER;
pub use shard::{ShardStats, ShardedEngine};
pub use shared_index::{SharedCandidateIndex, SigKey};
pub use shared_subtree::{SharedSubtrees, SubtreeKey};
pub use spec::{reference_dcg, DcgImage};

#[cfg(test)]
mod tests;
