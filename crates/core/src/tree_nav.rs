//! Orientation-aware navigation between the query tree and the data graph.
//!
//! A query-tree edge from parent `P(u)` to child `u` corresponds to a query
//! edge that may be directed either way ([`QueryTree::child_is_target`]).
//! These helpers hide that: the DCG always thinks in terms of
//! (tree-parent data vertex, child query vertex, child data vertex), while
//! the data graph stores directed edges.
//!
//! All candidate enumeration goes through the graph's label-partitioned
//! adjacency index: with a concrete query-edge label and
//! [`AdjacencyMode::Indexed`] only that label's neighbor group is walked
//! (O(log + |group|) instead of O(deg)). [`AdjacencyMode::FlatScan`] forces
//! the pre-index full-list filter as an ablation baseline; both modes yield
//! the same candidates in the same `(label, neighbor)` order.

use tfx_graph::{AdjacencyMode, GraphView, VertexId};
use tfx_query::{QVertexId, QueryGraph, QueryTree};

use crate::shared_index::SharedCandidateIndex;

/// The directed data pair `(src, dst)` backing DCG edge `(pv, u, cv)`.
#[inline]
pub fn data_pair(
    tree: &QueryTree,
    u: QVertexId,
    pv: VertexId,
    cv: VertexId,
) -> (VertexId, VertexId) {
    if tree.child_is_target(u) {
        (pv, cv)
    } else {
        (cv, pv)
    }
}

/// True iff some live data edge backs the DCG edge `(pv, u, cv)` (labels of
/// both endpoints and of the edge itself all match).
pub fn tree_edge_supported<G: GraphView>(
    g: &G,
    q: &QueryGraph,
    tree: &QueryTree,
    u: QVertexId,
    pv: VertexId,
    cv: VertexId,
) -> bool {
    let e = tree.parent_edge(u).expect("non-root vertex has a parent edge");
    let qe = q.edge(e);
    let (src, dst) = data_pair(tree, u, pv, cv);
    if !q.labels(qe.src).is_subset_of(g.labels(src))
        || !q.labels(qe.dst).is_subset_of(g.labels(dst))
    {
        return false;
    }
    g.has_edge_matching(src, dst, qe.label)
}

/// Calls `f` with every data vertex `cv` such that the DCG edge
/// `(pv, u, cv)` is backed by a live data edge. May report a `cv` more than
/// once if parallel data edges match (callers tolerate or dedup).
pub fn for_each_child_candidate<G: GraphView>(
    g: &G,
    q: &QueryGraph,
    tree: &QueryTree,
    u: QVertexId,
    pv: VertexId,
    mode: AdjacencyMode,
    f: &mut dyn FnMut(VertexId),
) {
    let e = tree.parent_edge(u).expect("non-root vertex has a parent edge");
    let qe = q.edge(e);
    if tree.child_is_target(u) {
        if !q.labels(qe.src).is_subset_of(g.labels(pv)) {
            return;
        }
        let child_labels = q.labels(qe.dst);
        for cv in g.out_neighbors_matching(pv, qe.label, mode) {
            if child_labels.is_subset_of(g.labels(cv)) {
                f(cv);
            }
        }
    } else {
        if !q.labels(qe.dst).is_subset_of(g.labels(pv)) {
            return;
        }
        let child_labels = q.labels(qe.src);
        for cv in g.in_neighbors_matching(pv, qe.label, mode) {
            if child_labels.is_subset_of(g.labels(cv)) {
                f(cv);
            }
        }
    }
}

/// Appends every child candidate of `(u, pv)` (see
/// [`for_each_child_candidate`]) to `buf`, then sorts and dedups the
/// appended tail segment in place. Returns the segment's start index.
///
/// `buf` is a segmented scratch stack: callers iterate `buf[start..]` by
/// index and truncate back to `start` when done, so recursive use never
/// allocates once the stack's high-water capacity is reached.
pub fn collect_child_candidates<G: GraphView>(
    g: &G,
    q: &QueryGraph,
    tree: &QueryTree,
    u: QVertexId,
    pv: VertexId,
    mode: AdjacencyMode,
    buf: &mut Vec<VertexId>,
) -> usize {
    let start = buf.len();
    let e = tree.parent_edge(u).expect("non-root vertex has a parent edge");
    let qe = q.edge(e);
    if let (Some(label), AdjacencyMode::Indexed) = (qe.label, mode) {
        // Fast path: a concrete-label Indexed lookup yields one adjacency
        // run, which is already sorted and duplicate-free — label-filtering
        // preserves both, so the sort/dedup pass below is skipped entirely.
        let (parent_q, child_q, run) = if tree.child_is_target(u) {
            (qe.src, qe.dst, g.out_neighbors_labeled(pv, label))
        } else {
            (qe.dst, qe.src, g.in_neighbors_labeled(pv, label))
        };
        if !q.labels(parent_q).is_subset_of(g.labels(pv)) {
            return start;
        }
        let child_labels = q.labels(child_q);
        if child_labels.is_empty() {
            run.extend_into(buf);
        } else {
            for cv in run {
                if child_labels.is_subset_of(g.labels(cv)) {
                    buf.push(cv);
                }
            }
        }
        return start;
    }
    for_each_child_candidate(g, q, tree, u, pv, mode, &mut |w| buf.push(w));
    buf[start..].sort_unstable();
    // Dedup the tail segment in place (Vec::dedup would scan the prefix).
    let mut write = start;
    for read in start..buf.len() {
        if write == start || buf[write - 1] != buf[read] {
            buf[write] = buf[read];
            write += 1;
        }
    }
    buf.truncate(write);
    start
}

/// [`collect_child_candidates`] sourced from a fleet-shared candidate
/// index instead of a private adjacency scan: appends signature `sig`'s
/// pre-filtered run for `pv` to `buf` after the per-query parent-label
/// check, returning the segment's start index.
///
/// The shared run bakes in exactly the child-side filter of the private
/// scan (same edge label, same child label set, same orientation) in the
/// same ascending vertex-id order, so the appended segment is byte-for-byte
/// what [`collect_child_candidates`] would have produced — asserted in
/// debug builds.
#[allow(clippy::too_many_arguments)]
pub fn collect_shared_child_candidates<G: GraphView>(
    g: &G,
    q: &QueryGraph,
    tree: &QueryTree,
    shared: &SharedCandidateIndex,
    sig: u32,
    u: QVertexId,
    pv: VertexId,
    buf: &mut Vec<VertexId>,
) -> usize {
    let start = buf.len();
    let e = tree.parent_edge(u).expect("non-root vertex has a parent edge");
    let qe = q.edge(e);
    let parent_q = if tree.child_is_target(u) { qe.src } else { qe.dst };
    if !q.labels(parent_q).is_subset_of(g.labels(pv)) {
        return start;
    }
    buf.extend_from_slice(shared.run(sig, pv));
    #[cfg(debug_assertions)]
    {
        let mut check = Vec::new();
        collect_child_candidates(g, q, tree, u, pv, AdjacencyMode::Indexed, &mut check);
        debug_assert_eq!(
            &buf[start..],
            &check[..],
            "shared run must equal the private candidate scan"
        );
    }
    start
}

/// Calls `f` with every data vertex `pv` such that the DCG edge
/// `(pv, u, cv)` is backed by a live data edge (the upward analogue of
/// [`for_each_child_candidate`]).
pub fn for_each_parent_candidate<G: GraphView>(
    g: &G,
    q: &QueryGraph,
    tree: &QueryTree,
    u: QVertexId,
    cv: VertexId,
    mode: AdjacencyMode,
    f: &mut dyn FnMut(VertexId),
) {
    let e = tree.parent_edge(u).expect("non-root vertex has a parent edge");
    let qe = q.edge(e);
    if tree.child_is_target(u) {
        if !q.labels(qe.dst).is_subset_of(g.labels(cv)) {
            return;
        }
        let parent_labels = q.labels(qe.src);
        for pv in g.in_neighbors_matching(cv, qe.label, mode) {
            if parent_labels.is_subset_of(g.labels(pv)) {
                f(pv);
            }
        }
    } else {
        if !q.labels(qe.src).is_subset_of(g.labels(cv)) {
            return;
        }
        let parent_labels = q.labels(qe.dst);
        for pv in g.out_neighbors_matching(cv, qe.label, mode) {
            if parent_labels.is_subset_of(g.labels(pv)) {
                f(pv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{DynamicGraph, GraphStats, LabelId, LabelSet};

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// Query u0:A -> u1:B and u2:C -> u0:A (u0 is the root, so u2's tree
    /// edge runs against its direction).
    fn setup() -> (DynamicGraph, QueryGraph, QueryTree) {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        let c = g.add_vertex(LabelSet::single(l(2)));
        g.insert_edge(a, l(9), b);
        g.insert_edge(c, l(9), a);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        let u2 = q.add_vertex(LabelSet::single(l(2)));
        q.add_edge(u0, u1, Some(l(9)));
        q.add_edge(u2, u0, Some(l(9)));
        let tree = QueryTree::build(&q, u0, &GraphStats::new(&g));
        (g, q, tree)
    }

    #[test]
    fn forward_tree_edge() {
        let (g, q, tree) = setup();
        let u1 = QVertexId(1);
        assert!(tree.child_is_target(u1));
        assert!(tree_edge_supported(&g, &q, &tree, u1, VertexId(0), VertexId(1)));
        assert!(!tree_edge_supported(&g, &q, &tree, u1, VertexId(1), VertexId(0)));
        assert_eq!(data_pair(&tree, u1, VertexId(0), VertexId(1)), (VertexId(0), VertexId(1)));
        for mode in [AdjacencyMode::Indexed, AdjacencyMode::FlatScan] {
            let mut kids = Vec::new();
            for_each_child_candidate(&g, &q, &tree, u1, VertexId(0), mode, &mut |v| kids.push(v));
            assert_eq!(kids, vec![VertexId(1)], "{mode:?}");
        }
    }

    #[test]
    fn reversed_tree_edge() {
        let (g, q, tree) = setup();
        let u2 = QVertexId(2);
        assert!(!tree.child_is_target(u2), "query edge is u2 -> u0");
        // DCG edge (a, u2, c): parent side is a (matches u0), child c.
        assert!(tree_edge_supported(&g, &q, &tree, u2, VertexId(0), VertexId(2)));
        assert_eq!(data_pair(&tree, u2, VertexId(0), VertexId(2)), (VertexId(2), VertexId(0)));
        for mode in [AdjacencyMode::Indexed, AdjacencyMode::FlatScan] {
            let mut kids = Vec::new();
            for_each_child_candidate(&g, &q, &tree, u2, VertexId(0), mode, &mut |v| kids.push(v));
            assert_eq!(kids, vec![VertexId(2)], "{mode:?}");
            let mut parents = Vec::new();
            for_each_parent_candidate(&g, &q, &tree, u2, VertexId(2), mode, &mut |v| {
                parents.push(v)
            });
            assert_eq!(parents, vec![VertexId(0)], "{mode:?}");
        }
    }

    #[test]
    fn collect_candidates_dedups_tail_segment_only() {
        let (mut g, q, tree) = setup();
        // Add a parallel edge so vertex 1 is reported twice by the
        // callback-based enumeration.
        g.insert_edge(VertexId(0), l(9), VertexId(1));
        let u1 = QVertexId(1);
        let mut buf = vec![VertexId(77)]; // pre-existing segment below
        let start = collect_child_candidates(
            &g,
            &q,
            &tree,
            u1,
            VertexId(0),
            AdjacencyMode::Indexed,
            &mut buf,
        );
        assert_eq!(start, 1);
        assert_eq!(&buf[start..], &[VertexId(1)], "parallel edges deduped");
        assert_eq!(buf[0], VertexId(77), "prefix untouched");
        buf.truncate(start);
        assert_eq!(buf, vec![VertexId(77)]);
    }

    #[test]
    fn label_mismatch_yields_nothing() {
        let (g, q, tree) = setup();
        let u1 = QVertexId(1);
        let mut kids = Vec::new();
        // pv = c (labeled C, not A): parent-side label check fails.
        for_each_child_candidate(
            &g,
            &q,
            &tree,
            u1,
            VertexId(2),
            AdjacencyMode::Indexed,
            &mut |v| kids.push(v),
        );
        assert!(kids.is_empty());
    }

    #[test]
    fn wildcard_query_edge_enumerates_all_labels() {
        // Query u0 -> u1 with no edge label: both access modes must walk
        // every label group.
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        let c = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a, l(8), b);
        g.insert_edge(a, l(9), c);
        g.insert_edge(a, l(9), b); // parallel to the l(8) edge

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(u0, u1, None);
        let tree = QueryTree::build(&q, u0, &GraphStats::new(&g));
        for mode in [AdjacencyMode::Indexed, AdjacencyMode::FlatScan] {
            let mut kids = Vec::new();
            for_each_child_candidate(&g, &q, &tree, QVertexId(1), a, mode, &mut |v| kids.push(v));
            assert_eq!(kids, vec![b, b, c], "{mode:?}: per-entry reporting, (label, id) order");
        }
    }
}
