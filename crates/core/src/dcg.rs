//! The data-centric graph (DCG), §3.1.
//!
//! The DCG is conceptually a complete multigraph over the data vertices in
//! which every ordered pair `(v, v')` carries one edge per non-root query
//! vertex `u'`, in state NULL / IMPLICIT / EXPLICIT. NULL edges are never
//! stored; the remaining edges are exactly the intermediate results:
//!
//! * an **implicit** edge `(v, u', v')` records that some data path
//!   `v_s → v.v'` matches the query-tree path `u_s → P(u').u'` but at least
//!   one subtree of `u'` is not yet matched under `v'` (Def. 5);
//! * an **explicit** edge additionally has every subtree of `u'` matched
//!   (Def. 4).
//!
//! The artificial start edges `(v_s*, u_s, v_s)` are stored as a per-vertex
//! root state. Storage is adjacency keyed per query vertex in *both*
//! directions, so the engine can walk downward (`out_edge_slice`) during
//! `BuildDCG`/`SubgraphSearch` and upward (`in_edge_slice`) during
//! `BuildUpwardsAndEval` without touching the data graph. Per-vertex
//! explicit-out bitmaps make the paper's `MatchAllChildren` test O(1).
//!
//! Deviation from the paper (documented in DESIGN.md): implicit edges are
//! stored rather than derived from a bitmap plus data-graph scans.
//!
//! Storage is the slot arena of [`crate::dcg_store`]: per query vertex and
//! direction an open-addressed index from the near-side data vertex to a
//! sorted edge run, runs of ≤ 2 edges inline in the index slot and larger
//! runs in a shared size-classed pool with free-list reuse. See DESIGN.md
//! "DCG storage layout".

use std::collections::BTreeMap;
use tfx_graph::VertexId;
use tfx_query::QVertexId;

use crate::dcg_store::{OpenMap, RunIndex, RunPool};

/// State of a stored DCG edge. NULL is represented by absence.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum EdgeState {
    /// Path condition holds, some subtree of the candidate is unmatched.
    Implicit,
    /// Path condition holds and every subtree is matched.
    Explicit,
}

/// Storage-shape counters for the DCG arena (see [`Dcg::storage_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DcgStorageStats {
    /// Runs stored inline in their index slot (≤ 2 edges, no pool storage).
    pub inline_runs: usize,
    /// Runs stored in a pool slot.
    pub pooled_runs: usize,
    /// Emptied pooled runs holding only a size-class rebuild hint.
    pub warm_runs: usize,
    /// Pool slots currently on a free list (reserved but idle).
    pub free_slots: usize,
    /// Total edge entries carved out of the pool (live + free slack).
    pub carved_entries: usize,
    /// Exact reserved bytes, as [`Dcg::resident_bytes`].
    pub resident_bytes: usize,
}

/// The stored DCG for one registered query.
pub struct Dcg {
    nq: usize,
    root_qv: QVertexId,
    /// Per child query vertex: edges labeled with it, keyed by the
    /// tree-parent-side data vertex.
    out: Vec<RunIndex>,
    /// Same edges keyed by the child-side data vertex.
    inc: Vec<RunIndex>,
    /// Slot arena shared by every run of every index above.
    pool: RunPool,
    /// Artificial start edges `(v_s*, u_s, v)`.
    root: OpenMap<EdgeState>,
    /// Bit `u` set iff the vertex has ≥1 explicit outgoing edge labeled
    /// `u`. Entries are dropped when the whole bitmap clears.
    expl_out_bits: OpenMap<u64>,
    /// Global explicit-edge count per query vertex (drives matching-order
    /// maintenance).
    expl_count: Vec<u64>,
    /// Bit `u` set iff `expl_count[u]` changed since the last
    /// [`Dcg::take_dirty_expl`] — lets the drift check above touch only the
    /// counts that can possibly have started drifting.
    dirty_expl: u64,
    stored_edges: u64,
}

impl Dcg {
    /// An empty DCG for a query with `nq` vertices rooted at `root_qv`.
    ///
    /// Panics if `nq > 64` (the explicit-out bitmaps use one `u64` per data
    /// vertex, and the paper's queries are ≤ 14 vertices).
    pub fn new(nq: usize, root_qv: QVertexId) -> Self {
        assert!(nq <= 64, "queries are limited to 64 vertices");
        Dcg {
            nq,
            root_qv,
            out: (0..nq).map(|_| RunIndex::new()).collect(),
            inc: (0..nq).map(|_| RunIndex::new()).collect(),
            pool: RunPool::new(),
            root: OpenMap::new(),
            expl_out_bits: OpenMap::new(),
            expl_count: vec![0; nq],
            dirty_expl: 0,
            stored_edges: 0,
        }
    }

    /// The starting query vertex `u_s`.
    #[inline]
    pub fn root_qv(&self) -> QVertexId {
        self.root_qv
    }

    /// State of the artificial start edge `(v_s*, u_s, v)`.
    #[inline]
    pub fn root_state(&self, v: VertexId) -> Option<EdgeState> {
        self.root.get(v.0)
    }

    /// State of the DCG edge `(pv, u, cv)` for non-root `u`.
    pub fn state(&self, pv: VertexId, u: QVertexId, cv: VertexId) -> Option<EdgeState> {
        debug_assert_ne!(u, self.root_qv);
        self.out[u.index()].get(&self.pool, pv, cv)
    }

    /// Sets (inserting if absent) or clears (when `new` is `None`) the state
    /// of a DCG edge. `parent` is `None` exactly for the artificial start
    /// edge of `v`. Returns the previous state.
    pub fn transit(
        &mut self,
        parent: Option<VertexId>,
        u: QVertexId,
        v: VertexId,
        new: Option<EdgeState>,
    ) -> Option<EdgeState> {
        match parent {
            None => {
                debug_assert_eq!(u, self.root_qv, "only the start edge has no parent");
                let old = match new {
                    Some(st) => self.root.insert(v.0, st),
                    None => self.root.remove(v.0),
                };
                self.fix_counters(u, old, new, 1);
                old
            }
            Some(pv) => {
                debug_assert_ne!(u, self.root_qv);
                let (old, expl_after) = match new {
                    Some(st) => {
                        let (o, e) = self.out[u.index()].set(&mut self.pool, pv, v, st);
                        let (o2, _) = self.inc[u.index()].set(&mut self.pool, v, pv, st);
                        debug_assert_eq!(o, o2, "out/in adjacency diverged");
                        (o, e)
                    }
                    None => {
                        let (o, e) = self.out[u.index()].remove(&mut self.pool, pv, v);
                        let (o2, _) = self.inc[u.index()].remove(&mut self.pool, v, pv);
                        debug_assert_eq!(o, o2, "out/in adjacency diverged");
                        (o, e)
                    }
                };
                self.fix_counters(u, old, new, 1);
                // Maintain the explicit-out bitmap of the parent. When the
                // edge's explicit-ness is unchanged the run's explicit count
                // is too, so the bitmap needs no probe at all — the common
                // implicit insert/delete churn never touches it. The entry
                // is dropped when the whole bitmap clears so the table only
                // holds vertices that currently have explicit out-edges.
                let was_expl = old == Some(EdgeState::Explicit);
                let is_expl = new == Some(EdgeState::Explicit);
                if is_expl && !was_expl {
                    let (bi, _) = self.expl_out_bits.ensure(pv.0, 0);
                    *self.expl_out_bits.val_mut(bi) |= 1 << u.0;
                } else if was_expl && !is_expl && expl_after == 0 {
                    if let Some(bi) = self.expl_out_bits.find(pv.0) {
                        let bits = self.expl_out_bits.val_mut(bi);
                        *bits &= !(1 << u.0);
                        if *bits == 0 {
                            self.expl_out_bits.remove_at(bi);
                        }
                    }
                }
                old
            }
        }
    }

    fn fix_counters(
        &mut self,
        u: QVertexId,
        old: Option<EdgeState>,
        new: Option<EdgeState>,
        weight: u64,
    ) {
        if old.is_none() && new.is_some() {
            self.stored_edges += weight;
        } else if old.is_some() && new.is_none() {
            self.stored_edges -= weight;
        }
        let was_expl = old == Some(EdgeState::Explicit);
        let is_expl = new == Some(EdgeState::Explicit);
        if was_expl && !is_expl {
            self.expl_count[u.index()] -= weight;
            self.dirty_expl |= 1 << u.0;
        } else if !was_expl && is_expl {
            self.expl_count[u.index()] += weight;
            self.dirty_expl |= 1 << u.0;
        }
    }

    /// Number of stored (implicit or explicit) incoming edges of `v` labeled
    /// `u`, counting the artificial start edge when `u = u_s`.
    pub fn in_count_total(&self, v: VertexId, u: QVertexId) -> usize {
        if u == self.root_qv {
            usize::from(self.root.contains(v.0))
        } else {
            self.inc[u.index()].run_len(&self.pool, v)
        }
    }

    /// Number of *explicit* incoming edges of `v` labeled `u` (start edge
    /// included when `u = u_s`).
    pub fn in_expl_count(&self, v: VertexId, u: QVertexId) -> usize {
        if u == self.root_qv {
            usize::from(self.root_state(v) == Some(EdgeState::Explicit))
        } else {
            self.inc[u.index()].expl_count(&self.pool, v)
        }
    }

    /// Calls `f` for each *explicit* outgoing edge target of `pv` labeled
    /// `u` (the hot loop of `SubgraphSearch`).
    pub fn for_each_expl_out(
        &self,
        pv: VertexId,
        u: QVertexId,
        f: &mut dyn FnMut(VertexId) -> bool,
    ) {
        for &(v, st) in self.out_edge_slice(pv, u) {
            if st == EdgeState::Explicit && !f(v) {
                return;
            }
        }
    }

    /// The stored outgoing edges of `pv` labeled `u` as a borrowed slice
    /// (allocation-free enumeration for the search hot loop; filter on the
    /// state yourself).
    #[inline]
    pub fn out_edge_slice(&self, pv: VertexId, u: QVertexId) -> &[(VertexId, EdgeState)] {
        debug_assert_ne!(u, self.root_qv);
        self.out[u.index()].slice(&self.pool, pv)
    }

    /// The stored incoming edges of `v` labeled `u` as a borrowed slice
    /// (allocation-free upward climbs; callers snapshot into scratch before
    /// mutating the DCG).
    #[inline]
    pub fn in_edge_slice(&self, v: VertexId, u: QVertexId) -> &[(VertexId, EdgeState)] {
        debug_assert_ne!(u, self.root_qv);
        self.inc[u.index()].slice(&self.pool, v)
    }

    /// Returns and clears the dirty bitmask: bit `u` is set iff the
    /// explicit count of query vertex `u` changed since the previous call.
    #[inline]
    pub fn take_dirty_expl(&mut self) -> u64 {
        std::mem::take(&mut self.dirty_expl)
    }

    /// Every data vertex holding a stored artificial start edge, with its
    /// stored state, in arbitrary order.
    pub fn root_entries(&self) -> impl Iterator<Item = (VertexId, EdgeState)> + '_ {
        self.root.iter().map(|(v, &st)| (VertexId(v), st))
    }

    /// Number of explicit outgoing edges of `pv` labeled `u`.
    pub fn out_expl_count(&self, pv: VertexId, u: QVertexId) -> usize {
        debug_assert_ne!(u, self.root_qv);
        self.out[u.index()].expl_count(&self.pool, pv)
    }

    /// The explicit-out bitmap of `v` (bit `u` set iff ≥1 explicit out edge
    /// labeled `u`). O(1) `MatchAllChildren` support.
    #[inline]
    pub fn expl_out_bits(&self, v: VertexId) -> u64 {
        self.expl_out_bits.get(v.0).unwrap_or(0)
    }

    /// Total number of stored DCG edges (start edges included) — the
    /// paper's intermediate-result *size* measure for TurboFlux.
    #[inline]
    pub fn stored_edge_count(&self) -> u64 {
        self.stored_edges
    }

    /// Exact resident bytes of the stored intermediate results: every
    /// index table is charged its bucket capacity, the run pool its carved
    /// entries and metadata (free-list slack included). Reserved storage
    /// never shrinks, so this measures high-water memory — after a warm-up
    /// cycle a self-inverting update stream returns it to exactly the same
    /// value (see `tests/properties.rs`), but a freshly built engine
    /// reports less than one that has churned.
    pub fn resident_bytes(&self) -> usize {
        let mut bytes = self.root.resident_bytes()
            + self.expl_out_bits.resident_bytes()
            + self.pool.resident_bytes();
        for adj in self.out.iter().chain(self.inc.iter()) {
            bytes += adj.resident_bytes();
        }
        bytes
    }

    /// Storage-shape counters: how many runs are inline vs pooled, and how
    /// much pool storage is live vs free-listed.
    pub fn storage_stats(&self) -> DcgStorageStats {
        let mut stats = DcgStorageStats {
            free_slots: self.pool.free_slot_count(),
            carved_entries: self.pool.carved_entries(),
            resident_bytes: self.resident_bytes(),
            ..Default::default()
        };
        for adj in self.out.iter().chain(self.inc.iter()) {
            let (inline, pooled, warm) = adj.repr_counts();
            stats.inline_runs += inline;
            stats.pooled_runs += pooled;
            stats.warm_runs += warm;
        }
        stats
    }

    /// Global explicit-edge counts per query vertex.
    #[inline]
    pub fn expl_counts(&self) -> &[u64] {
        &self.expl_count
    }

    /// Number of query vertices.
    #[inline]
    pub fn query_vertex_count(&self) -> usize {
        self.nq
    }

    /// A canonical snapshot of every stored edge, for oracle comparison.
    /// Keys are `(parent, query vertex, child)` with `None` for `v_s*`.
    pub fn snapshot(&self) -> BTreeMap<(Option<VertexId>, u32, VertexId), EdgeState> {
        let mut snap = BTreeMap::new();
        for (v, &st) in self.root.iter() {
            snap.insert((None, self.root_qv.0, VertexId(v)), st);
        }
        for (u, adj) in self.out.iter().enumerate() {
            adj.for_each_run(&self.pool, |pv, run| {
                for &(cv, st) in run {
                    snap.insert((Some(pv), u as u32, cv), st);
                }
            });
        }
        snap
    }

    /// Debug-only consistency check: counters, bitmaps, and the arena
    /// invariants (sorted runs, inline/pooled representation boundary,
    /// per-run explicit counters, mirror slots, no slot aliasing or
    /// free-list leaks) all agree with the stored adjacency.
    pub fn check_consistency(&self) {
        let mut stored = self.root.len() as u64;
        let mut expl = vec![0u64; self.nq];
        expl[self.root_qv.index()] =
            self.root.iter().filter(|&(_, &s)| s == EdgeState::Explicit).count() as u64;
        for (u, adj) in self.out.iter().enumerate() {
            adj.for_each_run(&self.pool, |pv, run| {
                stored += run.len() as u64;
                let e = run.iter().filter(|&&(_, s)| s == EdgeState::Explicit).count();
                assert_eq!(e, adj.expl_count(&self.pool, pv), "expl cache wrong at ({pv}, u{u})");
                expl[u] += e as u64;
                let bit_set = self.expl_out_bits(pv) & (1 << u) != 0;
                assert_eq!(bit_set, e > 0, "bitmap wrong at ({pv}, u{u})");
                // mirror entries exist
                for &(cv, st) in run {
                    assert_eq!(
                        self.inc[u].get(&self.pool, cv, pv),
                        Some(st),
                        "missing mirror for ({pv}, u{u}, {cv})"
                    );
                }
            });
        }
        let mut inc_total = 0u64;
        for adj in &self.inc {
            adj.for_each_run(&self.pool, |_, run| inc_total += run.len() as u64);
        }
        assert_eq!(inc_total + self.root.len() as u64, stored, "in/out totals differ");
        assert_eq!(stored, self.stored_edges, "stored_edges counter wrong");
        assert_eq!(expl, self.expl_count, "expl_count wrong");
        // No vertex retains an all-zero bitmap entry.
        for (v, &bits) in self.expl_out_bits.iter() {
            assert_ne!(bits, 0, "stale empty bitmap entry for v{v}");
        }
        // Arena invariants: every pool slot is referenced by exactly one
        // run, free lists account for the rest, and slot extents tile the
        // carved pool.
        self.root.validate();
        self.expl_out_bits.validate();
        let mut referenced = vec![false; self.pool.slot_count()];
        for adj in self.out.iter().chain(self.inc.iter()) {
            adj.validate(&mut referenced);
        }
        self.pool.validate(&referenced);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn u(i: u32) -> QVertexId {
        QVertexId(i)
    }

    #[test]
    fn root_edges() {
        let mut d = Dcg::new(3, u(0));
        assert_eq!(d.root_state(v(1)), None);
        assert_eq!(d.transit(None, u(0), v(1), Some(EdgeState::Implicit)), None);
        assert_eq!(d.root_state(v(1)), Some(EdgeState::Implicit));
        assert_eq!(d.in_count_total(v(1), u(0)), 1);
        assert_eq!(d.in_expl_count(v(1), u(0)), 0);
        assert_eq!(
            d.transit(None, u(0), v(1), Some(EdgeState::Explicit)),
            Some(EdgeState::Implicit)
        );
        assert_eq!(d.in_expl_count(v(1), u(0)), 1);
        assert_eq!(d.expl_counts(), &[1, 0, 0]);
        assert_eq!(d.transit(None, u(0), v(1), None), Some(EdgeState::Explicit));
        assert_eq!(d.stored_edge_count(), 0);
        d.check_consistency();
    }

    #[test]
    fn non_root_edges_and_bitmaps() {
        let mut d = Dcg::new(3, u(0));
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        d.transit(Some(v(0)), u(1), v(2), Some(EdgeState::Implicit));
        assert_eq!(d.state(v(0), u(1), v(1)), Some(EdgeState::Implicit));
        assert_eq!(d.in_count_total(v(1), u(1)), 1);
        assert_eq!(d.out_expl_count(v(0), u(1)), 0);
        assert_eq!(d.expl_out_bits(v(0)), 0);
        d.check_consistency();

        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Explicit));
        assert_eq!(d.out_expl_count(v(0), u(1)), 1);
        assert_eq!(d.expl_out_bits(v(0)), 1 << 1);
        assert_eq!(d.in_expl_count(v(1), u(1)), 1);
        assert_eq!(d.stored_edge_count(), 2);
        d.check_consistency();

        // Downgrade clears the bitmap bit again.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        assert_eq!(d.expl_out_bits(v(0)), 0);
        d.check_consistency();

        d.transit(Some(v(0)), u(1), v(1), None);
        d.transit(Some(v(0)), u(1), v(2), None);
        assert_eq!(d.stored_edge_count(), 0);
        assert_eq!(d.in_count_total(v(1), u(1)), 0);
        d.check_consistency();
    }

    #[test]
    fn in_out_edge_views_agree() {
        let mut d = Dcg::new(4, u(0));
        d.transit(Some(v(0)), u(2), v(5), Some(EdgeState::Explicit));
        d.transit(Some(v(1)), u(2), v(5), Some(EdgeState::Implicit));
        let ins = d.in_edge_slice(v(5), u(2));
        assert_eq!(ins.len(), 2);
        assert!(ins.contains(&(v(0), EdgeState::Explicit)));
        assert!(ins.contains(&(v(1), EdgeState::Implicit)));
        assert_eq!(d.out_edge_slice(v(0), u(2)), &[(v(5), EdgeState::Explicit)]);
        let mut seen = Vec::new();
        d.for_each_expl_out(v(0), u(2), &mut |w| {
            seen.push(w);
            true
        });
        assert_eq!(seen, vec![v(5)]);
    }

    #[test]
    fn snapshot_is_canonical() {
        let mut d = Dcg::new(2, u(0));
        d.transit(None, u(0), v(0), Some(EdgeState::Explicit));
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        let snap = d.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&(None, 0, v(0))], EdgeState::Explicit);
        assert_eq!(snap[&(Some(v(0)), 1, v(1))], EdgeState::Implicit);
    }

    #[test]
    fn resident_bytes_grow_and_are_cycle_stable() {
        let mut d = Dcg::new(2, u(0));
        assert_eq!(d.resident_bytes(), 0, "empty DCG reserves nothing");
        let cycle = |d: &mut Dcg| {
            d.transit(None, u(0), v(0), Some(EdgeState::Implicit));
            for i in 1..6 {
                d.transit(Some(v(0)), u(1), v(i), Some(EdgeState::Implicit));
            }
            let grown = d.resident_bytes();
            for i in 1..6 {
                d.transit(Some(v(0)), u(1), v(i), None);
            }
            d.transit(None, u(0), v(0), None);
            grown
        };
        // Two warm-up cycles: the first teardown still sizes free-list
        // stacks, so the reserved-bytes fixpoint starts at the second.
        cycle(&mut d);
        let grown1 = cycle(&mut d);
        let warm = d.resident_bytes();
        assert!(grown1 > 0 && warm > 0, "capacity accounting keeps reserved bytes");
        // Reserved bytes are a fixpoint once warm: replaying the identical
        // cycle must not grow (or shrink) the accounting.
        let grown2 = cycle(&mut d);
        assert_eq!(grown2, grown1, "warm cycle peak is stable");
        assert_eq!(d.resident_bytes(), warm, "warm cycle trough is stable");
        assert_eq!(d.stored_edge_count(), 0);
        d.check_consistency();
    }

    #[test]
    fn edge_slices_mirror_each_direction() {
        let mut d = Dcg::new(4, u(0));
        d.transit(Some(v(0)), u(2), v(5), Some(EdgeState::Explicit));
        d.transit(Some(v(1)), u(2), v(5), Some(EdgeState::Implicit));
        let ins: Vec<_> = d.in_edge_slice(v(5), u(2)).to_vec();
        for &(pv, st) in &ins {
            assert!(d.out_edge_slice(pv, u(2)).contains(&(v(5), st)));
        }
        assert_eq!(ins.len(), 2);
        assert!(d.in_edge_slice(v(9), u(2)).is_empty());
        assert!(d.out_edge_slice(v(9), u(2)).is_empty());
    }

    #[test]
    fn dirty_expl_tracks_count_changes() {
        let mut d = Dcg::new(3, u(0));
        assert_eq!(d.take_dirty_expl(), 0);
        // Implicit edges never move explicit counts.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        assert_eq!(d.take_dirty_expl(), 0);
        // Upgrade marks the query vertex dirty; the mask is consumed.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Explicit));
        assert_eq!(d.take_dirty_expl(), 1 << 1);
        assert_eq!(d.take_dirty_expl(), 0);
        // Downgrade and root-edge transitions mark too.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        d.transit(None, u(0), v(2), Some(EdgeState::Explicit));
        assert_eq!(d.take_dirty_expl(), (1 << 1) | 1);
        d.check_consistency();
    }

    /// Same xorshift as the engine's randomized tests.
    struct Rng(u64);

    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
        }

        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Randomized soak: interleaved insert/delete/restate churn with a
    /// shadow model. Checks that `resident_bytes` stays an exact function
    /// of reserved storage (snapshot-derived edge count matches the
    /// counters, free lists absorb every freed slot, and draining the DCG
    /// returns every slot to a free list — a leaked slot would show up as
    /// `live_slots > pooled_runs` or a byte-count drift on the second,
    /// identical churn run).
    #[test]
    fn soak_churn_storage_accounting() {
        let mut rng = Rng::new(0x50AC);
        let nq = 5;
        let mut d = Dcg::new(nq, u(0));
        let mut live: Vec<(Option<VertexId>, QVertexId, VertexId)> = Vec::new();
        let churn = |d: &mut Dcg, rng: &mut Rng, live: &mut Vec<_>| {
            for step in 0..6_000 {
                let insert = rng.below(100) < 55 || live.is_empty();
                if insert {
                    let (parent, qv) = if rng.below(8) == 0 {
                        (None, u(0))
                    } else {
                        (Some(v(rng.below(12) as u32)), u(1 + rng.below(nq - 1) as u32))
                    };
                    let cv = v(rng.below(40) as u32);
                    let st =
                        if rng.below(3) == 0 { EdgeState::Explicit } else { EdgeState::Implicit };
                    if d.transit(parent, qv, cv, Some(st)).is_none() {
                        live.push((parent, qv, cv));
                    }
                } else {
                    let i = rng.below(live.len());
                    let (parent, qv, cv) = live.swap_remove(i);
                    assert!(d.transit(parent, qv, cv, None).is_some());
                }
                if step % 1500 == 0 {
                    d.check_consistency();
                }
            }
        };
        churn(&mut d, &mut rng, &mut live);
        d.check_consistency();
        assert_eq!(d.snapshot().len() as u64, d.stored_edge_count());
        assert_eq!(d.stored_edge_count(), live.len() as u64);
        let stats = d.storage_stats();
        assert_eq!(
            stats.pooled_runs + stats.free_slots,
            d.pool.slot_count(),
            "pool slot leaked: some slot is neither referenced nor free"
        );
        assert!(stats.inline_runs > 0 && stats.pooled_runs > 0, "soak missed a representation");

        // Drain everything: all pool storage must land on free lists.
        for (parent, qv, cv) in live.drain(..) {
            d.transit(parent, qv, cv, None);
        }
        assert_eq!(d.stored_edge_count(), 0);
        assert!(d.snapshot().is_empty());
        let drained = d.storage_stats();
        assert_eq!(drained.pooled_runs, 0);
        assert_eq!(drained.free_slots, d.pool.slot_count(), "drained DCG leaked pool slots");
        assert_eq!(drained.carved_entries, stats.carved_entries, "drain carved new storage");
        d.check_consistency();

        // Replay the identical churn: reserved bytes must be a fixpoint
        // (free-list leaks would force fresh carving and grow the count).
        let warm_bytes = d.resident_bytes();
        let mut rng2 = Rng::new(0x50AC);
        churn(&mut d, &mut rng2, &mut live);
        for (parent, qv, cv) in live.drain(..) {
            d.transit(parent, qv, cv, None);
        }
        d.check_consistency();
        assert_eq!(d.resident_bytes(), warm_bytes, "identical churn replay grew storage");
    }

    #[test]
    fn early_exit_in_expl_iteration() {
        let mut d = Dcg::new(2, u(0));
        for i in 0..5 {
            d.transit(Some(v(0)), u(1), v(10 + i), Some(EdgeState::Explicit));
        }
        let mut n = 0;
        d.for_each_expl_out(v(0), u(1), &mut |_| {
            n += 1;
            n < 2
        });
        assert_eq!(n, 2);
    }
}
