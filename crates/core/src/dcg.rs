//! The data-centric graph (DCG), §3.1.
//!
//! The DCG is conceptually a complete multigraph over the data vertices in
//! which every ordered pair `(v, v')` carries one edge per non-root query
//! vertex `u'`, in state NULL / IMPLICIT / EXPLICIT. NULL edges are never
//! stored; the remaining edges are exactly the intermediate results:
//!
//! * an **implicit** edge `(v, u', v')` records that some data path
//!   `v_s → v.v'` matches the query-tree path `u_s → P(u').u'` but at least
//!   one subtree of `u'` is not yet matched under `v'` (Def. 5);
//! * an **explicit** edge additionally has every subtree of `u'` matched
//!   (Def. 4).
//!
//! The artificial start edges `(v_s*, u_s, v_s)` are stored as a per-vertex
//! root state. Storage is adjacency keyed per query vertex in *both*
//! directions, so the engine can walk downward (`out_edge_slice`) during
//! `BuildDCG`/`SubgraphSearch` and upward (`in_edge_slice`) during
//! `BuildUpwardsAndEval` without touching the data graph. Per-vertex
//! explicit-out bitmaps make the paper's `MatchAllChildren` test O(1).
//!
//! Deviation from the paper (documented in DESIGN.md): implicit edges are
//! stored rather than derived from a bitmap plus data-graph scans.

use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use tfx_graph::VertexId;
use tfx_query::QVertexId;

/// State of a stored DCG edge. NULL is represented by absence.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum EdgeState {
    /// Path condition holds, some subtree of the candidate is unmatched.
    Implicit,
    /// Path condition holds and every subtree is matched.
    Explicit,
}

/// One direction of a DCG adjacency entry: edges with a fixed query-vertex
/// label incident to a fixed data vertex, kept sorted by the far-end vertex
/// id so lookups binary-search and enumeration order is canonical (and in
/// particular independent of insertion/removal history).
#[derive(Default, Clone, Debug)]
struct EdgeList {
    edges: Vec<(VertexId, EdgeState)>,
    expl: u32,
}

impl EdgeList {
    fn get(&self, v: VertexId) -> Option<EdgeState> {
        let i = self.edges.binary_search_by_key(&v, |&(w, _)| w).ok()?;
        Some(self.edges[i].1)
    }

    /// Sets the state of the edge to `v`, returning the previous state.
    fn set(&mut self, v: VertexId, st: EdgeState) -> Option<EdgeState> {
        match self.edges.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                let old = self.edges[i].1;
                self.edges[i].1 = st;
                if old == EdgeState::Explicit && st != EdgeState::Explicit {
                    self.expl -= 1;
                } else if old != EdgeState::Explicit && st == EdgeState::Explicit {
                    self.expl += 1;
                }
                Some(old)
            }
            Err(i) => {
                self.edges.insert(i, (v, st));
                if st == EdgeState::Explicit {
                    self.expl += 1;
                }
                None
            }
        }
    }

    fn remove(&mut self, v: VertexId) -> Option<EdgeState> {
        let i = self.edges.binary_search_by_key(&v, |&(w, _)| w).ok()?;
        let (_, old) = self.edges.remove(i);
        if old == EdgeState::Explicit {
            self.expl -= 1;
        }
        Some(old)
    }

    fn len(&self) -> usize {
        self.edges.len()
    }

    fn expl_count(&self) -> usize {
        self.expl as usize
    }
}

/// The stored DCG for one registered query.
pub struct Dcg {
    nq: usize,
    root_qv: QVertexId,
    /// Per child query vertex: edges labeled with it, keyed by the
    /// tree-parent-side data vertex.
    out: Vec<FxHashMap<VertexId, EdgeList>>,
    /// Same edges keyed by the child-side data vertex.
    inc: Vec<FxHashMap<VertexId, EdgeList>>,
    /// Artificial start edges `(v_s*, u_s, v)`.
    root: FxHashMap<VertexId, EdgeState>,
    /// Bit `u` set iff the vertex has ≥1 explicit outgoing edge labeled `u`.
    expl_out_bits: FxHashMap<VertexId, u64>,
    /// Global explicit-edge count per query vertex (drives matching-order
    /// maintenance).
    expl_count: Vec<u64>,
    /// Bit `u` set iff `expl_count[u]` changed since the last
    /// [`Dcg::take_dirty_expl`] — lets the drift check above touch only the
    /// counts that can possibly have started drifting.
    dirty_expl: u64,
    stored_edges: u64,
}

impl Dcg {
    /// An empty DCG for a query with `nq` vertices rooted at `root_qv`.
    ///
    /// Panics if `nq > 64` (the explicit-out bitmaps use one `u64` per data
    /// vertex, and the paper's queries are ≤ 14 vertices).
    pub fn new(nq: usize, root_qv: QVertexId) -> Self {
        assert!(nq <= 64, "queries are limited to 64 vertices");
        Dcg {
            nq,
            root_qv,
            out: vec![FxHashMap::default(); nq],
            inc: vec![FxHashMap::default(); nq],
            root: FxHashMap::default(),
            expl_out_bits: FxHashMap::default(),
            expl_count: vec![0; nq],
            dirty_expl: 0,
            stored_edges: 0,
        }
    }

    /// The starting query vertex `u_s`.
    #[inline]
    pub fn root_qv(&self) -> QVertexId {
        self.root_qv
    }

    /// State of the artificial start edge `(v_s*, u_s, v)`.
    #[inline]
    pub fn root_state(&self, v: VertexId) -> Option<EdgeState> {
        self.root.get(&v).copied()
    }

    /// State of the DCG edge `(pv, u, cv)` for non-root `u`.
    pub fn state(&self, pv: VertexId, u: QVertexId, cv: VertexId) -> Option<EdgeState> {
        debug_assert_ne!(u, self.root_qv);
        self.out[u.index()].get(&pv).and_then(|l| l.get(cv))
    }

    /// Sets (inserting if absent) or clears (when `new` is `None`) the state
    /// of a DCG edge. `parent` is `None` exactly for the artificial start
    /// edge of `v`. Returns the previous state.
    pub fn transit(
        &mut self,
        parent: Option<VertexId>,
        u: QVertexId,
        v: VertexId,
        new: Option<EdgeState>,
    ) -> Option<EdgeState> {
        match parent {
            None => {
                debug_assert_eq!(u, self.root_qv, "only the start edge has no parent");
                let old = match new {
                    Some(st) => self.root.insert(v, st),
                    None => self.root.remove(&v),
                };
                self.fix_counters(u, old, new, 1);
                old
            }
            Some(pv) => {
                debug_assert_ne!(u, self.root_qv);
                let old = match new {
                    Some(st) => {
                        let o = self.out[u.index()].entry(pv).or_default().set(v, st);
                        let o2 = self.inc[u.index()].entry(v).or_default().set(pv, st);
                        debug_assert_eq!(o, o2, "out/in adjacency diverged");
                        o
                    }
                    None => {
                        let o = self.out[u.index()].get_mut(&pv).and_then(|l| l.remove(v));
                        let o2 = self.inc[u.index()].get_mut(&v).and_then(|l| l.remove(pv));
                        debug_assert_eq!(o, o2, "out/in adjacency diverged");
                        o
                    }
                };
                self.fix_counters(u, old, new, 1);
                // Maintain the explicit-out bitmap of the parent.
                let has_expl = self.out[u.index()].get(&pv).is_some_and(|l| l.expl_count() > 0);
                let bits = self.expl_out_bits.entry(pv).or_insert(0);
                if has_expl {
                    *bits |= 1 << u.0;
                } else {
                    *bits &= !(1 << u.0);
                }
                old
            }
        }
    }

    fn fix_counters(
        &mut self,
        u: QVertexId,
        old: Option<EdgeState>,
        new: Option<EdgeState>,
        weight: u64,
    ) {
        if old.is_none() && new.is_some() {
            self.stored_edges += weight;
        } else if old.is_some() && new.is_none() {
            self.stored_edges -= weight;
        }
        let was_expl = old == Some(EdgeState::Explicit);
        let is_expl = new == Some(EdgeState::Explicit);
        if was_expl && !is_expl {
            self.expl_count[u.index()] -= weight;
            self.dirty_expl |= 1 << u.0;
        } else if !was_expl && is_expl {
            self.expl_count[u.index()] += weight;
            self.dirty_expl |= 1 << u.0;
        }
    }

    /// Number of stored (implicit or explicit) incoming edges of `v` labeled
    /// `u`, counting the artificial start edge when `u = u_s`.
    pub fn in_count_total(&self, v: VertexId, u: QVertexId) -> usize {
        if u == self.root_qv {
            usize::from(self.root.contains_key(&v))
        } else {
            self.inc[u.index()].get(&v).map_or(0, EdgeList::len)
        }
    }

    /// Number of *explicit* incoming edges of `v` labeled `u` (start edge
    /// included when `u = u_s`).
    pub fn in_expl_count(&self, v: VertexId, u: QVertexId) -> usize {
        if u == self.root_qv {
            usize::from(self.root_state(v) == Some(EdgeState::Explicit))
        } else {
            self.inc[u.index()].get(&v).map_or(0, EdgeList::expl_count)
        }
    }

    /// Calls `f` for each *explicit* outgoing edge target of `pv` labeled
    /// `u` (the hot loop of `SubgraphSearch`).
    pub fn for_each_expl_out(
        &self,
        pv: VertexId,
        u: QVertexId,
        f: &mut dyn FnMut(VertexId) -> bool,
    ) {
        for &(v, st) in self.out_edge_slice(pv, u) {
            if st == EdgeState::Explicit && !f(v) {
                return;
            }
        }
    }

    /// The stored outgoing edges of `pv` labeled `u` as a borrowed slice
    /// (allocation-free enumeration for the search hot loop; filter on the
    /// state yourself).
    #[inline]
    pub fn out_edge_slice(&self, pv: VertexId, u: QVertexId) -> &[(VertexId, EdgeState)] {
        debug_assert_ne!(u, self.root_qv);
        self.out[u.index()].get(&pv).map_or(&[][..], |l| &l.edges)
    }

    /// The stored incoming edges of `v` labeled `u` as a borrowed slice
    /// (allocation-free upward climbs; callers snapshot into scratch before
    /// mutating the DCG).
    #[inline]
    pub fn in_edge_slice(&self, v: VertexId, u: QVertexId) -> &[(VertexId, EdgeState)] {
        debug_assert_ne!(u, self.root_qv);
        self.inc[u.index()].get(&v).map_or(&[][..], |l| &l.edges)
    }

    /// Returns and clears the dirty bitmask: bit `u` is set iff the
    /// explicit count of query vertex `u` changed since the previous call.
    #[inline]
    pub fn take_dirty_expl(&mut self) -> u64 {
        std::mem::take(&mut self.dirty_expl)
    }

    /// Number of explicit outgoing edges of `pv` labeled `u`.
    pub fn out_expl_count(&self, pv: VertexId, u: QVertexId) -> usize {
        debug_assert_ne!(u, self.root_qv);
        self.out[u.index()].get(&pv).map_or(0, EdgeList::expl_count)
    }

    /// The explicit-out bitmap of `v` (bit `u` set iff ≥1 explicit out edge
    /// labeled `u`). O(1) `MatchAllChildren` support.
    #[inline]
    pub fn expl_out_bits(&self, v: VertexId) -> u64 {
        self.expl_out_bits.get(&v).copied().unwrap_or(0)
    }

    /// Total number of stored DCG edges (start edges included) — the
    /// paper's intermediate-result *size* measure for TurboFlux.
    #[inline]
    pub fn stored_edge_count(&self) -> u64 {
        self.stored_edges
    }

    /// Exact resident bytes of the stored intermediate results under this
    /// storage layout: every per-(u) hash table is charged its *capacity*
    /// (entry payload plus one control byte per bucket, the hashbrown
    /// model), and every edge list its `Vec` capacity. Capacities never
    /// shrink, so this measures reserved memory — after a warm-up cycle a
    /// self-inverting update stream returns it to exactly the same value
    /// (see `tests/properties.rs`), but a freshly built engine reports
    /// less than one that has churned.
    pub fn resident_bytes(&self) -> usize {
        fn table_bytes<V>(m: &FxHashMap<VertexId, V>) -> usize {
            m.capacity() * (std::mem::size_of::<(VertexId, V)>() + 1)
        }
        let mut bytes = table_bytes(&self.root) + table_bytes(&self.expl_out_bits);
        for adj in self.out.iter().chain(self.inc.iter()) {
            bytes += table_bytes(adj);
            bytes += adj
                .values()
                .map(|l| l.edges.capacity() * std::mem::size_of::<(VertexId, EdgeState)>())
                .sum::<usize>();
        }
        bytes
    }

    /// Global explicit-edge counts per query vertex.
    #[inline]
    pub fn expl_counts(&self) -> &[u64] {
        &self.expl_count
    }

    /// Number of query vertices.
    #[inline]
    pub fn query_vertex_count(&self) -> usize {
        self.nq
    }

    /// A canonical snapshot of every stored edge, for oracle comparison.
    /// Keys are `(parent, query vertex, child)` with `None` for `v_s*`.
    pub fn snapshot(&self) -> BTreeMap<(Option<VertexId>, u32, VertexId), EdgeState> {
        let mut snap = BTreeMap::new();
        for (&v, &st) in &self.root {
            snap.insert((None, self.root_qv.0, v), st);
        }
        for (u, adj) in self.out.iter().enumerate() {
            for (&pv, list) in adj {
                for &(cv, st) in &list.edges {
                    snap.insert((Some(pv), u as u32, cv), st);
                }
            }
        }
        snap
    }

    /// Debug-only consistency check: counters and bitmaps agree with the
    /// stored adjacency.
    pub fn check_consistency(&self) {
        let mut stored = self.root.len() as u64;
        let mut expl = vec![0u64; self.nq];
        expl[self.root_qv.index()] =
            self.root.values().filter(|&&s| s == EdgeState::Explicit).count() as u64;
        for (u, adj) in self.out.iter().enumerate() {
            for (&pv, list) in adj {
                stored += list.len() as u64;
                let e = list.edges.iter().filter(|&&(_, s)| s == EdgeState::Explicit).count();
                assert_eq!(e, list.expl_count(), "expl cache wrong at ({pv}, u{u})");
                expl[u] += e as u64;
                let bit_set = self.expl_out_bits(pv) & (1 << u) != 0;
                assert_eq!(bit_set, e > 0, "bitmap wrong at ({pv}, u{u})");
                // mirror entries exist
                for &(cv, st) in &list.edges {
                    assert_eq!(
                        self.inc[u].get(&cv).and_then(|l| l.get(pv)),
                        Some(st),
                        "missing mirror for ({pv}, u{u}, {cv})"
                    );
                }
            }
        }
        let inc_total: usize = self.inc.iter().flat_map(|m| m.values()).map(EdgeList::len).sum();
        assert_eq!(inc_total as u64 + self.root.len() as u64, stored, "in/out totals differ");
        assert_eq!(stored, self.stored_edges, "stored_edges counter wrong");
        assert_eq!(expl, self.expl_count, "expl_count wrong");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn u(i: u32) -> QVertexId {
        QVertexId(i)
    }

    #[test]
    fn root_edges() {
        let mut d = Dcg::new(3, u(0));
        assert_eq!(d.root_state(v(1)), None);
        assert_eq!(d.transit(None, u(0), v(1), Some(EdgeState::Implicit)), None);
        assert_eq!(d.root_state(v(1)), Some(EdgeState::Implicit));
        assert_eq!(d.in_count_total(v(1), u(0)), 1);
        assert_eq!(d.in_expl_count(v(1), u(0)), 0);
        assert_eq!(
            d.transit(None, u(0), v(1), Some(EdgeState::Explicit)),
            Some(EdgeState::Implicit)
        );
        assert_eq!(d.in_expl_count(v(1), u(0)), 1);
        assert_eq!(d.expl_counts(), &[1, 0, 0]);
        assert_eq!(d.transit(None, u(0), v(1), None), Some(EdgeState::Explicit));
        assert_eq!(d.stored_edge_count(), 0);
        d.check_consistency();
    }

    #[test]
    fn non_root_edges_and_bitmaps() {
        let mut d = Dcg::new(3, u(0));
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        d.transit(Some(v(0)), u(1), v(2), Some(EdgeState::Implicit));
        assert_eq!(d.state(v(0), u(1), v(1)), Some(EdgeState::Implicit));
        assert_eq!(d.in_count_total(v(1), u(1)), 1);
        assert_eq!(d.out_expl_count(v(0), u(1)), 0);
        assert_eq!(d.expl_out_bits(v(0)), 0);
        d.check_consistency();

        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Explicit));
        assert_eq!(d.out_expl_count(v(0), u(1)), 1);
        assert_eq!(d.expl_out_bits(v(0)), 1 << 1);
        assert_eq!(d.in_expl_count(v(1), u(1)), 1);
        assert_eq!(d.stored_edge_count(), 2);
        d.check_consistency();

        // Downgrade clears the bitmap bit again.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        assert_eq!(d.expl_out_bits(v(0)), 0);
        d.check_consistency();

        d.transit(Some(v(0)), u(1), v(1), None);
        d.transit(Some(v(0)), u(1), v(2), None);
        assert_eq!(d.stored_edge_count(), 0);
        assert_eq!(d.in_count_total(v(1), u(1)), 0);
        d.check_consistency();
    }

    #[test]
    fn in_out_edge_views_agree() {
        let mut d = Dcg::new(4, u(0));
        d.transit(Some(v(0)), u(2), v(5), Some(EdgeState::Explicit));
        d.transit(Some(v(1)), u(2), v(5), Some(EdgeState::Implicit));
        let ins = d.in_edge_slice(v(5), u(2));
        assert_eq!(ins.len(), 2);
        assert!(ins.contains(&(v(0), EdgeState::Explicit)));
        assert!(ins.contains(&(v(1), EdgeState::Implicit)));
        assert_eq!(d.out_edge_slice(v(0), u(2)), &[(v(5), EdgeState::Explicit)]);
        let mut seen = Vec::new();
        d.for_each_expl_out(v(0), u(2), &mut |w| {
            seen.push(w);
            true
        });
        assert_eq!(seen, vec![v(5)]);
    }

    #[test]
    fn snapshot_is_canonical() {
        let mut d = Dcg::new(2, u(0));
        d.transit(None, u(0), v(0), Some(EdgeState::Explicit));
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        let snap = d.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&(None, 0, v(0))], EdgeState::Explicit);
        assert_eq!(snap[&(Some(v(0)), 1, v(1))], EdgeState::Implicit);
    }

    #[test]
    fn resident_bytes_grow_and_are_cycle_stable() {
        let mut d = Dcg::new(2, u(0));
        assert_eq!(d.resident_bytes(), 0, "empty DCG reserves nothing");
        let cycle = |d: &mut Dcg| {
            d.transit(None, u(0), v(0), Some(EdgeState::Implicit));
            for i in 1..6 {
                d.transit(Some(v(0)), u(1), v(i), Some(EdgeState::Implicit));
            }
            let grown = d.resident_bytes();
            for i in 1..6 {
                d.transit(Some(v(0)), u(1), v(i), None);
            }
            d.transit(None, u(0), v(0), None);
            grown
        };
        let grown1 = cycle(&mut d);
        let warm = d.resident_bytes();
        assert!(grown1 > 0 && warm > 0, "capacity accounting keeps reserved bytes");
        // Reserved bytes are a fixpoint once warm: replaying the identical
        // cycle must not grow (or shrink) the accounting.
        let grown2 = cycle(&mut d);
        assert_eq!(grown2, grown1, "warm cycle peak is stable");
        assert_eq!(d.resident_bytes(), warm, "warm cycle trough is stable");
        assert_eq!(d.stored_edge_count(), 0);
        d.check_consistency();
    }

    #[test]
    fn edge_slices_mirror_each_direction() {
        let mut d = Dcg::new(4, u(0));
        d.transit(Some(v(0)), u(2), v(5), Some(EdgeState::Explicit));
        d.transit(Some(v(1)), u(2), v(5), Some(EdgeState::Implicit));
        let ins: Vec<_> = d.in_edge_slice(v(5), u(2)).to_vec();
        for &(pv, st) in &ins {
            assert!(d.out_edge_slice(pv, u(2)).contains(&(v(5), st)));
        }
        assert_eq!(ins.len(), 2);
        assert!(d.in_edge_slice(v(9), u(2)).is_empty());
        assert!(d.out_edge_slice(v(9), u(2)).is_empty());
    }

    #[test]
    fn dirty_expl_tracks_count_changes() {
        let mut d = Dcg::new(3, u(0));
        assert_eq!(d.take_dirty_expl(), 0);
        // Implicit edges never move explicit counts.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        assert_eq!(d.take_dirty_expl(), 0);
        // Upgrade marks the query vertex dirty; the mask is consumed.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Explicit));
        assert_eq!(d.take_dirty_expl(), 1 << 1);
        assert_eq!(d.take_dirty_expl(), 0);
        // Downgrade and root-edge transitions mark too.
        d.transit(Some(v(0)), u(1), v(1), Some(EdgeState::Implicit));
        d.transit(None, u(0), v(2), Some(EdgeState::Explicit));
        assert_eq!(d.take_dirty_expl(), (1 << 1) | 1);
        d.check_consistency();
    }

    #[test]
    fn early_exit_in_expl_iteration() {
        let mut d = Dcg::new(2, u(0));
        for i in 0..5 {
            d.transit(Some(v(0)), u(1), v(10 + i), Some(EdgeState::Explicit));
        }
        let mut n = 0;
        d.for_each_expl_out(v(0), u(1), &mut |_| {
            n += 1;
            n < 2
        });
        assert_eq!(n, 2);
    }
}
