//! Reusable per-engine scratch buffers for the per-update hot path.
//!
//! Every update evaluation needs a handful of temporary collections: the
//! partial embedding, a match record to report through, candidate snapshots
//! for the recursive `BuildDCG` / `ClearDCG` walks, in-edge snapshots for
//! the upward climbs, and the lists of query edges matching the updated
//! data edge. Allocating them per update dominated the cost of small
//! updates, so they live in one [`SearchScratch`] owned by the engine and
//! threaded through `search.rs`, `ops_insert.rs` and `ops_delete.rs`.
//! Intra-update parallel enumeration (`parallel.rs`) checks additional
//! scratches out of a pool, one per worker thread.
//!
//! The recursive walks use **segmented stacks**: a recursion level records
//! `buf.len()` on entry, appends its snapshot, iterates it by index (inner
//! levels only ever append past the segment and truncate back), and
//! truncates to the recorded length on exit. One long-lived `Vec` thus
//! serves arbitrarily deep recursion without per-level allocation once its
//! high-water capacity is reached.
//!
//! Under isomorphism semantics the scratch additionally maintains a
//! multiplicity map of the data vertices currently bound in `m`, updated at
//! every bind/unbind, so `IsJoinable`'s injectivity test is an O(1) lookup
//! instead of an O(|q|) scan over the embedding.

use rustc_hash::FxHashMap;
use tfx_graph::VertexId;
use tfx_query::{EdgeId, MatchRecord, QVertexId};

use crate::dcg::EdgeState;

/// Scratch space reused across updates; see the module docs.
#[derive(Default, Debug)]
pub(crate) struct SearchScratch {
    /// Partial embedding `m : V(q) → V(g)`, indexed by query vertex id.
    /// Written through [`SearchScratch::bind`] / [`SearchScratch::rebind`]
    /// so the bound-vertex multiplicities below stay in sync.
    pub(crate) m: Vec<Option<VertexId>>,
    /// Match record reused across reports.
    pub(crate) rec: MatchRecord,
    /// Segmented stack of child candidates (`BuildDCG` / `ClearDCG`).
    pub(crate) kids: Vec<VertexId>,
    /// Segmented stack of DCG in-edge snapshots (upward climbs).
    pub(crate) climb: Vec<(VertexId, EdgeState)>,
    /// Tree query edges matching the current updated data edge.
    pub(crate) tree_edges: Vec<EdgeId>,
    /// Non-tree query edges matching the current updated data edge.
    pub(crate) non_tree: Vec<EdgeId>,
    /// Segmented stack of explicit-frontier ids for the non-tree-edge
    /// intersection prefilter (`search.rs`).
    pub(crate) isect: Vec<VertexId>,
    /// Ping-pong buffer for folding successive run intersections into the
    /// top `isect` segment.
    pub(crate) isect_tmp: Vec<VertexId>,
    /// How many entries of `m` currently map to each data vertex. Only
    /// maintained when `track_bound` is set (isomorphism semantics);
    /// inserts and removals balance, so the map stays at its high-water
    /// capacity and steady-state updates never allocate.
    bound: FxHashMap<VertexId, u32>,
    /// Maintain `bound` at bind/unbind (isomorphism only).
    track_bound: bool,
}

impl SearchScratch {
    /// Scratch sized for a query with `nq` vertices. `track_bound` enables
    /// the bound-vertex multiplicity map (isomorphism injectivity checks).
    pub(crate) fn for_query(nq: usize, track_bound: bool) -> Self {
        SearchScratch { m: vec![None; nq], track_bound, ..Default::default() }
    }

    /// Sets `m(u) = v`, replacing (and returning) any previous binding.
    /// The multiplicity map follows when tracking is on.
    pub(crate) fn rebind(&mut self, u: QVertexId, v: Option<VertexId>) -> Option<VertexId> {
        let prev = std::mem::replace(&mut self.m[u.index()], v);
        if self.track_bound && prev != v {
            if let Some(w) = prev {
                let n = self.bound.get_mut(&w).expect("bound count for a mapped vertex");
                *n -= 1;
                if *n == 0 {
                    self.bound.remove(&w);
                }
            }
            if let Some(w) = v {
                *self.bound.entry(w).or_insert(0) += 1;
            }
        }
        prev
    }

    /// Binds `m(u) = v`; `u` must be unbound.
    #[inline]
    pub(crate) fn bind(&mut self, u: QVertexId, v: VertexId) {
        let prev = self.rebind(u, Some(v));
        debug_assert!(prev.is_none(), "bind over an existing binding");
    }

    /// Clears the binding of `u` (which must be bound).
    #[inline]
    pub(crate) fn unbind(&mut self, u: QVertexId) {
        let prev = self.rebind(u, None);
        debug_assert!(prev.is_some(), "unbind of an unbound vertex");
    }

    /// True iff `v` is the image of some query vertex *other than* `u` in
    /// the current partial embedding — the isomorphism injectivity test.
    /// O(1) via the multiplicity map when tracking is on, O(|q|) scan
    /// otherwise (homomorphism engines never ask).
    #[inline]
    pub(crate) fn bound_elsewhere(&self, u: QVertexId, v: VertexId) -> bool {
        let own = u32::from(self.m[u.index()] == Some(v));
        if self.track_bound {
            self.bound.get(&v).copied().unwrap_or(0) > own
        } else {
            self.m.iter().filter(|&&mv| mv == Some(v)).count() as u32 > own
        }
    }

    /// Copies the partial embedding (and its multiplicities) from `src`,
    /// discarding previous bindings. Allocation-free once capacities are
    /// warm; used to seed per-worker scratches from the driver's scratch.
    pub(crate) fn copy_bindings_from(&mut self, src: &SearchScratch) {
        self.m.clear();
        self.m.extend_from_slice(&src.m);
        self.track_bound = src.track_bound;
        self.bound.clear();
        if self.track_bound {
            for v in self.m.iter().flatten() {
                *self.bound.entry(*v).or_insert(0) += 1;
            }
        }
    }

    /// Debug invariant: no live bindings (update evaluation fully unwound).
    pub(crate) fn assert_unbound(&self) {
        debug_assert!(self.m.iter().all(Option::is_none));
        debug_assert!(self.bound.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> QVertexId {
        QVertexId(i)
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn bind_unbind_tracks_multiplicity() {
        let mut s = SearchScratch::for_query(4, true);
        assert!(!s.bound_elsewhere(u(0), v(7)));
        s.bind(u(0), v(7));
        assert!(!s.bound_elsewhere(u(0), v(7)), "own binding is not 'elsewhere'");
        assert!(s.bound_elsewhere(u(1), v(7)));
        // A second query vertex mapping the same data vertex (legal under
        // homomorphism) raises the count past the own-binding allowance.
        s.bind(u(1), v(7));
        assert!(s.bound_elsewhere(u(0), v(7)));
        s.unbind(u(1));
        assert!(!s.bound_elsewhere(u(0), v(7)));
        s.unbind(u(0));
        s.assert_unbound();
    }

    #[test]
    fn rebind_handles_equal_and_distinct_previous_bindings() {
        let mut s = SearchScratch::for_query(3, true);
        s.bind(u(2), v(5));
        // Rebinding to the same vertex is a no-op for the counts.
        assert_eq!(s.rebind(u(2), Some(v(5))), Some(v(5)));
        assert!(s.bound_elsewhere(u(0), v(5)));
        // Rebinding to a different vertex moves the count.
        assert_eq!(s.rebind(u(2), Some(v(6))), Some(v(5)));
        assert!(!s.bound_elsewhere(u(0), v(5)));
        assert!(s.bound_elsewhere(u(0), v(6)));
        assert_eq!(s.rebind(u(2), None), Some(v(6)));
        s.assert_unbound();
    }

    #[test]
    fn untracked_scratch_falls_back_to_scan() {
        let mut s = SearchScratch::for_query(3, false);
        s.bind(u(0), v(9));
        assert!(s.bound_elsewhere(u(1), v(9)));
        assert!(!s.bound_elsewhere(u(0), v(9)));
        assert!(s.bound.is_empty(), "no map maintenance when tracking is off");
        s.unbind(u(0));
    }

    #[test]
    fn copy_bindings_rebuilds_multiplicities() {
        let mut a = SearchScratch::for_query(4, true);
        a.bind(u(1), v(3));
        a.bind(u(2), v(3));
        let mut b = SearchScratch::for_query(4, true);
        b.bind(u(0), v(8)); // stale binding must be discarded
        b.copy_bindings_from(&a);
        assert_eq!(b.m, a.m);
        assert!(b.bound_elsewhere(u(1), v(3)));
        assert!(!b.bound_elsewhere(u(0), v(8)));
    }
}
