//! Reusable per-engine scratch buffers for the per-update hot path.
//!
//! Every update evaluation needs a handful of temporary collections: the
//! partial embedding, a match record to report through, candidate snapshots
//! for the recursive `BuildDCG` / `ClearDCG` walks, in-edge snapshots for
//! the upward climbs, and the lists of query edges matching the updated
//! data edge. Allocating them per update dominated the cost of small
//! updates, so they live in one [`SearchScratch`] owned by the engine and
//! threaded through `search.rs`, `ops_insert.rs` and `ops_delete.rs`.
//!
//! The recursive walks use **segmented stacks**: a recursion level records
//! `buf.len()` on entry, appends its snapshot, iterates it by index (inner
//! levels only ever append past the segment and truncate back), and
//! truncates to the recorded length on exit. One long-lived `Vec` thus
//! serves arbitrarily deep recursion without per-level allocation once its
//! high-water capacity is reached.

use tfx_graph::VertexId;
use tfx_query::{EdgeId, MatchRecord};

use crate::dcg::EdgeState;

/// Scratch space reused across updates; see the module docs.
#[derive(Default, Debug)]
pub(crate) struct SearchScratch {
    /// Partial embedding `m : V(q) → V(g)`, indexed by query vertex id.
    pub(crate) m: Vec<Option<VertexId>>,
    /// Match record reused across reports.
    pub(crate) rec: MatchRecord,
    /// Segmented stack of child candidates (`BuildDCG` / `ClearDCG`).
    pub(crate) kids: Vec<VertexId>,
    /// Segmented stack of DCG in-edge snapshots (upward climbs).
    pub(crate) climb: Vec<(VertexId, EdgeState)>,
    /// Tree query edges matching the current updated data edge.
    pub(crate) tree_edges: Vec<EdgeId>,
    /// Non-tree query edges matching the current updated data edge.
    pub(crate) non_tree: Vec<EdgeId>,
}

impl SearchScratch {
    /// Scratch sized for a query with `nq` vertices.
    pub(crate) fn for_query(nq: usize) -> Self {
        SearchScratch { m: vec![None; nq], ..Default::default() }
    }
}
