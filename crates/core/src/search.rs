//! `SubgraphSearch` and `IsJoinable` (Algorithm 7).
//!
//! The search enumerates complete solutions by walking *explicit* DCG edges
//! in matching order, verifying non-tree query edges against the data graph
//! as query vertices are bound. Vertices pre-bound by the upward traversal
//! (or by a non-tree-edge invocation) are re-validated instead of
//! enumerated.
//!
//! The data graph is passed in explicitly (instead of read from the engine)
//! so the same search serves standalone engines and fleet engines sharing
//! one graph; all mutable temporaries live in the caller-provided
//! [`SearchScratch`], keeping the recursion allocation-free.
//!
//! Duplicate-free reporting: under homomorphism the updated data edge can be
//! the image of several query edges of one solution, so the same solution
//! would be reported once per matching query edge. A total order over query
//! edges (tree edges below non-tree edges, then by id — see
//! `TurboFlux::edge_order_key`) makes exactly one invocation keep it: the
//! *maximal* mapped query edge for an insertion, the *minimal* for a
//! deletion. The paper states the check for non-tree edges inside
//! `IsJoinable`; we apply the same rule to tree edges inside the search,
//! which is required for correctness when the updated edge matches several
//! tree edges.

use tfx_graph::{intersect_into, GraphView, LabelId, VertexId};
use tfx_query::{EdgeId, MatchRecord, MatchSemantics, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::scratch::SearchScratch;
use crate::shared_subtree::FleetCtx;
use crate::tree_nav::data_pair;

/// Minimum explicit-frontier size before enumeration intersects the
/// frontier with bound non-tree neighbors' adjacency runs instead of
/// probing per candidate inside `IsJoinable`. Below this, the kernel setup
/// (copying the frontier into scratch) costs more than the probes it saves.
/// Public so tests sizing a frontier to cross it reference the real value.
pub const INTERSECT_MIN_FRONTIER: usize = 8;

/// Per-invocation search context.
#[derive(Clone, Copy)]
pub(crate) struct SearchCtx<'a> {
    /// The triggering query edge `e_q`, `None` for initial-graph reporting.
    pub eq: Option<EdgeId>,
    /// The updated data edge.
    pub updated: Option<(VertexId, LabelId, VertexId)>,
    /// Positive for insertion, negative for deletion.
    pub p: Positiveness,
    /// Fleet-shared read state (the phase-1 candidate index and phase-2
    /// subtree instances); [`FleetCtx::NONE`] outside fleets.
    pub fleet: FleetCtx<'a>,
}

impl<'a> SearchCtx<'a> {
    /// Context for reporting the initial graph's matches.
    pub fn initial(fleet: FleetCtx<'a>) -> Self {
        SearchCtx { eq: None, updated: None, p: Positiveness::Positive, fleet }
    }

    /// Context for an update-triggered invocation.
    pub fn update(
        fleet: FleetCtx<'a>,
        eq: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        p: Positiveness,
    ) -> Self {
        SearchCtx { eq: Some(eq), updated: Some((src, label, dst)), p, fleet }
    }
}

impl TurboFlux {
    /// True iff mapping query edge `e` onto the data pair `(src, dst)`
    /// violates the duplicate-prevention total order: the pair is the
    /// updated data edge, `e` actually *uses* it (label match, no surviving
    /// parallel support), and `e` outranks / underranks the triggering edge
    /// `e_q` for an insertion / deletion respectively.
    pub(crate) fn violates_order<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        e: EdgeId,
        src: VertexId,
        dst: VertexId,
    ) -> bool {
        let (Some((usrc, ulbl, udst)), Some(eq)) = (ctx.updated, ctx.eq) else {
            return false;
        };
        if e == eq || src != usrc || dst != udst {
            return false;
        }
        let qe = self.q.edge(e);
        if qe.label.is_some_and(|ql| ql != ulbl) {
            return false;
        }
        // With parallel support beyond the updated edge, `e` does not
        // depend on the update and imposes no ordering constraint.
        if g.count_edges_matching(src, dst, qe.label) != 1 {
            return false;
        }
        let (ke, kq) = (self.edge_order_key(e), self.edge_order_key(eq));
        match ctx.p {
            Positiveness::Positive => ke > kq,
            Positiveness::Negative => ke < kq,
        }
    }

    /// `IsJoinable`: checks injectivity (isomorphism only) and every
    /// non-tree query edge between `u` and already-mapped query vertices,
    /// including the order rule above. The injectivity test is an O(1)
    /// lookup in the scratch's bound-vertex multiplicity map (maintained at
    /// bind/unbind) rather than a scan over the embedding.
    pub(crate) fn is_joinable<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        u: QVertexId,
        v: VertexId,
        scratch: &SearchScratch,
    ) -> bool {
        if self.cfg.semantics == MatchSemantics::Isomorphism && scratch.bound_elsewhere(u, v) {
            return false;
        }
        let m = &scratch.m;
        for &e in &self.non_tree_incident[u.index()] {
            let qe = self.q.edge(e);
            let (src, dst) = if qe.src == u && qe.dst == u {
                (v, v) // self-loop
            } else if qe.src == u {
                match m[qe.dst.index()] {
                    Some(w) => (v, w),
                    None => continue, // other endpoint not bound yet
                }
            } else {
                match m[qe.src.index()] {
                    Some(w) => (w, v),
                    None => continue,
                }
            };
            if !g.has_edge_matching(src, dst, qe.label) {
                return false;
            }
            if self.violates_order(g, ctx, e, src, dst) {
                return false;
            }
        }
        true
    }

    /// Validates the tree edge binding `u → v` (given `m(P(u)) = vp`):
    /// explicit DCG state plus the duplicate-prevention order rule.
    pub(crate) fn tree_binding_ok<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        u: QVertexId,
        vp: VertexId,
        v: VertexId,
    ) -> bool {
        if self.st_state(ctx.fleet, vp, u, v) != Some(EdgeState::Explicit) {
            return false;
        }
        let e = self.tree.parent_edge(u).expect("non-root");
        let (src, dst) = data_pair(&self.tree, u, vp, v);
        !self.violates_order(g, ctx, e, src, dst)
    }

    /// `SubgraphSearch` (Algorithm 7). `scratch.m` must have the starting
    /// query vertex bound; `scratch.rec` is reused across reports. Reports
    /// `(ctx.p, record)` for every complete solution.
    pub(crate) fn subgraph_search<G: GraphView>(
        &self,
        g: &G,
        depth: usize,
        ctx: &SearchCtx<'_>,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if self.deadline_exceeded() {
            return;
        }
        if depth == self.mo.len() {
            scratch.rec.fill_from_partial(&scratch.m);
            sink(ctx.p, &scratch.rec);
            return;
        }
        let u = self.mo[depth];
        let us = self.tree.root();
        if let Some(v) = scratch.m[u.index()] {
            // Pre-bound vertex (upward traversal / non-tree invocation):
            // re-validate instead of enumerating.
            let ok = if u == us {
                self.st_root_state(ctx.fleet, v) == Some(EdgeState::Explicit)
            } else {
                let vp = scratch.m[self.tree.parent(u).expect("non-root").index()]
                    .expect("parent precedes child in matching order");
                self.tree_binding_ok(g, ctx, u, vp, v)
            };
            if ok && self.is_joinable(g, ctx, u, v, scratch) {
                self.subgraph_search(g, depth + 1, ctx, scratch, sink);
            }
        } else {
            debug_assert_ne!(u, us, "the starting vertex is always pre-bound");
            let vp = scratch.m[self.tree.parent(u).expect("non-root").index()]
                .expect("parent precedes child in matching order");
            let slice = self.st_out_edge_slice(ctx.fleet, vp, u);
            if slice.len() >= INTERSECT_MIN_FRONTIER && self.has_bound_non_tree_run(u, scratch) {
                self.search_intersected(g, ctx, depth, u, vp, scratch, sink);
                return;
            }
            // The slice borrow only needs `&self`; enumeration never
            // mutates the DCG, so no candidate buffer is required.
            for &(v, st) in self.st_out_edge_slice(ctx.fleet, vp, u) {
                if st == EdgeState::Explicit {
                    self.expand_candidate(g, ctx, depth, u, vp, v, scratch, sink);
                }
            }
        }
    }

    /// True iff some non-tree query edge incident to `u` has a concrete
    /// label and its other endpoint already bound — i.e. the intersection
    /// prefilter below has at least one adjacency run to fold in.
    fn has_bound_non_tree_run(&self, u: QVertexId, scratch: &SearchScratch) -> bool {
        self.non_tree_incident[u.index()].iter().any(|&e| {
            let qe = self.q.edge(e);
            qe.label.is_some()
                && (qe.src == u) != (qe.dst == u) // skip self-loops
                && scratch.m[if qe.src == u { qe.dst } else { qe.src }.index()].is_some()
        })
    }

    /// Enumeration with the intersection prefilter: copies the explicit DCG
    /// frontier of `(vp, u)` into scratch, intersects it with the adjacency
    /// run of every bound non-tree neighbor (via the `tfx-graph` kernels),
    /// and expands only the survivors.
    ///
    /// Behavior-preserving: a candidate `v` missing from the run of a bound
    /// neighbor `m(w)` fails exactly the `has_edge_matching` probe that
    /// `IsJoinable` would apply to the same non-tree edge, so the prefilter
    /// only removes candidates `expand_candidate` would reject. Both the
    /// frontier (DCG runs are sorted) and the adjacency runs are sorted and
    /// duplicate-free, so survivors keep the enumeration order of the plain
    /// loop.
    #[allow(clippy::too_many_arguments)]
    fn search_intersected<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        depth: usize,
        u: QVertexId,
        vp: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        let base = scratch.isect.len();
        for &(v, st) in self.st_out_edge_slice(ctx.fleet, vp, u) {
            if st == EdgeState::Explicit {
                scratch.isect.push(v);
            }
        }
        for &e in &self.non_tree_incident[u.index()] {
            if scratch.isect.len() == base {
                break; // already empty; folding more runs cannot revive it
            }
            let qe = self.q.edge(e);
            let Some(label) = qe.label else { continue };
            // Query edge u → w maps to data edge v → m(w), so candidates
            // lie in m(w)'s *in*-run; w → u symmetrically in its out-run.
            let run = if qe.src == u && qe.dst != u {
                match scratch.m[qe.dst.index()] {
                    Some(w) => g.in_neighbors_labeled(w, label),
                    None => continue,
                }
            } else if qe.dst == u && qe.src != u {
                match scratch.m[qe.src.index()] {
                    Some(w) => g.out_neighbors_labeled(w, label),
                    None => continue,
                }
            } else {
                continue; // self-loop: left to IsJoinable
            };
            let tmp_base = scratch.isect_tmp.len();
            let SearchScratch { isect, isect_tmp, .. } = scratch;
            if let Some(ids) = run.as_id_slice() {
                intersect_into(&isect[base..], ids, isect_tmp);
            } else {
                // Small inline run: merge through its iterator directly —
                // materializing first would cost the same pass.
                let mut it = run.peekable();
                for &x in &isect[base..] {
                    while it.next_if(|&y| y < x).is_some() {}
                    if it.next_if_eq(&x).is_some() {
                        isect_tmp.push(x);
                    }
                }
            }
            scratch.isect.truncate(base);
            let (lo, hi) = (tmp_base, scratch.isect_tmp.len());
            scratch.isect.extend_from_slice(&scratch.isect_tmp[lo..hi]);
            scratch.isect_tmp.truncate(tmp_base);
        }
        // Iterate the segment by index: deeper recursion levels append past
        // `end` and truncate back, leaving `[base, end)` untouched.
        let end = scratch.isect.len();
        let mut i = base;
        while i < end {
            let v = scratch.isect[i];
            self.expand_candidate(g, ctx, depth, u, vp, v, scratch, sink);
            i += 1;
        }
        scratch.isect.truncate(base);
    }

    /// Expands one explicit frontier candidate `v` for the unbound query
    /// vertex `u = mo[depth]` (whose tree parent is bound to `vp`): checks
    /// the duplicate-prevention order rule and `IsJoinable`, then binds and
    /// recurses. Shared between the sequential enumeration above and the
    /// parallel chunk workers (`parallel.rs`), which is what guarantees the
    /// two paths accept and order candidates identically.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn expand_candidate<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        depth: usize,
        u: QVertexId,
        vp: VertexId,
        v: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // Explicit state is known; only the duplicate-prevention order
        // rule remains to check for the tree binding.
        let e = self.tree.parent_edge(u).expect("non-root");
        let (src, dst) = data_pair(&self.tree, u, vp, v);
        if self.violates_order(g, ctx, e, src, dst) {
            return;
        }
        if !self.is_joinable(g, ctx, u, v, scratch) {
            return;
        }
        scratch.bind(u, v);
        self.subgraph_search(g, depth + 1, ctx, scratch, sink);
        scratch.unbind(u);
    }
}
