//! `DeleteEdgeAndEval` and `ClearUpwardsAndEval` (Algorithms 8 and 9).
//!
//! Deletion is evaluated *before* the edge leaves the data graph: negative
//! matches are enumerated over the still-intact explicit DCG, and the
//! downgrades (Transition 4) and removals (Transitions 3/5) are applied
//! after the affected traversal — `ClearUpwardsAndEval` downgrades each
//! climbed edge only after its recursion returns, and `ClearDCG` runs after
//! the negatives of its triggering edge were reported.

use tfx_graph::{LabelId, VertexId};
use tfx_query::{MatchRecord, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::search::SearchCtx;

impl TurboFlux {
    /// Handles one edge deletion (the edge is still in the data graph).
    ///
    /// Tree-edge invocations run in ascending edge order; combined with the
    /// "minimal triggering edge wins" rule every vanished solution is
    /// reported exactly once, before the DCG region it needs is cleared.
    pub(crate) fn delete_edge_and_eval(
        &mut self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        let (tree_edges, non_tree) = self.matching_query_edges(src, label, dst);
        let mut m = std::mem::take(&mut self.scratch_m);
        let mut rec = std::mem::take(&mut self.scratch_rec);
        debug_assert!(m.iter().all(Option::is_none));

        for e in tree_edges {
            // Surviving parallel support: the mapping set does not change
            // via this query edge and the DCG edge stays backed.
            if self.g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
                continue;
            }
            let (uc, pv, cv) = self.orient_tree_edge(e, src, dst);
            let up = self.tree.parent(uc).expect("tree edge child has a parent");
            // Case 2 of Transition 0 — or an earlier tree-edge invocation
            // of this same update already cascade-cleared the edge.
            if self.dcg.in_count_total(pv, up) == 0
                || self.dcg.state(pv, uc, cv).is_none()
            {
                continue;
            }
            if self.dcg.state(pv, uc, cv) == Some(EdgeState::Explicit)
                && self.match_all_children(pv, up)
            {
                let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Negative);
                m[uc.index()] = Some(cv);
                self.clear_upwards(up, pv, Some(uc), &ctx, &mut m, &mut rec, true, sink);
                m[uc.index()] = None;
            }
            // Transitions 3/5 downward.
            self.clear_dcg(Some(pv), uc, cv);
        }

        for e in non_tree {
            if self.g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
                continue;
            }
            let qe = *self.q.edge(e);
            if self.dcg.in_count_total(src, qe.src) == 0
                || self.dcg.in_count_total(dst, qe.dst) == 0
                || !self.match_all_children(src, qe.src)
                || !self.match_all_children(dst, qe.dst)
            {
                continue;
            }
            let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Negative);
            let looped = qe.src == qe.dst;
            if !looped {
                m[qe.dst.index()] = Some(dst);
            }
            self.clear_upwards(qe.src, src, None, &ctx, &mut m, &mut rec, false, sink);
            if !looped {
                m[qe.dst.index()] = None;
            }
        }
        self.scratch_m = m;
        self.scratch_rec = rec;
    }

    /// `ClearUpwardsAndEval`: climbs toward the start vertices along
    /// *explicit* incoming DCG edges, reports negative matches at every
    /// start vertex, and afterwards applies Case 1 of Transition 4 (E → I)
    /// when `v` is about to lose its last explicit outgoing edge labeled
    /// `expiring_child`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn clear_upwards(
        &mut self,
        u: QVertexId,
        v: VertexId,
        expiring_child: Option<QVertexId>,
        ctx: &SearchCtx,
        m: &mut Vec<Option<VertexId>>,
        rec: &mut MatchRecord,
        ft: bool,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if let Some(w) = m[u.index()] {
            if w != v {
                debug_assert!(!ft);
                return;
            }
        }
        // Precondition for Transition 4: after this deletion `v` has no
        // explicit outgoing edge labeled `expiring_child` left.
        let precondition = ft
            && expiring_child.is_some_and(|uc| self.dcg.out_expl_count(v, uc) == 1);
        let prev = m[u.index()];
        m[u.index()] = Some(v);
        let us = self.tree.root();
        if u == us {
            if self.dcg.root_state(v) == Some(EdgeState::Explicit) {
                self.subgraph_search(0, ctx, m, rec, sink);
                if precondition {
                    self.dcg.transit(None, u, v, Some(EdgeState::Implicit));
                }
            }
        } else {
            let up = self.tree.parent(u).expect("non-root");
            for (vp, st) in self.dcg.in_edges(v, u) {
                if st != EdgeState::Explicit {
                    continue;
                }
                if self.match_all_children(vp, up) {
                    self.clear_upwards(up, vp, Some(u), ctx, m, rec, precondition, sink);
                }
                if precondition {
                    self.dcg.transit(Some(vp), u, v, Some(EdgeState::Implicit));
                }
            }
        }
        m[u.index()] = prev;
    }
}
