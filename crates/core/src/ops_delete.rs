//! `DeleteEdgeAndEval` and `ClearUpwardsAndEval` (Algorithms 8 and 9).
//!
//! Deletion is evaluated *before* the edge leaves the data graph: negative
//! matches are enumerated over the still-intact explicit DCG, and the
//! downgrades (Transition 4) and removals (Transitions 3/5) are applied
//! after the affected traversal — `ClearUpwardsAndEval` downgrades each
//! climbed edge only after its recursion returns, and `ClearDCG` runs after
//! the negatives of its triggering edge were reported.

use tfx_graph::{DynamicGraph, GraphView, LabelId, VertexId};
use tfx_query::{EdgeId, MatchRecord, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::scratch::SearchScratch;
use crate::search::SearchCtx;

impl TurboFlux {
    /// Evaluates one edge deletion. The edge must still be present in `g`;
    /// the caller removes it from the graph *after* this returns
    /// (externally driven mode; [`TurboFlux::apply_op`] goes through here
    /// too, against the engine-owned graph).
    ///
    /// Tree-edge invocations run in ascending edge order; combined with the
    /// "minimal triggering edge wins" rule every vanished solution is
    /// reported exactly once, before the DCG region it needs is cleared.
    pub fn eval_deleting_edge(
        &mut self,
        g: &DynamicGraph,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.delete_eval_with(g, src, label, dst, &mut scratch, sink);
        self.scratch = scratch;
        self.maybe_adjust_order();
    }

    fn delete_eval_with<G: GraphView>(
        &mut self,
        g: &G,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        self.matching_query_edges(g, src, label, dst, scratch);
        scratch.assert_unbound();

        for i in 0..scratch.tree_edges.len() {
            let e = scratch.tree_edges[i];
            self.delete_tree_invocation(g, e, src, label, dst, scratch, sink);
        }

        for i in 0..scratch.non_tree.len() {
            let e = scratch.non_tree[i];
            self.delete_non_tree_invocation(g, e, src, label, dst, scratch, sink);
        }
    }

    /// One tree-edge invocation of `DeleteEdgeAndEval` (factored out for
    /// the sharded runtime, matching
    /// [`TurboFlux::insert_tree_invocation`]). Reports the negatives that
    /// need the still-intact DCG region, then cascade-clears it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn delete_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // Surviving parallel support: the mapping set does not change
        // via this query edge and the DCG edge stays backed.
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let (uc, pv, cv) = self.orient_tree_edge(e, src, dst);
        let up = self.tree.parent(uc).expect("tree edge child has a parent");
        // Case 2 of Transition 0 — or an earlier tree-edge invocation
        // of this same update already cascade-cleared the edge.
        if self.dcg.in_count_total(pv, up) == 0 || self.dcg.state(pv, uc, cv).is_none() {
            return;
        }
        if self.dcg.state(pv, uc, cv) == Some(EdgeState::Explicit)
            && self.match_all_children(pv, up)
        {
            let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Negative);
            scratch.bind(uc, cv);
            self.clear_upwards(g, up, pv, Some(uc), &ctx, true, scratch, sink);
            scratch.unbind(uc);
        }
        // Transitions 3/5 downward.
        self.clear_dcg(Some(pv), uc, cv, scratch);
    }

    /// One non-tree invocation of `DeleteEdgeAndEval`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn delete_non_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let qe = *self.q.edge(e);
        if self.dcg.in_count_total(src, qe.src) == 0
            || self.dcg.in_count_total(dst, qe.dst) == 0
            || !self.match_all_children(src, qe.src)
            || !self.match_all_children(dst, qe.dst)
        {
            return;
        }
        let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Negative);
        let looped = qe.src == qe.dst;
        if !looped {
            scratch.bind(qe.dst, dst);
        }
        self.clear_upwards(g, qe.src, src, None, &ctx, false, scratch, sink);
        if !looped {
            scratch.unbind(qe.dst);
        }
    }

    /// `ClearUpwardsAndEval`: climbs toward the start vertices along
    /// *explicit* incoming DCG edges, reports negative matches at every
    /// start vertex, and afterwards applies Case 1 of Transition 4 (E → I)
    /// when `v` is about to lose its last explicit outgoing edge labeled
    /// `expiring_child`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn clear_upwards<G: GraphView>(
        &mut self,
        g: &G,
        u: QVertexId,
        v: VertexId,
        expiring_child: Option<QVertexId>,
        ctx: &SearchCtx,
        ft: bool,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if let Some(w) = scratch.m[u.index()] {
            if w != v {
                debug_assert!(!ft);
                return;
            }
        }
        // Precondition for Transition 4: after this deletion `v` has no
        // explicit outgoing edge labeled `expiring_child` left.
        let precondition =
            ft && expiring_child.is_some_and(|uc| self.dcg.out_expl_count(v, uc) == 1);
        let prev = scratch.rebind(u, Some(v));
        let us = self.tree.root();
        if u == us {
            if self.dcg.root_state(v) == Some(EdgeState::Explicit) {
                self.search_from_root(g, ctx, scratch, sink);
                if precondition {
                    self.dcg.transit(None, u, v, Some(EdgeState::Implicit));
                }
            }
        } else {
            let up = self.tree.parent(u).expect("non-root");
            // Snapshot the in-list: the downgrades below mutate it.
            let start = scratch.climb.len();
            scratch.climb.extend_from_slice(self.dcg.in_edge_slice(v, u));
            let end = scratch.climb.len();
            let mut i = start;
            while i < end {
                let (vp, st) = scratch.climb[i];
                i += 1;
                if st != EdgeState::Explicit {
                    continue;
                }
                if self.match_all_children(vp, up) {
                    self.clear_upwards(g, up, vp, Some(u), ctx, precondition, scratch, sink);
                }
                if precondition {
                    self.dcg.transit(Some(vp), u, v, Some(EdgeState::Implicit));
                }
            }
            scratch.climb.truncate(start);
        }
        scratch.rebind(u, prev);
    }
}
