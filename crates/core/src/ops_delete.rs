//! `DeleteEdgeAndEval` and `ClearUpwardsAndEval` (Algorithms 8 and 9).
//!
//! Deletion is evaluated *before* the edge leaves the data graph: negative
//! matches are enumerated over the still-intact explicit DCG, and the
//! downgrades (Transition 4) and removals (Transitions 3/5) are applied
//! after the affected traversal — `ClearUpwardsAndEval` downgrades each
//! climbed edge only after its recursion returns, and `ClearDCG` runs after
//! the negatives of its triggering edge were reported.

use tfx_graph::{DynamicGraph, GraphView, LabelId, VertexId};
use tfx_query::{EdgeId, MatchRecord, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::scratch::SearchScratch;
use crate::search::SearchCtx;
use crate::shared_subtree::FleetCtx;

impl TurboFlux {
    /// Evaluates one edge deletion. The edge must still be present in `g`;
    /// the caller removes it from the graph *after* this returns
    /// (externally driven mode; [`TurboFlux::apply_op`] goes through here
    /// too, against the engine-owned graph).
    ///
    /// Tree-edge invocations run in ascending edge order; combined with the
    /// "minimal triggering edge wins" rule every vanished solution is
    /// reported exactly once, before the DCG region it needs is cleared.
    pub fn eval_deleting_edge(
        &mut self,
        g: &DynamicGraph,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        self.eval_deleting_edge_in(g, FleetCtx::NONE, src, label, dst, sink);
    }

    /// [`TurboFlux::eval_deleting_edge`] with a fleet context routing
    /// shared-region reads through subtree instances; a
    /// [`crate::fleet::Fleet`] passes its stores here, everyone else goes
    /// through the plain wrapper.
    pub(crate) fn eval_deleting_edge_in<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if self.has_shared_branches() {
            self.suffix_evals += 1;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        self.delete_eval_with(g, fleet, src, label, dst, &mut scratch, sink);
        self.scratch = scratch;
        // See `eval_inserted_edge_in`: the fleet driver adjusts the order
        // for shared-branch engines at op finalize.
        if !self.has_shared_branches() {
            self.maybe_adjust_order();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn delete_eval_with<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        self.matching_query_edges(g, src, label, dst, scratch);
        scratch.assert_unbound();

        for i in 0..scratch.tree_edges.len() {
            let e = scratch.tree_edges[i];
            self.delete_tree_invocation(g, fleet, e, src, label, dst, scratch, sink);
        }

        for i in 0..scratch.non_tree.len() {
            let e = scratch.non_tree[i];
            self.delete_non_tree_invocation(g, fleet, e, src, label, dst, scratch, sink);
        }
    }

    /// One tree-edge invocation of `DeleteEdgeAndEval` (factored out for
    /// the sharded runtime, matching
    /// [`TurboFlux::insert_tree_invocation`]). Reports the negatives that
    /// need the still-intact DCG region, then cascade-clears it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn delete_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // Surviving parallel support: the mapping set does not change
        // via this query edge and the DCG edge stays backed.
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let (uc, pv, cv) = self.orient_tree_edge(e, src, dst);
        let up = self.tree.parent(uc).expect("tree edge child has a parent");
        // Case 2 of Transition 0 — or an earlier tree-edge invocation
        // of this same update already cascade-cleared the edge.
        if self.st_in_count_total(fleet, pv, up) == 0 || self.st_state(fleet, pv, uc, cv).is_none()
        {
            return;
        }
        if self.st_state(fleet, pv, uc, cv) == Some(EdgeState::Explicit)
            && self.st_match_all_children(fleet, pv, up)
        {
            let ctx = SearchCtx::update(fleet, e, src, label, dst, Positiveness::Negative);
            scratch.bind(uc, cv);
            self.clear_upwards(g, up, pv, Some(uc), &ctx, true, scratch, sink);
            scratch.unbind(uc);
        }
        if self.branch_nodes[uc.index()].is_some() {
            // The shared instance clears its own region when the driver
            // runs `maintain_delete` after all routed engines evaluated.
            self.subtree_hits += 1;
        } else {
            // Transitions 3/5 downward.
            self.clear_dcg(Some(pv), uc, cv, scratch);
        }
    }

    /// One non-tree invocation of `DeleteEdgeAndEval`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn delete_non_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let qe = *self.q.edge(e);
        if self.st_in_count_total(fleet, src, qe.src) == 0
            || self.st_in_count_total(fleet, dst, qe.dst) == 0
            || !self.st_match_all_children(fleet, src, qe.src)
            || !self.st_match_all_children(fleet, dst, qe.dst)
        {
            return;
        }
        let ctx = SearchCtx::update(fleet, e, src, label, dst, Positiveness::Negative);
        let looped = qe.src == qe.dst;
        if !looped {
            scratch.bind(qe.dst, dst);
        }
        self.clear_upwards(g, qe.src, src, None, &ctx, false, scratch, sink);
        if !looped {
            scratch.unbind(qe.dst);
        }
    }

    /// `ClearUpwardsAndEval`: climbs toward the start vertices along
    /// *explicit* incoming DCG edges, reports negative matches at every
    /// start vertex, and afterwards applies Case 1 of Transition 4 (E → I)
    /// when `v` is about to lose its last explicit outgoing edge labeled
    /// `expiring_child`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn clear_upwards<G: GraphView>(
        &mut self,
        g: &G,
        u: QVertexId,
        v: VertexId,
        expiring_child: Option<QVertexId>,
        ctx: &SearchCtx<'_>,
        ft: bool,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if let Some(w) = scratch.m[u.index()] {
            if w != v {
                debug_assert!(!ft);
                return;
            }
        }
        // Precondition for Transition 4: after this deletion `v` has no
        // explicit outgoing edge labeled `expiring_child` left.
        let precondition =
            ft && expiring_child.is_some_and(|uc| self.st_out_expl_count(ctx.fleet, v, uc) == 1);
        let prev = scratch.rebind(u, Some(v));
        let us = self.tree.root();
        if u == us {
            if self.st_root_state(ctx.fleet, v) == Some(EdgeState::Explicit) {
                self.search_from_root(g, ctx, scratch, sink);
                // With shared branches the root state is derived from the
                // instance, so there is no own-map state to downgrade.
                if precondition && !self.has_shared_branches() {
                    self.dcg.transit(None, u, v, Some(EdgeState::Implicit));
                }
            }
        } else {
            let up = self.tree.parent(u).expect("non-root");
            // Snapshot the in-list: the downgrades below mutate it.
            let start = scratch.climb.len();
            scratch.climb.extend_from_slice(self.st_in_edge_slice(ctx.fleet, v, u));
            let end = scratch.climb.len();
            let mut i = start;
            while i < end {
                let (vp, st) = scratch.climb[i];
                i += 1;
                if st != EdgeState::Explicit {
                    continue;
                }
                if self.st_match_all_children(ctx.fleet, vp, up) {
                    self.clear_upwards(g, up, vp, Some(u), ctx, precondition, scratch, sink);
                }
                // Shared-region edges are downgraded by the instance's own
                // maintenance pass, not by the suffix climb.
                if precondition && self.branch_nodes[u.index()].is_none() {
                    self.dcg.transit(Some(vp), u, v, Some(EdgeState::Implicit));
                }
            }
            scratch.climb.truncate(start);
        }
        scratch.rebind(u, prev);
    }
}
