//! `InsertEdgeAndEval` and `BuildUpwardsAndEval` (Algorithms 5 and 6).

use tfx_graph::{LabelId, VertexId};
use tfx_query::{MatchRecord, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::search::SearchCtx;

impl TurboFlux {
    /// Handles one edge insertion (the edge is already in the data graph).
    ///
    /// Tree-edge invocations run first in ascending edge order so the DCG
    /// is fully maintained before non-tree invocations enumerate it; paired
    /// with the "maximal triggering edge wins" rule this reports every new
    /// solution exactly once.
    pub(crate) fn insert_edge_and_eval(
        &mut self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        let (tree_edges, non_tree) = self.matching_query_edges(src, label, dst);
        let mut m = std::mem::take(&mut self.scratch_m);
        let mut rec = std::mem::take(&mut self.scratch_rec);
        debug_assert!(m.iter().all(Option::is_none));

        for e in tree_edges {
            // Pre-existing parallel support means the vertex-mapping set is
            // unchanged via this query edge (Transition 0 analogue for
            // multigraphs).
            if self.g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
                continue;
            }
            let (uc, pv, cv) = self.orient_tree_edge(e, src, dst);
            let up = self.tree.parent(uc).expect("tree edge child has a parent");
            // Case 2 of Transition 0: no path from a start vertex to pv.
            if self.dcg.in_count_total(pv, up) == 0 {
                continue;
            }
            // An earlier tree-edge invocation of this same update may have
            // already built this DCG edge (the inserted edge can match
            // several tree edges whose builds overlap).
            if self.dcg.state(pv, uc, cv).is_none() {
                self.build_dcg(Some(pv), uc, cv);
            }
            if self.dcg.state(pv, uc, cv) == Some(EdgeState::Explicit)
                && self.match_all_children(pv, up)
            {
                let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Positive);
                m[uc.index()] = Some(cv);
                self.build_upwards(up, pv, &ctx, &mut m, &mut rec, true, sink);
                m[uc.index()] = None;
            }
        }

        for e in non_tree {
            if self.g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
                continue;
            }
            let qe = *self.q.edge(e);
            // m(qe.src) = src, m(qe.dst) = dst; both endpoints need the
            // path condition and fully matched subtrees.
            if self.dcg.in_count_total(src, qe.src) == 0
                || self.dcg.in_count_total(dst, qe.dst) == 0
                || !self.match_all_children(src, qe.src)
                || !self.match_all_children(dst, qe.dst)
            {
                continue;
            }
            let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Positive);
            let looped = qe.src == qe.dst;
            if !looped {
                m[qe.dst.index()] = Some(dst);
            }
            // Traverse upward from qe.src without modifying the DCG: a
            // non-tree edge never changes intermediate results.
            self.build_upwards(qe.src, src, &ctx, &mut m, &mut rec, false, sink);
            if !looped {
                m[qe.dst.index()] = None;
            }
        }
        self.scratch_m = m;
        self.scratch_rec = rec;
    }

    /// `BuildUpwardsAndEval`: climbs toward the start vertices along stored
    /// incoming DCG edges, applying Case 2 of Transition 2 when `ft` is
    /// set, and runs `SubgraphSearch` at every start vertex reached.
    ///
    /// Precondition (established by every caller): all children of `u` have
    /// explicit outgoing edges from `v`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_upwards(
        &mut self,
        u: QVertexId,
        v: VertexId,
        ctx: &SearchCtx,
        m: &mut Vec<Option<VertexId>>,
        rec: &mut MatchRecord,
        ft: bool,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        debug_assert!(self.match_all_children(v, u));
        // A non-tree invocation pre-binds the other endpoint of the
        // triggering edge; if the climb reaches that query vertex with a
        // different data vertex the two constraints contradict and no
        // solution exists along this path. (Transitions are never needed
        // here: the contradiction can only arise with `ft == false`.)
        if let Some(w) = m[u.index()] {
            if w != v {
                debug_assert!(!ft);
                return;
            }
        }
        let prev = m[u.index()];
        m[u.index()] = Some(v);
        let us = self.tree.root();
        if u == us {
            // The single incoming edge is the artificial start edge.
            match self.dcg.root_state(v) {
                Some(EdgeState::Implicit) if ft => {
                    self.dcg.transit(None, u, v, Some(EdgeState::Explicit));
                    self.subgraph_search(0, ctx, m, rec, sink);
                }
                Some(EdgeState::Explicit) => {
                    self.subgraph_search(0, ctx, m, rec, sink);
                }
                _ => {}
            }
        } else {
            let up = self.tree.parent(u).expect("non-root");
            for (vp, st) in self.dcg.in_edges(v, u) {
                if st == EdgeState::Implicit {
                    if !ft {
                        continue; // without transitions only explicit paths matter
                    }
                    self.dcg.transit(Some(vp), u, v, Some(EdgeState::Explicit));
                }
                if self.match_all_children(vp, up) {
                    self.build_upwards(up, vp, ctx, m, rec, ft, sink);
                }
            }
        }
        m[u.index()] = prev;
    }
}
