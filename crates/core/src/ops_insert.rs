//! `InsertEdgeAndEval` and `BuildUpwardsAndEval` (Algorithms 5 and 6).

use tfx_graph::{DynamicGraph, GraphView, LabelId, VertexId};
use tfx_query::{EdgeId, MatchRecord, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::scratch::SearchScratch;
use crate::search::SearchCtx;
use crate::shared_subtree::FleetCtx;

impl TurboFlux {
    /// Evaluates one edge insertion already applied to `g` by the caller
    /// (externally driven mode; [`TurboFlux::apply_op`] goes through here
    /// too, against the engine-owned graph).
    ///
    /// Tree-edge invocations run first in ascending edge order so the DCG
    /// is fully maintained before non-tree invocations enumerate it; paired
    /// with the "maximal triggering edge wins" rule this reports every new
    /// solution exactly once.
    pub fn eval_inserted_edge(
        &mut self,
        g: &DynamicGraph,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        self.eval_inserted_edge_in(g, FleetCtx::NONE, src, label, dst, sink);
    }

    /// [`TurboFlux::eval_inserted_edge`] with a fleet context sourcing the
    /// DCG builds from the shared candidate index and the shared-region
    /// reads from subtree instances (see [`crate::shared_index`] and
    /// [`crate::shared_subtree`]); a [`crate::fleet::Fleet`] passes its
    /// stores here, everyone else goes through the plain wrapper.
    pub(crate) fn eval_inserted_edge_in<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if self.has_shared_branches() {
            self.suffix_evals += 1;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        self.insert_eval_with(g, fleet, src, label, dst, &mut scratch, sink);
        self.scratch = scratch;
        // Engines with shared branches fold instance counts into the order
        // heuristic, which needs the post-op dirty bits the fleet driver
        // harvests after every routed engine ran; the driver calls
        // `maybe_adjust_order_in` at op finalize instead.
        if !self.has_shared_branches() {
            self.maybe_adjust_order();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_eval_with<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        self.matching_query_edges(g, src, label, dst, scratch);
        scratch.assert_unbound();

        for i in 0..scratch.tree_edges.len() {
            let e = scratch.tree_edges[i];
            self.insert_tree_invocation(g, fleet, e, src, label, dst, scratch, sink);
        }

        for i in 0..scratch.non_tree.len() {
            let e = scratch.non_tree[i];
            self.insert_non_tree_invocation(g, fleet, e, src, label, dst, scratch, sink);
        }
    }

    /// One tree-edge invocation of `InsertEdgeAndEval`: maintain the DCG
    /// under the matched tree edge `e` and climb/search when the paper's
    /// preconditions hold. Factored out so the sharded runtime can replay
    /// individual invocations from its per-shard inbox in the same order
    /// the unsharded loop runs them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // Pre-existing parallel support means the vertex-mapping set is
        // unchanged via this query edge (Transition 0 analogue for
        // multigraphs).
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let (uc, pv, cv) = self.orient_tree_edge(e, src, dst);
        let up = self.tree.parent(uc).expect("tree edge child has a parent");
        // Case 2 of Transition 0: no path from a start vertex to pv.
        if self.st_in_count_total(fleet, pv, up) == 0 {
            return;
        }
        if self.branch_nodes[uc.index()].is_some() {
            // The whole subtree under `uc` lives in a shared instance the
            // fleet driver already maintained for this op; nothing to
            // build, and the reads below go through the instance.
            self.subtree_hits += 1;
        } else if self.dcg.state(pv, uc, cv).is_none() {
            // An earlier tree-edge invocation of this same update may have
            // already built this DCG edge (the inserted edge can match
            // several tree edges whose builds overlap).
            self.build_dcg(g, fleet, Some(pv), uc, cv, scratch);
        }
        if self.st_state(fleet, pv, uc, cv) == Some(EdgeState::Explicit)
            && self.st_match_all_children(fleet, pv, up)
        {
            let ctx = SearchCtx::update(fleet, e, src, label, dst, Positiveness::Positive);
            scratch.bind(uc, cv);
            self.build_upwards(g, up, pv, &ctx, true, scratch, sink);
            scratch.unbind(uc);
        }
    }

    /// One non-tree invocation of `InsertEdgeAndEval` (see
    /// [`TurboFlux::insert_tree_invocation`] for why this is factored out).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_non_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let qe = *self.q.edge(e);
        // m(qe.src) = src, m(qe.dst) = dst; both endpoints need the
        // path condition and fully matched subtrees.
        if self.st_in_count_total(fleet, src, qe.src) == 0
            || self.st_in_count_total(fleet, dst, qe.dst) == 0
            || !self.st_match_all_children(fleet, src, qe.src)
            || !self.st_match_all_children(fleet, dst, qe.dst)
        {
            return;
        }
        let ctx = SearchCtx::update(fleet, e, src, label, dst, Positiveness::Positive);
        let looped = qe.src == qe.dst;
        if !looped {
            scratch.bind(qe.dst, dst);
        }
        // Traverse upward from qe.src without modifying the DCG: a
        // non-tree edge never changes intermediate results.
        self.build_upwards(g, qe.src, src, &ctx, false, scratch, sink);
        if !looped {
            scratch.unbind(qe.dst);
        }
    }

    /// `BuildUpwardsAndEval`: climbs toward the start vertices along stored
    /// incoming DCG edges, applying Case 2 of Transition 2 when `ft` is
    /// set, and runs `SubgraphSearch` at every start vertex reached.
    ///
    /// Precondition (established by every caller): all children of `u` have
    /// explicit outgoing edges from `v`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_upwards<G: GraphView>(
        &mut self,
        g: &G,
        u: QVertexId,
        v: VertexId,
        ctx: &SearchCtx<'_>,
        ft: bool,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        debug_assert!(self.st_match_all_children(ctx.fleet, v, u));
        // A non-tree invocation pre-binds the other endpoint of the
        // triggering edge; if the climb reaches that query vertex with a
        // different data vertex the two constraints contradict and no
        // solution exists along this path. (Transitions are never needed
        // here: the contradiction can only arise with `ft == false`.)
        if let Some(w) = scratch.m[u.index()] {
            if w != v {
                debug_assert!(!ft);
                return;
            }
        }
        let prev = scratch.rebind(u, Some(v));
        let us = self.tree.root();
        if u == us {
            // The single incoming edge is the artificial start edge. For
            // engines with shared branches the caller established
            // `st_match_all_children(root)`, so the derived root state is
            // already Explicit — the Implicit+ft arm is unreachable and the
            // own-map transit must be suppressed (the own root map only
            // tracks presence).
            match self.st_root_state(ctx.fleet, v) {
                Some(EdgeState::Implicit) if ft => {
                    debug_assert!(!self.has_shared_branches());
                    if !self.has_shared_branches() {
                        self.dcg.transit(None, u, v, Some(EdgeState::Explicit));
                    }
                    self.search_from_root(g, ctx, scratch, sink);
                }
                Some(EdgeState::Explicit) => {
                    self.search_from_root(g, ctx, scratch, sink);
                }
                _ => {}
            }
        } else {
            let up = self.tree.parent(u).expect("non-root");
            // Snapshot the in-list into the segmented stack: transitions
            // during the climb mutate the list being iterated.
            let start = scratch.climb.len();
            scratch.climb.extend_from_slice(self.st_in_edge_slice(ctx.fleet, v, u));
            let end = scratch.climb.len();
            let mut i = start;
            while i < end {
                let (vp, st) = scratch.climb[i];
                i += 1;
                if st == EdgeState::Implicit {
                    if !ft {
                        continue; // without transitions only explicit paths matter
                    }
                    // A shared-region vertex is maintained by its instance;
                    // after the driver's maintenance pass an explicit path
                    // here is already explicit in the instance, so this arm
                    // can't fire for shared `u`.
                    debug_assert!(self.branch_nodes[u.index()].is_none());
                    if self.branch_nodes[u.index()].is_none() {
                        self.dcg.transit(Some(vp), u, v, Some(EdgeState::Explicit));
                    }
                }
                if self.st_match_all_children(ctx.fleet, vp, up) {
                    self.build_upwards(g, up, vp, ctx, ft, scratch, sink);
                }
            }
            scratch.climb.truncate(start);
        }
        scratch.rebind(u, prev);
    }
}
