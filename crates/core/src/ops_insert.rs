//! `InsertEdgeAndEval` and `BuildUpwardsAndEval` (Algorithms 5 and 6).

use tfx_graph::{DynamicGraph, GraphView, LabelId, VertexId};
use tfx_query::{EdgeId, MatchRecord, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::scratch::SearchScratch;
use crate::search::SearchCtx;
use crate::shared_index::SharedCandidateIndex;

impl TurboFlux {
    /// Evaluates one edge insertion already applied to `g` by the caller
    /// (externally driven mode; [`TurboFlux::apply_op`] goes through here
    /// too, against the engine-owned graph).
    ///
    /// Tree-edge invocations run first in ascending edge order so the DCG
    /// is fully maintained before non-tree invocations enumerate it; paired
    /// with the "maximal triggering edge wins" rule this reports every new
    /// solution exactly once.
    pub fn eval_inserted_edge(
        &mut self,
        g: &DynamicGraph,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        self.eval_inserted_edge_in(g, None, src, label, dst, sink);
    }

    /// [`TurboFlux::eval_inserted_edge`] with an optional fleet-shared
    /// candidate index sourcing the DCG builds (see
    /// [`crate::shared_index`]); a [`crate::fleet::Fleet`] passes its index
    /// here, everyone else goes through the plain wrapper.
    pub(crate) fn eval_inserted_edge_in<G: GraphView>(
        &mut self,
        g: &G,
        shared: Option<&SharedCandidateIndex>,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.insert_eval_with(g, shared, src, label, dst, &mut scratch, sink);
        self.scratch = scratch;
        self.maybe_adjust_order();
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_eval_with<G: GraphView>(
        &mut self,
        g: &G,
        shared: Option<&SharedCandidateIndex>,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        self.matching_query_edges(g, src, label, dst, scratch);
        scratch.assert_unbound();

        for i in 0..scratch.tree_edges.len() {
            let e = scratch.tree_edges[i];
            self.insert_tree_invocation(g, shared, e, src, label, dst, scratch, sink);
        }

        for i in 0..scratch.non_tree.len() {
            let e = scratch.non_tree[i];
            self.insert_non_tree_invocation(g, e, src, label, dst, scratch, sink);
        }
    }

    /// One tree-edge invocation of `InsertEdgeAndEval`: maintain the DCG
    /// under the matched tree edge `e` and climb/search when the paper's
    /// preconditions hold. Factored out so the sharded runtime can replay
    /// individual invocations from its per-shard inbox in the same order
    /// the unsharded loop runs them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        shared: Option<&SharedCandidateIndex>,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // Pre-existing parallel support means the vertex-mapping set is
        // unchanged via this query edge (Transition 0 analogue for
        // multigraphs).
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let (uc, pv, cv) = self.orient_tree_edge(e, src, dst);
        let up = self.tree.parent(uc).expect("tree edge child has a parent");
        // Case 2 of Transition 0: no path from a start vertex to pv.
        if self.dcg.in_count_total(pv, up) == 0 {
            return;
        }
        // An earlier tree-edge invocation of this same update may have
        // already built this DCG edge (the inserted edge can match
        // several tree edges whose builds overlap).
        if self.dcg.state(pv, uc, cv).is_none() {
            self.build_dcg(g, shared, Some(pv), uc, cv, scratch);
        }
        if self.dcg.state(pv, uc, cv) == Some(EdgeState::Explicit)
            && self.match_all_children(pv, up)
        {
            let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Positive);
            scratch.bind(uc, cv);
            self.build_upwards(g, up, pv, &ctx, true, scratch, sink);
            scratch.unbind(uc);
        }
    }

    /// One non-tree invocation of `InsertEdgeAndEval` (see
    /// [`TurboFlux::insert_tree_invocation`] for why this is factored out).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_non_tree_invocation<G: GraphView>(
        &mut self,
        g: &G,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
            return;
        }
        let qe = *self.q.edge(e);
        // m(qe.src) = src, m(qe.dst) = dst; both endpoints need the
        // path condition and fully matched subtrees.
        if self.dcg.in_count_total(src, qe.src) == 0
            || self.dcg.in_count_total(dst, qe.dst) == 0
            || !self.match_all_children(src, qe.src)
            || !self.match_all_children(dst, qe.dst)
        {
            return;
        }
        let ctx = SearchCtx::update(e, src, label, dst, Positiveness::Positive);
        let looped = qe.src == qe.dst;
        if !looped {
            scratch.bind(qe.dst, dst);
        }
        // Traverse upward from qe.src without modifying the DCG: a
        // non-tree edge never changes intermediate results.
        self.build_upwards(g, qe.src, src, &ctx, false, scratch, sink);
        if !looped {
            scratch.unbind(qe.dst);
        }
    }

    /// `BuildUpwardsAndEval`: climbs toward the start vertices along stored
    /// incoming DCG edges, applying Case 2 of Transition 2 when `ft` is
    /// set, and runs `SubgraphSearch` at every start vertex reached.
    ///
    /// Precondition (established by every caller): all children of `u` have
    /// explicit outgoing edges from `v`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_upwards<G: GraphView>(
        &mut self,
        g: &G,
        u: QVertexId,
        v: VertexId,
        ctx: &SearchCtx,
        ft: bool,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        debug_assert!(self.match_all_children(v, u));
        // A non-tree invocation pre-binds the other endpoint of the
        // triggering edge; if the climb reaches that query vertex with a
        // different data vertex the two constraints contradict and no
        // solution exists along this path. (Transitions are never needed
        // here: the contradiction can only arise with `ft == false`.)
        if let Some(w) = scratch.m[u.index()] {
            if w != v {
                debug_assert!(!ft);
                return;
            }
        }
        let prev = scratch.rebind(u, Some(v));
        let us = self.tree.root();
        if u == us {
            // The single incoming edge is the artificial start edge.
            match self.dcg.root_state(v) {
                Some(EdgeState::Implicit) if ft => {
                    self.dcg.transit(None, u, v, Some(EdgeState::Explicit));
                    self.search_from_root(g, ctx, scratch, sink);
                }
                Some(EdgeState::Explicit) => {
                    self.search_from_root(g, ctx, scratch, sink);
                }
                _ => {}
            }
        } else {
            let up = self.tree.parent(u).expect("non-root");
            // Snapshot the in-list into the segmented stack: transitions
            // during the climb mutate the list being iterated.
            let start = scratch.climb.len();
            scratch.climb.extend_from_slice(self.dcg.in_edge_slice(v, u));
            let end = scratch.climb.len();
            let mut i = start;
            while i < end {
                let (vp, st) = scratch.climb[i];
                i += 1;
                if st == EdgeState::Implicit {
                    if !ft {
                        continue; // without transitions only explicit paths matter
                    }
                    self.dcg.transit(Some(vp), u, v, Some(EdgeState::Explicit));
                }
                if self.match_all_children(vp, up) {
                    self.build_upwards(g, up, vp, ctx, ft, scratch, sink);
                }
            }
            scratch.climb.truncate(start);
        }
        scratch.rebind(u, prev);
    }
}
