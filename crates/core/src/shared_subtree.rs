//! Fleet-owned shared DCG subtree instances (multi-query optimization,
//! phase 2).
//!
//! Phase 1 ([`crate::shared_index`]) shares single-edge candidate sets;
//! overlapping queries still each maintain their own DCG over structure
//! they have in common. This module shares whole *multi-edge* execution
//! subtrees: at registration a [`crate::fleet::Fleet`] canonicalizes every
//! complete root-child branch of each engine's execution tree
//! ([`canonical_branch`]) and folds label-path-identical branches from
//! different engines into one refcounted [`SharedSubtrees`] *instance* — a
//! private maintenance-only [`TurboFlux`] engine over the synthetic prefix
//! query "root plus that branch". The fleet driver maintains each instance
//! exactly once per graph mutation; every sharing engine reads the
//! instance's DCG state for its branch vertices instead of building and
//! maintaining that region privately, and runs only its private suffix.
//!
//! # Why the states can be shared at all
//!
//! The DCG state below a tree edge is a pure function of the data graph,
//! the query subtree below that edge, and the set of stored root
//! candidates ([`crate::spec::reference_dcg`]). A *complete* root-child
//! subtree carries its entire downward closure with it, and the instance
//! root keeps the engine root's label set (part of the [`SubtreeKey`]), so
//! the instance's stored-root set equals each sharing engine's. Hence the
//! instance's per-edge states, explicit counts, and adjacency runs are
//! bit-for-bit the states every sharing engine would have maintained
//! privately — reads can be redirected wholesale. Non-tree query edges
//! never influence DCG state (they are verified against the data graph
//! during enumeration only), so engines whose branches share a tree shape
//! but differ in non-tree edges still share an instance.
//!
//! # Canonicalization
//!
//! A branch is keyed by its rooted label-path shape: per node the
//! parent-edge label, orientation, and vertex label set, with children
//! ordered by a memoized recursive subtree hash so isomorphic branches
//! from different queries serialize to the same [`SubtreeKey`]. Hash ties
//! among siblings are broken by original vertex id, which is only
//! non-canonical when the tied siblings' subtrees are *identical* — and
//! automorphic siblings map to interchangeable instance vertices with
//! equal state, so any tie order yields a correct binding.
//!
//! # Determinism
//!
//! Instance maintenance runs the unmodified `InsertEdgeAndEval` /
//! `DeleteEdgeAndEval` DCG transitions (enumeration suppressed via the
//! engine's maintenance-only mode), driven at the same points of the op
//! lifecycle at which the engines' own maintenance would have run — after
//! graph mutation for insertions, before it for deletions. Sharing is
//! therefore invisible in the delta stream; `tests/fleet_subtree_equivalence.rs`
//! holds the fleet byte-identical to naive per-engine replay.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rustc_hash::FxHashMap;
use tfx_graph::{DynamicGraph, LabelId, LabelSet, VertexId};
use tfx_query::{MatchSemantics, QVertexId, QueryGraph, QueryTree};

use crate::config::TurboFluxConfig;
use crate::engine::TurboFlux;
use crate::shared_index::SharedCandidateIndex;

/// The fleet-shared read-only state an evaluation can draw on: the phase-1
/// per-edge candidate index and the phase-2 subtree instances. Threaded
/// through the evaluation core by value; [`FleetCtx::NONE`] for standalone
/// engines and the sharded runtime.
#[derive(Clone, Copy)]
pub(crate) struct FleetCtx<'a> {
    /// Phase-1 shared candidate runs ([`TurboFluxConfig::fleet_shared_index`]).
    pub idx: Option<&'a SharedCandidateIndex>,
    /// Phase-2 shared subtree instances
    /// ([`TurboFluxConfig::fleet_shared_subtrees`]).
    pub sub: Option<&'a SharedSubtrees>,
}

impl FleetCtx<'static> {
    /// No fleet-shared state (standalone / sharded / ablated engines).
    pub(crate) const NONE: FleetCtx<'static> = FleetCtx { idx: None, sub: None };
}

impl<'a> FleetCtx<'a> {
    /// The subtree store. Panics if an engine with bound branches is
    /// evaluated without its fleet's subtree context — binding and context
    /// are both controlled by the fleet driver, so this is a driver bug.
    #[inline]
    pub(crate) fn subtrees(&self) -> &'a SharedSubtrees {
        self.sub.expect("engine has shared branches but no subtree context was passed")
    }
}

/// One node of a canonicalized branch, in canonical preorder.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct KeyNode {
    /// Instance vertex id of the tree parent (`0` = the instance root).
    pub parent: u32,
    /// Parent-edge label (`None` = wildcard).
    pub label: Option<LabelId>,
    /// `true` if this node is the *target* of its parent edge.
    pub out: bool,
    /// The node's vertex label set.
    pub labels: LabelSet,
}

/// Canonical identity of a shareable execution-tree branch: the engine
/// root's label set plus the branch's nodes in canonical preorder.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SubtreeKey {
    /// Label set of the sharing engine's root query vertex (pins the
    /// instance's stored-root candidate set).
    pub root_labels: LabelSet,
    /// Branch nodes in canonical preorder; instance vertex `i + 1`
    /// corresponds to `nodes[i]`.
    pub nodes: Vec<KeyNode>,
}

/// A branch of one engine's execution tree bound to a shared instance.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BoundBranch {
    /// Instance id in the owning [`SharedSubtrees`].
    pub inst: u32,
    /// The instance-side branch root (the instance root's child the
    /// engine-side branch root maps to).
    pub inst_root_u: QVertexId,
}

/// Memoized structural hash of the subtree under `u`: parent-edge label,
/// orientation, label set, and the *sorted* child hashes, so isomorphic
/// subtrees hash equal regardless of child declaration order.
fn subtree_hash(
    q: &QueryGraph,
    tree: &QueryTree,
    u: QVertexId,
    memo: &mut FxHashMap<u32, u64>,
) -> u64 {
    if let Some(&h) = memo.get(&u.0) {
        return h;
    }
    let mut kids: Vec<u64> =
        tree.children(u).iter().map(|&c| subtree_hash(q, tree, c, memo)).collect();
    kids.sort_unstable();
    let mut h = DefaultHasher::new();
    let e = tree.parent_edge(u).expect("branch nodes are non-root");
    q.edge(e).label.hash(&mut h);
    tree.child_is_target(u).hash(&mut h);
    q.labels(u).hash(&mut h);
    kids.hash(&mut h);
    let h = h.finish();
    memo.insert(u.0, h);
    h
}

/// Canonical preorder serialization of the subtree under `u`, appending to
/// `key.nodes` and recording `engine vertex → instance vertex` pairs.
fn walk(
    q: &QueryGraph,
    tree: &QueryTree,
    u: QVertexId,
    parent_pos: u32,
    memo: &FxHashMap<u32, u64>,
    key: &mut SubtreeKey,
    map: &mut Vec<(QVertexId, QVertexId)>,
) {
    let pos = key.nodes.len() as u32 + 1;
    let e = tree.parent_edge(u).expect("branch nodes are non-root");
    key.nodes.push(KeyNode {
        parent: parent_pos,
        label: q.edge(e).label,
        out: tree.child_is_target(u),
        labels: q.labels(u).clone(),
    });
    map.push((u, QVertexId(pos)));
    let mut kids: Vec<QVertexId> = tree.children(u).to_vec();
    kids.sort_by_key(|&c| (memo[&c.0], c.0));
    for c in kids {
        walk(q, tree, c, pos, memo, key, map);
    }
}

/// Canonicalizes the complete root-child branch of `tree` rooted at
/// `branch_root`, returning its [`SubtreeKey`] and the engine-vertex →
/// instance-vertex binding in canonical preorder (the branch root maps to
/// instance vertex 1).
pub(crate) fn canonical_branch(
    q: &QueryGraph,
    tree: &QueryTree,
    branch_root: QVertexId,
) -> (SubtreeKey, Vec<(QVertexId, QVertexId)>) {
    debug_assert_eq!(tree.parent(branch_root), Some(tree.root()), "branches hang off the root");
    let mut memo = FxHashMap::default();
    subtree_hash(q, tree, branch_root, &mut memo);
    let mut key = SubtreeKey { root_labels: q.labels(tree.root()).clone(), nodes: Vec::new() };
    let mut map = Vec::new();
    walk(q, tree, branch_root, 0, &memo, &mut key, &mut map);
    (key, map)
}

/// The synthetic prefix query of a key: instance root (vertex 0) plus one
/// vertex per key node, wired by the recorded parent positions.
fn query_of(key: &SubtreeKey) -> QueryGraph {
    let mut q = QueryGraph::new();
    let mut ids = vec![q.add_vertex(key.root_labels.clone())];
    for n in &key.nodes {
        let u = q.add_vertex(n.labels.clone());
        let p = ids[n.parent as usize];
        if n.out {
            q.add_edge(p, u, n.label);
        } else {
            q.add_edge(u, p, n.label);
        }
        ids.push(u);
    }
    q
}

/// Configuration of an instance engine: pure single-threaded DCG
/// maintenance. Semantics and order adjustment are irrelevant to DCG state
/// (the instance never enumerates and its order is never consulted), so
/// they are pinned rather than inherited from any sharing engine.
fn instance_cfg() -> TurboFluxConfig {
    TurboFluxConfig {
        semantics: MatchSemantics::Homomorphism,
        adjust_matching_order: false,
        label_indexed_adjacency: true,
        parallel_workers: 1,
        fleet_shared_index: false,
        fleet_shared_subtrees: false,
        ..TurboFluxConfig::default()
    }
}

/// Which instances an updated data edge can affect: the labels used by the
/// key's edges, or the wildcard list if *any* key edge is label-wildcarded
/// (membership is exclusive, so routing never evaluates an instance twice).
fn routing_of(key: &SubtreeKey) -> (Vec<LabelId>, bool) {
    if key.nodes.iter().any(|n| n.label.is_none()) {
        return (Vec::new(), true);
    }
    let mut labels: Vec<LabelId> =
        key.nodes.iter().map(|n| n.label.expect("no wildcard nodes")).collect();
    labels.sort_unstable_by_key(|l| l.0);
    labels.dedup();
    (labels, false)
}

/// One refcounted shared subtree instance.
struct Instance {
    key: SubtreeKey,
    refs: usize,
    eng: TurboFlux,
    /// Dirty explicit-count bitmask (instance query-vertex indexed) of the
    /// most recent maintenance round, harvested after every op so sharing
    /// engines can fold it into their own drift detection. `0` for ops
    /// that did not touch this instance.
    last_dirty: u64,
}

/// Slot-arena of shared subtree instances plus lookup and routing maps.
/// Owned by a [`crate::fleet::Fleet`]; maintained by its driver strictly
/// between evaluation rounds, read by engines during rounds.
#[derive(Default)]
pub struct SharedSubtrees {
    insts: Vec<Option<Instance>>,
    free: Vec<u32>,
    by_key: FxHashMap<SubtreeKey, u32>,
    /// Live instance ids per concrete edge label used by their keys.
    by_label: FxHashMap<LabelId, Vec<u32>>,
    /// Live instance ids whose key uses a wildcard edge label (evaluated
    /// on every edge mutation).
    wildcard: Vec<u32>,
}

impl SharedSubtrees {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (referenced) instances.
    pub fn instance_count(&self) -> usize {
        self.by_key.len()
    }

    /// Number of live instances actually shared by ≥ 2 branches.
    pub fn shared_instance_count(&self) -> usize {
        self.insts.iter().flatten().filter(|i| i.refs >= 2).count()
    }

    /// Acquires a reference on the instance for `key`, registering its
    /// maintenance engine against the current graph on first acquisition.
    pub(crate) fn acquire(&mut self, g: &DynamicGraph, key: SubtreeKey) -> u32 {
        if let Some(&id) = self.by_key.get(&key) {
            self.insts[id as usize].as_mut().expect("live instance").refs += 1;
            return id;
        }
        let eng = TurboFlux::register_rooted(query_of(&key), g, instance_cfg(), QVertexId(0));
        let inst = Instance { key: key.clone(), refs: 1, eng, last_dirty: 0 };
        let id = match self.free.pop() {
            Some(id) => {
                self.insts[id as usize] = Some(inst);
                id
            }
            None => {
                self.insts.push(Some(inst));
                (self.insts.len() - 1) as u32
            }
        };
        self.by_key.insert(key.clone(), id);
        let (labels, wild) = routing_of(&key);
        if wild {
            self.wildcard.push(id);
        } else {
            for l in labels {
                self.by_label.entry(l).or_default().push(id);
            }
        }
        id
    }

    /// Releases one reference on instance `id`, dropping its engine (and
    /// recycling the slot) when the last referencing branch deregisters.
    pub(crate) fn release(&mut self, id: u32) {
        let inst = self.insts[id as usize].as_mut().expect("release of a dead instance");
        inst.refs -= 1;
        if inst.refs > 0 {
            return;
        }
        let inst = self.insts[id as usize].take().expect("checked live above");
        self.by_key.remove(&inst.key);
        let (labels, wild) = routing_of(&inst.key);
        if wild {
            self.wildcard.retain(|&s| s != id);
        } else {
            for l in labels {
                let ids = self.by_label.get_mut(&l).expect("label entry exists");
                ids.retain(|&s| s != id);
                if ids.is_empty() {
                    self.by_label.remove(&l);
                }
            }
        }
        self.free.push(id);
    }

    /// The maintenance engine of instance `id` (engines read its DCG
    /// through this during evaluation rounds).
    #[inline]
    pub(crate) fn eng(&self, id: u32) -> &TurboFlux {
        &self.insts[id as usize].as_ref().expect("read of a dead instance").eng
    }

    /// The dirty explicit-count bitmask of `id`'s most recent maintenance
    /// round (instance query-vertex indexed).
    #[inline]
    pub(crate) fn last_dirty(&self, id: u32) -> u64 {
        self.insts[id as usize].as_ref().expect("read of a dead instance").last_dirty
    }

    /// Registers instance root candidates for data vertices with id ≥
    /// `from` (the caller grew the graph).
    pub(crate) fn register_new_vertices(&mut self, g: &DynamicGraph, from: VertexId) {
        for inst in self.insts.iter_mut().flatten() {
            inst.eng.register_new_vertices(g, from);
        }
    }

    /// Folds the (already applied) insertion of data edge
    /// `(src, label, dst)` into every instance whose key can match it, and
    /// refreshes every instance's harvested dirty mask.
    pub(crate) fn maintain_insert(
        &mut self,
        g: &DynamicGraph,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
    ) {
        let SharedSubtrees { insts, by_label, wildcard, .. } = self;
        if let Some(ids) = by_label.get(&label) {
            for &id in ids {
                let inst = insts[id as usize].as_mut().expect("routing lists live instances");
                inst.eng.eval_inserted_edge(g, src, label, dst, &mut |_, _| {});
            }
        }
        for &id in wildcard.iter() {
            let inst = insts[id as usize].as_mut().expect("routing lists live instances");
            inst.eng.eval_inserted_edge(g, src, label, dst, &mut |_, _| {});
        }
        for inst in insts.iter_mut().flatten() {
            inst.last_dirty = inst.eng.dcg.take_dirty_expl();
        }
    }

    /// Folds the impending deletion of data edge `(src, label, dst)` out of
    /// every instance whose key can match it (called before the edge leaves
    /// the graph, mirroring when engines evaluate deletions), and refreshes
    /// every instance's harvested dirty mask.
    pub(crate) fn maintain_delete(
        &mut self,
        g: &DynamicGraph,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
    ) {
        let SharedSubtrees { insts, by_label, wildcard, .. } = self;
        if let Some(ids) = by_label.get(&label) {
            for &id in ids {
                let inst = insts[id as usize].as_mut().expect("routing lists live instances");
                inst.eng.eval_deleting_edge(g, src, label, dst, &mut |_, _| {});
            }
        }
        for &id in wildcard.iter() {
            let inst = insts[id as usize].as_mut().expect("routing lists live instances");
            inst.eng.eval_deleting_edge(g, src, label, dst, &mut |_, _| {});
        }
        for inst in insts.iter_mut().flatten() {
            inst.last_dirty = inst.eng.dcg.take_dirty_expl();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::GraphStats;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn ls(is: &[u32]) -> LabelSet {
        LabelSet::from_iter(is.iter().map(|&i| l(i)))
    }

    /// Query A −7→ B −8→ C with an extra root child A −9→ D, analyzed
    /// against a graph making A the start vertex.
    fn two_branch_query() -> (QueryGraph, QueryTree) {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(ls(&[0]));
        let b = q.add_vertex(ls(&[1]));
        let c = q.add_vertex(ls(&[2]));
        let d = q.add_vertex(ls(&[3]));
        q.add_edge(a, b, Some(l(7)));
        q.add_edge(b, c, Some(l(8)));
        q.add_edge(a, d, Some(l(9)));
        let g = seed_graph();
        let stats = GraphStats::new(&g);
        let tree = QueryTree::build(&q, a, &stats);
        (q, tree)
    }

    /// a:A, b:B, c:C, d:D with a −7→ b −8→ c and a −9→ d.
    fn seed_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(ls(&[0]));
        let b = g.add_vertex(ls(&[1]));
        let c = g.add_vertex(ls(&[2]));
        let d = g.add_vertex(ls(&[3]));
        g.insert_edge(a, l(7), b);
        g.insert_edge(b, l(8), c);
        g.insert_edge(a, l(9), d);
        g
    }

    #[test]
    fn canonical_branch_maps_preorder_and_reorders_isomorphically() {
        let (q, tree) = two_branch_query();
        let (key, map) = canonical_branch(&q, &tree, QVertexId(1));
        assert_eq!(key.root_labels, ls(&[0]));
        assert_eq!(key.nodes.len(), 2, "B and C");
        assert_eq!(key.nodes[0].parent, 0);
        assert_eq!(key.nodes[0].label, Some(l(7)));
        assert_eq!(key.nodes[1].parent, 1);
        assert_eq!(key.nodes[1].label, Some(l(8)));
        assert_eq!(map, vec![(QVertexId(1), QVertexId(1)), (QVertexId(2), QVertexId(2))]);

        // The same branch declared with permuted sibling order in another
        // query canonicalizes to the same key.
        let mut q2 = QueryGraph::new();
        let a = q2.add_vertex(ls(&[0]));
        let d = q2.add_vertex(ls(&[3]));
        let b = q2.add_vertex(ls(&[1]));
        let c = q2.add_vertex(ls(&[2]));
        q2.add_edge(a, d, Some(l(9)));
        q2.add_edge(a, b, Some(l(7)));
        q2.add_edge(b, c, Some(l(8)));
        let g = seed_graph();
        let tree2 = QueryTree::build(&q2, a, &GraphStats::new(&g));
        let (key2, map2) = canonical_branch(&q2, &tree2, b);
        assert_eq!(key, key2, "isomorphic branches share a key");
        assert_eq!(map2[0], (b, QVertexId(1)));

        // The single-vertex D branch keys differently.
        let (key_d, _) = canonical_branch(&q, &tree, QVertexId(3));
        assert_ne!(key, key_d);
        assert_eq!(query_of(&key_d).edge_count(), 1);
    }

    #[test]
    fn query_of_rebuilds_the_prefix_shape() {
        let (q, tree) = two_branch_query();
        let (key, _) = canonical_branch(&q, &tree, QVertexId(1));
        let pq = query_of(&key);
        assert_eq!(pq.vertex_count(), 3, "root + branch");
        assert_eq!(pq.edge_count(), 2);
        assert_eq!(pq.labels(QVertexId(0)), &ls(&[0]));
        assert_eq!(pq.labels(QVertexId(1)), &ls(&[1]));
        assert_eq!(pq.labels(QVertexId(2)), &ls(&[2]));
        assert!(pq.is_connected());
    }

    #[test]
    fn acquire_release_refcounts_and_recycles() {
        let g = seed_graph();
        let (q, tree) = two_branch_query();
        let (key, _) = canonical_branch(&q, &tree, QVertexId(1));
        let mut sub = SharedSubtrees::new();
        let a = sub.acquire(&g, key.clone());
        let b = sub.acquire(&g, key.clone());
        assert_eq!(a, b, "same key shares one instance");
        assert_eq!(sub.instance_count(), 1);
        assert_eq!(sub.shared_instance_count(), 1);
        sub.release(a);
        assert_eq!(sub.instance_count(), 1, "still referenced");
        assert_eq!(sub.shared_instance_count(), 0);
        sub.release(b);
        assert_eq!(sub.instance_count(), 0);
        // The freed slot is recycled for the next distinct key.
        let (key_d, _) = canonical_branch(&q, &tree, QVertexId(3));
        let c = sub.acquire(&g, key_d);
        assert_eq!(c, a, "slot recycled");
        sub.release(c);
    }

    #[test]
    fn maintenance_tracks_the_graph_and_harvests_dirty_bits() {
        let mut g = seed_graph();
        let (q, tree) = two_branch_query();
        let (key, _) = canonical_branch(&q, &tree, QVertexId(1));
        let mut sub = SharedSubtrees::new();
        let id = sub.acquire(&g, key.clone());
        // Initial graph: a −7→ b −8→ c fully matches the prefix.
        assert_eq!(
            sub.eng(id).dcg.state(VertexId(0), QVertexId(1), VertexId(1)),
            Some(crate::dcg::EdgeState::Explicit)
        );
        // Deleting b −8→ c downgrades the branch edge.
        sub.maintain_delete(&g, VertexId(1), l(8), VertexId(2));
        g.delete_edge(VertexId(1), l(8), VertexId(2));
        assert_eq!(
            sub.eng(id).dcg.state(VertexId(0), QVertexId(1), VertexId(1)),
            Some(crate::dcg::EdgeState::Implicit)
        );
        assert_ne!(sub.last_dirty(id), 0, "explicit counts changed");
        // Re-inserting restores it; the maintained state equals a fresh
        // registration against the final graph.
        g.insert_edge(VertexId(1), l(8), VertexId(2));
        sub.maintain_insert(&g, VertexId(1), l(8), VertexId(2));
        let mut fresh = SharedSubtrees::new();
        let fid = fresh.acquire(&g, key);
        assert_eq!(sub.eng(id).dcg.snapshot(), fresh.eng(fid).dcg.snapshot());
        // An unrelated label routes nowhere and leaves dirty masks clean.
        let e = g.add_vertex(ls(&[5]));
        sub.register_new_vertices(&g, e);
        g.insert_edge(VertexId(0), l(42), e);
        sub.maintain_insert(&g, VertexId(0), l(42), e);
        assert_eq!(sub.last_dirty(id), 0, "untouched op clears the harvest");
    }

    #[test]
    fn wildcard_keys_route_through_the_wildcard_list() {
        let mut g = seed_graph();
        let mut q = QueryGraph::new();
        let a = q.add_vertex(ls(&[0]));
        let b = q.add_vertex(ls(&[1]));
        let c = q.add_vertex(ls(&[2]));
        q.add_edge(a, b, None);
        q.add_edge(b, c, Some(l(8)));
        let tree = QueryTree::build(&q, a, &GraphStats::new(&g));
        let (key, _) = canonical_branch(&q, &tree, b);
        let (labels, wild) = routing_of(&key);
        assert!(wild && labels.is_empty(), "any wildcard edge routes the whole key");
        let mut sub = SharedSubtrees::new();
        let id = sub.acquire(&g, key);
        // An arbitrary-label edge into b's position must reach the
        // instance: a −3→ b backs the wildcard tree edge.
        g.insert_edge(VertexId(0), l(3), VertexId(1));
        sub.maintain_insert(&g, VertexId(0), l(3), VertexId(1));
        assert!(sub.eng(id).dcg.state(VertexId(0), QVertexId(1), VertexId(1)).is_some());
        sub.release(id);
        assert_eq!(sub.instance_count(), 0);
    }
}
