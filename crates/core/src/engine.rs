//! The TurboFlux engine (§4, Algorithm 2).
//!
//! Construction transforms the query into a tree rooted at the starting
//! query vertex, builds the initial DCG with `BuildDCG`, and derives a
//! matching order from DCG statistics. Each update operation then runs
//! `InsertEdgeAndEval` / `DeleteEdgeAndEval`, which maintain the DCG
//! incrementally and stream positive / negative matches into the caller's
//! sink.
//!
//! The engine can run in two ownership modes over the data graph:
//!
//! * **standalone** ([`TurboFlux::new`] + [`TurboFlux::apply_op`]): the
//!   engine owns the graph and mutates it as part of applying updates;
//! * **externally driven** ([`TurboFlux::register`] +
//!   [`TurboFlux::eval_inserted_edge`] / [`TurboFlux::eval_deleting_edge`]
//!   / [`TurboFlux::register_new_vertices`]): the caller — typically a
//!   [`crate::fleet::Fleet`] multiplexing many engines over one stream —
//!   owns the graph, mutates it itself, and passes it in read-only for
//!   evaluation. Internally the standalone mode is the externally driven
//!   mode applied to the engine's own graph.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use rustc_hash::FxHashMap;
use tfx_graph::{
    shard_of, DynamicGraph, GraphStats, GraphView, LabelId, LabelSet, UpdateOp, VertexId,
};
use tfx_query::{
    choose_start_vertex, ContinuousMatcher, EdgeId, MatchRecord, MatchSemantics, Positiveness,
    QVertexId, QueryGraph, QueryTree,
};

use crate::config::TurboFluxConfig;
use crate::dcg::{Dcg, EdgeState};
use crate::order::OrderMaintenance;
use crate::parallel::ScratchPool;
use crate::scratch::SearchScratch;
use crate::shared_index::SigKey;
use crate::shared_subtree::{BoundBranch, FleetCtx};
use crate::tree_nav::{collect_child_candidates, collect_shared_child_candidates};

/// How many search steps between wall-clock deadline checks (power of two:
/// the shared step counter is masked, not reset, so concurrent search
/// workers can bump it without coordination).
const DEADLINE_CHECK_INTERVAL: u32 = 4096;

/// A continuous subgraph matching engine maintaining a data-centric graph.
pub struct TurboFlux {
    /// The engine's own data graph. Empty (and unused) when the engine was
    /// created with [`TurboFlux::register`] and the caller owns the graph.
    pub(crate) g: DynamicGraph,
    pub(crate) q: QueryGraph,
    pub(crate) tree: QueryTree,
    pub(crate) cfg: TurboFluxConfig,
    pub(crate) dcg: Dcg,
    /// Matching order over all query vertices, parents before children.
    pub(crate) mo: Vec<QVertexId>,
    /// Bit `c` set in `child_mask[u]` iff `c ∈ Children(u)`.
    pub(crate) child_mask: Vec<u64>,
    /// Non-tree query edges incident to each query vertex.
    pub(crate) non_tree_incident: Vec<Vec<EdgeId>>,
    /// Query edges bucketed by their concrete edge label, so
    /// `matching_query_edges` only inspects edges whose label can match
    /// the updated data edge instead of scanning all of `E(q)`. Endpoint
    /// label-set containment is a per-update predicate (data vertices
    /// carry label *sets*), so it stays a per-candidate check.
    pub(crate) qedge_by_label: FxHashMap<LabelId, Vec<EdgeId>>,
    /// Query edges with no label constraint (match any data label).
    pub(crate) qedge_wildcard: Vec<EdgeId>,
    /// Per query vertex: the fleet-shared candidate signature bound to its
    /// tree edge, if the owning [`crate::fleet::Fleet`] shares it (root and
    /// wildcard-labeled edges are never shareable). Empty-slotted (`None`)
    /// for standalone engines and flag-off fleet engines.
    pub(crate) shared_sigs: Vec<Option<u32>>,
    /// Candidate collections served from the shared index.
    pub(crate) shared_hits: u64,
    /// Candidate collections that fell back to a private scan while a
    /// shared index was available (unshareable tree edge).
    pub(crate) shared_misses: u64,
    /// Per query vertex: the fleet-shared subtree instance and instance
    /// vertex this engine reads the vertex's DCG state from, when the
    /// vertex lies in a branch bound by [`TurboFlux::bind_branch`].
    /// All-`None` for standalone engines and flag-off fleet engines.
    pub(crate) branch_nodes: Vec<Option<(u32, QVertexId)>>,
    /// The bound branches (complete root-child subtrees served by shared
    /// instances).
    pub(crate) branches: Vec<BoundBranch>,
    /// Bit `c` set iff root child `c` is the root of a bound branch.
    pub(crate) shared_root_mask: u64,
    /// Derived explicit start-edge count for engines with bound branches
    /// (their own root map stores presence only; explicitness is derived
    /// from child state at read time). Refreshed by the order-maintenance
    /// path whenever a root child's explicit count was dirtied.
    pub(crate) root_expl_cache: u64,
    /// Effective per-vertex explicit counts (own counts with bound-branch
    /// vertices and the root patched in), reused by drift detection.
    pub(crate) counts_buf: Vec<u64>,
    /// DCG build/clear regions skipped because a shared instance already
    /// maintains them.
    pub(crate) subtree_hits: u64,
    /// Evaluations this engine ran against its private suffix while bound
    /// branches were served by shared instances.
    pub(crate) suffix_evals: u64,
    /// Maintenance-only engines (shared subtree instances) keep the DCG
    /// but never enumerate matches: `search_from_root` returns without
    /// searching, so climbs apply their transitions at zero search cost.
    pub(crate) maintenance_only: bool,
    /// Drift detection for `AdjustMatchingOrder`.
    pub(crate) order_maint: OrderMaintenance,
    /// Reusable buffers for the per-update hot path (embedding, candidate
    /// stacks, edge snapshots); steady-state updates allocate nothing.
    pub(crate) scratch: SearchScratch,
    /// Per-worker scratches and delta buffers for intra-update parallel
    /// enumeration, checked out under `&self` from scoped worker threads.
    pub(crate) pool: ScratchPool,
    /// `available_parallelism()` resolved once at registration (the `0 =
    /// auto` meaning of [`TurboFluxConfig::parallel_workers`]).
    pub(crate) auto_workers: usize,
    /// External cap on intra-update workers, set by a
    /// [`crate::fleet::Fleet`] so nested parallelism cannot oversubscribe
    /// its thread budget.
    pub(crate) worker_budget: usize,
    /// Optional wall-clock deadline (benchmark timeouts); checked
    /// periodically inside the search.
    pub(crate) deadline: Option<std::time::Instant>,
    /// Search steps since the deadline was set, bumped from every search
    /// worker; a wall-clock probe runs every `DEADLINE_CHECK_INTERVAL`
    /// steps.
    pub(crate) deadline_tick: AtomicU32,
    /// Latched once the deadline passed; the engine stops enumerating.
    pub(crate) deadline_hit: AtomicBool,
    /// `(shard, shards)` when this engine is one slice of a
    /// [`crate::shard::ShardedEngine`]: root candidates are registered only
    /// for data vertices this shard owns, so the engine maintains exactly
    /// the restriction of the global DCG to the downward closure of its
    /// owned roots. `None` for unsharded engines (own everything).
    pub(crate) partition: Option<(u32, u32)>,
}

impl TurboFlux {
    /// Registers `q` against the initial data graph `g0` and builds the
    /// initial DCG (Algorithm 2, lines 1–6). The engine owns `g0` and
    /// maintains it through [`TurboFlux::apply_op`].
    ///
    /// Panics if `q` is empty, disconnected, or has more than 64 vertices.
    pub fn new(q: QueryGraph, g0: DynamicGraph, cfg: TurboFluxConfig) -> Self {
        let mut engine = Self::register(q, &g0, cfg);
        engine.g = g0;
        engine
    }

    /// Registers `q` against a *borrowed* initial data graph and builds the
    /// initial DCG, without taking ownership of the graph. The caller must
    /// keep the graph in sync with the evaluation calls
    /// ([`TurboFlux::eval_inserted_edge`], [`TurboFlux::eval_deleting_edge`],
    /// [`TurboFlux::register_new_vertices`]); this is how a
    /// [`crate::fleet::Fleet`] shares one graph across many engines.
    ///
    /// Panics if `q` is empty, disconnected, or has more than 64 vertices.
    pub fn register(q: QueryGraph, g0: &DynamicGraph, cfg: TurboFluxConfig) -> Self {
        Self::register_inner(q, g0, cfg, None)
    }

    /// [`TurboFlux::register`] for one shard slice of a
    /// [`crate::shard::ShardedEngine`]: query analysis (start vertex, tree,
    /// matching order inputs) runs against the *full* initial graph — so
    /// every shard derives the identical plan — but only root candidates
    /// with `shard_of(v, shards) == shard` are registered, giving this
    /// engine the partition-local DCG slice.
    pub(crate) fn register_partitioned(
        q: QueryGraph,
        g0: &DynamicGraph,
        cfg: TurboFluxConfig,
        shard: u32,
        shards: u32,
    ) -> Self {
        Self::register_inner(q, g0, cfg, Some((shard, shards)))
    }

    fn register_inner(
        q: QueryGraph,
        g0: &DynamicGraph,
        cfg: TurboFluxConfig,
        partition: Option<(u32, u32)>,
    ) -> Self {
        let mut engine = Self::analyze(q, g0, cfg, partition, None);
        engine.finish_registration(g0, FleetCtx::NONE);
        engine
    }

    /// [`TurboFlux::register`] for a shared subtree instance
    /// ([`crate::shared_subtree`]): the start vertex is forced to `root`
    /// (the synthetic prefix root, so the execution tree reproduces the
    /// sharing engines' branch exactly) and enumeration is disabled — the
    /// instance exists purely to maintain DCG state.
    pub(crate) fn register_rooted(
        q: QueryGraph,
        g0: &DynamicGraph,
        cfg: TurboFluxConfig,
        root: QVertexId,
    ) -> Self {
        let mut engine = Self::analyze(q, g0, cfg, None, Some(root));
        engine.maintenance_only = true;
        engine.finish_registration(g0, FleetCtx::NONE);
        engine
    }

    /// Query analysis and engine construction without the initial DCG
    /// build: everything a [`crate::fleet::Fleet`] needs to decide branch
    /// sharing (the execution tree) before any DCG state exists. Callers
    /// must follow up with [`TurboFlux::finish_registration`].
    pub(crate) fn analyze(
        q: QueryGraph,
        g0: &DynamicGraph,
        cfg: TurboFluxConfig,
        partition: Option<(u32, u32)>,
        forced_root: Option<QVertexId>,
    ) -> Self {
        assert!(q.edge_count() > 0, "query must have at least one edge");
        assert!(q.is_connected(), "query must be connected");
        let stats = GraphStats::new(g0);
        let us = forced_root.unwrap_or_else(|| choose_start_vertex(&q, &stats));
        let tree = QueryTree::build(&q, us, &stats);
        let nq = q.vertex_count();

        let mut child_mask = vec![0u64; nq];
        for u in q.vertices() {
            for &c in tree.children(u) {
                child_mask[u.index()] |= 1 << c.0;
            }
        }
        let mut non_tree_incident = vec![Vec::new(); nq];
        for &e in tree.non_tree_edges() {
            let qe = q.edge(e);
            non_tree_incident[qe.src.index()].push(e);
            if qe.dst != qe.src {
                non_tree_incident[qe.dst.index()].push(e);
            }
        }
        let mut qedge_by_label: FxHashMap<LabelId, Vec<EdgeId>> = FxHashMap::default();
        let mut qedge_wildcard = Vec::new();
        for i in 0..q.edge_count() as u32 {
            let e = EdgeId(i);
            match q.edge(e).label {
                Some(l) => qedge_by_label.entry(l).or_default().push(e),
                None => qedge_wildcard.push(e),
            }
        }

        let track_bound = cfg.semantics == MatchSemantics::Isomorphism;
        TurboFlux {
            dcg: Dcg::new(nq, us),
            mo: Vec::new(),
            child_mask,
            non_tree_incident,
            qedge_by_label,
            qedge_wildcard,
            shared_sigs: vec![None; nq],
            shared_hits: 0,
            shared_misses: 0,
            branch_nodes: vec![None; nq],
            branches: Vec::new(),
            shared_root_mask: 0,
            root_expl_cache: 0,
            counts_buf: Vec::new(),
            subtree_hits: 0,
            suffix_evals: 0,
            maintenance_only: false,
            order_maint: OrderMaintenance::default(),
            scratch: SearchScratch::for_query(nq, track_bound),
            pool: ScratchPool::default(),
            auto_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            worker_budget: usize::MAX,
            deadline: None,
            deadline_tick: AtomicU32::new(0),
            deadline_hit: AtomicBool::new(false),
            partition,
            g: DynamicGraph::default(),
            q,
            tree,
            cfg,
        }
    }

    /// Binds the complete root-child branch rooted at `branch_root` to
    /// shared instance `inst`; `mapping` is the engine-vertex →
    /// instance-vertex binding from
    /// [`crate::shared_subtree::canonical_branch`]. Must run after
    /// [`TurboFlux::analyze`] and before [`TurboFlux::finish_registration`]
    /// (the initial build skips bound regions).
    pub(crate) fn bind_branch(
        &mut self,
        branch_root: QVertexId,
        inst: u32,
        mapping: &[(QVertexId, QVertexId)],
    ) {
        for &(u, iu) in mapping {
            debug_assert!(self.branch_nodes[u.index()].is_none(), "vertex bound twice");
            self.branch_nodes[u.index()] = Some((inst, iu));
        }
        let inst_root_u = mapping[0].1;
        self.branches.push(BoundBranch { inst, inst_root_u });
        self.shared_root_mask |= 1 << branch_root.0;
    }

    /// Builds the initial DCG (a hypothetical start-edge insertion for
    /// every matching data vertex — Algorithm 2, lines 4–5, restricted to
    /// unbound regions when branches are shared) and derives the matching
    /// order. Completes a [`TurboFlux::analyze`] into a usable engine.
    pub(crate) fn finish_registration(&mut self, g0: &DynamicGraph, fleet: FleetCtx<'_>) {
        let us = self.tree.root();
        let mut scratch = std::mem::take(&mut self.scratch);
        for v in g0.vertices() {
            if self.owns_root(v) && self.q.labels(us).is_subset_of(g0.labels(v)) {
                self.build_dcg(g0, fleet, None, us, v, &mut scratch);
            }
        }
        self.scratch = scratch;
        self.recompute_matching_order(fleet);
    }

    /// The data graph as maintained by the engine. Empty for engines
    /// created with [`TurboFlux::register`] (the caller owns the graph).
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The registered query.
    pub fn query(&self) -> &QueryGraph {
        &self.q
    }

    /// The query tree `q'`.
    pub fn query_tree(&self) -> &QueryTree {
        &self.tree
    }

    /// The maintained DCG.
    pub fn dcg(&self) -> &Dcg {
        &self.dcg
    }

    /// The current matching order.
    pub fn matching_order(&self) -> &[QVertexId] {
        &self.mo
    }

    /// Sets (or clears) a wall-clock deadline. Once it passes, the engine
    /// stops enumerating matches and [`ContinuousMatcher::timed_out`]
    /// latches true; results are incomplete from then on. Used by the
    /// benchmark harness to bound single explosive updates.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        // 0 makes the very next probe's `fetch_add` return a masked zero,
        // i.e. the clock is consulted immediately after (re)arming.
        self.deadline_tick.store(0, Ordering::Relaxed);
        self.deadline_hit.store(false, Ordering::Relaxed);
    }

    /// Whether this engine opts into reading the fleet's shared candidate
    /// index ([`TurboFluxConfig::fleet_shared_index`]).
    #[inline]
    pub(crate) fn uses_shared_index(&self) -> bool {
        self.cfg.fleet_shared_index
    }

    /// Caps intra-update parallelism regardless of the configured
    /// [`TurboFluxConfig::parallel_workers`]. A [`crate::fleet::Fleet`]
    /// sets this before fanning a batch out over its own workers so the
    /// two parallelism layers multiply to at most its thread budget.
    pub fn set_worker_budget(&mut self, workers: usize) {
        self.worker_budget = workers.max(1);
    }

    /// Effective intra-update worker count: the config knob (0 = one per
    /// available core) clamped by the external budget.
    #[inline]
    pub(crate) fn intra_workers(&self) -> usize {
        let configured = match self.cfg.parallel_workers {
            0 => self.auto_workers,
            n => n,
        };
        configured.min(self.worker_budget).max(1)
    }

    /// Cheap periodic deadline probe (called from the search hot loop,
    /// possibly from several worker threads at once — the step counter is
    /// a shared atomic and the hit flag a monotonic latch, so probes never
    /// need coordination; the cadence just degrades to approximately every
    /// `DEADLINE_CHECK_INTERVAL` steps per worker group).
    #[inline]
    pub(crate) fn deadline_exceeded(&self) -> bool {
        if self.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.deadline_tick.fetch_add(1, Ordering::Relaxed) & (DEADLINE_CHECK_INTERVAL - 1) != 0 {
            return false;
        }
        if std::time::Instant::now() >= deadline {
            self.deadline_hit.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// `MatchAllChildren` (Algorithm 4), O(1) via the explicit-out bitmap.
    #[inline]
    pub(crate) fn match_all_children(&self, v: VertexId, u: QVertexId) -> bool {
        let mask = self.child_mask[u.index()];
        self.dcg.expl_out_bits(v) & mask == mask
    }

    /// Whether any branch of this engine's execution tree is served by a
    /// fleet-shared subtree instance.
    #[inline]
    pub(crate) fn has_shared_branches(&self) -> bool {
        !self.branches.is_empty()
    }

    /// The shared instance serving query vertex `u`, if any.
    #[inline]
    fn branch_of(&self, u: QVertexId) -> Option<(u32, QVertexId)> {
        self.branch_nodes[u.index()]
    }

    /// [`TurboFlux::match_all_children`] over the effective DCG: bound
    /// branch vertices read the instance's bitmap; the root combines its
    /// private children's own bits with each bound branch's instance bit.
    pub(crate) fn st_match_all_children(
        &self,
        fleet: FleetCtx<'_>,
        v: VertexId,
        u: QVertexId,
    ) -> bool {
        if let Some((inst, iu)) = self.branch_of(u) {
            return fleet.subtrees().eng(inst).match_all_children(v, iu);
        }
        if u == self.tree.root() && self.has_shared_branches() {
            let own_mask = self.child_mask[u.index()] & !self.shared_root_mask;
            if self.dcg.expl_out_bits(v) & own_mask != own_mask {
                return false;
            }
            let sub = fleet.subtrees();
            return self
                .branches
                .iter()
                .all(|b| sub.eng(b.inst).dcg.expl_out_bits(v) & (1 << b.inst_root_u.0) != 0);
        }
        self.match_all_children(v, u)
    }

    /// State of the artificial start edge over the effective DCG. Engines
    /// with bound branches store root presence only and derive
    /// explicitness (`MatchAllChildren` over the combined bitmap) at read
    /// time — their own map cannot see instance-side transitions.
    pub(crate) fn st_root_state(&self, fleet: FleetCtx<'_>, v: VertexId) -> Option<EdgeState> {
        let st = self.dcg.root_state(v)?;
        if !self.has_shared_branches() {
            return Some(st);
        }
        Some(if self.st_match_all_children(fleet, v, self.tree.root()) {
            EdgeState::Explicit
        } else {
            EdgeState::Implicit
        })
    }

    /// [`Dcg::state`] over the effective DCG.
    #[inline]
    pub(crate) fn st_state(
        &self,
        fleet: FleetCtx<'_>,
        pv: VertexId,
        u: QVertexId,
        cv: VertexId,
    ) -> Option<EdgeState> {
        match self.branch_of(u) {
            Some((inst, iu)) => fleet.subtrees().eng(inst).dcg.state(pv, iu, cv),
            None => self.dcg.state(pv, u, cv),
        }
    }

    /// [`Dcg::in_count_total`] over the effective DCG.
    #[inline]
    pub(crate) fn st_in_count_total(
        &self,
        fleet: FleetCtx<'_>,
        v: VertexId,
        u: QVertexId,
    ) -> usize {
        match self.branch_of(u) {
            Some((inst, iu)) => fleet.subtrees().eng(inst).dcg.in_count_total(v, iu),
            None => self.dcg.in_count_total(v, u),
        }
    }

    /// [`Dcg::out_expl_count`] over the effective DCG.
    #[inline]
    pub(crate) fn st_out_expl_count(
        &self,
        fleet: FleetCtx<'_>,
        pv: VertexId,
        u: QVertexId,
    ) -> usize {
        match self.branch_of(u) {
            Some((inst, iu)) => fleet.subtrees().eng(inst).dcg.out_expl_count(pv, iu),
            None => self.dcg.out_expl_count(pv, u),
        }
    }

    /// [`Dcg::out_edge_slice`] over the effective DCG.
    #[inline]
    pub(crate) fn st_out_edge_slice<'a>(
        &'a self,
        fleet: FleetCtx<'a>,
        pv: VertexId,
        u: QVertexId,
    ) -> &'a [(VertexId, EdgeState)] {
        match self.branch_of(u) {
            Some((inst, iu)) => fleet.subtrees().eng(inst).dcg.out_edge_slice(pv, iu),
            None => self.dcg.out_edge_slice(pv, u),
        }
    }

    /// [`Dcg::in_edge_slice`] over the effective DCG.
    #[inline]
    pub(crate) fn st_in_edge_slice<'a>(
        &'a self,
        fleet: FleetCtx<'a>,
        v: VertexId,
        u: QVertexId,
    ) -> &'a [(VertexId, EdgeState)] {
        match self.branch_of(u) {
            Some((inst, iu)) => fleet.subtrees().eng(inst).dcg.in_edge_slice(v, iu),
            None => self.dcg.in_edge_slice(v, u),
        }
    }

    /// Whether this engine registers root candidates for data vertex `v`
    /// (always, unless partitioned — then only for owned vertices).
    #[inline]
    pub(crate) fn owns_root(&self, v: VertexId) -> bool {
        match self.partition {
            None => true,
            Some((shard, shards)) => shard_of(v, shards) == shard,
        }
    }

    /// The shared-candidate signature of `u`'s tree edge, if that edge is
    /// shareable across queries: the edge label (`None` routes to the
    /// wildcard bucket) plus `u`'s label set and the edge's orientation pin
    /// down the exact candidate filter (the parent-side label check stays
    /// per-query at read time). Only root vertices (no tree edge) are not
    /// shareable.
    pub(crate) fn shared_sig_key(&self, u: QVertexId) -> Option<SigKey> {
        let e = self.tree.parent_edge(u)?;
        Some(SigKey {
            label: self.q.edge(e).label,
            child_labels: self.q.labels(u).clone(),
            out: self.tree.child_is_target(u),
        })
    }

    /// `BuildDCG` (Algorithm 3): depth-first construction of the DCG below
    /// the edge `(parent, u, cv)`, applying Transitions 1 and 2.
    ///
    /// With a fleet candidate index set, child candidates of tree edges
    /// bound to a shared signature are read from the fleet index instead
    /// of scanned privately — identical candidates in identical order.
    /// Children whose subtree is bound to a shared instance are never
    /// built privately at all: their state lives in the instance.
    pub(crate) fn build_dcg<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        parent: Option<VertexId>,
        u: QVertexId,
        cv: VertexId,
        scratch: &mut SearchScratch,
    ) {
        // Case 1/2 of Transition 1.
        let prev = self.dcg.transit(parent, u, cv, Some(EdgeState::Implicit));
        debug_assert!(prev.is_none(), "build_dcg must start from a NULL edge");
        // Check-and-avoid: recurse only if this is the first incoming edge
        // of cv labeled u — otherwise the subtrees are already built.
        if self.dcg.in_count_total(cv, u) == 1 {
            let mode = self.cfg.adjacency_mode();
            for ci in 0..self.tree.children(u).len() {
                let uc = self.tree.children(u)[ci];
                if self.branch_nodes[uc.index()].is_some() {
                    self.subtree_hits += 1;
                    continue;
                }
                let start = match (fleet.idx, self.shared_sigs[uc.index()]) {
                    (Some(idx), Some(sig)) => {
                        self.shared_hits += 1;
                        collect_shared_child_candidates(
                            g,
                            &self.q,
                            &self.tree,
                            idx,
                            sig,
                            uc,
                            cv,
                            &mut scratch.kids,
                        )
                    }
                    _ => {
                        if fleet.idx.is_some() {
                            self.shared_misses += 1;
                        }
                        collect_child_candidates(
                            g,
                            &self.q,
                            &self.tree,
                            uc,
                            cv,
                            mode,
                            &mut scratch.kids,
                        )
                    }
                };
                let end = scratch.kids.len();
                let mut i = start;
                while i < end {
                    let w = scratch.kids[i];
                    i += 1;
                    self.build_dcg(g, fleet, Some(cv), uc, w, scratch);
                }
                scratch.kids.truncate(start);
            }
        }
        // Case 1/2 of Transition 2. Engines with bound branches keep their
        // root map presence-only (explicitness is derived at read time via
        // `st_root_state`), so the root upgrade is skipped for them.
        if (u != self.tree.root() || !self.has_shared_branches()) && self.match_all_children(cv, u)
        {
            self.dcg.transit(parent, u, cv, Some(EdgeState::Explicit));
        }
    }

    /// `ClearDCG` (Algorithm 10): removes the edge `(parent, u, cv)` and
    /// cascades Transitions 3/5 into the subtree when `cv` loses its last
    /// incoming edge labeled `u`.
    pub(crate) fn clear_dcg(
        &mut self,
        parent: Option<VertexId>,
        u: QVertexId,
        cv: VertexId,
        scratch: &mut SearchScratch,
    ) {
        let old = self.dcg.transit(parent, u, cv, None);
        debug_assert!(old.is_some(), "clear_dcg on a NULL edge");
        if self.dcg.in_count_total(cv, u) == 0 {
            for ci in 0..self.tree.children(u).len() {
                let uc = self.tree.children(u)[ci];
                // Snapshot the out-list into the segmented stack: the
                // recursion removes from the list being iterated.
                let start = scratch.kids.len();
                scratch.kids.extend(self.dcg.out_edge_slice(cv, uc).iter().map(|&(w, _)| w));
                let end = scratch.kids.len();
                let mut i = start;
                while i < end {
                    let w = scratch.kids[i];
                    i += 1;
                    self.clear_dcg(Some(cv), uc, w, scratch);
                }
                scratch.kids.truncate(start);
            }
        }
    }

    /// Reports all matches of the initial data graph (Algorithm 2, lines
    /// 7–11), standalone mode.
    pub fn report_initial(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        let g = std::mem::take(&mut self.g);
        self.initial_matches_in(&g, sink);
        self.g = g;
    }

    /// Reports all matches of the initial data graph against a borrowed
    /// graph (externally driven mode; `g` must be the graph the DCG was
    /// built from). When the explicit root-candidate set is wide enough
    /// the candidates are partitioned across worker threads ([`crate::parallel`]);
    /// emission order is the candidate (= vertex id) order either way.
    pub fn initial_matches_in<G: GraphView>(&mut self, g: &G, sink: &mut dyn FnMut(&MatchRecord)) {
        self.initial_matches_ctx(g, FleetCtx::NONE, sink);
    }

    /// [`TurboFlux::initial_matches_in`] with fleet-shared state (a
    /// [`crate::fleet::Fleet`] passes its candidate index and subtree
    /// store; everyone else goes through the plain wrapper).
    pub(crate) fn initial_matches_ctx<G: GraphView>(
        &mut self,
        g: &G,
        fleet: FleetCtx<'_>,
        sink: &mut dyn FnMut(&MatchRecord),
    ) {
        let us = self.tree.root();
        let ctx = crate::search::SearchCtx::initial(fleet);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.kids.clear();
        scratch.kids.extend(
            (0..g.vertex_count() as u32)
                .map(VertexId)
                .filter(|&vs| self.st_root_state(fleet, vs) == Some(EdgeState::Explicit)),
        );
        let workers = self.intra_workers();
        if workers > 1 && scratch.kids.len() >= self.cfg.parallel_min_frontier {
            let kids = std::mem::take(&mut scratch.kids);
            self.search_chunked_roots(g, &ctx, &kids, &mut scratch, workers, &mut |_p, r| sink(r));
            scratch.kids = kids;
        } else {
            for i in 0..scratch.kids.len() {
                let vs = scratch.kids[i];
                scratch.bind(us, vs);
                self.subgraph_search(g, 0, &ctx, &mut scratch, &mut |_p, r| sink(r));
                scratch.unbind(us);
            }
        }
        scratch.kids.clear();
        self.scratch = scratch;
    }

    /// Applies one update operation to the engine-owned graph, reporting
    /// positive / negative matches (Algorithm 2, lines 12–20). Standalone
    /// mode only — with [`TurboFlux::register`] the caller drives the
    /// `eval_*` methods directly.
    pub fn apply_op(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        match op {
            UpdateOp::AddVertex { .. } => {
                let before = VertexId(self.g.vertex_count() as u32);
                if self.g.apply(op) {
                    let g = std::mem::take(&mut self.g);
                    self.register_new_vertices(&g, before);
                    self.g = g;
                }
            }
            UpdateOp::InsertEdge { src, label, dst } => {
                let before = VertexId(self.g.vertex_count() as u32);
                // Streams normally announce vertices via `AddVertex`;
                // tolerate label-less stragglers by creating empty-labeled
                // endpoints.
                let hi = src.0.max(dst.0);
                if hi >= before.0 {
                    self.g.ensure_vertex(VertexId(hi), LabelSet::empty());
                }
                let inserted = self.g.insert_edge(*src, *label, *dst);
                let g = std::mem::take(&mut self.g);
                self.register_new_vertices(&g, before);
                if inserted {
                    self.eval_inserted_edge(&g, *src, *label, *dst, sink);
                }
                self.g = g;
            }
            UpdateOp::DeleteEdge { src, label, dst } => {
                if self.g.has_edge(*src, *label, *dst) {
                    let g = std::mem::take(&mut self.g);
                    self.eval_deleting_edge(&g, *src, *label, *dst, sink);
                    self.g = g;
                    self.g.delete_edge(*src, *label, *dst);
                }
            }
        }
    }

    /// Registers start candidates for every data vertex with id ≥ `from`
    /// (externally driven mode: the caller grew the graph). A freshly
    /// created vertex matching `u_s` gets an implicit start edge — it
    /// cannot be explicit, since the root of a non-trivial query has
    /// children and a new vertex has no edges.
    pub fn register_new_vertices<G: GraphView>(&mut self, g: &G, from: VertexId) {
        let us = self.tree.root();
        for i in from.0..g.vertex_count() as u32 {
            let v = VertexId(i);
            if self.owns_root(v)
                && self.q.labels(us).is_subset_of(g.labels(v))
                && self.dcg.root_state(v).is_none()
            {
                self.dcg.transit(None, us, v, Some(EdgeState::Implicit));
            }
        }
    }

    /// Total order over query edges used for duplicate-free reporting and
    /// invocation sequencing: tree edges rank by the depth of their child
    /// endpoint (shallow first — a deep edge's path condition can only be
    /// created by builds of shallower edges), ties by id; all non-tree
    /// edges rank above all tree edges.
    #[inline]
    pub(crate) fn edge_order_key(&self, e: EdgeId) -> u32 {
        if self.tree.is_tree_edge(e) {
            let qe = self.q.edge(e);
            let uc = if self.tree.parent_edge(qe.dst) == Some(e) { qe.dst } else { qe.src };
            (self.tree.depth(uc) << 16) | e.0
        } else {
            (1 << 24) | e.0
        }
    }

    /// Fills `scratch.tree_edges` / `scratch.non_tree` with the query edges
    /// matching the data edge `(src, label, dst)`, in processing order
    /// (tree edges by ascending order key, then non-tree edges by ascending
    /// id). Only the label bucket built at registration (plus the
    /// label-wildcard edges) is inspected, not all of `E(q)`.
    pub(crate) fn matching_query_edges<G: GraphView>(
        &self,
        g: &G,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
    ) {
        scratch.tree_edges.clear();
        scratch.non_tree.clear();
        let bucket = self.qedge_by_label.get(&label).map_or(&[][..], Vec::as_slice);
        for &e in bucket.iter().chain(&self.qedge_wildcard) {
            if self.q.edge_matches(g, e, src, label, dst) {
                if self.tree.is_tree_edge(e) {
                    scratch.tree_edges.push(e);
                } else {
                    scratch.non_tree.push(e);
                }
            }
        }
        // Order keys are unique per edge, so the unstable (allocation-free)
        // sorts are deterministic. The non-tree sort restores ascending id
        // order across the bucket/wildcard interleave.
        scratch.tree_edges.sort_unstable_by_key(|&e| self.edge_order_key(e));
        scratch.non_tree.sort_unstable_by_key(|&e| e.0);
    }

    /// For a matching *tree* edge, the (tree-parent-side, child-side) data
    /// vertices and the child query vertex.
    pub(crate) fn orient_tree_edge(
        &self,
        e: EdgeId,
        src: VertexId,
        dst: VertexId,
    ) -> (QVertexId, VertexId, VertexId) {
        let qe = self.q.edge(e);
        // The child endpoint is the one whose parent edge is `e`.
        let (uc, pv, cv) = if self.tree.parent_edge(qe.dst) == Some(e) {
            (qe.dst, src, dst)
        } else {
            debug_assert_eq!(self.tree.parent_edge(qe.src), Some(e));
            (qe.src, dst, src)
        };
        debug_assert_eq!(self.tree.child_is_target(uc), uc == qe.dst);
        (uc, pv, cv)
    }
}

impl ContinuousMatcher for TurboFlux {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        self.report_initial(sink);
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        self.apply_op(op, sink);
    }

    fn intermediate_result_bytes(&self) -> usize {
        self.dcg.resident_bytes()
    }

    fn timed_out(&self) -> bool {
        self.deadline_hit.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "TurboFlux"
    }
}
