//! The TurboFlux engine (§4, Algorithm 2).
//!
//! Construction transforms the query into a tree rooted at the starting
//! query vertex, builds the initial DCG with `BuildDCG`, and derives a
//! matching order from DCG statistics. Each update operation then runs
//! `InsertEdgeAndEval` / `DeleteEdgeAndEval`, which maintain the DCG
//! incrementally and stream positive / negative matches into the caller's
//! sink.

use tfx_graph::{DynamicGraph, GraphStats, LabelId, LabelSet, UpdateOp, VertexId};
use tfx_query::{
    choose_start_vertex, ContinuousMatcher, EdgeId, MatchRecord, Positiveness, QVertexId,
    QueryGraph, QueryTree,
};

use crate::config::TurboFluxConfig;
use crate::dcg::{Dcg, EdgeState};
use crate::tree_nav::for_each_child_candidate;

/// How many search steps between wall-clock deadline checks.
const DEADLINE_CHECK_INTERVAL: u32 = 4096;

/// A continuous subgraph matching engine maintaining a data-centric graph.
pub struct TurboFlux {
    pub(crate) g: DynamicGraph,
    pub(crate) q: QueryGraph,
    pub(crate) tree: QueryTree,
    pub(crate) cfg: TurboFluxConfig,
    pub(crate) dcg: Dcg,
    /// Matching order over all query vertices, parents before children.
    pub(crate) mo: Vec<QVertexId>,
    /// Bit `c` set in `child_mask[u]` iff `c ∈ Children(u)`.
    pub(crate) child_mask: Vec<u64>,
    /// Non-tree query edges incident to each query vertex.
    pub(crate) non_tree_incident: Vec<Vec<EdgeId>>,
    /// Explicit-count snapshot taken when the matching order was computed.
    pub(crate) order_snapshot: Vec<u64>,
    /// Scratch mapping reused across updates.
    pub(crate) scratch_m: Vec<Option<VertexId>>,
    /// Scratch match record reused across reports.
    pub(crate) scratch_rec: MatchRecord,
    /// Optional wall-clock deadline (benchmark timeouts); checked
    /// periodically inside the search.
    pub(crate) deadline: Option<std::time::Instant>,
    /// Countdown until the next deadline check.
    pub(crate) deadline_tick: std::cell::Cell<u32>,
    /// Latched once the deadline passed; the engine stops enumerating.
    pub(crate) deadline_hit: std::cell::Cell<bool>,
}

impl TurboFlux {
    /// Registers `q` against the initial data graph `g0` and builds the
    /// initial DCG (Algorithm 2, lines 1–6).
    ///
    /// Panics if `q` is empty, disconnected, or has more than 64 vertices.
    pub fn new(q: QueryGraph, g0: DynamicGraph, cfg: TurboFluxConfig) -> Self {
        assert!(q.edge_count() > 0, "query must have at least one edge");
        assert!(q.is_connected(), "query must be connected");
        let stats = GraphStats::new(&g0);
        let us = choose_start_vertex(&q, &stats);
        let tree = QueryTree::build(&q, us, &stats);
        let nq = q.vertex_count();

        let mut child_mask = vec![0u64; nq];
        for u in q.vertices() {
            for &c in tree.children(u) {
                child_mask[u.index()] |= 1 << c.0;
            }
        }
        let mut non_tree_incident = vec![Vec::new(); nq];
        for &e in tree.non_tree_edges() {
            let qe = q.edge(e);
            non_tree_incident[qe.src.index()].push(e);
            if qe.dst != qe.src {
                non_tree_incident[qe.dst.index()].push(e);
            }
        }

        let mut engine = TurboFlux {
            dcg: Dcg::new(nq, us),
            mo: Vec::new(),
            child_mask,
            non_tree_incident,
            order_snapshot: Vec::new(),
            scratch_m: vec![None; nq],
            scratch_rec: MatchRecord::default(),
            deadline: None,
            deadline_tick: std::cell::Cell::new(DEADLINE_CHECK_INTERVAL),
            deadline_hit: std::cell::Cell::new(false),
            g: g0,
            q,
            tree,
            cfg,
        };
        // Build the initial DCG: a hypothetical start-edge insertion for
        // every matching data vertex (Algorithm 2, lines 4–5).
        for v in engine.g.vertices().collect::<Vec<_>>() {
            if engine.q.labels(us).is_subset_of(engine.g.labels(v)) {
                engine.build_dcg(None, us, v);
            }
        }
        engine.recompute_matching_order();
        engine
    }

    /// The data graph as maintained by the engine.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The registered query.
    pub fn query(&self) -> &QueryGraph {
        &self.q
    }

    /// The query tree `q'`.
    pub fn query_tree(&self) -> &QueryTree {
        &self.tree
    }

    /// The maintained DCG.
    pub fn dcg(&self) -> &Dcg {
        &self.dcg
    }

    /// The current matching order.
    pub fn matching_order(&self) -> &[QVertexId] {
        &self.mo
    }

    /// Sets (or clears) a wall-clock deadline. Once it passes, the engine
    /// stops enumerating matches and [`ContinuousMatcher::timed_out`]
    /// latches true; results are incomplete from then on. Used by the
    /// benchmark harness to bound single explosive updates.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        self.deadline_tick.set(DEADLINE_CHECK_INTERVAL);
        self.deadline_hit.set(false);
    }

    /// Cheap periodic deadline probe (called from the search hot loop).
    #[inline]
    pub(crate) fn deadline_exceeded(&self) -> bool {
        if self.deadline_hit.get() {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        let tick = self.deadline_tick.get();
        if tick > 0 {
            self.deadline_tick.set(tick - 1);
            return false;
        }
        self.deadline_tick.set(DEADLINE_CHECK_INTERVAL);
        if std::time::Instant::now() >= deadline {
            self.deadline_hit.set(true);
            return true;
        }
        false
    }

    /// `MatchAllChildren` (Algorithm 4), O(1) via the explicit-out bitmap.
    #[inline]
    pub(crate) fn match_all_children(&self, v: VertexId, u: QVertexId) -> bool {
        let mask = self.child_mask[u.index()];
        self.dcg.expl_out_bits(v) & mask == mask
    }

    /// `BuildDCG` (Algorithm 3): depth-first construction of the DCG below
    /// the edge `(parent, u, cv)`, applying Transitions 1 and 2.
    pub(crate) fn build_dcg(&mut self, parent: Option<VertexId>, u: QVertexId, cv: VertexId) {
        // Case 1/2 of Transition 1.
        let prev = self.dcg.transit(parent, u, cv, Some(EdgeState::Implicit));
        debug_assert!(prev.is_none(), "build_dcg must start from a NULL edge");
        // Check-and-avoid: recurse only if this is the first incoming edge
        // of cv labeled u — otherwise the subtrees are already built.
        if self.dcg.in_count_total(cv, u) == 1 {
            for uc in self.tree.children(u).to_vec() {
                let mut kids = Vec::new();
                for_each_child_candidate(&self.g, &self.q, &self.tree, uc, cv, &mut |w| {
                    kids.push(w);
                });
                kids.sort_unstable();
                kids.dedup();
                for w in kids {
                    self.build_dcg(Some(cv), uc, w);
                }
            }
        }
        // Case 1/2 of Transition 2.
        if self.match_all_children(cv, u) {
            self.dcg.transit(parent, u, cv, Some(EdgeState::Explicit));
        }
    }

    /// `ClearDCG` (Algorithm 10): removes the edge `(parent, u, cv)` and
    /// cascades Transitions 3/5 into the subtree when `cv` loses its last
    /// incoming edge labeled `u`.
    pub(crate) fn clear_dcg(&mut self, parent: Option<VertexId>, u: QVertexId, cv: VertexId) {
        let old = self.dcg.transit(parent, u, cv, None);
        debug_assert!(old.is_some(), "clear_dcg on a NULL edge");
        if self.dcg.in_count_total(cv, u) == 0 {
            for uc in self.tree.children(u).to_vec() {
                for (w, _) in self.dcg.out_edges(cv, uc) {
                    self.clear_dcg(Some(cv), uc, w);
                }
            }
        }
    }

    /// Reports all matches of the initial data graph (Algorithm 2, lines
    /// 7–11).
    pub fn report_initial(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        let us = self.tree.root();
        let starts: Vec<VertexId> = self
            .g
            .vertices()
            .filter(|&v| self.dcg.root_state(v) == Some(EdgeState::Explicit))
            .collect();
        let ctx = crate::search::SearchCtx::initial();
        let mut m = std::mem::take(&mut self.scratch_m);
        let mut rec = std::mem::take(&mut self.scratch_rec);
        for vs in starts {
            m[us.index()] = Some(vs);
            self.subgraph_search(0, &ctx, &mut m, &mut rec, &mut |_p, r| sink(r));
            m[us.index()] = None;
        }
        self.scratch_m = m;
        self.scratch_rec = rec;
    }

    /// Applies one update operation, reporting positive / negative matches
    /// (Algorithm 2, lines 12–20).
    pub fn apply_op(
        &mut self,
        op: &UpdateOp,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        match op {
            UpdateOp::AddVertex { id, .. } => {
                let before = self.g.vertex_count() as u32;
                if self.g.apply(op) {
                    for i in before..self.g.vertex_count() as u32 {
                        self.register_start_candidate(VertexId(i));
                    }
                }
                let _ = id;
            }
            UpdateOp::InsertEdge { src, label, dst } => {
                self.ensure_endpoints(*src, *dst);
                if self.g.insert_edge(*src, *label, *dst) {
                    self.insert_edge_and_eval(*src, *label, *dst, sink);
                    self.maybe_adjust_order();
                }
            }
            UpdateOp::DeleteEdge { src, label, dst } => {
                if self.g.has_edge(*src, *label, *dst) {
                    self.delete_edge_and_eval(*src, *label, *dst, sink);
                    self.g.delete_edge(*src, *label, *dst);
                    self.maybe_adjust_order();
                }
            }
        }
    }

    /// Streams normally announce vertices via `AddVertex`; tolerate
    /// label-less stragglers by creating empty-labeled vertices.
    fn ensure_endpoints(&mut self, src: VertexId, dst: VertexId) {
        let hi = src.0.max(dst.0);
        let before = self.g.vertex_count() as u32;
        if hi >= before {
            self.g.ensure_vertex(VertexId(hi), LabelSet::empty());
            for i in before..=hi {
                self.register_start_candidate(VertexId(i));
            }
        }
    }

    /// A freshly created vertex matching `u_s` gets an implicit start edge
    /// (it cannot be explicit: the root of a non-trivial query has
    /// children, and a new vertex has no edges).
    fn register_start_candidate(&mut self, id: VertexId) {
        let us = self.tree.root();
        if self.q.labels(us).is_subset_of(self.g.labels(id)) && self.dcg.root_state(id).is_none()
        {
            self.dcg.transit(None, us, id, Some(EdgeState::Implicit));
        }
    }

    /// Total order over query edges used for duplicate-free reporting and
    /// invocation sequencing: tree edges rank by the depth of their child
    /// endpoint (shallow first — a deep edge's path condition can only be
    /// created by builds of shallower edges), ties by id; all non-tree
    /// edges rank above all tree edges.
    #[inline]
    pub(crate) fn edge_order_key(&self, e: EdgeId) -> u32 {
        if self.tree.is_tree_edge(e) {
            let qe = self.q.edge(e);
            let uc = if self.tree.parent_edge(qe.dst) == Some(e) { qe.dst } else { qe.src };
            (self.tree.depth(uc) << 16) | e.0
        } else {
            (1 << 24) | e.0
        }
    }

    /// Query edges matching the data edge `(src, label, dst)`, in
    /// processing order (tree edges by ascending order key, then non-tree
    /// edges by ascending id).
    pub(crate) fn matching_query_edges(
        &self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
    ) -> (Vec<EdgeId>, Vec<EdgeId>) {
        let mut tree_edges = Vec::new();
        let mut non_tree = Vec::new();
        for i in 0..self.q.edge_count() as u32 {
            let e = EdgeId(i);
            if self.q.edge_matches(&self.g, e, src, label, dst) {
                if self.tree.is_tree_edge(e) {
                    tree_edges.push(e);
                } else {
                    non_tree.push(e);
                }
            }
        }
        tree_edges.sort_by_key(|&e| self.edge_order_key(e));
        (tree_edges, non_tree)
    }

    /// For a matching *tree* edge, the (tree-parent-side, child-side) data
    /// vertices and the child query vertex.
    pub(crate) fn orient_tree_edge(
        &self,
        e: EdgeId,
        src: VertexId,
        dst: VertexId,
    ) -> (QVertexId, VertexId, VertexId) {
        let qe = self.q.edge(e);
        // The child endpoint is the one whose parent edge is `e`.
        let (uc, pv, cv) = if self.tree.parent_edge(qe.dst) == Some(e) {
            (qe.dst, src, dst)
        } else {
            debug_assert_eq!(self.tree.parent_edge(qe.src), Some(e));
            (qe.src, dst, src)
        };
        debug_assert_eq!(self.tree.child_is_target(uc), uc == qe.dst);
        (uc, pv, cv)
    }
}

impl ContinuousMatcher for TurboFlux {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        self.report_initial(sink);
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        self.apply_op(op, sink);
    }

    fn intermediate_result_bytes(&self) -> usize {
        self.dcg.resident_bytes()
    }

    fn timed_out(&self) -> bool {
        self.deadline_hit.get()
    }

    fn name(&self) -> &'static str {
        "TurboFlux"
    }
}
