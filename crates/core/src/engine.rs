//! The TurboFlux engine (§4, Algorithm 2).
//!
//! Construction transforms the query into a tree rooted at the starting
//! query vertex, builds the initial DCG with `BuildDCG`, and derives a
//! matching order from DCG statistics. Each update operation then runs
//! `InsertEdgeAndEval` / `DeleteEdgeAndEval`, which maintain the DCG
//! incrementally and stream positive / negative matches into the caller's
//! sink.
//!
//! The engine can run in two ownership modes over the data graph:
//!
//! * **standalone** ([`TurboFlux::new`] + [`TurboFlux::apply_op`]): the
//!   engine owns the graph and mutates it as part of applying updates;
//! * **externally driven** ([`TurboFlux::register`] +
//!   [`TurboFlux::eval_inserted_edge`] / [`TurboFlux::eval_deleting_edge`]
//!   / [`TurboFlux::register_new_vertices`]): the caller — typically a
//!   [`crate::fleet::Fleet`] multiplexing many engines over one stream —
//!   owns the graph, mutates it itself, and passes it in read-only for
//!   evaluation. Internally the standalone mode is the externally driven
//!   mode applied to the engine's own graph.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use rustc_hash::FxHashMap;
use tfx_graph::{
    shard_of, DynamicGraph, GraphStats, GraphView, LabelId, LabelSet, UpdateOp, VertexId,
};
use tfx_query::{
    choose_start_vertex, ContinuousMatcher, EdgeId, MatchRecord, MatchSemantics, Positiveness,
    QVertexId, QueryGraph, QueryTree,
};

use crate::config::TurboFluxConfig;
use crate::dcg::{Dcg, EdgeState};
use crate::order::OrderMaintenance;
use crate::parallel::ScratchPool;
use crate::scratch::SearchScratch;
use crate::shared_index::{SharedCandidateIndex, SigKey};
use crate::tree_nav::{collect_child_candidates, collect_shared_child_candidates};

/// How many search steps between wall-clock deadline checks (power of two:
/// the shared step counter is masked, not reset, so concurrent search
/// workers can bump it without coordination).
const DEADLINE_CHECK_INTERVAL: u32 = 4096;

/// A continuous subgraph matching engine maintaining a data-centric graph.
pub struct TurboFlux {
    /// The engine's own data graph. Empty (and unused) when the engine was
    /// created with [`TurboFlux::register`] and the caller owns the graph.
    pub(crate) g: DynamicGraph,
    pub(crate) q: QueryGraph,
    pub(crate) tree: QueryTree,
    pub(crate) cfg: TurboFluxConfig,
    pub(crate) dcg: Dcg,
    /// Matching order over all query vertices, parents before children.
    pub(crate) mo: Vec<QVertexId>,
    /// Bit `c` set in `child_mask[u]` iff `c ∈ Children(u)`.
    pub(crate) child_mask: Vec<u64>,
    /// Non-tree query edges incident to each query vertex.
    pub(crate) non_tree_incident: Vec<Vec<EdgeId>>,
    /// Query edges bucketed by their concrete edge label, so
    /// `matching_query_edges` only inspects edges whose label can match
    /// the updated data edge instead of scanning all of `E(q)`. Endpoint
    /// label-set containment is a per-update predicate (data vertices
    /// carry label *sets*), so it stays a per-candidate check.
    pub(crate) qedge_by_label: FxHashMap<LabelId, Vec<EdgeId>>,
    /// Query edges with no label constraint (match any data label).
    pub(crate) qedge_wildcard: Vec<EdgeId>,
    /// Per query vertex: the fleet-shared candidate signature bound to its
    /// tree edge, if the owning [`crate::fleet::Fleet`] shares it (root and
    /// wildcard-labeled edges are never shareable). Empty-slotted (`None`)
    /// for standalone engines and flag-off fleet engines.
    pub(crate) shared_sigs: Vec<Option<u32>>,
    /// Candidate collections served from the shared index.
    pub(crate) shared_hits: u64,
    /// Candidate collections that fell back to a private scan while a
    /// shared index was available (unshareable tree edge).
    pub(crate) shared_misses: u64,
    /// Drift detection for `AdjustMatchingOrder`.
    pub(crate) order_maint: OrderMaintenance,
    /// Reusable buffers for the per-update hot path (embedding, candidate
    /// stacks, edge snapshots); steady-state updates allocate nothing.
    pub(crate) scratch: SearchScratch,
    /// Per-worker scratches and delta buffers for intra-update parallel
    /// enumeration, checked out under `&self` from scoped worker threads.
    pub(crate) pool: ScratchPool,
    /// `available_parallelism()` resolved once at registration (the `0 =
    /// auto` meaning of [`TurboFluxConfig::parallel_workers`]).
    pub(crate) auto_workers: usize,
    /// External cap on intra-update workers, set by a
    /// [`crate::fleet::Fleet`] so nested parallelism cannot oversubscribe
    /// its thread budget.
    pub(crate) worker_budget: usize,
    /// Optional wall-clock deadline (benchmark timeouts); checked
    /// periodically inside the search.
    pub(crate) deadline: Option<std::time::Instant>,
    /// Search steps since the deadline was set, bumped from every search
    /// worker; a wall-clock probe runs every `DEADLINE_CHECK_INTERVAL`
    /// steps.
    pub(crate) deadline_tick: AtomicU32,
    /// Latched once the deadline passed; the engine stops enumerating.
    pub(crate) deadline_hit: AtomicBool,
    /// `(shard, shards)` when this engine is one slice of a
    /// [`crate::shard::ShardedEngine`]: root candidates are registered only
    /// for data vertices this shard owns, so the engine maintains exactly
    /// the restriction of the global DCG to the downward closure of its
    /// owned roots. `None` for unsharded engines (own everything).
    pub(crate) partition: Option<(u32, u32)>,
}

impl TurboFlux {
    /// Registers `q` against the initial data graph `g0` and builds the
    /// initial DCG (Algorithm 2, lines 1–6). The engine owns `g0` and
    /// maintains it through [`TurboFlux::apply_op`].
    ///
    /// Panics if `q` is empty, disconnected, or has more than 64 vertices.
    pub fn new(q: QueryGraph, g0: DynamicGraph, cfg: TurboFluxConfig) -> Self {
        let mut engine = Self::register(q, &g0, cfg);
        engine.g = g0;
        engine
    }

    /// Registers `q` against a *borrowed* initial data graph and builds the
    /// initial DCG, without taking ownership of the graph. The caller must
    /// keep the graph in sync with the evaluation calls
    /// ([`TurboFlux::eval_inserted_edge`], [`TurboFlux::eval_deleting_edge`],
    /// [`TurboFlux::register_new_vertices`]); this is how a
    /// [`crate::fleet::Fleet`] shares one graph across many engines.
    ///
    /// Panics if `q` is empty, disconnected, or has more than 64 vertices.
    pub fn register(q: QueryGraph, g0: &DynamicGraph, cfg: TurboFluxConfig) -> Self {
        Self::register_inner(q, g0, cfg, None)
    }

    /// [`TurboFlux::register`] for one shard slice of a
    /// [`crate::shard::ShardedEngine`]: query analysis (start vertex, tree,
    /// matching order inputs) runs against the *full* initial graph — so
    /// every shard derives the identical plan — but only root candidates
    /// with `shard_of(v, shards) == shard` are registered, giving this
    /// engine the partition-local DCG slice.
    pub(crate) fn register_partitioned(
        q: QueryGraph,
        g0: &DynamicGraph,
        cfg: TurboFluxConfig,
        shard: u32,
        shards: u32,
    ) -> Self {
        Self::register_inner(q, g0, cfg, Some((shard, shards)))
    }

    fn register_inner(
        q: QueryGraph,
        g0: &DynamicGraph,
        cfg: TurboFluxConfig,
        partition: Option<(u32, u32)>,
    ) -> Self {
        assert!(q.edge_count() > 0, "query must have at least one edge");
        assert!(q.is_connected(), "query must be connected");
        let stats = GraphStats::new(g0);
        let us = choose_start_vertex(&q, &stats);
        let tree = QueryTree::build(&q, us, &stats);
        let nq = q.vertex_count();

        let mut child_mask = vec![0u64; nq];
        for u in q.vertices() {
            for &c in tree.children(u) {
                child_mask[u.index()] |= 1 << c.0;
            }
        }
        let mut non_tree_incident = vec![Vec::new(); nq];
        for &e in tree.non_tree_edges() {
            let qe = q.edge(e);
            non_tree_incident[qe.src.index()].push(e);
            if qe.dst != qe.src {
                non_tree_incident[qe.dst.index()].push(e);
            }
        }
        let mut qedge_by_label: FxHashMap<LabelId, Vec<EdgeId>> = FxHashMap::default();
        let mut qedge_wildcard = Vec::new();
        for i in 0..q.edge_count() as u32 {
            let e = EdgeId(i);
            match q.edge(e).label {
                Some(l) => qedge_by_label.entry(l).or_default().push(e),
                None => qedge_wildcard.push(e),
            }
        }

        let track_bound = cfg.semantics == MatchSemantics::Isomorphism;
        let mut engine = TurboFlux {
            dcg: Dcg::new(nq, us),
            mo: Vec::new(),
            child_mask,
            non_tree_incident,
            qedge_by_label,
            qedge_wildcard,
            shared_sigs: vec![None; nq],
            shared_hits: 0,
            shared_misses: 0,
            order_maint: OrderMaintenance::default(),
            scratch: SearchScratch::for_query(nq, track_bound),
            pool: ScratchPool::default(),
            auto_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            worker_budget: usize::MAX,
            deadline: None,
            deadline_tick: AtomicU32::new(0),
            deadline_hit: AtomicBool::new(false),
            partition,
            g: DynamicGraph::default(),
            q,
            tree,
            cfg,
        };
        // Build the initial DCG: a hypothetical start-edge insertion for
        // every matching data vertex (Algorithm 2, lines 4–5).
        let mut scratch = std::mem::take(&mut engine.scratch);
        for v in g0.vertices() {
            if engine.owns_root(v) && engine.q.labels(us).is_subset_of(g0.labels(v)) {
                engine.build_dcg(g0, None, None, us, v, &mut scratch);
            }
        }
        engine.scratch = scratch;
        engine.recompute_matching_order();
        engine
    }

    /// The data graph as maintained by the engine. Empty for engines
    /// created with [`TurboFlux::register`] (the caller owns the graph).
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The registered query.
    pub fn query(&self) -> &QueryGraph {
        &self.q
    }

    /// The query tree `q'`.
    pub fn query_tree(&self) -> &QueryTree {
        &self.tree
    }

    /// The maintained DCG.
    pub fn dcg(&self) -> &Dcg {
        &self.dcg
    }

    /// The current matching order.
    pub fn matching_order(&self) -> &[QVertexId] {
        &self.mo
    }

    /// Sets (or clears) a wall-clock deadline. Once it passes, the engine
    /// stops enumerating matches and [`ContinuousMatcher::timed_out`]
    /// latches true; results are incomplete from then on. Used by the
    /// benchmark harness to bound single explosive updates.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        // 0 makes the very next probe's `fetch_add` return a masked zero,
        // i.e. the clock is consulted immediately after (re)arming.
        self.deadline_tick.store(0, Ordering::Relaxed);
        self.deadline_hit.store(false, Ordering::Relaxed);
    }

    /// Whether this engine opts into reading the fleet's shared candidate
    /// index ([`TurboFluxConfig::fleet_shared_index`]).
    #[inline]
    pub(crate) fn uses_shared_index(&self) -> bool {
        self.cfg.fleet_shared_index
    }

    /// Caps intra-update parallelism regardless of the configured
    /// [`TurboFluxConfig::parallel_workers`]. A [`crate::fleet::Fleet`]
    /// sets this before fanning a batch out over its own workers so the
    /// two parallelism layers multiply to at most its thread budget.
    pub fn set_worker_budget(&mut self, workers: usize) {
        self.worker_budget = workers.max(1);
    }

    /// Effective intra-update worker count: the config knob (0 = one per
    /// available core) clamped by the external budget.
    #[inline]
    pub(crate) fn intra_workers(&self) -> usize {
        let configured = match self.cfg.parallel_workers {
            0 => self.auto_workers,
            n => n,
        };
        configured.min(self.worker_budget).max(1)
    }

    /// Cheap periodic deadline probe (called from the search hot loop,
    /// possibly from several worker threads at once — the step counter is
    /// a shared atomic and the hit flag a monotonic latch, so probes never
    /// need coordination; the cadence just degrades to approximately every
    /// `DEADLINE_CHECK_INTERVAL` steps per worker group).
    #[inline]
    pub(crate) fn deadline_exceeded(&self) -> bool {
        if self.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.deadline_tick.fetch_add(1, Ordering::Relaxed) & (DEADLINE_CHECK_INTERVAL - 1) != 0 {
            return false;
        }
        if std::time::Instant::now() >= deadline {
            self.deadline_hit.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// `MatchAllChildren` (Algorithm 4), O(1) via the explicit-out bitmap.
    #[inline]
    pub(crate) fn match_all_children(&self, v: VertexId, u: QVertexId) -> bool {
        let mask = self.child_mask[u.index()];
        self.dcg.expl_out_bits(v) & mask == mask
    }

    /// Whether this engine registers root candidates for data vertex `v`
    /// (always, unless partitioned — then only for owned vertices).
    #[inline]
    pub(crate) fn owns_root(&self, v: VertexId) -> bool {
        match self.partition {
            None => true,
            Some((shard, shards)) => shard_of(v, shards) == shard,
        }
    }

    /// The shared-candidate signature of `u`'s tree edge, if that edge is
    /// shareable across queries: a concrete edge label plus `u`'s label set
    /// and the edge's orientation pin down the exact candidate filter (the
    /// parent-side label check stays per-query at read time). Root vertices
    /// (no tree edge) and wildcard-labeled edges are not shareable.
    pub(crate) fn shared_sig_key(&self, u: QVertexId) -> Option<SigKey> {
        let e = self.tree.parent_edge(u)?;
        let label = self.q.edge(e).label?;
        Some(SigKey {
            label,
            child_labels: self.q.labels(u).clone(),
            out: self.tree.child_is_target(u),
        })
    }

    /// `BuildDCG` (Algorithm 3): depth-first construction of the DCG below
    /// the edge `(parent, u, cv)`, applying Transitions 1 and 2.
    ///
    /// With `shared` set (fleet mode), child candidates of tree edges bound
    /// to a shared signature are read from the fleet index instead of
    /// scanned privately — identical candidates in identical order.
    pub(crate) fn build_dcg<G: GraphView>(
        &mut self,
        g: &G,
        shared: Option<&SharedCandidateIndex>,
        parent: Option<VertexId>,
        u: QVertexId,
        cv: VertexId,
        scratch: &mut SearchScratch,
    ) {
        // Case 1/2 of Transition 1.
        let prev = self.dcg.transit(parent, u, cv, Some(EdgeState::Implicit));
        debug_assert!(prev.is_none(), "build_dcg must start from a NULL edge");
        // Check-and-avoid: recurse only if this is the first incoming edge
        // of cv labeled u — otherwise the subtrees are already built.
        if self.dcg.in_count_total(cv, u) == 1 {
            let mode = self.cfg.adjacency_mode();
            for ci in 0..self.tree.children(u).len() {
                let uc = self.tree.children(u)[ci];
                let start = match (shared, self.shared_sigs[uc.index()]) {
                    (Some(idx), Some(sig)) => {
                        self.shared_hits += 1;
                        collect_shared_child_candidates(
                            g,
                            &self.q,
                            &self.tree,
                            idx,
                            sig,
                            uc,
                            cv,
                            &mut scratch.kids,
                        )
                    }
                    _ => {
                        if shared.is_some() {
                            self.shared_misses += 1;
                        }
                        collect_child_candidates(
                            g,
                            &self.q,
                            &self.tree,
                            uc,
                            cv,
                            mode,
                            &mut scratch.kids,
                        )
                    }
                };
                let end = scratch.kids.len();
                let mut i = start;
                while i < end {
                    let w = scratch.kids[i];
                    i += 1;
                    self.build_dcg(g, shared, Some(cv), uc, w, scratch);
                }
                scratch.kids.truncate(start);
            }
        }
        // Case 1/2 of Transition 2.
        if self.match_all_children(cv, u) {
            self.dcg.transit(parent, u, cv, Some(EdgeState::Explicit));
        }
    }

    /// `ClearDCG` (Algorithm 10): removes the edge `(parent, u, cv)` and
    /// cascades Transitions 3/5 into the subtree when `cv` loses its last
    /// incoming edge labeled `u`.
    pub(crate) fn clear_dcg(
        &mut self,
        parent: Option<VertexId>,
        u: QVertexId,
        cv: VertexId,
        scratch: &mut SearchScratch,
    ) {
        let old = self.dcg.transit(parent, u, cv, None);
        debug_assert!(old.is_some(), "clear_dcg on a NULL edge");
        if self.dcg.in_count_total(cv, u) == 0 {
            for ci in 0..self.tree.children(u).len() {
                let uc = self.tree.children(u)[ci];
                // Snapshot the out-list into the segmented stack: the
                // recursion removes from the list being iterated.
                let start = scratch.kids.len();
                scratch.kids.extend(self.dcg.out_edge_slice(cv, uc).iter().map(|&(w, _)| w));
                let end = scratch.kids.len();
                let mut i = start;
                while i < end {
                    let w = scratch.kids[i];
                    i += 1;
                    self.clear_dcg(Some(cv), uc, w, scratch);
                }
                scratch.kids.truncate(start);
            }
        }
    }

    /// Reports all matches of the initial data graph (Algorithm 2, lines
    /// 7–11), standalone mode.
    pub fn report_initial(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        let g = std::mem::take(&mut self.g);
        self.initial_matches_in(&g, sink);
        self.g = g;
    }

    /// Reports all matches of the initial data graph against a borrowed
    /// graph (externally driven mode; `g` must be the graph the DCG was
    /// built from). When the explicit root-candidate set is wide enough
    /// the candidates are partitioned across worker threads ([`crate::parallel`]);
    /// emission order is the candidate (= vertex id) order either way.
    pub fn initial_matches_in<G: GraphView>(&mut self, g: &G, sink: &mut dyn FnMut(&MatchRecord)) {
        let us = self.tree.root();
        let ctx = crate::search::SearchCtx::initial();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.kids.clear();
        scratch.kids.extend(
            (0..g.vertex_count() as u32)
                .map(VertexId)
                .filter(|&vs| self.dcg.root_state(vs) == Some(EdgeState::Explicit)),
        );
        let workers = self.intra_workers();
        if workers > 1 && scratch.kids.len() >= self.cfg.parallel_min_frontier {
            let kids = std::mem::take(&mut scratch.kids);
            self.search_chunked_roots(g, &ctx, &kids, &mut scratch, workers, &mut |_p, r| sink(r));
            scratch.kids = kids;
        } else {
            for i in 0..scratch.kids.len() {
                let vs = scratch.kids[i];
                scratch.bind(us, vs);
                self.subgraph_search(g, 0, &ctx, &mut scratch, &mut |_p, r| sink(r));
                scratch.unbind(us);
            }
        }
        scratch.kids.clear();
        self.scratch = scratch;
    }

    /// Applies one update operation to the engine-owned graph, reporting
    /// positive / negative matches (Algorithm 2, lines 12–20). Standalone
    /// mode only — with [`TurboFlux::register`] the caller drives the
    /// `eval_*` methods directly.
    pub fn apply_op(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        match op {
            UpdateOp::AddVertex { .. } => {
                let before = VertexId(self.g.vertex_count() as u32);
                if self.g.apply(op) {
                    let g = std::mem::take(&mut self.g);
                    self.register_new_vertices(&g, before);
                    self.g = g;
                }
            }
            UpdateOp::InsertEdge { src, label, dst } => {
                let before = VertexId(self.g.vertex_count() as u32);
                // Streams normally announce vertices via `AddVertex`;
                // tolerate label-less stragglers by creating empty-labeled
                // endpoints.
                let hi = src.0.max(dst.0);
                if hi >= before.0 {
                    self.g.ensure_vertex(VertexId(hi), LabelSet::empty());
                }
                let inserted = self.g.insert_edge(*src, *label, *dst);
                let g = std::mem::take(&mut self.g);
                self.register_new_vertices(&g, before);
                if inserted {
                    self.eval_inserted_edge(&g, *src, *label, *dst, sink);
                }
                self.g = g;
            }
            UpdateOp::DeleteEdge { src, label, dst } => {
                if self.g.has_edge(*src, *label, *dst) {
                    let g = std::mem::take(&mut self.g);
                    self.eval_deleting_edge(&g, *src, *label, *dst, sink);
                    self.g = g;
                    self.g.delete_edge(*src, *label, *dst);
                }
            }
        }
    }

    /// Registers start candidates for every data vertex with id ≥ `from`
    /// (externally driven mode: the caller grew the graph). A freshly
    /// created vertex matching `u_s` gets an implicit start edge — it
    /// cannot be explicit, since the root of a non-trivial query has
    /// children and a new vertex has no edges.
    pub fn register_new_vertices<G: GraphView>(&mut self, g: &G, from: VertexId) {
        let us = self.tree.root();
        for i in from.0..g.vertex_count() as u32 {
            let v = VertexId(i);
            if self.owns_root(v)
                && self.q.labels(us).is_subset_of(g.labels(v))
                && self.dcg.root_state(v).is_none()
            {
                self.dcg.transit(None, us, v, Some(EdgeState::Implicit));
            }
        }
    }

    /// Total order over query edges used for duplicate-free reporting and
    /// invocation sequencing: tree edges rank by the depth of their child
    /// endpoint (shallow first — a deep edge's path condition can only be
    /// created by builds of shallower edges), ties by id; all non-tree
    /// edges rank above all tree edges.
    #[inline]
    pub(crate) fn edge_order_key(&self, e: EdgeId) -> u32 {
        if self.tree.is_tree_edge(e) {
            let qe = self.q.edge(e);
            let uc = if self.tree.parent_edge(qe.dst) == Some(e) { qe.dst } else { qe.src };
            (self.tree.depth(uc) << 16) | e.0
        } else {
            (1 << 24) | e.0
        }
    }

    /// Fills `scratch.tree_edges` / `scratch.non_tree` with the query edges
    /// matching the data edge `(src, label, dst)`, in processing order
    /// (tree edges by ascending order key, then non-tree edges by ascending
    /// id). Only the label bucket built at registration (plus the
    /// label-wildcard edges) is inspected, not all of `E(q)`.
    pub(crate) fn matching_query_edges<G: GraphView>(
        &self,
        g: &G,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        scratch: &mut SearchScratch,
    ) {
        scratch.tree_edges.clear();
        scratch.non_tree.clear();
        let bucket = self.qedge_by_label.get(&label).map_or(&[][..], Vec::as_slice);
        for &e in bucket.iter().chain(&self.qedge_wildcard) {
            if self.q.edge_matches(g, e, src, label, dst) {
                if self.tree.is_tree_edge(e) {
                    scratch.tree_edges.push(e);
                } else {
                    scratch.non_tree.push(e);
                }
            }
        }
        // Order keys are unique per edge, so the unstable (allocation-free)
        // sorts are deterministic. The non-tree sort restores ascending id
        // order across the bucket/wildcard interleave.
        scratch.tree_edges.sort_unstable_by_key(|&e| self.edge_order_key(e));
        scratch.non_tree.sort_unstable_by_key(|&e| e.0);
    }

    /// For a matching *tree* edge, the (tree-parent-side, child-side) data
    /// vertices and the child query vertex.
    pub(crate) fn orient_tree_edge(
        &self,
        e: EdgeId,
        src: VertexId,
        dst: VertexId,
    ) -> (QVertexId, VertexId, VertexId) {
        let qe = self.q.edge(e);
        // The child endpoint is the one whose parent edge is `e`.
        let (uc, pv, cv) = if self.tree.parent_edge(qe.dst) == Some(e) {
            (qe.dst, src, dst)
        } else {
            debug_assert_eq!(self.tree.parent_edge(qe.src), Some(e));
            (qe.src, dst, src)
        };
        debug_assert_eq!(self.tree.child_is_target(uc), uc == qe.dst);
        (uc, pv, cv)
    }
}

impl ContinuousMatcher for TurboFlux {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        self.report_initial(sink);
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        self.apply_op(op, sink);
    }

    fn intermediate_result_bytes(&self) -> usize {
        self.dcg.resident_bytes()
    }

    fn timed_out(&self) -> bool {
        self.deadline_hit.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "TurboFlux"
    }
}
