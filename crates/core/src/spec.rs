//! A declarative reference implementation of the DCG (§3.1–3.2).
//!
//! The edge transition model (Transitions 0–5 evaluated to a fixpoint by
//! `EL`, Algorithm 1) maintains exactly the edge set characterized by
//! Definitions 4 and 5. This module computes that characterization from
//! scratch:
//!
//! * an edge `(v, u', v')` is **stored** (non-NULL) iff a live data edge
//!   backs it *and* `v` can be reached from a start vertex along backed
//!   edges (`∃ v_s → v.v'` matching `u_s → P(u').u'`);
//! * it is **explicit** iff additionally every child `u''` of `u'` has some
//!   explicit edge `(v', u'', w)` (computed leaf-up; children are strictly
//!   deeper in the query tree, so one reverse-depth pass reaches the
//!   fixpoint).
//!
//! The optimized engine must produce a DCG equal to this reference after
//! every update — the property is exercised by the core test-suite and the
//! cross-crate property tests.

use rustc_hash::FxHashSet;
use std::collections::BTreeMap;
use tfx_graph::{AdjacencyMode, DynamicGraph, VertexId};
use tfx_query::{QueryGraph, QueryTree};

use crate::dcg::EdgeState;
use crate::tree_nav::for_each_child_candidate;

/// A canonical DCG image: `(parent, query vertex, child) → state`, with
/// `None` as the artificial start vertex `v_s*`.
pub type DcgImage = BTreeMap<(Option<VertexId>, u32, VertexId), EdgeState>;

/// Computes the reference DCG of `g` for the query tree `tree` of `q`.
pub fn reference_dcg(g: &DynamicGraph, q: &QueryGraph, tree: &QueryTree) -> DcgImage {
    let nq = q.vertex_count();
    let root = tree.root();

    // Phase 1 (downward): candidate sets = vertices with ≥1 non-NULL
    // incoming edge per query vertex, and the non-NULL edge list.
    let mut cand: Vec<FxHashSet<VertexId>> = vec![FxHashSet::default(); nq];
    for v in g.vertices() {
        if q.labels(root).is_subset_of(g.labels(v)) {
            cand[root.index()].insert(v);
        }
    }
    let mut edges: Vec<(Option<VertexId>, u32, VertexId)> =
        cand[root.index()].iter().map(|&v| (None, root.0, v)).collect();
    for &u in &tree.bfs_order()[1..] {
        let parent = tree.parent(u).expect("non-root");
        let parents: Vec<VertexId> = cand[parent.index()].iter().copied().collect();
        for pv in parents {
            let mut seen = FxHashSet::default();
            // The oracle deliberately uses the flat-scan access path so that
            // checking the engine (which defaults to the indexed path)
            // cross-validates the label-partitioned index against an
            // independent enumeration.
            for_each_child_candidate(g, q, tree, u, pv, AdjacencyMode::FlatScan, &mut |cv| {
                if seen.insert(cv) {
                    edges.push((Some(pv), u.0, cv));
                    cand[u.index()].insert(cv);
                }
            });
        }
    }

    // Phase 2 (upward): explicit iff every child query vertex has an
    // explicit out-edge from the child data vertex. Children are deeper, so
    // processing edges by descending child depth suffices.
    let mut image = DcgImage::new();
    let mut has_expl_out: FxHashSet<(VertexId, u32)> = FxHashSet::default();
    let mut by_depth: Vec<Vec<(Option<VertexId>, u32, VertexId)>> = Vec::new();
    for e in edges {
        let d = tree.depth(tfx_query::QVertexId(e.1)) as usize;
        if by_depth.len() <= d {
            by_depth.resize(d + 1, Vec::new());
        }
        by_depth[d].push(e);
    }
    for level in by_depth.iter().rev() {
        for &(pv, u, cv) in level {
            let uq = tfx_query::QVertexId(u);
            let all_children_explicit =
                tree.children(uq).iter().all(|&uc| has_expl_out.contains(&(cv, uc.0)));
            let st = if all_children_explicit {
                if let Some(p) = pv {
                    has_expl_out.insert((p, u));
                }
                EdgeState::Explicit
            } else {
                EdgeState::Implicit
            };
            image.insert((pv, u, cv), st);
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{GraphStats, LabelId, LabelSet};
    use tfx_query::QVertexId;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// The paper's Figure 4 query: u0:A -> u1:B -> u4:E, u0 -> u2:C -> u5:D,
    /// u0 -> u3:C. Data (Fig. 4a, g0): v0:A -> v2:C -> v6:D, v0 -> v3:C,
    /// v1:A -> v4:E... simplified to the initial snapshot (Fig. 4c):
    /// v0:A, v1:B, v2:C, v3:C, v4:E, v6:D with edges v0->v2, v2->v6, v0->v3,
    /// v1->v4 (v0->v1 is the edge inserted later).
    fn fig4() -> (DynamicGraph, QueryGraph, QueryTree) {
        let mut g = DynamicGraph::new();
        let v0 = g.add_vertex(LabelSet::single(l(0))); // A
        let v1 = g.add_vertex(LabelSet::single(l(1))); // B
        let v2 = g.add_vertex(LabelSet::single(l(2))); // C
        let v3 = g.add_vertex(LabelSet::single(l(2))); // C
        let v4 = g.add_vertex(LabelSet::single(l(4))); // E
        let _v5 = g.add_vertex(LabelSet::empty());
        let v6 = g.add_vertex(LabelSet::single(l(3))); // D
        g.insert_edge(v0, l(9), v2);
        g.insert_edge(v2, l(9), v6);
        g.insert_edge(v0, l(9), v3);
        g.insert_edge(v1, l(9), v4);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0))); // A
        let u1 = q.add_vertex(LabelSet::single(l(1))); // B
        let u2 = q.add_vertex(LabelSet::single(l(2))); // C
        let u3 = q.add_vertex(LabelSet::single(l(2))); // C
        let u4 = q.add_vertex(LabelSet::single(l(4))); // E
        let u5 = q.add_vertex(LabelSet::single(l(3))); // D
        q.add_edge(u0, u1, Some(l(9)));
        q.add_edge(u0, u2, Some(l(9)));
        q.add_edge(u0, u3, Some(l(9)));
        q.add_edge(u1, u4, Some(l(9)));
        q.add_edge(u2, u5, Some(l(9)));
        let stats = GraphStats::new(&g);
        let tree = QueryTree::build(&q, u0, &stats);
        (g, q, tree)
    }

    #[test]
    fn fig4_initial_dcg_states() {
        let (g, q, tree) = fig4();
        let image = reference_dcg(&g, &q, &tree);
        let v = VertexId;
        // v0 is a start candidate: root edge implicit (u1 branch unmatched).
        assert_eq!(image.get(&(None, 0, v(0))), Some(&EdgeState::Implicit));
        // (v0, u2, v2) explicit: subtree u5 matched by v6.
        assert_eq!(image.get(&(Some(v(0)), 2, v(2))), Some(&EdgeState::Explicit));
        assert_eq!(image.get(&(Some(v(2)), 5, v(6))), Some(&EdgeState::Explicit));
        // (v0, u3, v3) explicit (u3 is a leaf), and v3 also matches u2 but
        // has no D child so (v0, u2, v3) is implicit.
        assert_eq!(image.get(&(Some(v(0)), 3, v(3))), Some(&EdgeState::Explicit));
        assert_eq!(image.get(&(Some(v(0)), 2, v(3))), Some(&EdgeState::Implicit));
        assert_eq!(image.get(&(Some(v(0)), 3, v(2))), Some(&EdgeState::Explicit));
        // v1 matches B but is not reachable from a start vertex: no edge
        // (v1, u4, v4) and no root edge for v1.
        assert_eq!(image.get(&(Some(v(1)), 4, v(4))), None);
        assert_eq!(image.get(&(None, 0, v(1))), None);
    }

    #[test]
    fn fig4_after_insertion_becomes_explicit() {
        let (mut g, q, tree) = fig4();
        // Insert (v0, v1): the Figure 4b update.
        g.insert_edge(VertexId(0), l(9), VertexId(1));
        let image = reference_dcg(&g, &q, &tree);
        let v = VertexId;
        assert_eq!(image.get(&(Some(v(0)), 1, v(1))), Some(&EdgeState::Explicit));
        assert_eq!(image.get(&(Some(v(1)), 4, v(4))), Some(&EdgeState::Explicit));
        // Root edge of v0 is now explicit: all three branches matched.
        assert_eq!(image.get(&(None, 0, v(0))), Some(&EdgeState::Explicit));
    }

    #[test]
    fn empty_graph_empty_dcg() {
        let (_, q, _) = fig4();
        let g = DynamicGraph::new();
        let stats = GraphStats::new(&g);
        let tree = QueryTree::build(&q, QVertexId(0), &stats);
        assert!(reference_dcg(&g, &q, &tree).is_empty());
    }
}
