//! Engine correctness tests: the paper's running example (Figure 4),
//! DCG-vs-reference equivalence, and randomized oracle cross-checks against
//! a full-recompute matcher.

use crate::config::TurboFluxConfig;
use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::spec::reference_dcg;
use rustc_hash::FxHashSet;
use tfx_graph::{DynamicGraph, LabelId, LabelSet, UpdateOp, VertexId};
use tfx_query::{ContinuousMatcher, MatchRecord, MatchSemantics, Positiveness, QueryGraph};

fn l(i: u32) -> LabelId {
    LabelId(i)
}

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// A tiny deterministic xorshift generator for the randomized tests.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Figure 4 of the paper: query u0:A -> {u1:B, u2:C, u3:C}, u1 -> u4:E,
/// u2 -> u5:D; initial data v0:A -> v2:C -> v6:D, v0 -> v3:C, v1:B -> v4:E.
fn fig4() -> (DynamicGraph, QueryGraph) {
    let mut g = DynamicGraph::new();
    let v0 = g.add_vertex(LabelSet::single(l(0))); // A
    let v1 = g.add_vertex(LabelSet::single(l(1))); // B
    let v2 = g.add_vertex(LabelSet::single(l(2))); // C
    let v3 = g.add_vertex(LabelSet::single(l(2))); // C
    let v4 = g.add_vertex(LabelSet::single(l(4))); // E
    let v6 = g.add_vertex(LabelSet::single(l(3))); // D
    g.insert_edge(v0, l(9), v2);
    g.insert_edge(v2, l(9), v6);
    g.insert_edge(v0, l(9), v3);
    g.insert_edge(v1, l(9), v4);
    // Extra disconnected B->E and C->D pairs keep (u1,u4) and (u2,u5)
    // unselective so the start vertex is u0, matching the paper's
    // narration of Figure 4. They are unreachable from any start vertex
    // and never enter the DCG.
    for _ in 0..3 {
        let b = g.add_vertex(LabelSet::single(l(1)));
        let e = g.add_vertex(LabelSet::single(l(4)));
        g.insert_edge(b, l(9), e);
        let c = g.add_vertex(LabelSet::single(l(2)));
        let dd = g.add_vertex(LabelSet::single(l(3)));
        g.insert_edge(c, l(9), dd);
    }

    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(l(0))); // A
    let u1 = q.add_vertex(LabelSet::single(l(1))); // B
    let u2 = q.add_vertex(LabelSet::single(l(2))); // C
    let u3 = q.add_vertex(LabelSet::single(l(2))); // C
    let u4 = q.add_vertex(LabelSet::single(l(4))); // E
    let u5 = q.add_vertex(LabelSet::single(l(3))); // D
    q.add_edge(u0, u1, Some(l(9)));
    q.add_edge(u0, u2, Some(l(9)));
    q.add_edge(u0, u3, Some(l(9)));
    q.add_edge(u1, u4, Some(l(9)));
    q.add_edge(u2, u5, Some(l(9)));
    (g, q)
}

fn assert_dcg_matches_reference(engine: &TurboFlux) {
    engine.dcg().check_consistency();
    let got = engine.dcg().snapshot();
    let want = reference_dcg(engine.graph(), engine.query(), engine.query_tree());
    assert_eq!(got, want, "engine DCG diverged from the declarative reference");
}

#[test]
fn fig4_initial_dcg_and_no_initial_matches() {
    let (g, q) = fig4();
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    assert_dcg_matches_reference(&engine);
    // v1 (B) is not reachable from a start vertex, so (v1, u4) must not be
    // stored; root edge of v0 is implicit (u1 branch unmatched).
    assert_eq!(engine.dcg().root_state(v(0)), Some(EdgeState::Implicit));
    let mut initial = Vec::new();
    engine.initial_matches(&mut |m| initial.push(m.clone()));
    assert!(initial.is_empty(), "Figure 4's g0 has no complete match");
}

#[test]
fn fig4_insertion_reports_the_positive_match() {
    let (g, q) = fig4();
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let mut reports = Vec::new();
    engine.apply(&UpdateOp::InsertEdge { src: v(0), label: l(9), dst: v(1) }, &mut |p, m| {
        reports.push((p, m.clone()))
    });
    assert_dcg_matches_reference(&engine);
    assert_eq!(engine.dcg().root_state(v(0)), Some(EdgeState::Explicit), "Fig. 4h");
    // u3 is a leaf C and may map to either v2 or v3, so the insertion
    // produces exactly two positive matches; u2 needs a D child and is
    // pinned to v2.
    assert_eq!(reports.len(), 2);
    for (p, m) in &reports {
        assert_eq!(*p, Positiveness::Positive);
        assert_eq!(m.get(tfx_query::QVertexId(0)), v(0));
        assert_eq!(m.get(tfx_query::QVertexId(1)), v(1));
        assert_eq!(m.get(tfx_query::QVertexId(2)), v(2));
        assert_eq!(m.get(tfx_query::QVertexId(4)), v(4));
        assert_eq!(m.get(tfx_query::QVertexId(5)), v(5));
    }
}

#[test]
fn fig4_insert_then_delete_roundtrip() {
    let (g, q) = fig4();
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let before = engine.dcg().snapshot();
    let op_in = UpdateOp::InsertEdge { src: v(0), label: l(9), dst: v(1) };
    let op_del = UpdateOp::DeleteEdge { src: v(0), label: l(9), dst: v(1) };
    let mut pos = Vec::new();
    engine.apply(&op_in, &mut |p, m| pos.push((p, m.clone())));
    let mut neg = Vec::new();
    engine.apply(&op_del, &mut |p, m| neg.push((p, m.clone())));
    assert_dcg_matches_reference(&engine);
    assert_eq!(engine.dcg().snapshot(), before, "DCG must return to its pre-insert state");
    // Every positive must come back as the corresponding negative.
    let pset: FxHashSet<MatchRecord> = pos.into_iter().map(|(_, m)| m).collect();
    let nset: FxHashSet<MatchRecord> = neg
        .into_iter()
        .map(|(p, m)| {
            assert_eq!(p, Positiveness::Negative);
            m
        })
        .collect();
    assert_eq!(pset, nset);
}

/// Fig. 4's inserted edge yields matches with u3 free over both C vertices
/// that satisfy u3's (empty) subtree: v2 and v3.
#[test]
fn fig4_positive_match_count_is_exact() {
    let (mut g, q) = fig4();
    // Oracle: count matches after insertion.
    g.insert_edge(v(0), l(9), v(1));
    let after = tfx_match::count_matches(&g, &q, MatchSemantics::Homomorphism);
    g.delete_edge(v(0), l(9), v(1));
    let before = tfx_match::count_matches(&g, &q, MatchSemantics::Homomorphism);

    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let mut n = 0u64;
    engine.apply(&UpdateOp::InsertEdge { src: v(0), label: l(9), dst: v(1) }, &mut |_, _| n += 1);
    assert_eq!(n, after - before);
}

// ---------------------------------------------------------------------------
// Randomized oracle cross-checks.
// ---------------------------------------------------------------------------

struct RandomCase {
    g0: DynamicGraph,
    q: QueryGraph,
    ops: Vec<UpdateOp>,
}

/// Random small dynamic graph + random connected query (optionally cyclic).
fn random_case(rng: &mut Rng, cyclic: bool) -> RandomCase {
    let n_vlabels = 2 + rng.below(2); // 2..=3
    let n_elabels = 1 + rng.below(2); // 1..=2
    let n_vertices = 5 + rng.below(5); // 5..=9

    let mut g0 = DynamicGraph::new();
    for _ in 0..n_vertices {
        // ~20% unlabeled vertices exercise wildcard matching.
        let labels = if rng.below(5) == 0 {
            LabelSet::empty()
        } else {
            LabelSet::single(l(rng.below(n_vlabels) as u32))
        };
        g0.add_vertex(labels);
    }
    let n_edges = 6 + rng.below(8);
    for _ in 0..n_edges {
        let s = v(rng.below(n_vertices) as u32);
        let d = v(rng.below(n_vertices) as u32);
        g0.insert_edge(s, l(10 + rng.below(n_elabels) as u32), d);
    }

    // Random connected query: spanning construction over 3..=5 vertices.
    let nq = 3 + rng.below(3);
    let mut q = QueryGraph::new();
    for _ in 0..nq {
        let labels = if rng.below(4) == 0 {
            LabelSet::empty()
        } else {
            LabelSet::single(l(rng.below(n_vlabels) as u32))
        };
        q.add_vertex(labels);
    }
    for i in 1..nq as u32 {
        let other = rng.below(i as usize) as u32;
        let (s, d) = if rng.below(2) == 0 { (other, i) } else { (i, other) };
        let label =
            if rng.below(5) == 0 { None } else { Some(l(10 + rng.below(n_elabels) as u32)) };
        q.add_edge(tfx_query::QVertexId(s), tfx_query::QVertexId(d), label);
    }
    if cyclic {
        // Add 1..=2 extra edges (may duplicate direction between pairs).
        for _ in 0..(1 + rng.below(2)) {
            let a = rng.below(nq) as u32;
            let b = rng.below(nq) as u32;
            let label =
                if rng.below(5) == 0 { None } else { Some(l(10 + rng.below(n_elabels) as u32)) };
            let (s, d) = (tfx_query::QVertexId(a), tfx_query::QVertexId(b));
            if !q.edges().iter().any(|e| e.src == s && e.dst == d && e.label == label) {
                q.add_edge(s, d, label);
            }
        }
    }

    // Random op stream: inserts, deletes, occasional new vertices.
    let mut ops = Vec::new();
    let mut live: Vec<(VertexId, LabelId, VertexId)> =
        g0.edges().map(|e| (e.src, e.label, e.dst)).collect();
    let mut vcount = n_vertices as u32;
    for _ in 0..40 {
        let roll = rng.below(10);
        if roll == 0 {
            let labels = LabelSet::single(l(rng.below(n_vlabels) as u32));
            ops.push(UpdateOp::AddVertex { id: v(vcount), labels });
            vcount += 1;
        } else if roll < 4 && !live.is_empty() {
            let i = rng.below(live.len());
            let (s, lb, d) = live.swap_remove(i);
            ops.push(UpdateOp::DeleteEdge { src: s, label: lb, dst: d });
        } else {
            let s = v(rng.below(vcount as usize) as u32);
            let d = v(rng.below(vcount as usize) as u32);
            let lb = l(10 + rng.below(n_elabels) as u32);
            if !live.contains(&(s, lb, d)) {
                live.push((s, lb, d));
                ops.push(UpdateOp::InsertEdge { src: s, label: lb, dst: d });
            }
        }
    }
    RandomCase { g0, q, ops }
}

fn run_oracle_case(case: &RandomCase, semantics: MatchSemantics, check_dcg: bool) {
    let cfg = TurboFluxConfig::with_semantics(semantics);
    let mut engine = TurboFlux::new(case.q.clone(), case.g0.clone(), cfg);
    let mut shadow = case.g0.clone();

    // Initial matches must equal the static matcher's result.
    let mut initial: FxHashSet<MatchRecord> = FxHashSet::default();
    engine.initial_matches(&mut |m| {
        assert!(initial.insert(m.clone()), "duplicate initial match {m:?}");
    });
    assert_eq!(
        initial,
        tfx_match::match_set(&shadow, &case.q, semantics),
        "initial matches diverge"
    );

    for (step, op) in case.ops.iter().enumerate() {
        let before = tfx_match::match_set(&shadow, &case.q, semantics);
        shadow.apply(op);
        let after = tfx_match::match_set(&shadow, &case.q, semantics);
        let want_pos: FxHashSet<_> = after.difference(&before).cloned().collect();
        let want_neg: FxHashSet<_> = before.difference(&after).cloned().collect();

        let mut got_pos: FxHashSet<MatchRecord> = FxHashSet::default();
        let mut got_neg: FxHashSet<MatchRecord> = FxHashSet::default();
        engine.apply(op, &mut |p, m| {
            let fresh = match p {
                Positiveness::Positive => got_pos.insert(m.clone()),
                Positiveness::Negative => got_neg.insert(m.clone()),
            };
            assert!(fresh, "duplicate report at step {step}: {m:?} ({op:?})");
        });
        assert_eq!(got_pos, want_pos, "positives diverge at step {step} ({op:?})");
        assert_eq!(got_neg, want_neg, "negatives diverge at step {step} ({op:?})");
        if check_dcg {
            assert_dcg_matches_reference(&engine);
        }
    }
}

#[test]
fn randomized_tree_queries_match_oracle_homomorphism() {
    let mut rng = Rng::new(0xC0FFEE);
    for case_no in 0..60 {
        let case = random_case(&mut rng, false);
        let _ = case_no;
        run_oracle_case(&case, MatchSemantics::Homomorphism, true);
    }
}

#[test]
fn randomized_cyclic_queries_match_oracle_homomorphism() {
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..60 {
        let case = random_case(&mut rng, true);
        run_oracle_case(&case, MatchSemantics::Homomorphism, true);
    }
}

#[test]
fn randomized_tree_queries_match_oracle_isomorphism() {
    let mut rng = Rng::new(0xF00D);
    for _ in 0..40 {
        let case = random_case(&mut rng, false);
        run_oracle_case(&case, MatchSemantics::Isomorphism, false);
    }
}

#[test]
fn randomized_cyclic_queries_match_oracle_isomorphism() {
    let mut rng = Rng::new(0xABCD);
    for _ in 0..40 {
        let case = random_case(&mut rng, true);
        run_oracle_case(&case, MatchSemantics::Isomorphism, false);
    }
}

#[test]
fn matching_order_has_parents_before_children() {
    let (g, q) = fig4();
    let engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let mo = engine.matching_order();
    assert_eq!(mo.len(), engine.query().vertex_count());
    let pos: Vec<usize> = {
        let mut p = vec![0; mo.len()];
        for (i, u) in mo.iter().enumerate() {
            p[u.index()] = i;
        }
        p
    };
    for u in engine.query().vertices() {
        if let Some(par) = engine.query_tree().parent(u) {
            assert!(pos[par.index()] < pos[u.index()], "{par:?} must precede {u:?}");
        }
    }
}

#[test]
fn duplicate_edge_insert_is_a_no_op() {
    let (g, q) = fig4();
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let op = UpdateOp::InsertEdge { src: v(0), label: l(9), dst: v(2) }; // already present
    let mut n = 0;
    engine.apply(&op, &mut |_, _| n += 1);
    assert_eq!(n, 0);
    assert_dcg_matches_reference(&engine);
}

#[test]
fn delete_of_absent_edge_is_a_no_op() {
    let (g, q) = fig4();
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let op = UpdateOp::DeleteEdge { src: v(0), label: l(9), dst: v(4) };
    let mut n = 0;
    engine.apply(&op, &mut |_, _| n += 1);
    assert_eq!(n, 0);
    assert_dcg_matches_reference(&engine);
}

#[test]
fn new_vertex_becomes_start_candidate() {
    let (g, q) = fig4();
    let nv = v(g.vertex_count() as u32);
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    engine.apply(&UpdateOp::AddVertex { id: nv, labels: LabelSet::single(l(0)) }, &mut |_, _| {
        panic!("vertex arrival cannot create matches")
    });
    assert_eq!(engine.dcg().root_state(nv), Some(EdgeState::Implicit));
    assert_dcg_matches_reference(&engine);
}

#[test]
fn intermediate_bytes_grow_and_shrink() {
    let (g, q) = fig4();
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let b0 = engine.intermediate_result_bytes();
    assert!(b0 > 0);
    let ins = UpdateOp::InsertEdge { src: v(0), label: l(9), dst: v(1) };
    let del = UpdateOp::DeleteEdge { src: v(0), label: l(9), dst: v(1) };
    engine.apply(&ins, &mut |_, _| {});
    let grown = engine.intermediate_result_bytes();
    assert!(grown > b0, "insertion must grow the intermediate results");
    engine.apply(&del, &mut |_, _| {});
    let warm = engine.intermediate_result_bytes();
    // `resident_bytes` is capacity-accounted (reserved memory), so the
    // fixpoint of a self-inverting cycle is the warmed state, not the
    // freshly built engine: replaying the cycle must restore both the
    // peak and the trough exactly (anything else is a storage leak).
    engine.apply(&ins, &mut |_, _| {});
    assert_eq!(engine.intermediate_result_bytes(), grown, "warm cycle peak is stable");
    engine.apply(&del, &mut |_, _| {});
    assert_eq!(engine.intermediate_result_bytes(), warm, "warm cycle trough is stable");
}

#[test]
#[ignore]
fn debug_cyclic_failure() {
    let mut rng = Rng::new(0xBEEF);
    for case_no in 0..60 {
        let case = random_case(&mut rng, true);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_oracle_case(&case, MatchSemantics::Homomorphism, true);
        }));
        if result.is_err() {
            eprintln!("=== failing case {case_no} ===");
            eprintln!("query vertices:");
            for u in case.q.vertices() {
                eprintln!("  {u:?}: {:?}", case.q.labels(u));
            }
            eprintln!("query edges:");
            for (i, e) in case.q.edges().iter().enumerate() {
                eprintln!("  e{i}: {:?} -> {:?} label {:?}", e.src, e.dst, e.label);
            }
            eprintln!("g0 vertices: {}", case.g0.vertex_count());
            for v in case.g0.vertices() {
                eprintln!("  {v:?}: {:?}", case.g0.labels(v));
            }
            let mut es: Vec<_> = case.g0.edges().collect();
            es.sort();
            eprintln!("g0 edges: {es:?}");
            eprintln!("ops: {:?}", case.ops);
            panic!("case {case_no} failed");
        }
    }
}

/// The matching order must react to DCG statistics: a branch that fans out
/// widely in the data should be visited late.
#[test]
fn matching_order_visits_wide_branches_late() {
    // Query: root A with two children B (narrow) and C (wide).
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(l(0)));
    let u1 = q.add_vertex(LabelSet::single(l(1)));
    let u2 = q.add_vertex(LabelSet::single(l(2)));
    q.add_edge(u0, u1, Some(l(9)));
    q.add_edge(u0, u2, Some(l(9)));

    let mut g = DynamicGraph::new();
    let a = g.add_vertex(LabelSet::single(l(0)));
    let b = g.add_vertex(LabelSet::single(l(1)));
    g.insert_edge(a, l(9), b);
    for _ in 0..20 {
        let c = g.add_vertex(LabelSet::single(l(2)));
        g.insert_edge(a, l(9), c);
    }
    // Ensure u0 is the start vertex: one A vs many others.
    let engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    let mo = engine.matching_order();
    assert_eq!(mo[0], engine.query_tree().root());
    if engine.query_tree().root() == tfx_query::QVertexId(0) {
        // With 1 explicit B-edge and 20 explicit C-edges, C must come last.
        assert_eq!(mo[2], tfx_query::QVertexId(2), "wide branch ordered last: {mo:?}");
    }
}

/// AdjustMatchingOrder must leave reported matches untouched while the
/// stream shifts the label statistics (order affects speed, never results).
#[test]
fn order_adjustment_never_changes_results() {
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(l(0)));
    let u1 = q.add_vertex(LabelSet::single(l(1)));
    let u2 = q.add_vertex(LabelSet::single(l(2)));
    q.add_edge(u0, u1, Some(l(9)));
    q.add_edge(u0, u2, Some(l(9)));

    let mut g = DynamicGraph::new();
    let a = g.add_vertex(LabelSet::single(l(0)));
    for i in 0..40 {
        g.add_vertex(LabelSet::single(l(1 + i % 2)));
    }
    let ops: Vec<UpdateOp> =
        (1..=40u32).map(|i| UpdateOp::InsertEdge { src: a, label: l(9), dst: v(i) }).collect();

    let adj = TurboFluxConfig { order_drift_floor: 1, ..TurboFluxConfig::default() };
    let fixed = TurboFluxConfig { adjust_matching_order: false, ..TurboFluxConfig::default() };
    let mut with_adjust = TurboFlux::new(q.clone(), g.clone(), adj);
    let mut without = TurboFlux::new(q, g, fixed);
    let initial_order = without.matching_order().to_vec();
    let (mut n1, mut n2) = (0u64, 0u64);
    for op in &ops {
        with_adjust.apply(op, &mut |_, _| n1 += 1);
        without.apply(op, &mut |_, _| n2 += 1);
    }
    assert_eq!(n1, n2, "order maintenance must not change results");
    assert_eq!(without.matching_order(), &initial_order[..], "static order stays put");
    assert_dcg_matches_reference(&with_adjust);
    assert_dcg_matches_reference(&without);
}

/// The TurboFlux deadline latches and stops enumeration without corrupting
/// the DCG.
#[test]
fn deadline_stops_enumeration_but_keeps_dcg_consistent() {
    let (g, q) = fig4();
    let mut engine = TurboFlux::new(q, g, TurboFluxConfig::default());
    engine.set_deadline(Some(std::time::Instant::now() - std::time::Duration::from_secs(1)));
    // Force a deadline check cheaply by applying an op: the first search
    // call probes the clock after the tick countdown; with an already-past
    // deadline the engine may still report a few matches but must latch
    // eventually and keep the DCG transition-closed.
    engine.apply(&UpdateOp::InsertEdge { src: v(0), label: l(9), dst: v(1) }, &mut |_, _| {});
    engine.dcg().check_consistency();
    let want = crate::spec::reference_dcg(engine.graph(), engine.query(), engine.query_tree());
    assert_eq!(engine.dcg().snapshot(), want, "DCG stays closed under deadline aborts");
    // Clearing the deadline resumes normal operation.
    engine.set_deadline(None);
    let mut n = 0;
    engine.apply(&UpdateOp::DeleteEdge { src: v(0), label: l(9), dst: v(1) }, &mut |_, _| n += 1);
    assert_eq!(n, 2, "negatives reported once the deadline is lifted");
}

/// Intra-update parallel enumeration must emit the exact delta sequence of
/// the sequential path — same records, same order, for every update of a
/// randomized stream (the dedicated integration oracle lives in
/// `tests/parallel_eval_equivalence.rs`; this is the in-crate smoke check).
#[test]
fn parallel_evaluation_is_byte_identical_to_sequential() {
    let mut rng = Rng::new(0x9A11E1);
    for _ in 0..15 {
        let case = random_case(&mut rng, true);
        for semantics in [MatchSemantics::Homomorphism, MatchSemantics::Isomorphism] {
            let par_cfg = TurboFluxConfig {
                parallel_workers: 4,
                parallel_min_frontier: 1, // fan out even tiny frontiers
                ..TurboFluxConfig::with_semantics(semantics)
            };
            let seq_cfg = TurboFluxConfig {
                parallel_workers: 1,
                ..TurboFluxConfig::with_semantics(semantics)
            };
            let mut par = TurboFlux::new(case.q.clone(), case.g0.clone(), par_cfg);
            let mut seq = TurboFlux::new(case.q.clone(), case.g0.clone(), seq_cfg);
            let run = |engine: &mut TurboFlux| {
                let mut out: Vec<(Positiveness, MatchRecord)> = Vec::new();
                engine.initial_matches(&mut |m| out.push((Positiveness::Positive, m.clone())));
                for op in &case.ops {
                    engine.apply(op, &mut |p, m| out.push((p, m.clone())));
                }
                out
            };
            assert_eq!(run(&mut par), run(&mut seq), "parallel deltas diverge ({semantics:?})");
        }
    }
}

/// The fleet-facing worker budget clamps the configured intra-update
/// parallelism (and auto mode resolves to at least one worker).
#[test]
fn worker_budget_clamps_intra_workers() {
    let (g, q) = fig4();
    let cfg = TurboFluxConfig { parallel_workers: 8, ..TurboFluxConfig::default() };
    let mut engine = TurboFlux::new(q, g, cfg);
    assert_eq!(engine.intra_workers(), 8);
    engine.set_worker_budget(3);
    assert_eq!(engine.intra_workers(), 3);
    engine.set_worker_budget(0); // clamped to ≥ 1
    assert_eq!(engine.intra_workers(), 1);
    engine.set_worker_budget(usize::MAX);
    assert_eq!(engine.intra_workers(), 8);
}

/// The label-bucketed query-edge index must agree with a full scan over
/// `E(q)` for every update of a randomized stream (including wildcard
/// edges, which live outside the buckets).
#[test]
fn query_edge_index_matches_full_scan() {
    let mut rng = Rng::new(0x1DE4);
    for _ in 0..25 {
        let case = random_case(&mut rng, true);
        let mut engine =
            TurboFlux::new(case.q.clone(), case.g0.clone(), TurboFluxConfig::default());
        let mut shadow = case.g0.clone();
        for op in &case.ops {
            shadow.apply(op);
            let UpdateOp::InsertEdge { src, label, dst } = *op else {
                engine.apply(op, &mut |_, _| {});
                continue;
            };
            let mut scratch =
                crate::scratch::SearchScratch::for_query(engine.query().vertex_count(), false);
            engine.matching_query_edges(&shadow, src, label, dst, &mut scratch);
            // Reference: scan every query edge, in the same processing order.
            let mut want_tree = Vec::new();
            let mut want_non_tree = Vec::new();
            for i in 0..engine.query().edge_count() {
                let e = tfx_query::EdgeId(i as u32);
                if engine.query().edge_matches(&shadow, e, src, label, dst) {
                    if engine.query_tree().is_tree_edge(e) {
                        want_tree.push(e);
                    } else {
                        want_non_tree.push(e);
                    }
                }
            }
            want_tree.sort_unstable_by_key(|&e| engine.edge_order_key(e));
            assert_eq!(scratch.tree_edges, want_tree, "tree buckets diverge");
            assert_eq!(scratch.non_tree, want_non_tree, "non-tree buckets diverge");
            engine.apply(op, &mut |_, _| {});
        }
    }
}
