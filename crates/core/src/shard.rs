//! Sharded execution runtime: hash-partitioned graph slices, per-shard
//! DCG slices, and a deterministic cross-shard delta merge.
//!
//! # Architecture
//!
//! Data-graph vertices are hash-partitioned by [`tfx_graph::shard_of`]
//! across [`crate::TurboFluxConfig::shards`] worker shards. Partition
//! ownership governs two things at once:
//!
//! * **Graph storage** ([`ShardedGraph`]): an edge lives in owner(src)'s
//!   slice and is mirrored into owner(dst)'s slice when the endpoints hash
//!   apart — so each slice can answer every adjacency question about its
//!   own vertices, and the [`tfx_graph::ShardView`] routing view is
//!   read-for-read equivalent to the unsharded graph.
//! * **Root-candidate ownership**: shard `s` registers start candidates
//!   only for the data vertices it owns
//!   ([`TurboFlux::register_partitioned`]). Since every DCG edge hangs off
//!   exactly one root candidate's downward closure, the per-shard DCG
//!   slices partition the global DCG's *emissions* — each complete match
//!   is enumerated by exactly one shard, the owner of its root binding —
//!   while interior DCG state below shared subtrees is replicated only
//!   where closures overlap.
//!
//! # Per-op protocol
//!
//! Each update op is staged once by the driver (routing the edge to
//! owner(src), delivering the mirror to owner(dst)'s inbox when the edge
//! crosses shards), then a *seed plan* — the ordered list of matching
//! query-edge invocations, computed once per (op, query) against the
//! shared routing view — is delivered to every shard's inbox. Long-lived
//! `std::thread::scope` workers drain their inboxes to fixpoint (the plan
//! is closed under one delivery round, so the fixpoint is bounded per
//! op), running each invocation against their partition slice with the
//! exact per-invocation routines the unsharded loops use
//! ([`TurboFlux::insert_tree_invocation`] and friends).
//!
//! # Determinism
//!
//! Every emission is tagged `(query, op_index, invocation, climb-chain)`
//! where the climb-chain is the match's binding sequence from the
//! invocation's start query vertex up to the tree root. Within one
//! invocation a shard enumerates its chains in lexicographic order (DCG
//! runs are sorted, the climb is a DFS over sorted parent lists), chains
//! partition across shards by root owner, and a stable merge sorts the
//! per-shard buffers into the exact global DFS order — so output is
//! **byte-identical to the unsharded engine for any shard count**.
//! Matching-order adjustment is pinned off in sharded mode (per-slice DCG
//! statistics would drift apart); the equivalence target is the unsharded
//! engine with the same static order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use tfx_graph::{DynamicGraph, GraphView, LabelId, LabelSet, ShardedGraph, UpdateOp, VertexId};
use tfx_query::{EdgeId, MatchRecord, Positiveness, QVertexId, QueryGraph};

use crate::config::TurboFluxConfig;
use crate::engine::TurboFlux;
use crate::shared_subtree::FleetCtx;

/// Counters describing the sharded runtime's routing and handoff traffic,
/// mirroring the shape of [`crate::FleetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Edge ops routed to their primary (owner-of-src) shard.
    pub ops_routed: u64,
    /// Applied edge ops whose endpoints hash to different shards (each one
    /// maintains a mirror copy in the dst-owner's slice).
    pub cross_shard_edges: u64,
    /// Inbox deliveries to non-primary shards: mirror deliveries for
    /// cross-shard edges plus seed-plan deliveries to every shard other
    /// than owner(src).
    pub handoffs: u64,
    /// Largest per-shard inbox observed for a single op (mirrors + seeds
    /// drained to fixpoint before the op finalizes).
    pub inbox_high_water: u64,
}

/// One planned invocation of `InsertEdgeAndEval` / `DeleteEdgeAndEval`:
/// the matching query edge, whether it is a tree edge, and its position in
/// the unsharded processing order (tree edges first, then non-tree).
#[derive(Clone, Copy, Debug)]
struct Seed {
    e: EdgeId,
    tree: bool,
    inv: u32,
}

/// Per-op evaluation plan, staged once by the driver (see
/// [`crate::fleet`] — same discipline, minus the shared index).
#[derive(Clone, Copy, Debug)]
enum Round {
    Skip,
    Register { from: VertexId },
    Insert { from: VertexId, src: VertexId, label: LabelId, dst: VertexId },
    Delete { src: VertexId, label: LabelId, dst: VertexId },
}

/// A buffered, merge-tagged match emission.
struct Pending {
    query: u32,
    op_index: u32,
    inv: u32,
    chain: Vec<VertexId>,
    p: Positiveness,
    rec: MatchRecord,
}

impl TurboFlux {
    /// The ordered invocation plan for the data edge `(src, label, dst)`:
    /// exactly the tree-then-non-tree sequence
    /// [`TurboFlux::matching_query_edges`] produces, with explicit
    /// invocation indices. Computed once per (op, query) by the sharded
    /// driver and delivered to every shard's inbox; identical on every
    /// shard because query structure and vertex labels are replicated.
    fn plan_seeds_into<G: GraphView>(
        &self,
        g: &G,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        out: &mut Vec<Seed>,
    ) {
        out.clear();
        let bucket = self.qedge_by_label.get(&label).map_or(&[][..], Vec::as_slice);
        for &e in bucket.iter().chain(&self.qedge_wildcard) {
            if self.q.edge_matches(g, e, src, label, dst) {
                out.push(Seed { e, tree: self.tree.is_tree_edge(e), inv: 0 });
            }
        }
        out.sort_unstable_by(|a, b| match (a.tree, b.tree) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (true, true) => self.edge_order_key(a.e).cmp(&self.edge_order_key(b.e)),
            (false, false) => a.e.0.cmp(&b.e.0),
        });
        for (i, s) in out.iter_mut().enumerate() {
            s.inv = i as u32;
        }
    }

    /// The query vertex a seed's upward climb starts from; the emission
    /// chain is the match's bindings from here to the tree root.
    fn seed_start(&self, seed: &Seed, src: VertexId, dst: VertexId) -> QVertexId {
        if seed.tree {
            let (uc, _, _) = self.orient_tree_edge(seed.e, src, dst);
            self.tree.parent(uc).expect("tree edge child has a parent")
        } else {
            self.q.edge(seed.e).src
        }
    }

    /// Runs one planned invocation against this engine's slice, tagging
    /// every emission with its merge key.
    #[allow(clippy::too_many_arguments)]
    fn run_seed<G: GraphView>(
        &mut self,
        g: &G,
        seed: &Seed,
        insert: bool,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        query: u32,
        op_index: u32,
        buf: &mut Vec<Pending>,
    ) {
        // The climb path `start_u → root` as query vertices, precomputed so
        // the tagging sink only captures a plain vector, not the engine.
        let path = {
            let mut path = Vec::new();
            let mut u = self.seed_start(seed, src, dst);
            loop {
                path.push(u);
                match self.tree.parent(u) {
                    Some(p) => u = p,
                    None => break,
                }
            }
            path
        };
        // The chain — the match's bindings along the climb path — is
        // the merge key discriminator: within one invocation a shard
        // emits chains in ascending lexicographic order, and distinct
        // shards never produce the same chain (its last element is the
        // root binding, owned by exactly one shard).
        let mut sink = |p: Positiveness, rec: &MatchRecord| {
            buf.push(Pending {
                query,
                op_index,
                inv: seed.inv,
                chain: path.iter().map(|&u| rec.get(u)).collect(),
                p,
                rec: rec.clone(),
            });
        };
        self.run_seed_with(g, seed, insert, src, label, dst, &mut sink);
    }

    /// Runs one planned invocation, streaming emissions straight to
    /// `sink` (the single-slice fast path needs no merge tagging).
    #[allow(clippy::too_many_arguments)]
    fn run_seed_with<G: GraphView>(
        &mut self,
        g: &G,
        seed: &Seed,
        insert: bool,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let fl = FleetCtx::NONE;
        match (insert, seed.tree) {
            (true, true) => {
                self.insert_tree_invocation(g, fl, seed.e, src, label, dst, &mut scratch, sink)
            }
            (true, false) => {
                self.insert_non_tree_invocation(g, fl, seed.e, src, label, dst, &mut scratch, sink)
            }
            (false, true) => {
                self.delete_tree_invocation(g, fl, seed.e, src, label, dst, &mut scratch, sink)
            }
            (false, false) => {
                self.delete_non_tree_invocation(g, fl, seed.e, src, label, dst, &mut scratch, sink)
            }
        }
        self.scratch = scratch;
    }
}

/// Stages the graph-mutating half of `op` that must precede evaluation:
/// routes the edge to owner(src)'s slice and delivers the mirror to
/// owner(dst)'s when the edge crosses shards. Returns the round plus
/// whether a mirror was delivered.
fn stage(graph: &mut ShardedGraph, op: &UpdateOp) -> (Round, bool) {
    match *op {
        UpdateOp::AddVertex { id, ref labels } => {
            let from = VertexId(graph.vertex_count() as u32);
            if graph.ensure_vertex(id, labels.clone()) {
                (Round::Register { from }, false)
            } else {
                (Round::Skip, false)
            }
        }
        UpdateOp::InsertEdge { src, label, dst } => {
            let from = VertexId(graph.vertex_count() as u32);
            // Tolerate label-less straggler endpoints, exactly like the
            // standalone `TurboFlux::apply_op` and the fleet driver.
            let hi = src.0.max(dst.0);
            if hi >= from.0 {
                graph.ensure_vertex(VertexId(hi), LabelSet::empty());
            }
            let (inserted, crossed) = graph.insert_edge(src, label, dst);
            if inserted {
                (Round::Insert { from, src, label, dst }, crossed)
            } else if graph.vertex_count() as u32 > from.0 {
                (Round::Register { from }, false)
            } else {
                (Round::Skip, false)
            }
        }
        UpdateOp::DeleteEdge { src, label, dst } => {
            if graph.has_edge(src, label, dst) {
                let crossed = tfx_graph::shard_of(src, graph.shard_count() as u32)
                    != tfx_graph::shard_of(dst, graph.shard_count() as u32);
                (Round::Delete { src, label, dst }, crossed)
            } else {
                (Round::Skip, false)
            }
        }
    }
}

/// Applies the graph-mutating half that must *follow* evaluation (deletes
/// are evaluated against the still-intact graph and DCG).
fn finalize(graph: &mut ShardedGraph, round: &Round) {
    if let Round::Delete { src, label, dst } = *round {
        graph.delete_edge(src, label, dst);
    }
}

/// Runs one round on one `(shard, query)` engine slice, buffering tagged
/// matches: register new root candidates it owns, then drain the seed
/// inbox in plan order.
#[allow(clippy::too_many_arguments)]
fn run_round<G: GraphView>(
    engine: &mut TurboFlux,
    g: &G,
    query: u32,
    op_index: usize,
    round: &Round,
    seeds: &[Seed],
    buf: &mut Vec<Pending>,
) {
    match *round {
        Round::Skip => {}
        Round::Register { from } => engine.register_new_vertices(g, from),
        Round::Insert { from, src, label, dst } => {
            engine.register_new_vertices(g, from);
            for seed in seeds {
                engine.run_seed(g, seed, true, src, label, dst, query, op_index as u32, buf);
            }
        }
        Round::Delete { src, label, dst } => {
            for seed in seeds {
                engine.run_seed(g, seed, false, src, label, dst, query, op_index as u32, buf);
            }
        }
    }
}

/// Stable-sorts the concatenated per-shard buffers into global emission
/// order and drains them. Key: `(query, op, invocation, chain)`; ties
/// (consecutive emissions of one chain arrival) keep their per-shard
/// order, which the stable sort preserves.
fn merge_and_emit(
    mut pendings: Vec<Pending>,
    sink: &mut dyn FnMut(usize, usize, Positiveness, &MatchRecord),
) {
    pendings.sort_by(|a, b| {
        (a.query, a.op_index, a.inv, &a.chain).cmp(&(b.query, b.op_index, b.inv, &b.chain))
    });
    for p in &pendings {
        sink(p.query as usize, p.op_index as usize, p.p, &p.rec);
    }
}

/// The sharded execution runtime: one engine slice per `(shard, query)`,
/// a hash-partitioned graph, and a batch driver whose output is
/// byte-identical to the unsharded engine for any shard count.
pub struct ShardedEngine {
    graph: ShardedGraph,
    /// `engines[shard][query]`.
    engines: Vec<Vec<TurboFlux>>,
    nqueries: usize,
    shards: usize,
    threads: usize,
    stats: ShardStats,
}

impl ShardedEngine {
    /// Builds `cfg.shards` partition slices over `g0`, registering every
    /// query once per shard with partition-filtered root candidates.
    /// Query analysis (start vertex, spanning tree, matching order) runs
    /// against the full `g0`, so all shards execute the identical plan;
    /// `AdjustMatchingOrder` is pinned off (per-slice DCG statistics
    /// diverge, and the order must stay in lockstep across shards).
    ///
    /// `threads = 0` sizes the worker pool to the available cores.
    pub fn new(
        queries: Vec<QueryGraph>,
        g0: DynamicGraph,
        cfg: TurboFluxConfig,
        threads: usize,
    ) -> Self {
        let shards = cfg.shards.max(1);
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        let cfg = TurboFluxConfig { adjust_matching_order: false, ..cfg };
        let nqueries = queries.len();
        let mut engines: Vec<Vec<TurboFlux>> = (0..shards).map(|_| Vec::new()).collect();
        for q in queries {
            if shards == 1 {
                engines[0].push(TurboFlux::register(q, &g0, cfg));
                continue;
            }
            // Reference registration over the full graph pins the matching
            // order every slice must share (slice-local DCG statistics
            // would derive divergent orders).
            let reference = TurboFlux::register(q.clone(), &g0, cfg);
            for (s, shard_engines) in engines.iter_mut().enumerate() {
                let mut e =
                    TurboFlux::register_partitioned(q.clone(), &g0, cfg, s as u32, shards as u32);
                e.mo.clone_from(&reference.mo);
                shard_engines.push(e);
            }
        }
        let graph = if shards == 1 {
            ShardedGraph::from_single(g0)
        } else {
            ShardedGraph::from_graph(&g0, shards)
        };
        ShardedEngine { graph, engines, nqueries, shards, threads, stats: ShardStats::default() }
    }

    /// Number of partition slices.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of registered queries.
    pub fn queries(&self) -> usize {
        self.nqueries
    }

    /// Routing / handoff counters accumulated since construction.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// The partitioned graph (primarily for tests and diagnostics).
    pub fn graph(&self) -> &ShardedGraph {
        &self.graph
    }

    /// Reports all matches of the initial graph for `query`, in the exact
    /// order the unsharded engine reports them (root candidates ascend;
    /// each root candidate is enumerated by its owning shard).
    pub fn report_initial(&mut self, query: usize, sink: &mut dyn FnMut(&MatchRecord)) {
        let view = self.graph.view();
        let mut pendings = Vec::new();
        for shard_engines in &mut self.engines {
            let engine = &mut shard_engines[query];
            let root = engine.query_tree().root();
            engine.initial_matches_in(&view, &mut |rec| {
                pendings.push(Pending {
                    query: query as u32,
                    op_index: 0,
                    inv: 0,
                    chain: vec![rec.get(root)],
                    p: Positiveness::Positive,
                    rec: rec.clone(),
                });
            });
        }
        merge_and_emit(pendings, &mut |_, _, _, rec| sink(rec));
    }

    /// Applies a batch of updates, evaluating every `(shard, query)` slice
    /// — in parallel on long-lived scoped workers when threads and slices
    /// allow — and delivers matches in deterministic
    /// `(query, op_index, emission)` order, byte-identical to the
    /// unsharded engine (and to this runtime at any other shard count).
    pub fn apply_batch(
        &mut self,
        ops: &[UpdateOp],
        sink: &mut dyn FnMut(usize, usize, Positiveness, &MatchRecord),
    ) {
        let nslots = self.shards * self.nqueries;
        let workers = self.threads.min(nslots);
        if workers <= 1 || ops.is_empty() {
            return self.apply_batch_sequential(ops, sink);
        }
        let budget = (self.threads / workers).max(1);
        for engine in self.engines.iter_mut().flatten() {
            engine.set_worker_budget(budget);
        }
        let ShardedEngine { graph, engines, nqueries, shards, stats, .. } = &mut *self;
        let (nqueries, shards) = (*nqueries, *shards);
        let mut bufs: Vec<Vec<Pending>> = std::iter::repeat_with(Vec::new).take(nslots).collect();
        let mut pendings = Vec::new();
        {
            // One mutex per (shard, query) slice: exactly one worker claims
            // each per round, locks never contend — they exist to hand out
            // disjoint `&mut`s safely (same protocol as `Fleet`).
            let slots: Vec<Mutex<(&mut TurboFlux, &mut Vec<Pending>)>> = engines
                .iter_mut()
                .flatten()
                .zip(bufs.iter_mut())
                .map(|(e, b)| Mutex::new((e, b)))
                .collect();
            // Workers read the partitioned graph during rounds; the driver
            // writes it strictly between rounds (barrier protocol).
            let state = RwLock::new(std::mem::take(graph));
            let seeds: RwLock<Vec<Vec<Seed>>> =
                RwLock::new(std::iter::repeat_with(Vec::new).take(nqueries).collect());
            let cursor = AtomicUsize::new(0);
            let barrier = Barrier::new(workers + 1);
            let round: RwLock<(usize, Round)> = RwLock::new((0, Round::Skip));
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        for _ in 0..ops.len() {
                            barrier.wait(); // round published
                            {
                                let st = state.read().unwrap();
                                let view = st.view();
                                let (op_index, rd) = *round.read().unwrap();
                                let sd = seeds.read().unwrap();
                                loop {
                                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                                    if t >= nslots {
                                        break;
                                    }
                                    let query = t % nqueries;
                                    let mut slot = slots[t].lock().unwrap();
                                    let (engine, buf) = &mut *slot;
                                    run_round(
                                        engine,
                                        &view,
                                        query as u32,
                                        op_index,
                                        &rd,
                                        &sd[query],
                                        buf,
                                    );
                                }
                            } // read guards dropped before the barrier
                            barrier.wait(); // round complete
                        }
                    });
                }
                for (op_index, op) in ops.iter().enumerate() {
                    {
                        let mut st = state.write().unwrap();
                        let (rd, crossed) = stage(&mut st, op);
                        let mut sd = seeds.write().unwrap();
                        plan_op_seeds(&st, &slots, nqueries, &rd, &mut sd);
                        count_op(stats, shards, &rd, crossed, &sd);
                        *round.write().unwrap() = (op_index, rd);
                    }
                    cursor.store(0, Ordering::SeqCst);
                    barrier.wait(); // start the round
                    barrier.wait(); // every slice evaluated
                    let rd = round.read().unwrap().1;
                    finalize(&mut state.write().unwrap(), &rd);
                }
            });
            *graph = state.into_inner().unwrap();
            for buf in &mut bufs {
                pendings.append(buf);
            }
        }
        merge_and_emit(pendings, sink);
    }

    /// Single-threaded reference implementation of
    /// [`ShardedEngine::apply_batch`]: same staging, same seed plans, same
    /// tagging, same merge — the determinism oracle.
    pub fn apply_batch_sequential(
        &mut self,
        ops: &[UpdateOp],
        sink: &mut dyn FnMut(usize, usize, Positiveness, &MatchRecord),
    ) {
        for engine in self.engines.iter_mut().flatten() {
            engine.set_worker_budget(self.threads);
        }
        let ShardedEngine { graph, engines, nqueries, shards, stats, .. } = &mut *self;
        let (nqueries, shards) = (*nqueries, *shards);
        // One slice, one query: sequential emission order is already the
        // required `(query, op, emission)` order, so stream straight to the
        // sink — no merge tags, no buffering, no sort. This keeps the
        // shards=1 runtime within noise of the unsharded engine.
        if shards == 1 && nqueries == 1 {
            let engine = &mut engines[0][0];
            let mut seeds = Vec::new();
            for (op_index, op) in ops.iter().enumerate() {
                let (rd, crossed) = stage(graph, op);
                seeds.clear();
                if let Round::Insert { src, label, dst, .. } | Round::Delete { src, label, dst } =
                    rd
                {
                    engine.plan_seeds_into(&graph.view(), src, label, dst, &mut seeds);
                }
                count_op(stats, shards, &rd, crossed, std::slice::from_ref(&seeds));
                let view = graph.view();
                match rd {
                    Round::Skip => {}
                    Round::Register { from } => engine.register_new_vertices(&view, from),
                    Round::Insert { from, src, label, dst } => {
                        engine.register_new_vertices(&view, from);
                        for seed in &seeds {
                            engine.run_seed_with(
                                &view,
                                seed,
                                true,
                                src,
                                label,
                                dst,
                                &mut |p, r| sink(0, op_index, p, r),
                            );
                        }
                    }
                    Round::Delete { src, label, dst } => {
                        for seed in &seeds {
                            engine.run_seed_with(
                                &view,
                                seed,
                                false,
                                src,
                                label,
                                dst,
                                &mut |p, r| sink(0, op_index, p, r),
                            );
                        }
                    }
                }
                finalize(graph, &rd);
            }
            return;
        }
        let mut pendings = Vec::new();
        let mut seeds: Vec<Vec<Seed>> = std::iter::repeat_with(Vec::new).take(nqueries).collect();
        for (op_index, op) in ops.iter().enumerate() {
            let (rd, crossed) = stage(graph, op);
            for (query, qseeds) in seeds.iter_mut().enumerate() {
                qseeds.clear();
                if let Round::Insert { src, label, dst, .. } | Round::Delete { src, label, dst } =
                    rd
                {
                    engines[0][query].plan_seeds_into(&graph.view(), src, label, dst, qseeds);
                }
            }
            count_op(stats, shards, &rd, crossed, &seeds);
            let view = graph.view();
            for shard_engines in engines.iter_mut() {
                for (query, engine) in shard_engines.iter_mut().enumerate() {
                    run_round(
                        engine,
                        &view,
                        query as u32,
                        op_index,
                        &rd,
                        &seeds[query],
                        &mut pendings,
                    );
                }
            }
            finalize(graph, &rd);
        }
        merge_and_emit(pendings, sink);
    }
}

/// Computes the per-query seed plans for an edge round (cleared
/// otherwise). Runs in the driver, between rounds, borrowing one engine
/// per query from its (uncontended) slot.
fn plan_op_seeds(
    graph: &ShardedGraph,
    slots: &[Mutex<(&mut TurboFlux, &mut Vec<Pending>)>],
    nqueries: usize,
    round: &Round,
    seeds: &mut [Vec<Seed>],
) {
    for (query, qseeds) in seeds.iter_mut().enumerate().take(nqueries) {
        qseeds.clear();
        if let Round::Insert { src, label, dst, .. } | Round::Delete { src, label, dst } = *round {
            let slot = slots[query].lock().unwrap();
            slot.0.plan_seeds_into(&graph.view(), src, label, dst, qseeds);
        }
    }
}

/// Accumulates the op's routing/handoff traffic into `stats`.
fn count_op(
    stats: &mut ShardStats,
    shards: usize,
    round: &Round,
    crossed: bool,
    seeds: &[Vec<Seed>],
) {
    if !matches!(round, Round::Insert { .. } | Round::Delete { .. }) {
        return;
    }
    stats.ops_routed += 1;
    if crossed {
        stats.cross_shard_edges += 1;
    }
    let seed_count: u64 = seeds.iter().map(|s| s.len() as u64).sum();
    // Mirror delivery (if any) plus seed plans delivered to every shard
    // other than owner(src).
    stats.handoffs += u64::from(crossed) + seed_count * (shards as u64 - 1);
    // The fullest inbox this op: all seeds, plus the mirror for its shard.
    let high = seed_count + u64::from(crossed);
    stats.inbox_high_water = stats.inbox_high_water.max(high);
}
