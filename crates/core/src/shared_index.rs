//! Fleet-owned shared candidate-prefix index (multi-query optimization).
//!
//! Standing queries overlap: two queries whose execution trees both contain
//! an edge "parent −label→ child with child-label set L" filter exactly the
//! same adjacency runs against exactly the same label predicate, once per
//! engine per update. The [`SharedCandidateIndex`] factors that common
//! single-edge candidate set out of the per-query DCG maintenance: the
//! fleet maintains, once per graph mutation, a per-parent-vertex run of
//! child candidates for every distinct *signature* in use, and every engine
//! whose tree edge matches a signature reads the pre-filtered run instead
//! of re-scanning and re-filtering adjacency itself.
//!
//! A signature is `(edge label, child label set, orientation)` — the
//! complete per-candidate filter of the private scan except the *parent*
//! label check, which depends on the individual query and stays a read-time
//! predicate (see [`crate::tree_nav::collect_shared_child_candidates`]).
//! Signatures are refcounted across engines so churn
//! (register/deregister) keeps the index minimal.
//!
//! Determinism: a shared run holds exactly the candidates the private
//! Indexed-mode scan would produce, in the same ascending vertex-id order
//! (adjacency runs are sorted and the graph holds at most one edge per
//! `(src, label, dst)` triple), so swapping the candidate source cannot
//! perturb DCG construction order or emitted deltas.

use rustc_hash::FxHashMap;
use tfx_graph::{DynamicGraph, LabelId, LabelSet, VertexId};

/// Identity of a shareable candidate set.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SigKey {
    /// Query-edge label; `None` is the wildcard bucket (any edge label).
    pub label: Option<LabelId>,
    /// Label set required on the candidate (tree-child) endpoint.
    pub child_labels: LabelSet,
    /// `true` if the tree child is the data edge's *target* (candidates are
    /// out-neighbors of the parent vertex), `false` for in-neighbors.
    pub out: bool,
}

/// One refcounted signature with its materialized per-parent runs.
struct Signature {
    key: SigKey,
    refs: usize,
    /// `runs[pv]` = sorted, duplicate-free candidates `cv` such that an
    /// oriented data edge `(pv, label, cv)` exists (any label for the
    /// wildcard bucket) and `child_labels ⊆ labels(cv)`.
    runs: Vec<Vec<VertexId>>,
    /// Wildcard signatures only: how many distinct-label parallel edges
    /// back `runs[pv][i]`. A candidate leaves the run when its last
    /// backing edge is deleted; concrete-label signatures can't see
    /// parallels (the graph holds one edge per `(src, label, dst)`), so
    /// their `mult` stays empty.
    mult: Vec<Vec<u32>>,
}

/// Slot-arena of signatures plus lookup maps. Owned by a
/// [`crate::fleet::Fleet`]; maintained by its driver strictly between
/// evaluation rounds, read by engines (through shared references) during
/// rounds.
#[derive(Default)]
pub struct SharedCandidateIndex {
    sigs: Vec<Option<Signature>>,
    free: Vec<u32>,
    by_key: FxHashMap<SigKey, u32>,
    /// Live signature ids per edge label, so mutation touches only the
    /// signatures that can care about the updated edge.
    by_label: FxHashMap<LabelId, Vec<u32>>,
    /// Live wildcard signature ids, consulted on every mutation (any edge
    /// label can back a wildcard candidate).
    wildcard: Vec<u32>,
}

impl SharedCandidateIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (referenced) signatures.
    pub fn signature_count(&self) -> usize {
        self.by_key.len()
    }

    /// Acquires a reference on the signature `key`, materializing its runs
    /// from the current graph on first acquisition. Returns the signature
    /// id used with [`SharedCandidateIndex::run`].
    pub fn acquire(&mut self, g: &DynamicGraph, key: SigKey) -> u32 {
        if let Some(&id) = self.by_key.get(&key) {
            self.sigs[id as usize].as_mut().expect("live signature").refs += 1;
            return id;
        }
        let mut sig = Signature { key: key.clone(), refs: 1, runs: Vec::new(), mult: Vec::new() };
        for e in g.edges() {
            if key.label.is_none() || key.label == Some(e.label) {
                push_candidate(&mut sig.runs, &key, g, e.src, e.dst);
            }
        }
        // Graph edge iteration order is arbitrary (hash set); each run is
        // sorted once here and kept sorted incrementally afterwards.
        // Concrete-label runs are duplicate-free because the graph holds at
        // most one edge per (src, label, dst) triple; wildcard runs see one
        // entry per backing label and collapse to multiplicities here.
        for run in &mut sig.runs {
            run.sort_unstable();
        }
        if key.label.is_none() {
            sig.mult = sig.runs.iter_mut().map(dedup_counting).collect();
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.sigs[id as usize] = Some(sig);
                id
            }
            None => {
                self.sigs.push(Some(sig));
                (self.sigs.len() - 1) as u32
            }
        };
        self.by_key.insert(key.clone(), id);
        match key.label {
            Some(label) => self.by_label.entry(label).or_default().push(id),
            None => self.wildcard.push(id),
        }
        id
    }

    /// Releases one reference on signature `id`, dropping its runs (and
    /// recycling the slot) when the last referencing engine deregisters.
    pub fn release(&mut self, id: u32) {
        let slot = self.sigs[id as usize].as_mut().expect("release of a dead signature");
        slot.refs -= 1;
        if slot.refs > 0 {
            return;
        }
        let sig = self.sigs[id as usize].take().expect("checked live above");
        self.by_key.remove(&sig.key);
        match sig.key.label {
            Some(label) => {
                let ids = self.by_label.get_mut(&label).expect("label entry exists");
                ids.retain(|&s| s != id);
                if ids.is_empty() {
                    self.by_label.remove(&label);
                }
            }
            None => self.wildcard.retain(|&s| s != id),
        }
        self.free.push(id);
    }

    /// Folds the (already applied) insertion of data edge
    /// `(src, label, dst)` into every signature with that label. O(1) when
    /// no live signature uses the label.
    pub fn insert_edge(&mut self, g: &DynamicGraph, src: VertexId, label: LabelId, dst: VertexId) {
        if let Some(ids) = self.by_label.get(&label) {
            for &id in ids {
                let sig = self.sigs[id as usize].as_mut().expect("by_label lists live sigs");
                insert_candidate(sig, g, src, dst);
            }
        }
        for &id in &self.wildcard {
            let sig = self.sigs[id as usize].as_mut().expect("wildcard lists live sigs");
            insert_candidate(sig, g, src, dst);
        }
    }

    /// Folds the impending deletion of data edge `(src, label, dst)` out of
    /// every signature with that label (called before the edge leaves the
    /// graph, mirroring when engines evaluate deletions) and out of every
    /// wildcard signature.
    pub fn delete_edge(&mut self, src: VertexId, label: LabelId, dst: VertexId) {
        if let Some(ids) = self.by_label.get(&label) {
            for &id in ids {
                let sig = self.sigs[id as usize].as_mut().expect("by_label lists live sigs");
                delete_candidate(sig, src, dst);
            }
        }
        for &id in &self.wildcard {
            let sig = self.sigs[id as usize].as_mut().expect("wildcard lists live sigs");
            delete_candidate(sig, src, dst);
        }
    }

    /// The sorted candidate run of signature `id` for parent vertex `pv`.
    #[inline]
    pub fn run(&self, id: u32, pv: VertexId) -> &[VertexId] {
        let sig = self.sigs[id as usize].as_ref().expect("run() on a dead signature");
        sig.runs.get(pv.index()).map_or(&[], Vec::as_slice)
    }
}

/// `(parent, candidate)` endpoints of a data edge under `key`'s orientation.
#[inline]
fn orient(key: &SigKey, src: VertexId, dst: VertexId) -> (VertexId, VertexId) {
    if key.out {
        (src, dst)
    } else {
        (dst, src)
    }
}

/// Appends (unsorted build path) the candidate for one data edge, if its
/// child endpoint satisfies the signature's label filter.
fn push_candidate(
    runs: &mut Vec<Vec<VertexId>>,
    key: &SigKey,
    g: &DynamicGraph,
    src: VertexId,
    dst: VertexId,
) {
    let (pv, cand) = orient(key, src, dst);
    if key.child_labels.is_subset_of(g.labels(cand)) {
        if runs.len() <= pv.index() {
            runs.resize_with(pv.index() + 1, Vec::new);
        }
        runs[pv.index()].push(cand);
    }
}

/// Sorted-position insertion of the candidate for one data edge.
fn insert_candidate(sig: &mut Signature, g: &DynamicGraph, src: VertexId, dst: VertexId) {
    let (pv, cand) = orient(&sig.key, src, dst);
    if !sig.key.child_labels.is_subset_of(g.labels(cand)) {
        return;
    }
    if sig.runs.len() <= pv.index() {
        sig.runs.resize_with(pv.index() + 1, Vec::new);
    }
    let run = &mut sig.runs[pv.index()];
    let wildcard = sig.key.label.is_none();
    if wildcard && sig.mult.len() <= pv.index() {
        sig.mult.resize_with(pv.index() + 1, Vec::new);
    }
    match run.binary_search(&cand) {
        // Under a concrete label the graph rejects duplicate
        // (src, label, dst) insertions before the index is told, so the
        // candidate can only be absent; a wildcard run counts one backing
        // edge per label.
        Ok(i) if wildcard => sig.mult[pv.index()][i] += 1,
        Ok(_) => debug_assert!(false, "duplicate candidate {cand:?} in shared run"),
        Err(i) => {
            run.insert(i, cand);
            if wildcard {
                sig.mult[pv.index()].insert(i, 1);
            }
        }
    }
}

/// Sorted-position removal of the candidate for one data edge; a wildcard
/// candidate stays while parallel edges under other labels still back it.
fn delete_candidate(sig: &mut Signature, src: VertexId, dst: VertexId) {
    let (pv, cand) = orient(&sig.key, src, dst);
    let Some(run) = sig.runs.get_mut(pv.index()) else { return };
    // A candidate that failed the child-label filter at insertion time
    // simply isn't present; binary search keeps removal total.
    if let Ok(i) = run.binary_search(&cand) {
        if sig.key.label.is_none() {
            let m = &mut sig.mult[pv.index()][i];
            *m -= 1;
            if *m > 0 {
                return;
            }
            sig.mult[pv.index()].remove(i);
        }
        run.remove(i);
    }
}

/// In-place dedup of a sorted run, returning the multiplicity of each
/// surviving entry.
fn dedup_counting(run: &mut Vec<VertexId>) -> Vec<u32> {
    let mut counts: Vec<u32> = Vec::new();
    let mut write = 0;
    for read in 0..run.len() {
        if write > 0 && run[write - 1] == run[read] {
            counts[write - 1] += 1;
        } else {
            run[write] = run[read];
            counts.push(1);
            write += 1;
        }
    }
    run.truncate(write);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// a:A −7→ b:B, a −7→ c:{B,C}, a −8→ b, c −7→ a.
    fn setup() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        let c = g.add_vertex(LabelSet::from_iter([l(1), l(2)]));
        g.insert_edge(a, l(7), b);
        g.insert_edge(a, l(7), c);
        g.insert_edge(a, l(8), b);
        g.insert_edge(c, l(7), a);
        g
    }

    fn key(label: u32, child: &[u32], out: bool) -> SigKey {
        SigKey {
            label: Some(l(label)),
            child_labels: LabelSet::from_iter(child.iter().map(|&i| l(i))),
            out,
        }
    }

    fn wild(child: &[u32], out: bool) -> SigKey {
        SigKey { label: None, child_labels: LabelSet::from_iter(child.iter().map(|&i| l(i))), out }
    }

    #[test]
    fn acquire_builds_sorted_filtered_runs() {
        let g = setup();
        let mut idx = SharedCandidateIndex::new();
        let out_b = idx.acquire(&g, key(7, &[1], true));
        assert_eq!(idx.run(out_b, v(0)), &[v(1), v(2)], "both B-labeled targets");
        assert_eq!(idx.run(out_b, v(1)), &[] as &[VertexId]);
        assert_eq!(idx.run(out_b, v(9)), &[] as &[VertexId], "past-the-end parent");

        let out_c = idx.acquire(&g, key(7, &[2], true));
        assert_eq!(idx.run(out_c, v(0)), &[v(2)], "label filter applied");

        let in_a = idx.acquire(&g, key(7, &[0], false));
        assert_eq!(idx.run(in_a, v(1)), &[v(0)], "reverse orientation");
        assert_eq!(idx.run(in_a, v(2)), &[v(0)]);
        assert_eq!(idx.run(in_a, v(0)), &[] as &[VertexId], "c:{{B,C}} fails the A filter");
        assert_eq!(idx.signature_count(), 3);
    }

    #[test]
    fn refcounting_shares_and_recycles() {
        let g = setup();
        let mut idx = SharedCandidateIndex::new();
        let a = idx.acquire(&g, key(7, &[1], true));
        let b = idx.acquire(&g, key(7, &[1], true));
        assert_eq!(a, b, "same key shares one signature");
        assert_eq!(idx.signature_count(), 1);
        idx.release(a);
        assert_eq!(idx.signature_count(), 1, "still referenced");
        idx.release(b);
        assert_eq!(idx.signature_count(), 0);
        // The freed slot is recycled for the next distinct key.
        let c = idx.acquire(&g, key(8, &[1], true));
        assert_eq!(c, a, "slot recycled");
        assert_eq!(idx.run(c, v(0)), &[v(1)]);
    }

    #[test]
    fn incremental_equals_rebuilt() {
        let mut g = setup();
        let mut idx = SharedCandidateIndex::new();
        let keys = [key(7, &[1], true), key(7, &[2], true), key(7, &[], false), key(8, &[1], true)];
        let ids: Vec<u32> = keys.iter().map(|k| idx.acquire(&g, k.clone())).collect();

        let d = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(v(0), l(7), d);
        idx.insert_edge(&g, v(0), l(7), d);
        idx.delete_edge(v(0), l(7), v(1));
        g.delete_edge(v(0), l(7), v(1));
        idx.delete_edge(v(9), l(7), v(1)); // absent edge: no-op
        idx.delete_edge(v(0), l(99), v(1)); // unindexed label: no-op

        let mut fresh = SharedCandidateIndex::new();
        let fresh_ids: Vec<u32> = keys.iter().map(|k| fresh.acquire(&g, k.clone())).collect();
        for (&id, &fid) in ids.iter().zip(&fresh_ids) {
            for p in 0..g.vertex_count() as u32 {
                assert_eq!(idx.run(id, v(p)), fresh.run(fid, v(p)), "sig {id} parent {p}");
            }
        }
    }

    #[test]
    fn wildcard_bucket_counts_parallel_labels() {
        let mut g = setup();
        let mut idx = SharedCandidateIndex::new();
        // a −7→ b, a −8→ b: one deduped candidate backed by two labels.
        let id = idx.acquire(&g, wild(&[1], true));
        assert_eq!(idx.run(id, v(0)), &[v(1), v(2)], "deduped across labels");
        idx.delete_edge(v(0), l(7), v(1));
        g.delete_edge(v(0), l(7), v(1));
        assert_eq!(idx.run(id, v(0)), &[v(1), v(2)], "l(8) parallel still backs b");
        idx.delete_edge(v(0), l(8), v(1));
        g.delete_edge(v(0), l(8), v(1));
        assert_eq!(idx.run(id, v(0)), &[v(2)], "last backing edge gone");
        // Incremental re-insertion restores the multiplicity.
        g.insert_edge(v(0), l(7), v(1));
        idx.insert_edge(&g, v(0), l(7), v(1));
        g.insert_edge(v(0), l(8), v(1));
        idx.insert_edge(&g, v(0), l(8), v(1));
        assert_eq!(idx.run(id, v(0)), &[v(1), v(2)]);
        idx.delete_edge(v(0), l(8), v(1));
        g.delete_edge(v(0), l(8), v(1));
        assert_eq!(idx.run(id, v(0)), &[v(1), v(2)]);
    }

    #[test]
    fn wildcard_incremental_equals_rebuilt() {
        let mut g = setup();
        let mut idx = SharedCandidateIndex::new();
        let keys = [wild(&[1], true), wild(&[0], false), wild(&[], true)];
        let ids: Vec<u32> = keys.iter().map(|k| idx.acquire(&g, k.clone())).collect();

        let d = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(v(0), l(9), d);
        idx.insert_edge(&g, v(0), l(9), d);
        idx.delete_edge(v(0), l(7), v(1));
        g.delete_edge(v(0), l(7), v(1));

        let mut fresh = SharedCandidateIndex::new();
        let fresh_ids: Vec<u32> = keys.iter().map(|k| fresh.acquire(&g, k.clone())).collect();
        for (&id, &fid) in ids.iter().zip(&fresh_ids) {
            for p in 0..g.vertex_count() as u32 {
                assert_eq!(idx.run(id, v(p)), fresh.run(fid, v(p)), "sig {id} parent {p}");
            }
        }
        for id in ids {
            idx.release(id);
        }
        assert_eq!(idx.signature_count(), 0, "wildcard slots released");
    }

    #[test]
    fn child_label_filter_excludes_at_insert() {
        let mut g = setup();
        let mut idx = SharedCandidateIndex::new();
        let id = idx.acquire(&g, key(7, &[2], true));
        let d = g.add_vertex(LabelSet::single(l(1))); // B, not C
        g.insert_edge(v(0), l(7), d);
        idx.insert_edge(&g, v(0), l(7), d);
        assert_eq!(idx.run(id, v(0)), &[v(2)], "non-matching candidate filtered");
        // Deleting the filtered-out edge is a no-op, not an underflow.
        idx.delete_edge(v(0), l(7), d);
        assert_eq!(idx.run(id, v(0)), &[v(2)]);
    }
}
