//! `DetermineMatchingOrder` and `AdjustMatchingOrder` (§4.1).
//!
//! Given the DCG, the number of explicit data paths per query path can be
//! estimated from the per-query-vertex explicit-edge counts. The paper's
//! greedy strategy shrinks the query tree one leaf at a time, always
//! removing the leaf whose subtree-expansion (branch factor) is largest, so
//! the *reversed* removal sequence visits low-fan-out vertices early and
//! minimizes `Σ c(T_i)`, the number of recursive calls. Removing leaves
//! only guarantees the parent-before-child property the search requires.
//!
//! Drift detection is handled by [`OrderMaintenance`]: the counts the order
//! was derived from are snapshotted, and after every update the current
//! counts are compared against that snapshot. By default only counts that
//! actually changed are examined (the DCG marks them in a dirty bitmask as
//! part of its normal counter bookkeeping); a count that did not change
//! since its last check cannot have started drifting, so the incremental
//! check accepts/rejects exactly the same updates as the full scan. The
//! full scan is kept behind [`crate::TurboFluxConfig::incremental_drift_check`]
//! `= false` as an ablation baseline.

use tfx_query::QVertexId;

use crate::engine::TurboFlux;
use crate::shared_subtree::FleetCtx;

/// Snapshot-and-compare state for matching-order drift detection.
#[derive(Default, Debug, Clone)]
pub struct OrderMaintenance {
    /// Explicit counts at the time the current matching order was computed.
    snapshot: Vec<u64>,
}

impl OrderMaintenance {
    /// Captures the counts the freshly computed order was derived from.
    pub fn resnapshot(&mut self, counts: &[u64]) {
        self.snapshot.clear();
        self.snapshot.extend_from_slice(counts);
    }

    /// The captured counts (empty before the first [`Self::resnapshot`]).
    pub fn snapshot(&self) -> &[u64] {
        &self.snapshot
    }

    /// The paper's "significant change" predicate for one count: the larger
    /// side exceeds the floor and the smaller side times `factor`.
    fn pair_drifted(now: u64, then: u64, factor: f64, floor: u64) -> bool {
        let (hi, lo) = (now.max(then), now.min(then));
        hi > floor && hi as f64 > lo as f64 * factor
    }

    /// Full scan over every query vertex (the ablation baseline).
    pub fn drifted_full(&self, counts: &[u64], factor: f64, floor: u64) -> bool {
        counts
            .iter()
            .zip(&self.snapshot)
            .any(|(&now, &then)| Self::pair_drifted(now, then, factor, floor))
    }

    /// Checks only the query vertices whose bit is set in `dirty`.
    /// Equivalent to [`Self::drifted_full`] as long as `dirty` covers every
    /// count changed since its last check: an unchanged count keeps its
    /// previous (non-drifted) verdict.
    pub fn drifted_masked(&self, counts: &[u64], mut dirty: u64, factor: f64, floor: u64) -> bool {
        debug_assert_eq!(counts.len(), self.snapshot.len());
        while dirty != 0 {
            let i = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            if i < self.snapshot.len()
                && Self::pair_drifted(counts[i], self.snapshot[i], factor, floor)
            {
                return true;
            }
        }
        false
    }
}

impl TurboFlux {
    /// Estimated branch factor of `u` over the effective counts: explicit
    /// edges labeled `u` per explicit edge labeled `P(u)`.
    fn branch_factor(&self, u: QVertexId, counts: &[u64]) -> f64 {
        let own = counts[u.index()] as f64;
        let parent = self.tree.parent(u).expect("called on non-root only");
        let pc = counts[parent.index()].max(1) as f64;
        own / pc
    }

    /// Refreshes `counts_buf` with the effective per-vertex explicit
    /// counts: the engine's own counts, with bound-branch vertices patched
    /// from their shared instance and the root patched from the derived
    /// start-edge cache. The cache is recounted only when `dirty` touches a
    /// root child (the derived root count is a function of root-child
    /// state, so an untouched mask means it cannot have moved).
    pub(crate) fn refresh_effective_counts(&mut self, fleet: FleetCtx<'_>, dirty: u64) {
        self.counts_buf.clear();
        self.counts_buf.extend_from_slice(self.dcg.expl_counts());
        if !self.has_shared_branches() {
            return;
        }
        let sub = fleet.subtrees();
        for (i, bn) in self.branch_nodes.iter().enumerate() {
            if let Some((inst, iu)) = *bn {
                self.counts_buf[i] = sub.eng(inst).dcg.expl_counts()[iu.index()];
            }
        }
        let root = self.tree.root();
        if dirty & self.child_mask[root.index()] != 0 {
            let mut n = 0u64;
            for (v, _) in self.dcg.root_entries() {
                if self.st_match_all_children(fleet, v, root) {
                    n += 1;
                }
            }
            self.root_expl_cache = n;
        }
        self.counts_buf[root.index()] = self.root_expl_cache;
    }

    /// Drains this engine's dirty bits and folds in the bound instances'
    /// last-op dirty bits (mapped back to this engine's vertex ids) plus
    /// the derived root bit when any root child was touched.
    pub(crate) fn collect_dirty(&mut self, fleet: FleetCtx<'_>) -> u64 {
        let mut dirty = self.dcg.take_dirty_expl();
        if !self.has_shared_branches() {
            return dirty;
        }
        let sub = fleet.subtrees();
        for (i, bn) in self.branch_nodes.iter().enumerate() {
            if let Some((inst, iu)) = *bn {
                if sub.last_dirty(inst) & (1 << iu.0) != 0 {
                    dirty |= 1 << i;
                }
            }
        }
        let root = self.tree.root();
        if dirty & self.child_mask[root.index()] != 0 {
            dirty |= 1 << root.0;
        }
        dirty
    }

    /// Recomputes the matching order from current effective DCG statistics
    /// and snapshots the statistics for drift detection.
    pub(crate) fn recompute_matching_order(&mut self, fleet: FleetCtx<'_>) {
        self.refresh_effective_counts(fleet, u64::MAX);
        let counts = std::mem::take(&mut self.counts_buf);
        let n = self.q.vertex_count();
        let root = self.tree.root();
        let mut present = vec![true; n];
        let mut removal: Vec<QVertexId> = Vec::with_capacity(n - 1);
        for _ in 1..n {
            // Leaves of the current (shrunk) tree, excluding the root.
            let leaf = self
                .q
                .vertices()
                .filter(|&u| u != root && present[u.index()])
                .filter(|&u| self.tree.children(u).iter().all(|c| !present[c.index()]))
                .max_by(|&a, &b| {
                    self.branch_factor(a, &counts)
                        .partial_cmp(&self.branch_factor(b, &counts))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                })
                .expect("a rooted tree with >1 vertex has a non-root leaf");
            present[leaf.index()] = false;
            removal.push(leaf);
        }
        let mut mo = Vec::with_capacity(n);
        mo.push(root);
        mo.extend(removal.into_iter().rev());
        debug_assert_eq!(mo.len(), n);
        self.mo = mo;
        self.order_maint.resnapshot(&counts);
        self.counts_buf = counts;
        // The snapshot is current again; pending dirty bits are moot.
        self.dcg.take_dirty_expl();
    }

    /// `AdjustMatchingOrder` for standalone engines (no fleet stores in
    /// play). Engines with bound branches must go through
    /// [`TurboFlux::maybe_adjust_order_in`] — the fleet driver calls it at
    /// op finalize with the subtree store.
    pub(crate) fn maybe_adjust_order(&mut self) {
        debug_assert!(!self.has_shared_branches());
        self.maybe_adjust_order_in(FleetCtx::NONE);
    }

    /// `AdjustMatchingOrder`: recomputes the order when any effective
    /// per-vertex explicit count drifted beyond the configured factor since
    /// the last computation.
    pub(crate) fn maybe_adjust_order_in(&mut self, fleet: FleetCtx<'_>) {
        if !self.cfg.adjust_matching_order {
            return;
        }
        let dirty = self.collect_dirty(fleet);
        if dirty == 0 && self.cfg.incremental_drift_check {
            return;
        }
        let (factor, floor) = (self.cfg.order_drift_factor, self.cfg.order_drift_floor);
        self.refresh_effective_counts(fleet, dirty);
        let drifted = if self.cfg.incremental_drift_check {
            self.order_maint.drifted_masked(&self.counts_buf, dirty, factor, floor)
        } else {
            self.order_maint.drifted_full(&self.counts_buf, factor, floor)
        };
        if drifted {
            self.recompute_matching_order(fleet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scan_detects_drift_above_floor_and_factor() {
        let mut om = OrderMaintenance::default();
        om.resnapshot(&[10, 100, 0]);
        // Within factor 2 of the snapshot: no drift.
        assert!(!om.drifted_full(&[19, 100, 0], 2.0, 4));
        // Count 0 doubled past the factor and the floor.
        assert!(om.drifted_full(&[21, 100, 0], 2.0, 4));
        // Shrinking counts drift symmetrically.
        assert!(om.drifted_full(&[10, 40, 0], 2.0, 4));
        // Under the floor nothing drifts, however large the ratio.
        assert!(!om.drifted_full(&[3, 100, 0], 2.0, 12));
        assert!(om.drifted_full(&[10, 100, 5], 2.0, 4));
    }

    #[test]
    fn masked_scan_only_inspects_dirty_bits() {
        let mut om = OrderMaintenance::default();
        om.resnapshot(&[10, 100, 0]);
        let drifted = [30u64, 100, 0]; // vertex 0 drifted
        assert!(om.drifted_masked(&drifted, 0b001, 2.0, 4));
        // A mask excluding the drifted vertex must not report drift (by
        // contract it is only sound when the excluded counts are
        // unchanged; this asserts the masking itself).
        assert!(!om.drifted_masked(&drifted, 0b110, 2.0, 4));
        assert!(!om.drifted_masked(&drifted, 0, 2.0, 4));
    }

    #[test]
    fn masked_equals_full_when_mask_covers_changes() {
        // Property sweep: for counts derived from the snapshot by changing
        // an arbitrary subset (= the dirty mask), masked == full.
        let snapshot = [5u64, 64, 200, 0];
        let mut om = OrderMaintenance::default();
        om.resnapshot(&snapshot);
        let deltas: [i64; 4] = [3, 70, -150, 1];
        for mask in 0u64..16 {
            let mut counts = snapshot;
            for (i, c) in counts.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    *c = c.checked_add_signed(deltas[i]).unwrap();
                }
            }
            assert_eq!(
                om.drifted_masked(&counts, mask, 2.0, 16),
                om.drifted_full(&counts, 2.0, 16),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn resnapshot_replaces_previous_state() {
        let mut om = OrderMaintenance::default();
        om.resnapshot(&[1, 2]);
        om.resnapshot(&[500, 600]);
        assert_eq!(om.snapshot(), &[500, 600]);
        assert!(!om.drifted_full(&[500, 600], 2.0, 0));
    }
}
