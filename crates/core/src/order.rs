//! `DetermineMatchingOrder` and `AdjustMatchingOrder` (§4.1).
//!
//! Given the DCG, the number of explicit data paths per query path can be
//! estimated from the per-query-vertex explicit-edge counts. The paper's
//! greedy strategy shrinks the query tree one leaf at a time, always
//! removing the leaf whose subtree-expansion (branch factor) is largest, so
//! the *reversed* removal sequence visits low-fan-out vertices early and
//! minimizes `Σ c(T_i)`, the number of recursive calls. Removing leaves
//! only guarantees the parent-before-child property the search requires.

use tfx_query::QVertexId;

use crate::engine::TurboFlux;

impl TurboFlux {
    /// Estimated branch factor of `u`: explicit edges labeled `u` per
    /// explicit edge labeled `P(u)`.
    fn branch_factor(&self, u: QVertexId) -> f64 {
        let counts = self.dcg.expl_counts();
        let own = counts[u.index()] as f64;
        let parent = self.tree.parent(u).expect("called on non-root only");
        let pc = counts[parent.index()].max(1) as f64;
        own / pc
    }

    /// Recomputes the matching order from current DCG statistics and
    /// snapshots the statistics for drift detection.
    pub(crate) fn recompute_matching_order(&mut self) {
        let n = self.q.vertex_count();
        let root = self.tree.root();
        let mut present = vec![true; n];
        let mut removal: Vec<QVertexId> = Vec::with_capacity(n - 1);
        for _ in 1..n {
            // Leaves of the current (shrunk) tree, excluding the root.
            let leaf = self
                .q
                .vertices()
                .filter(|&u| u != root && present[u.index()])
                .filter(|&u| {
                    self.tree.children(u).iter().all(|c| !present[c.index()])
                })
                .max_by(|&a, &b| {
                    self.branch_factor(a)
                        .partial_cmp(&self.branch_factor(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                })
                .expect("a rooted tree with >1 vertex has a non-root leaf");
            present[leaf.index()] = false;
            removal.push(leaf);
        }
        let mut mo = Vec::with_capacity(n);
        mo.push(root);
        mo.extend(removal.into_iter().rev());
        debug_assert_eq!(mo.len(), n);
        self.mo = mo;
        self.order_snapshot = self.dcg.expl_counts().to_vec();
    }

    /// `AdjustMatchingOrder`: recomputes the order when any per-vertex
    /// explicit count drifted beyond the configured factor since the last
    /// computation.
    pub(crate) fn maybe_adjust_order(&mut self) {
        if !self.cfg.adjust_matching_order {
            return;
        }
        let factor = self.cfg.order_drift_factor;
        let floor = self.cfg.order_drift_floor;
        let drifted = self
            .dcg
            .expl_counts()
            .iter()
            .zip(&self.order_snapshot)
            .any(|(&now, &then)| {
                let (hi, lo) = (now.max(then), now.min(then));
                hi > floor && hi as f64 > lo as f64 * factor
            });
        if drifted {
            self.recompute_matching_order();
        }
    }
}
