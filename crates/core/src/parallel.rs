//! Intra-update parallel match enumeration.
//!
//! PR 1's [`crate::fleet::Fleet`] parallelizes *across* queries and ops,
//! but each individual update still ran a single-threaded `SubgraphSearch`
//! — one match-exploding insertion dominated tail latency. This module
//! parallelizes *within* one update: at the shallowest unbound depth of
//! the matching order the explicit DCG out-edge frontier (or, for initial
//! reporting, the explicit root-candidate set) is split into contiguous
//! chunks evaluated by scoped worker threads, each with its own pooled
//! [`SearchScratch`] and delta buffer.
//!
//! # Determinism
//!
//! Sequential enumeration emits, for each frontier candidate in slice
//! order, that candidate's subtree matches in recursion order. Workers
//! claim *chunk indices* off an atomic cursor, process the candidates of a
//! chunk in slice order into the buffer belonging to that chunk, and the
//! driver replays the buffers in chunk-index order after the scope joins.
//! Claiming order is racy; emission order is not — the output is
//! byte-identical to the sequential path regardless of thread count or
//! scheduling. The only cross-thread nondeterminism is wall-clock deadline
//! latching, which already marks results incomplete.
//!
//! # Why sharing `&TurboFlux` is safe
//!
//! `SubgraphSearch` only reads engine state (DCG, query, tree, matching
//! order, config); all DCG transitions happen in `BuildUpwardsAndEval` /
//! `ClearUpwardsAndEval` strictly *between* searches, on the driver
//! thread. The engine-side mutable search state (deadline step counter and
//! hit latch) is atomic, so `TurboFlux: Sync` and scoped workers can
//! search concurrently over one `&self`.
//!
//! # Cost model
//!
//! Spawning scoped threads is not free, so narrow frontiers
//! (`parallel_min_frontier`) fall back to the sequential path, which stays
//! allocation-free. Wide frontiers amortize the spawn over many candidate
//! subtrees; per-worker scratches and per-chunk delta buffers come from a
//! [`ScratchPool`] and are returned after the merge, so repeated explosive
//! updates reuse their high-water capacities instead of reallocating.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tfx_graph::{GraphView, VertexId};
use tfx_query::{MatchRecord, Positiveness, QVertexId};

use crate::dcg::EdgeState;
use crate::engine::TurboFlux;
use crate::scratch::SearchScratch;
use crate::search::SearchCtx;

/// Chunks handed out per worker: >1 so a worker that drew an explosive
/// candidate range does not convoy the others (cheap work stealing), small
/// enough that per-chunk buffers stay coarse.
const CHUNKS_PER_WORKER: usize = 4;

/// Flattened per-chunk delta buffer: positiveness tags plus the complete
/// mappings laid out back-to-back (`nq` vertices per record). Reused
/// across parallel invocations via the [`ScratchPool`].
#[derive(Default, Debug)]
pub(crate) struct DeltaBuf {
    pos: Vec<Positiveness>,
    verts: Vec<VertexId>,
}

impl DeltaBuf {
    /// Buffers one complete solution.
    #[inline]
    fn push(&mut self, p: Positiveness, rec: &MatchRecord) {
        self.pos.push(p);
        self.verts.extend_from_slice(rec.as_slice());
    }

    /// Streams the buffered solutions into `sink` in buffered order,
    /// through the caller's reusable record.
    fn replay(
        &self,
        nq: usize,
        rec: &mut MatchRecord,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        debug_assert_eq!(self.verts.len(), self.pos.len() * nq);
        for (i, &p) in self.pos.iter().enumerate() {
            rec.fill_from_slice(&self.verts[i * nq..(i + 1) * nq]);
            sink(p, rec);
        }
    }

    fn clear(&mut self) {
        self.pos.clear();
        self.verts.clear();
    }
}

/// Reusable resources for parallel fan-out: worker scratches and per-chunk
/// delta buffers. Checked out under `&self` (the engine is shared across
/// workers), so both sides sit behind (uncontended-by-construction)
/// mutexes: scratches are popped once per worker, buffers are taken and
/// returned by the driver around each fan-out.
#[derive(Default)]
pub(crate) struct ScratchPool {
    scratches: Mutex<Vec<SearchScratch>>,
    bufs: Mutex<Vec<DeltaBuf>>,
}

impl ScratchPool {
    fn take_scratch(&self) -> SearchScratch {
        self.scratches.lock().unwrap().pop().unwrap_or_default()
    }

    fn put_scratch(&self, s: SearchScratch) {
        self.scratches.lock().unwrap().push(s);
    }

    /// Takes the pooled buffer vector, sized (up) to `n` cleared buffers.
    fn take_bufs(&self, n: usize) -> Vec<DeltaBuf> {
        let mut bufs = std::mem::take(&mut *self.bufs.lock().unwrap());
        bufs.resize_with(n.max(bufs.len()), Default::default);
        bufs
    }

    fn put_bufs(&self, mut bufs: Vec<DeltaBuf>) {
        for b in &mut bufs {
            b.clear();
        }
        *self.bufs.lock().unwrap() = bufs;
    }
}

/// Even contiguous split: bounds of chunk `c` of `nchunks` over `len`
/// items. Concatenating all chunks in index order reproduces `0..len`.
#[inline]
fn chunk_bounds(len: usize, nchunks: usize, c: usize) -> (usize, usize) {
    (c * len / nchunks, (c + 1) * len / nchunks)
}

impl TurboFlux {
    /// Runs `SubgraphSearch` from depth 0 over the pre-bound embedding in
    /// `scratch`, fanning the shallowest unbound frontier out across
    /// worker threads when the engine is configured for it and the
    /// frontier is wide enough; falls back to the plain sequential search
    /// otherwise. Emission is byte-identical either way.
    pub(crate) fn search_from_root<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        scratch: &mut SearchScratch,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // Shared subtree instances only maintain DCG state for the engines
        // bound to them; they never enumerate (their sink is a no-op), and
        // all transitions happen before the searches they skip.
        if self.maintenance_only {
            return;
        }
        let workers = self.intra_workers();
        if workers > 1 {
            if let Some((depth, u, vp)) = self.parallel_split_point(ctx.fleet, scratch) {
                return self.search_split(g, ctx, depth, u, vp, scratch, workers, sink);
            }
        }
        self.subgraph_search(g, 0, ctx, scratch, sink);
    }

    /// The shallowest matching-order depth whose query vertex is unbound,
    /// if its explicit DCG frontier is wide enough to fan out. `None`
    /// falls back to the sequential search (fully pre-bound embedding,
    /// unbound root, or a narrow frontier).
    fn parallel_split_point(
        &self,
        fleet: crate::shared_subtree::FleetCtx<'_>,
        scratch: &SearchScratch,
    ) -> Option<(usize, QVertexId, VertexId)> {
        let depth = (0..self.mo.len()).find(|&d| scratch.m[self.mo[d].index()].is_none())?;
        let u = self.mo[depth];
        let vp = scratch.m[self.tree.parent(u)?.index()]?;
        (self.st_out_expl_count(fleet, vp, u) >= self.cfg.parallel_min_frontier.max(2))
            .then_some((depth, u, vp))
    }

    /// Parallel `SubgraphSearch`: validates the pre-bound prefix once,
    /// then splits the explicit out-edge frontier of `(vp, u)` at `depth`
    /// across workers.
    #[allow(clippy::too_many_arguments)]
    fn search_split<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        depth: usize,
        u: QVertexId,
        vp: VertexId,
        scratch: &mut SearchScratch,
        workers: usize,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // The sequential search re-validates pre-bound vertices depth by
        // depth before reaching the first enumeration; do the same checks
        // once up front — any failure means no solutions at all.
        for d in 0..depth {
            let w = self.mo[d];
            let v = scratch.m[w.index()].expect("prefix below the split depth is bound");
            let ok = if w == self.tree.root() {
                self.st_root_state(ctx.fleet, v) == Some(EdgeState::Explicit)
            } else {
                let wp = scratch.m[self.tree.parent(w).expect("non-root").index()]
                    .expect("parent precedes child in matching order");
                self.tree_binding_ok(g, ctx, w, wp, v)
            };
            if !ok || !self.is_joinable(g, ctx, w, v, scratch) {
                return;
            }
        }
        let frontier = self.st_out_edge_slice(ctx.fleet, vp, u);
        self.fan_out(g, scratch, workers, frontier.len(), sink, &|ws, buf, lo, hi| {
            for &(v, st) in &frontier[lo..hi] {
                if st == EdgeState::Explicit {
                    self.expand_candidate(g, ctx, depth, u, vp, v, ws, &mut |p, r| buf.push(p, r));
                }
            }
        });
    }

    /// Parallel initial reporting: splits the explicit root-candidate set
    /// across workers; each candidate's search runs exactly as in the
    /// sequential loop of [`TurboFlux::initial_matches_in`].
    pub(crate) fn search_chunked_roots<G: GraphView>(
        &self,
        g: &G,
        ctx: &SearchCtx<'_>,
        candidates: &[VertexId],
        scratch: &mut SearchScratch,
        workers: usize,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        let us = self.tree.root();
        self.fan_out(g, scratch, workers, candidates.len(), sink, &|ws, buf, lo, hi| {
            for &vs in &candidates[lo..hi] {
                ws.bind(us, vs);
                self.subgraph_search(g, 0, ctx, ws, &mut |p, r| buf.push(p, r));
                ws.unbind(us);
            }
        });
    }

    /// The shared fan-out harness: splits `0..len` into contiguous chunks,
    /// lets scoped workers claim chunks off an atomic cursor and run
    /// `body` over each chunk's range into that chunk's buffer, then
    /// replays the buffers in chunk order into `sink`. Worker scratches
    /// are seeded from (and buffers replayed through) the driver's
    /// `scratch`.
    fn fan_out<G: GraphView>(
        &self,
        g: &G,
        scratch: &mut SearchScratch,
        workers: usize,
        len: usize,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
        body: &(dyn Fn(&mut SearchScratch, &mut DeltaBuf, usize, usize) + Sync),
    ) {
        debug_assert!(workers > 1);
        if len == 0 {
            return;
        }
        let nchunks = len.min(workers * CHUNKS_PER_WORKER);
        let nworkers = workers.min(nchunks);
        let mut bufs = self.pool.take_bufs(nchunks);
        {
            let slots: Vec<Mutex<&mut DeltaBuf>> = bufs.iter_mut().map(Mutex::new).collect();
            let cursor = AtomicUsize::new(0);
            let seed: &SearchScratch = scratch;
            std::thread::scope(|s| {
                for _ in 0..nworkers {
                    s.spawn(|| {
                        let mut ws = self.pool.take_scratch();
                        ws.copy_bindings_from(seed);
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= nchunks {
                                break;
                            }
                            let (lo, hi) = chunk_bounds(len, nchunks, c);
                            let mut slot = slots[c].lock().unwrap();
                            body(&mut ws, &mut slot, lo, hi);
                        }
                        self.pool.put_scratch(ws);
                    });
                }
            });
        }
        let _ = g; // the graph is only read through `body`'s captures
        let nq = scratch.m.len();
        for buf in &bufs[..nchunks] {
            buf.replay(nq, &mut scratch.rec, sink);
        }
        self.pool.put_bufs(bufs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_contiguously() {
        for len in [0usize, 1, 7, 16, 1000] {
            for nchunks in 1..=9 {
                let mut next = 0;
                for c in 0..nchunks {
                    let (lo, hi) = chunk_bounds(len, nchunks, c);
                    assert_eq!(lo, next, "len {len} chunks {nchunks}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn delta_buf_replays_in_order() {
        let mut buf = DeltaBuf::default();
        let a = MatchRecord::new(vec![VertexId(1), VertexId(2)]);
        let b = MatchRecord::new(vec![VertexId(3), VertexId(4)]);
        buf.push(Positiveness::Positive, &a);
        buf.push(Positiveness::Negative, &b);
        let mut rec = MatchRecord::default();
        let mut got = Vec::new();
        buf.replay(2, &mut rec, &mut |p, r| got.push((p, r.clone())));
        assert_eq!(got, vec![(Positiveness::Positive, a), (Positiveness::Negative, b)]);
        buf.clear();
        let mut n = 0;
        buf.replay(2, &mut rec, &mut |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn pool_recycles_buffers_and_scratches() {
        let pool = ScratchPool::default();
        let mut bufs = pool.take_bufs(3);
        assert_eq!(bufs.len(), 3);
        bufs[0].push(Positiveness::Positive, &MatchRecord::new(vec![VertexId(9)]));
        let cap = bufs[0].pos.capacity();
        pool.put_bufs(bufs);
        let bufs = pool.take_bufs(2);
        assert!(bufs.len() >= 2);
        assert!(bufs[0].pos.is_empty(), "returned buffers are cleared");
        assert_eq!(bufs[0].pos.capacity(), cap, "capacity is retained");
        pool.put_bufs(bufs);

        let mut s = pool.take_scratch();
        s.kids.push(VertexId(1));
        pool.put_scratch(s);
        let s = pool.take_scratch();
        assert!(s.kids.capacity() >= 1, "scratch storage is recycled");
    }
}
