//! Batched, parallel multi-query evaluation over one shared update stream.
//!
//! Real deployments register many continuous queries against the same
//! streaming graph. A [`Fleet`] owns the single [`DynamicGraph`] and `N`
//! independent [`TurboFlux`] engines (one DCG per query) and evaluates
//! update batches with [`Fleet::apply_batch`], fanning the per-update
//! evaluation out across OS threads.
//!
//! # Multi-query optimization
//!
//! Engines are independent, but their *work* overlaps, and the fleet
//! exploits that in two layers:
//!
//! * **Op routing.** The per-engine `qedge_by_label` buckets are lifted
//!   into one fleet-wide `label → interested engines` table (rebuilt on
//!   [`Fleet::register`] / [`Fleet::deregister`]; engines with wildcard
//!   query edges sit in an always-interested list). Each edge op is
//!   dispatched only to engines with a query edge that can match its label
//!   — an op whose label no query mentions costs O(1), not O(N engines).
//!   Skipping is exact: a non-interested engine would find zero matching
//!   query edges, change nothing, and emit nothing, so routing cannot
//!   change output. Vertex additions still visit every engine (start-vertex
//!   registration is root-*vertex*-label work, not edge-label work).
//! * **Shared candidate index.** Distinct queries whose execution trees
//!   contain equal-signature edges (same edge label, child label set, and
//!   orientation) re-filter identical adjacency runs. The fleet maintains
//!   one [`SharedCandidateIndex`] — updated once per op, exactly in step
//!   with the graph — and engines read candidate runs from it during DCG
//!   builds instead of re-scanning (see [`crate::shared_index`]). The
//!   [`crate::TurboFluxConfig::fleet_shared_index`] flag is the per-engine
//!   ablation switch.
//!
//! [`Fleet::stats`] reports routing and sharing counters.
//!
//! # Concurrency model
//!
//! Updates must be evaluated against precise graph states — an insertion
//! after the edge entered the graph, a deletion before it left — so a batch
//! cannot simply be partitioned. Instead each batch runs as a sequence of
//! per-op *rounds* inside one [`std::thread::scope`]:
//!
//! 1. the driver stages op `i` (mutates the graph and the shared index
//!    under a write lock and derives a [`Round`] plan plus the routed
//!    target list),
//! 2. workers wake on a barrier and claim targets off a shared atomic
//!    cursor (work stealing — engines with expensive queries don't convoy
//!    the cheap ones), each evaluating the round against the shared
//!    read-locked graph and index,
//! 3. a second barrier ends the round and the driver finalizes the op
//!    (deletions leave the graph only after every engine evaluated them).
//!
//! Engines never touch each other's state; each is guarded by its own
//! (uncontended) mutex so the borrow checker can hand disjoint `&mut`s to
//! whichever worker claimed it.
//!
//! # Determinism
//!
//! Workers buffer matches per engine, tagged with the op index. Engines
//! process ops strictly in order, so every buffer is naturally sorted by op
//! index, and after the scope ends the buffers are drained in engine-id
//! order. The emitted sequence is therefore ordered by `(engine, op_index,
//! engine-internal emission order)` — byte-identical to
//! [`Fleet::apply_batch_sequential`] and independent of thread count,
//! scheduling, routing, and candidate sourcing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use rustc_hash::FxHashMap;
use tfx_graph::{DynamicGraph, LabelId, LabelSet, UpdateOp, VertexId};
use tfx_query::{MatchRecord, Positiveness, QueryGraph};

use crate::config::TurboFluxConfig;
use crate::engine::TurboFlux;
use crate::shared_index::SharedCandidateIndex;
use crate::shared_subtree::{canonical_branch, FleetCtx, SharedSubtrees};

/// One buffered match: `(op index, positiveness, mapping)`.
type Pending = (usize, Positiveness, MatchRecord);

/// A match delta reported by [`Fleet::apply_batch`].
#[derive(Clone, Copy, Debug)]
pub struct FleetDelta<'a> {
    /// The engine (stable registration id) the match belongs to.
    pub engine: usize,
    /// Index of the triggering op within the batch.
    pub op_index: usize,
    /// Positive (appeared) or negative (disappeared).
    pub positiveness: Positiveness,
    /// The complete mapping. Borrowed from the batch buffer; clone to keep.
    pub record: &'a MatchRecord,
}

/// Multi-query-optimization counters, cumulative over a [`Fleet`]'s
/// lifetime (deregistered engines' contributions are retained).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Engine-evaluations of edge ops that were dispatched (the engine had
    /// a query edge that could match the op's label).
    pub ops_routed: u64,
    /// Engine-evaluations of edge ops that were skipped by routing.
    pub ops_skipped: u64,
    /// DCG candidate collections served from the shared index.
    pub shared_hits: u64,
    /// DCG candidate collections that fell back to a private adjacency
    /// scan while the shared index was in use (unshareable tree edge).
    pub shared_misses: u64,
    /// Live shared subtree instances currently serving ≥ 2 engines (a
    /// gauge, not a cumulative counter).
    pub subtrees_shared: u64,
    /// DCG build/clear regions engines skipped because a shared subtree
    /// instance already maintains them.
    pub subtree_hits: u64,
    /// Edge evaluations engines ran against their private suffix while
    /// bound branches were served by shared instances.
    pub suffix_evals: u64,
}

/// Per-op evaluation plan, derived once by the driver and executed by every
/// targeted engine. Graph mutations happen in the driver (`stage` /
/// `finalize`); rounds only read the graph.
#[derive(Clone, Copy, Debug)]
enum Round {
    /// No-op (duplicate edge, missing edge, known vertex).
    Skip,
    /// Vertices with id ≥ `from` are new: register start candidates.
    Register { from: VertexId },
    /// The edge was inserted (and vertices ≥ `from` created for it).
    Insert { from: VertexId, src: VertexId, label: LabelId, dst: VertexId },
    /// The edge is about to be deleted; it is still present in the graph.
    Delete { src: VertexId, label: LabelId, dst: VertexId },
}

/// Applies the graph-mutating half of `op` that must precede evaluation
/// (keeping the shared candidate index and the shared subtree instances
/// exactly in step with the graph) and plans the engines' round. Insertion
/// maintenance of the subtree instances runs here — before any engine
/// evaluates — so suffix climbs read post-op shared state (a superset of
/// the naive mid-op state; the order filter discards the difference).
fn stage(
    graph: &mut DynamicGraph,
    shared: &mut SharedCandidateIndex,
    subtrees: &mut SharedSubtrees,
    op: &UpdateOp,
) -> Round {
    match *op {
        UpdateOp::AddVertex { .. } => {
            let from = VertexId(graph.vertex_count() as u32);
            if graph.apply(op) {
                subtrees.register_new_vertices(graph, from);
                Round::Register { from }
            } else {
                Round::Skip
            }
        }
        UpdateOp::InsertEdge { src, label, dst } => {
            let from = VertexId(graph.vertex_count() as u32);
            // Tolerate label-less straggler endpoints, exactly like the
            // standalone `TurboFlux::apply_op`.
            let hi = src.0.max(dst.0);
            if hi >= from.0 {
                graph.ensure_vertex(VertexId(hi), LabelSet::empty());
            }
            if graph.insert_edge(src, label, dst) {
                shared.insert_edge(graph, src, label, dst);
                if graph.vertex_count() as u32 > from.0 {
                    subtrees.register_new_vertices(graph, from);
                }
                subtrees.maintain_insert(graph, src, label, dst);
                Round::Insert { from, src, label, dst }
            } else if graph.vertex_count() as u32 > from.0 {
                subtrees.register_new_vertices(graph, from);
                Round::Register { from }
            } else {
                Round::Skip
            }
        }
        UpdateOp::DeleteEdge { src, label, dst } => {
            if graph.has_edge(src, label, dst) {
                Round::Delete { src, label, dst }
            } else {
                Round::Skip
            }
        }
    }
}

/// Applies the graph-mutating half of an op that must *follow* evaluation.
/// Deletion maintenance of the subtree instances runs here — after every
/// engine evaluated — so suffix climbs read frozen pre-op shared state (a
/// superset of the naive mid-op state, discarded the same way).
fn finalize(
    graph: &mut DynamicGraph,
    shared: &mut SharedCandidateIndex,
    subtrees: &mut SharedSubtrees,
    round: &Round,
) {
    if let Round::Delete { src, label, dst } = *round {
        subtrees.maintain_delete(graph, src, label, dst);
        shared.delete_edge(src, label, dst);
        graph.delete_edge(src, label, dst);
    }
}

/// Appends the routed target list for `round` to the cleared `out`:
/// `(engine position, evaluate)` pairs in ascending position order.
/// Non-listed engines provably have nothing to do; listed-but-not-evaluate
/// engines only register new vertices.
fn plan_round(
    routing: &FxHashMap<LabelId, Vec<usize>>,
    wildcard: &[usize],
    nengines: usize,
    graph: &DynamicGraph,
    round: &Round,
    out: &mut Vec<(usize, bool)>,
) {
    out.clear();
    match *round {
        Round::Skip => {}
        Round::Register { .. } => out.extend((0..nengines).map(|p| (p, true))),
        Round::Insert { from, label, .. } => {
            let routed = routing.get(&label).map_or(&[][..], Vec::as_slice);
            if (from.0 as usize) < graph.vertex_count() {
                // The op also created vertices: every engine registers
                // start candidates; only interested ones evaluate the edge.
                let mut interested = merge_sorted(routed, wildcard);
                out.extend((0..nengines).map(|p| {
                    let eval = interested.peek() == Some(&p);
                    if eval {
                        interested.next();
                    }
                    (p, eval)
                }));
            } else {
                out.extend(merge_sorted(routed, wildcard).map(|p| (p, true)));
            }
        }
        Round::Delete { label, .. } => {
            let routed = routing.get(&label).map_or(&[][..], Vec::as_slice);
            out.extend(merge_sorted(routed, wildcard).map(|p| (p, true)));
        }
    }
}

/// Merges two ascending, individually duplicate-free position lists into
/// one ascending deduplicated iterator (an engine can appear in both: a
/// labeled bucket and the wildcard list).
fn merge_sorted<'a>(
    a: &'a [usize],
    b: &'a [usize],
) -> std::iter::Peekable<impl Iterator<Item = usize> + 'a> {
    let (mut i, mut j) = (0, 0);
    std::iter::from_fn(move || {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    if x == y {
                        j += 1;
                    }
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => return None,
        };
        Some(next)
    })
    .peekable()
}

/// Counts an edge-op round's routing outcome into the fleet counters.
fn count_round(round: &Round, targets: &[(usize, bool)], nengines: usize) -> (u64, u64) {
    match round {
        Round::Insert { .. } | Round::Delete { .. } => {
            let evals = targets.iter().filter(|t| t.1).count() as u64;
            (evals, nengines as u64 - evals)
        }
        _ => (0, 0),
    }
}

/// Runs one round on one engine, buffering its matches. `eval == false`
/// restricts an `Insert` round to vertex registration (the engine was not
/// routed the edge itself).
#[allow(clippy::too_many_arguments)]
fn run_round(
    engine: &mut TurboFlux,
    g: &DynamicGraph,
    shared: &SharedCandidateIndex,
    subtrees: &SharedSubtrees,
    op_index: usize,
    round: &Round,
    eval: bool,
    buf: &mut Vec<Pending>,
) {
    let fleet = FleetCtx { idx: engine.uses_shared_index().then_some(shared), sub: Some(subtrees) };
    match *round {
        Round::Skip => {}
        Round::Register { from } => engine.register_new_vertices(g, from),
        Round::Insert { from, src, label, dst } => {
            engine.register_new_vertices(g, from);
            if eval {
                engine.eval_inserted_edge_in(g, fleet, src, label, dst, &mut |p, r| {
                    buf.push((op_index, p, r.clone()));
                });
            }
        }
        Round::Delete { src, label, dst } => {
            if eval {
                engine.eval_deleting_edge_in(g, fleet, src, label, dst, &mut |p, r| {
                    buf.push((op_index, p, r.clone()));
                });
            }
        }
    }
}

/// Post-finalize matching-order maintenance for one shared-branch engine:
/// the in-eval adjust is suppressed for such engines (effective counts
/// fold in instance state, which for deletions settles only at finalize),
/// so the driver runs the drift check here, once per routed engine per
/// edge op.
fn adjust_shared_order(engine: &mut TurboFlux, subtrees: &SharedSubtrees) {
    if engine.has_shared_branches() {
        engine.maybe_adjust_order_in(FleetCtx { idx: None, sub: Some(subtrees) });
    }
}

/// Drains the per-engine buffers in deterministic `(engine id, op_index)`
/// order (each buffer is already sorted by op index; `ids` ascend with
/// position, so position order is id order).
fn emit(ids: &[usize], bufs: &[Vec<Pending>], sink: &mut dyn FnMut(FleetDelta<'_>)) {
    for (pos, buf) in bufs.iter().enumerate() {
        debug_assert!(buf.windows(2).all(|w| w[0].0 <= w[1].0));
        let engine = ids[pos];
        for (op_index, p, rec) in buf {
            sink(FleetDelta { engine, op_index: *op_index, positiveness: *p, record: rec });
        }
    }
}

/// A set of continuous queries evaluated together over one streaming graph.
pub struct Fleet {
    graph: DynamicGraph,
    shared: SharedCandidateIndex,
    subtrees: SharedSubtrees,
    engines: Vec<TurboFlux>,
    /// Stable registration id per engine position; strictly ascending
    /// ([`Fleet::deregister`] removes, never renumbers), so position order
    /// is id order and [`FleetDelta`]s stay sorted by `(engine, op_index)`.
    ids: Vec<usize>,
    next_id: usize,
    /// Edge label → engine positions with a query edge of that label
    /// (ascending). Rebuilt on register/deregister.
    routing: FxHashMap<LabelId, Vec<usize>>,
    /// Engine positions with label-wildcard query edges: interested in
    /// every edge op (ascending).
    wildcard: Vec<usize>,
    ops_routed: u64,
    ops_skipped: u64,
    /// Shared-index counters drained from deregistered engines (live
    /// engines keep their own; [`Fleet::stats`] sums both).
    drained_hits: u64,
    drained_misses: u64,
    /// Subtree counters drained from deregistered engines.
    drained_subtree_hits: u64,
    drained_suffix_evals: u64,
    threads: usize,
}

impl Fleet {
    /// A fleet over `g0` using all available parallelism.
    pub fn new(g0: DynamicGraph) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::with_threads(g0, threads)
    }

    /// A fleet over `g0` evaluating batches on up to `threads` worker
    /// threads (clamped to ≥ 1; `1` evaluates inline without spawning).
    pub fn with_threads(g0: DynamicGraph, threads: usize) -> Self {
        Fleet {
            graph: g0,
            shared: SharedCandidateIndex::new(),
            subtrees: SharedSubtrees::new(),
            engines: Vec::new(),
            ids: Vec::new(),
            next_id: 0,
            routing: FxHashMap::default(),
            wildcard: Vec::new(),
            ops_routed: 0,
            ops_skipped: 0,
            drained_hits: 0,
            drained_misses: 0,
            drained_subtree_hits: 0,
            drained_suffix_evals: 0,
            threads: threads.max(1),
        }
    }

    /// Registers a query against the current graph state, building its DCG,
    /// entering it into the op-routing table, and binding its shareable
    /// tree edges to the shared candidate index (unless
    /// [`TurboFluxConfig::fleet_shared_index`] is off). Returns the
    /// engine's stable id, used in [`FleetDelta::engine`] and
    /// [`Fleet::deregister`]; ids are never reused.
    ///
    /// Fleet engines are capped to the fleet's thread budget for
    /// intra-update parallelism; [`Fleet::apply_batch`] tightens the cap
    /// further while several engines evaluate concurrently.
    pub fn register(&mut self, q: QueryGraph, cfg: TurboFluxConfig) -> usize {
        let mut engine = TurboFlux::analyze(q, &self.graph, cfg, None, None);
        engine.set_worker_budget(self.threads);
        if cfg.fleet_shared_subtrees {
            // Bind every complete root-child subtree with at least one
            // grandchild to a (refcounted, possibly pre-existing) shared
            // instance; the initial build below then skips those regions.
            let root = engine.query_tree().root();
            let branch_roots: Vec<_> = engine
                .query_tree()
                .children(root)
                .iter()
                .copied()
                .filter(|&c| !engine.query_tree().children(c).is_empty())
                .collect();
            for c in branch_roots {
                let (key, mapping) = canonical_branch(engine.query(), engine.query_tree(), c);
                let inst = self.subtrees.acquire(&self.graph, key);
                engine.bind_branch(c, inst, &mapping);
            }
        }
        if cfg.fleet_shared_index {
            let nq = engine.query().vertex_count();
            for ui in 0..nq as u32 {
                let u = tfx_query::QVertexId(ui);
                // Vertices inside bound branches are never built privately,
                // so a per-edge signature would be dead weight.
                if engine.branch_nodes[u.index()].is_some() {
                    continue;
                }
                if let Some(key) = engine.shared_sig_key(u) {
                    engine.shared_sigs[u.index()] = Some(self.shared.acquire(&self.graph, key));
                }
            }
        }
        let fleet = FleetCtx {
            idx: cfg.fleet_shared_index.then_some(&self.shared),
            sub: Some(&self.subtrees),
        };
        engine.finish_registration(&self.graph, fleet);
        self.engines.push(engine);
        let id = self.next_id;
        self.next_id += 1;
        self.ids.push(id);
        self.rebuild_routing();
        id
    }

    /// Removes the engine registered as `id`, releasing its shared-index
    /// signatures and rebuilding the routing table. Its counters fold into
    /// [`Fleet::stats`]. Returns `false` if `id` is unknown (already
    /// deregistered or never issued).
    pub fn deregister(&mut self, id: usize) -> bool {
        let Ok(pos) = self.ids.binary_search(&id) else {
            return false;
        };
        self.ids.remove(pos);
        let engine = self.engines.remove(pos);
        for sig in engine.shared_sigs.iter().flatten() {
            self.shared.release(*sig);
        }
        for b in &engine.branches {
            self.subtrees.release(b.inst);
        }
        self.drained_hits += engine.shared_hits;
        self.drained_misses += engine.shared_misses;
        self.drained_subtree_hits += engine.subtree_hits;
        self.drained_suffix_evals += engine.suffix_evals;
        self.rebuild_routing();
        true
    }

    /// Rebuilds the label → interested-positions table and the wildcard
    /// list from the engines' query-edge buckets. Positions are pushed in
    /// ascending order, so every list stays sorted.
    fn rebuild_routing(&mut self) {
        self.routing.clear();
        self.wildcard.clear();
        for (pos, engine) in self.engines.iter().enumerate() {
            for &label in engine.qedge_by_label.keys() {
                self.routing.entry(label).or_default().push(pos);
            }
            if !engine.qedge_wildcard.is_empty() {
                self.wildcard.push(pos);
            }
        }
    }

    /// The shared data graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The fleet-shared candidate index.
    pub fn shared_index(&self) -> &SharedCandidateIndex {
        &self.shared
    }

    /// Engine position for a stable registration id.
    fn pos_of(&self, id: usize) -> usize {
        self.ids.binary_search(&id).expect("unknown or deregistered engine id")
    }

    /// The engine registered as `id`.
    pub fn engine(&self, id: usize) -> &TurboFlux {
        &self.engines[self.pos_of(id)]
    }

    /// Number of registered engines.
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// Stable ids of all registered engines, ascending.
    pub fn engine_ids(&self) -> &[usize] {
        &self.ids
    }

    /// Configured worker-thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The fleet-shared subtree store.
    pub fn shared_subtrees(&self) -> &SharedSubtrees {
        &self.subtrees
    }

    /// Cumulative routing and sharing counters (`subtrees_shared` is a
    /// live gauge: instances currently serving ≥ 2 engines).
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            ops_routed: self.ops_routed,
            ops_skipped: self.ops_skipped,
            shared_hits: self.drained_hits,
            shared_misses: self.drained_misses,
            subtrees_shared: self.subtrees.shared_instance_count() as u64,
            subtree_hits: self.drained_subtree_hits,
            suffix_evals: self.drained_suffix_evals,
        };
        for engine in &self.engines {
            stats.shared_hits += engine.shared_hits;
            stats.shared_misses += engine.shared_misses;
            stats.subtree_hits += engine.subtree_hits;
            stats.suffix_evals += engine.suffix_evals;
        }
        stats
    }

    /// Reports all matches of engine `id` against the current graph state.
    pub fn report_initial(&mut self, id: usize, sink: &mut dyn FnMut(&MatchRecord)) {
        let pos = self.pos_of(id);
        let Fleet { graph, subtrees, engines, .. } = self;
        let fleet = FleetCtx { idx: None, sub: Some(subtrees) };
        engines[pos].initial_matches_ctx(graph, fleet, sink);
    }

    /// Applies a batch of updates to the shared graph, evaluating every
    /// routed engine, in parallel when the fleet has both threads and
    /// engines to spare. Matches are buffered per batch and delivered in
    /// deterministic `(engine, op_index, emission)` order — identical to
    /// [`Fleet::apply_batch_sequential`] regardless of thread count.
    pub fn apply_batch(&mut self, ops: &[UpdateOp], sink: &mut dyn FnMut(FleetDelta<'_>)) {
        let workers = self.threads.min(self.engines.len());
        if workers <= 1 || ops.is_empty() {
            return self.apply_batch_sequential(ops, sink);
        }
        // Nested parallelism cap: with `workers` fleet threads evaluating
        // engines concurrently, each engine's intra-update fan-out gets an
        // equal share so fleet × update workers never exceed the budget.
        // Intra-update output is byte-identical for any worker count, so
        // the cap cannot perturb the emitted delta order.
        let budget = (self.threads / workers).max(1);
        for engine in &mut self.engines {
            engine.set_worker_budget(budget);
        }
        let Fleet {
            graph,
            shared,
            subtrees,
            engines,
            ids,
            routing,
            wildcard,
            ops_routed,
            ops_skipped,
            ..
        } = &mut *self;
        let nengines = engines.len();
        let mut bufs: Vec<Vec<Pending>> = std::iter::repeat_with(Vec::new).take(nengines).collect();
        let (mut routed_acc, mut skipped_acc) = (0u64, 0u64);
        {
            // Each engine (plus its buffer) behind its own mutex: exactly
            // one worker claims it per round, so locks never contend; the
            // mutex exists to hand out disjoint `&mut`s safely.
            let slots: Vec<Mutex<(&mut TurboFlux, &mut Vec<Pending>)>> =
                engines.iter_mut().zip(bufs.iter_mut()).map(|(e, b)| Mutex::new((e, b))).collect();
            // Workers read the graph, shared index, and subtree store
            // during rounds; the driver writes them strictly between
            // rounds (while no read guard is held, by the barrier
            // protocol), so this lock never blocks anyone.
            let state = RwLock::new((
                std::mem::take(graph),
                std::mem::take(shared),
                std::mem::take(subtrees),
            ));
            let cursor = AtomicUsize::new(0);
            let barrier = Barrier::new(workers + 1);
            let round: RwLock<(usize, Round)> = RwLock::new((0, Round::Skip));
            // Routed target list for the current round, rewritten by the
            // driver while it holds the state write lock.
            let targets: RwLock<Vec<(usize, bool)>> = RwLock::new(Vec::new());
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        for _ in 0..ops.len() {
                            barrier.wait(); // round published
                            {
                                let st = state.read().unwrap();
                                let (g, sh, sub) = &*st;
                                let (op_index, rd) = *round.read().unwrap();
                                let tg = targets.read().unwrap();
                                // Work stealing: grab the next unclaimed
                                // target until none are left.
                                loop {
                                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                                    if t >= tg.len() {
                                        break;
                                    }
                                    let (pos, eval) = tg[t];
                                    let mut slot = slots[pos].lock().unwrap();
                                    let (engine, buf) = &mut *slot;
                                    run_round(engine, g, sh, sub, op_index, &rd, eval, buf);
                                }
                            } // read guards dropped before the barrier
                            barrier.wait(); // round complete
                        }
                    });
                }
                for (op_index, op) in ops.iter().enumerate() {
                    {
                        let mut st = state.write().unwrap();
                        let (g, sh, sub) = &mut *st;
                        let rd = stage(g, sh, sub, op);
                        let mut tg = targets.write().unwrap();
                        plan_round(routing, wildcard, nengines, g, &rd, &mut tg);
                        let (r, sk) = count_round(&rd, &tg, nengines);
                        routed_acc += r;
                        skipped_acc += sk;
                        *round.write().unwrap() = (op_index, rd);
                    }
                    cursor.store(0, Ordering::SeqCst);
                    barrier.wait(); // start the round
                    barrier.wait(); // every routed engine evaluated
                    let rd = round.read().unwrap().1;
                    let mut st = state.write().unwrap();
                    let (g, sh, sub) = &mut *st;
                    finalize(g, sh, sub, &rd);
                    if matches!(rd, Round::Insert { .. } | Round::Delete { .. }) {
                        let tg = targets.read().unwrap();
                        for &(pos, eval) in tg.iter() {
                            if eval {
                                let mut slot = slots[pos].lock().unwrap();
                                adjust_shared_order(slot.0, sub);
                            }
                        }
                    }
                }
            });
            let (g, sh, sub) = state.into_inner().unwrap();
            *graph = g;
            *shared = sh;
            *subtrees = sub;
        }
        *ops_routed += routed_acc;
        *ops_skipped += skipped_acc;
        emit(ids, &bufs, sink);
    }

    /// Single-threaded reference implementation of [`Fleet::apply_batch`]:
    /// same staging, same routing, same buffering, same output order. Used
    /// as the determinism oracle and the benchmark baseline.
    pub fn apply_batch_sequential(
        &mut self,
        ops: &[UpdateOp],
        sink: &mut dyn FnMut(FleetDelta<'_>),
    ) {
        // Engines run one at a time here, so each may use the full budget.
        for engine in &mut self.engines {
            engine.set_worker_budget(self.threads);
        }
        let Fleet {
            graph,
            shared,
            subtrees,
            engines,
            ids,
            routing,
            wildcard,
            ops_routed,
            ops_skipped,
            ..
        } = &mut *self;
        let nengines = engines.len();
        let mut bufs: Vec<Vec<Pending>> = std::iter::repeat_with(Vec::new).take(nengines).collect();
        let mut targets: Vec<(usize, bool)> = Vec::new();
        for (op_index, op) in ops.iter().enumerate() {
            let round = stage(graph, shared, subtrees, op);
            plan_round(routing, wildcard, nengines, graph, &round, &mut targets);
            let (r, sk) = count_round(&round, &targets, nengines);
            *ops_routed += r;
            *ops_skipped += sk;
            for &(pos, eval) in &targets {
                run_round(
                    &mut engines[pos],
                    graph,
                    shared,
                    subtrees,
                    op_index,
                    &round,
                    eval,
                    &mut bufs[pos],
                );
            }
            finalize(graph, shared, subtrees, &round);
            if matches!(round, Round::Insert { .. } | Round::Delete { .. }) {
                for &(pos, eval) in &targets {
                    if eval {
                        adjust_shared_order(&mut engines[pos], subtrees);
                    }
                }
            }
        }
        emit(ids, &bufs, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// g0: a:A, b:B, c:A; q1 = A-7->B, q2 = A-7->B<-8-A.
    fn setup() -> (DynamicGraph, Vec<QueryGraph>) {
        let mut g = DynamicGraph::new();
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(1)));
        g.add_vertex(LabelSet::single(l(0)));

        let mut q1 = QueryGraph::new();
        let a = q1.add_vertex(LabelSet::single(l(0)));
        let b = q1.add_vertex(LabelSet::single(l(1)));
        q1.add_edge(a, b, Some(l(7)));

        let mut q2 = QueryGraph::new();
        let a = q2.add_vertex(LabelSet::single(l(0)));
        let b = q2.add_vertex(LabelSet::single(l(1)));
        let c = q2.add_vertex(LabelSet::single(l(0)));
        q2.add_edge(a, b, Some(l(7)));
        q2.add_edge(c, b, Some(l(8)));

        (g, vec![q1, q2])
    }

    fn ops() -> Vec<UpdateOp> {
        use UpdateOp::*;
        let v = VertexId;
        vec![
            InsertEdge { src: v(0), label: l(7), dst: v(1) },
            InsertEdge { src: v(2), label: l(8), dst: v(1) },
            InsertEdge { src: v(2), label: l(7), dst: v(1) },
            InsertEdge { src: v(0), label: l(7), dst: v(1) }, // duplicate: skip
            DeleteEdge { src: v(0), label: l(7), dst: v(1) },
            DeleteEdge { src: v(0), label: l(7), dst: v(1) }, // missing: skip
            AddVertex { id: v(3), labels: LabelSet::single(l(0)) },
            InsertEdge { src: v(3), label: l(7), dst: v(1) },
        ]
    }

    fn collect_batch(
        fleet: &mut Fleet,
        ops: &[UpdateOp],
        parallel: bool,
    ) -> Vec<(usize, usize, Positiveness, MatchRecord)> {
        let mut out = Vec::new();
        let mut sink = |d: FleetDelta<'_>| {
            out.push((d.engine, d.op_index, d.positiveness, d.record.clone()));
        };
        if parallel {
            fleet.apply_batch(ops, &mut sink);
        } else {
            fleet.apply_batch_sequential(ops, &mut sink);
        }
        out
    }

    #[test]
    fn parallel_equals_sequential_equals_standalone() {
        let (g0, queries) = setup();

        let mut par = Fleet::with_threads(g0.clone(), 4);
        let mut seq = Fleet::with_threads(g0.clone(), 1);
        for q in &queries {
            par.register(q.clone(), TurboFluxConfig::default());
            seq.register(q.clone(), TurboFluxConfig::default());
        }
        let got_par = collect_batch(&mut par, &ops(), true);
        let got_seq = collect_batch(&mut seq, &ops(), false);
        assert_eq!(got_par, got_seq);
        assert!(!got_par.is_empty());
        assert_eq!(par.graph().edge_count(), seq.graph().edge_count());

        // Standalone engines applying the ops one by one are the oracle.
        let mut want = Vec::new();
        for (id, q) in queries.iter().enumerate() {
            let mut engine = TurboFlux::new(q.clone(), g0.clone(), TurboFluxConfig::default());
            for (op_index, op) in ops().iter().enumerate() {
                engine.apply_op(op, &mut |p, r| want.push((id, op_index, p, r.clone())));
            }
        }
        assert_eq!(got_par, want);
    }

    #[test]
    fn deltas_are_ordered_and_graph_advances() {
        let (g0, queries) = setup();
        let mut fleet = Fleet::with_threads(g0, 4);
        for q in queries {
            fleet.register(q, TurboFluxConfig::default());
        }
        let got = collect_batch(&mut fleet, &ops(), true);
        assert!(
            got.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "deltas must be sorted by (engine, op_index)"
        );
        // Final graph state: edges 2-8->1, 2-7->1, 3-7->1 and vertex 3.
        assert_eq!(fleet.graph().vertex_count(), 4);
        assert_eq!(fleet.graph().edge_count(), 3);
    }

    #[test]
    fn report_initial_sees_registration_time_state() {
        let (mut g0, queries) = setup();
        g0.insert_edge(VertexId(0), l(7), VertexId(1));
        let mut fleet = Fleet::new(g0);
        let id = fleet.register(queries[0].clone(), TurboFluxConfig::default());
        let mut n = 0;
        fleet.report_initial(id, &mut |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_batches_and_empty_fleets_are_fine() {
        let (g0, queries) = setup();
        let mut fleet = Fleet::with_threads(g0, 8);
        assert_eq!(fleet.engine_count(), 0);
        // No engines: the graph still advances.
        fleet.apply_batch(&ops()[..3], &mut |_| panic!("no engines, no deltas"));
        assert_eq!(fleet.graph().edge_count(), 3);
        let id = fleet.register(queries[0].clone(), TurboFluxConfig::default());
        fleet.apply_batch(&[], &mut |_| panic!("empty batch"));
        assert_eq!(id, 0);
    }

    #[test]
    fn routing_skips_uninterested_engines() {
        let (g0, queries) = setup();
        let mut fleet = Fleet::with_threads(g0, 1);
        for q in &queries {
            fleet.register(q.clone(), TurboFluxConfig::default());
        }
        // Label 7 interests both engines; label 8 only q2; label 99 nobody.
        let v = VertexId;
        let batch = vec![
            UpdateOp::InsertEdge { src: v(0), label: l(7), dst: v(1) }, // routed: 2
            UpdateOp::InsertEdge { src: v(2), label: l(8), dst: v(1) }, // routed: 1
            UpdateOp::InsertEdge { src: v(2), label: l(99), dst: v(1) }, // routed: 0
            UpdateOp::DeleteEdge { src: v(2), label: l(99), dst: v(1) }, // routed: 0
        ];
        fleet.apply_batch(&batch, &mut |_| {});
        let stats = fleet.stats();
        assert_eq!(stats.ops_routed, 3);
        assert_eq!(stats.ops_skipped, 5);
    }

    #[test]
    fn wildcard_queries_are_always_interested() {
        let (g0, _) = setup();
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(a, b, None); // any edge label
        let mut fleet = Fleet::with_threads(g0, 1);
        fleet.register(q, TurboFluxConfig::default());
        let mut n = 0;
        fleet.apply_batch(
            &[UpdateOp::InsertEdge { src: VertexId(0), label: l(99), dst: VertexId(1) }],
            &mut |_| n += 1,
        );
        assert_eq!(n, 1, "wildcard engine must see the exotic-label edge");
        let stats = fleet.stats();
        assert_eq!(stats.ops_routed, 1);
        assert_eq!(stats.ops_skipped, 0);
    }

    #[test]
    fn register_deregister_register_churn() {
        let (g0, queries) = setup();
        let mut fleet = Fleet::with_threads(g0.clone(), 2);
        let id1 = fleet.register(queries[0].clone(), TurboFluxConfig::default());
        let id2 = fleet.register(queries[1].clone(), TurboFluxConfig::default());
        assert_eq!((id1, id2), (0, 1));
        assert!(fleet.shared_index().signature_count() > 0);

        assert!(fleet.deregister(id1));
        assert!(!fleet.deregister(id1), "double deregister is rejected");
        assert_eq!(fleet.engine_count(), 1);
        assert_eq!(fleet.engine_ids(), &[1]);

        // The survivor keeps matching under its stable id.
        let batch = ops();
        let got = collect_batch(&mut fleet, &batch, true);
        assert!(got.iter().all(|d| d.0 == id2), "only engine 1 is left");
        assert!(!got.is_empty());

        // Re-registration gets a fresh id and a routing entry.
        let id3 = fleet.register(queries[0].clone(), TurboFluxConfig::default());
        assert_eq!(id3, 2, "ids are never reused");
        assert_eq!(fleet.engine_ids(), &[1, 2]);
        let mut n = 0;
        fleet.report_initial(id3, &mut |_| n += 1);
        assert_eq!(n, 2, "fresh engine sees the post-batch graph (2-7->1, 3-7->1)");

        // Deregistering everything releases every shared signature.
        assert!(fleet.deregister(id2));
        assert!(fleet.deregister(id3));
        assert_eq!(fleet.shared_index().signature_count(), 0);
        assert_eq!(fleet.engine_count(), 0);

        // An empty fleet still advances the graph.
        fleet.apply_batch(
            &[UpdateOp::DeleteEdge { src: VertexId(2), label: l(7), dst: VertexId(1) }],
            &mut |_| panic!("no engines"),
        );
    }

    #[test]
    fn shared_index_counters_are_nonvacuous_and_ablatable() {
        // Shared-index hits need depth: a path A-7->B-8->C rooted at A
        // collects C-candidates whenever a 7-edge builds a B below the
        // root. g0 makes the 7-edge the most selective (so the tree roots
        // at u0) and pre-seeds 8-edges for the candidate runs.
        let v = VertexId;
        let mut g0 = DynamicGraph::new();
        g0.add_vertex(LabelSet::single(l(0))); // v0: A
        g0.add_vertex(LabelSet::single(l(1))); // v1: B
        g0.add_vertex(LabelSet::single(l(2))); // v2: C
        g0.add_vertex(LabelSet::single(l(1))); // v3: B
        g0.add_vertex(LabelSet::single(l(2))); // v4: C
        g0.insert_edge(v(1), l(8), v(2));
        g0.insert_edge(v(3), l(8), v(4));
        g0.insert_edge(v(3), l(8), v(2));
        g0.insert_edge(v(0), l(7), v(1));

        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b = q.add_vertex(LabelSet::single(l(1)));
        let c = q.add_vertex(LabelSet::single(l(2)));
        q.add_edge(a, b, Some(l(7)));
        q.add_edge(b, c, Some(l(8)));

        // Subtree sharing off for both fleets: the B->C branch would
        // otherwise be served by a shared instance and never touch the
        // per-edge index this test exercises.
        let mut on = Fleet::with_threads(g0.clone(), 1);
        let mut off = Fleet::with_threads(g0, 1);
        for _ in 0..2 {
            on.register(
                q.clone(),
                TurboFluxConfig { fleet_shared_subtrees: false, ..TurboFluxConfig::default() },
            );
            off.register(
                q.clone(),
                TurboFluxConfig {
                    fleet_shared_index: false,
                    fleet_shared_subtrees: false,
                    ..TurboFluxConfig::default()
                },
            );
        }
        assert!(on.shared_index().signature_count() > 0);
        assert_eq!(
            on.shared_index().signature_count(),
            2,
            "identical queries share their (7,B)/(8,C) signatures"
        );
        assert_eq!(off.shared_index().signature_count(), 0);
        let batch = vec![
            UpdateOp::InsertEdge { src: v(0), label: l(7), dst: v(3) },
            UpdateOp::DeleteEdge { src: v(0), label: l(7), dst: v(3) },
            UpdateOp::InsertEdge { src: v(0), label: l(7), dst: v(3) },
        ];
        let got_on = collect_batch(&mut on, &batch, false);
        let got_off = collect_batch(&mut off, &batch, false);
        assert_eq!(got_on, got_off, "ablation must not change output");
        assert!(!got_on.is_empty());
        assert!(on.stats().shared_hits > 0, "shared runs actually served");
        assert_eq!(off.stats().shared_hits, 0);
        assert_eq!(off.stats().shared_misses, 0, "flag-off engines never consult the index");
    }
}
