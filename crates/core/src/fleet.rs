//! Batched, parallel multi-query evaluation over one shared update stream.
//!
//! Real deployments register many continuous queries against the same
//! streaming graph. A [`Fleet`] owns the single [`DynamicGraph`] and `N`
//! independent [`TurboFlux`] engines (one DCG per query) and evaluates
//! update batches with [`Fleet::apply_batch`], fanning the per-update
//! evaluation out across OS threads.
//!
//! # Concurrency model
//!
//! Updates must be evaluated against precise graph states — an insertion
//! after the edge entered the graph, a deletion before it left — so a batch
//! cannot simply be partitioned. Instead each batch runs as a sequence of
//! per-op *rounds* inside one [`std::thread::scope`]:
//!
//! 1. the driver stages op `i` (mutates the graph under a write lock and
//!    derives a [`Round`] plan),
//! 2. workers wake on a barrier and claim engines off a shared atomic
//!    cursor (work stealing — engines with expensive queries don't convoy
//!    the cheap ones), each evaluating the round against the shared
//!    read-locked graph,
//! 3. a second barrier ends the round and the driver finalizes the op
//!    (deletions leave the graph only after every engine evaluated them).
//!
//! Engines never touch each other's state; each is guarded by its own
//! (uncontended) mutex so the borrow checker can hand disjoint `&mut`s to
//! whichever worker claimed it.
//!
//! # Determinism
//!
//! Workers buffer matches per engine, tagged with the op index. Engines
//! process ops strictly in order, so every buffer is naturally sorted by op
//! index, and after the scope ends the buffers are drained in engine-id
//! order. The emitted sequence is therefore ordered by `(engine, op_index,
//! engine-internal emission order)` — byte-identical to
//! [`Fleet::apply_batch_sequential`] and independent of thread count and
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use tfx_graph::{DynamicGraph, LabelId, LabelSet, UpdateOp, VertexId};
use tfx_query::{MatchRecord, Positiveness, QueryGraph};

use crate::config::TurboFluxConfig;
use crate::engine::TurboFlux;

/// One buffered match: `(op index, positiveness, mapping)`.
type Pending = (usize, Positiveness, MatchRecord);

/// A match delta reported by [`Fleet::apply_batch`].
#[derive(Clone, Copy, Debug)]
pub struct FleetDelta<'a> {
    /// The engine (registration index) the match belongs to.
    pub engine: usize,
    /// Index of the triggering op within the batch.
    pub op_index: usize,
    /// Positive (appeared) or negative (disappeared).
    pub positiveness: Positiveness,
    /// The complete mapping. Borrowed from the batch buffer; clone to keep.
    pub record: &'a MatchRecord,
}

/// Per-op evaluation plan, derived once by the driver and executed by every
/// engine. Graph mutations happen in the driver (`stage` / `finalize`);
/// rounds only read the graph.
#[derive(Clone, Copy, Debug)]
enum Round {
    /// No-op (duplicate edge, missing edge, known vertex).
    Skip,
    /// Vertices with id ≥ `from` are new: register start candidates.
    Register { from: VertexId },
    /// The edge was inserted (and vertices ≥ `from` created for it).
    Insert { from: VertexId, src: VertexId, label: LabelId, dst: VertexId },
    /// The edge is about to be deleted; it is still present in the graph.
    Delete { src: VertexId, label: LabelId, dst: VertexId },
}

/// Applies the graph-mutating half of `op` that must precede evaluation
/// and plans the engines' round.
fn stage(graph: &mut DynamicGraph, op: &UpdateOp) -> Round {
    match *op {
        UpdateOp::AddVertex { .. } => {
            let from = VertexId(graph.vertex_count() as u32);
            if graph.apply(op) {
                Round::Register { from }
            } else {
                Round::Skip
            }
        }
        UpdateOp::InsertEdge { src, label, dst } => {
            let from = VertexId(graph.vertex_count() as u32);
            // Tolerate label-less straggler endpoints, exactly like the
            // standalone `TurboFlux::apply_op`.
            let hi = src.0.max(dst.0);
            if hi >= from.0 {
                graph.ensure_vertex(VertexId(hi), LabelSet::empty());
            }
            if graph.insert_edge(src, label, dst) {
                Round::Insert { from, src, label, dst }
            } else if graph.vertex_count() as u32 > from.0 {
                Round::Register { from }
            } else {
                Round::Skip
            }
        }
        UpdateOp::DeleteEdge { src, label, dst } => {
            if graph.has_edge(src, label, dst) {
                Round::Delete { src, label, dst }
            } else {
                Round::Skip
            }
        }
    }
}

/// Applies the graph-mutating half of an op that must *follow* evaluation.
fn finalize(graph: &mut DynamicGraph, round: &Round) {
    if let Round::Delete { src, label, dst } = *round {
        graph.delete_edge(src, label, dst);
    }
}

/// Runs one round on one engine, buffering its matches.
fn run_round(
    engine: &mut TurboFlux,
    g: &DynamicGraph,
    op_index: usize,
    round: &Round,
    buf: &mut Vec<Pending>,
) {
    match *round {
        Round::Skip => {}
        Round::Register { from } => engine.register_new_vertices(g, from),
        Round::Insert { from, src, label, dst } => {
            engine.register_new_vertices(g, from);
            engine.eval_inserted_edge(g, src, label, dst, &mut |p, r| {
                buf.push((op_index, p, r.clone()));
            });
        }
        Round::Delete { src, label, dst } => {
            engine.eval_deleting_edge(g, src, label, dst, &mut |p, r| {
                buf.push((op_index, p, r.clone()));
            });
        }
    }
}

/// Drains the per-engine buffers in deterministic `(engine, op_index)`
/// order (each buffer is already sorted by op index).
fn emit(bufs: &[Vec<Pending>], sink: &mut dyn FnMut(FleetDelta<'_>)) {
    for (engine, buf) in bufs.iter().enumerate() {
        debug_assert!(buf.windows(2).all(|w| w[0].0 <= w[1].0));
        for (op_index, p, rec) in buf {
            sink(FleetDelta { engine, op_index: *op_index, positiveness: *p, record: rec });
        }
    }
}

/// A set of continuous queries evaluated together over one streaming graph.
pub struct Fleet {
    graph: DynamicGraph,
    engines: Vec<TurboFlux>,
    threads: usize,
}

impl Fleet {
    /// A fleet over `g0` using all available parallelism.
    pub fn new(g0: DynamicGraph) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::with_threads(g0, threads)
    }

    /// A fleet over `g0` evaluating batches on up to `threads` worker
    /// threads (clamped to ≥ 1; `1` evaluates inline without spawning).
    pub fn with_threads(g0: DynamicGraph, threads: usize) -> Self {
        Fleet { graph: g0, engines: Vec::new(), threads: threads.max(1) }
    }

    /// Registers a query against the current graph state, building its DCG.
    /// Returns the engine id used in [`FleetDelta::engine`].
    ///
    /// Fleet engines are capped to the fleet's thread budget for
    /// intra-update parallelism; [`Fleet::apply_batch`] tightens the cap
    /// further while several engines evaluate concurrently.
    pub fn register(&mut self, q: QueryGraph, cfg: TurboFluxConfig) -> usize {
        let mut engine = TurboFlux::register(q, &self.graph, cfg);
        engine.set_worker_budget(self.threads);
        self.engines.push(engine);
        self.engines.len() - 1
    }

    /// The shared data graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The engine registered as `id`.
    pub fn engine(&self, id: usize) -> &TurboFlux {
        &self.engines[id]
    }

    /// Number of registered engines.
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// Configured worker-thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reports all matches of engine `id` against the current graph state.
    pub fn report_initial(&mut self, id: usize, sink: &mut dyn FnMut(&MatchRecord)) {
        let Fleet { graph, engines, .. } = self;
        engines[id].initial_matches_in(graph, sink);
    }

    /// Applies a batch of updates to the shared graph, evaluating every
    /// engine, in parallel when the fleet has both threads and engines to
    /// spare. Matches are buffered per batch and delivered in deterministic
    /// `(engine, op_index, emission)` order — identical to
    /// [`Fleet::apply_batch_sequential`] regardless of thread count.
    pub fn apply_batch(&mut self, ops: &[UpdateOp], sink: &mut dyn FnMut(FleetDelta<'_>)) {
        let workers = self.threads.min(self.engines.len());
        if workers <= 1 || ops.is_empty() {
            return self.apply_batch_sequential(ops, sink);
        }
        // Nested parallelism cap: with `workers` fleet threads evaluating
        // engines concurrently, each engine's intra-update fan-out gets an
        // equal share so fleet × update workers never exceed the budget.
        // Intra-update output is byte-identical for any worker count, so
        // the cap cannot perturb the emitted delta order.
        let budget = (self.threads / workers).max(1);
        for engine in &mut self.engines {
            engine.set_worker_budget(budget);
        }
        let nengines = self.engines.len();
        let mut bufs: Vec<Vec<Pending>> = std::iter::repeat_with(Vec::new).take(nengines).collect();
        {
            // Each engine (plus its buffer) behind its own mutex: exactly
            // one worker claims it per round, so locks never contend; the
            // mutex exists to hand out disjoint `&mut`s safely.
            let slots: Vec<Mutex<(&mut TurboFlux, &mut Vec<Pending>)>> = self
                .engines
                .iter_mut()
                .zip(bufs.iter_mut())
                .map(|(e, b)| Mutex::new((e, b)))
                .collect();
            // Workers read the graph during rounds; the driver writes it
            // strictly between rounds (while no read guard is held, by the
            // barrier protocol), so this lock never blocks anyone.
            let graph = RwLock::new(std::mem::take(&mut self.graph));
            let cursor = AtomicUsize::new(0);
            let barrier = Barrier::new(workers + 1);
            let round: RwLock<(usize, Round)> = RwLock::new((0, Round::Skip));
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        for _ in 0..ops.len() {
                            barrier.wait(); // round published
                            {
                                let g = graph.read().unwrap();
                                let (op_index, rd) = *round.read().unwrap();
                                // Work stealing: grab the next unclaimed
                                // engine until none are left.
                                loop {
                                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                                    if i >= nengines {
                                        break;
                                    }
                                    let mut slot = slots[i].lock().unwrap();
                                    let (engine, buf) = &mut *slot;
                                    run_round(engine, &g, op_index, &rd, buf);
                                }
                            } // read guards dropped before the barrier
                            barrier.wait(); // round complete
                        }
                    });
                }
                for (op_index, op) in ops.iter().enumerate() {
                    {
                        let mut g = graph.write().unwrap();
                        *round.write().unwrap() = (op_index, stage(&mut g, op));
                    }
                    cursor.store(0, Ordering::SeqCst);
                    barrier.wait(); // start the round
                    barrier.wait(); // every engine evaluated
                    let rd = round.read().unwrap().1;
                    finalize(&mut graph.write().unwrap(), &rd);
                }
            });
            self.graph = graph.into_inner().unwrap();
        }
        emit(&bufs, sink);
    }

    /// Single-threaded reference implementation of [`Fleet::apply_batch`]:
    /// same staging, same buffering, same output order. Used as the
    /// determinism oracle and the benchmark baseline.
    pub fn apply_batch_sequential(
        &mut self,
        ops: &[UpdateOp],
        sink: &mut dyn FnMut(FleetDelta<'_>),
    ) {
        let mut bufs: Vec<Vec<Pending>> =
            std::iter::repeat_with(Vec::new).take(self.engines.len()).collect();
        // Engines run one at a time here, so each may use the full budget.
        for engine in &mut self.engines {
            engine.set_worker_budget(self.threads);
        }
        for (op_index, op) in ops.iter().enumerate() {
            let round = stage(&mut self.graph, op);
            for (i, engine) in self.engines.iter_mut().enumerate() {
                run_round(engine, &self.graph, op_index, &round, &mut bufs[i]);
            }
            finalize(&mut self.graph, &round);
        }
        emit(&bufs, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// g0: a:A, b:B, c:A; q1 = A-7->B, q2 = A-7->B<-8-A.
    fn setup() -> (DynamicGraph, Vec<QueryGraph>) {
        let mut g = DynamicGraph::new();
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(1)));
        g.add_vertex(LabelSet::single(l(0)));

        let mut q1 = QueryGraph::new();
        let a = q1.add_vertex(LabelSet::single(l(0)));
        let b = q1.add_vertex(LabelSet::single(l(1)));
        q1.add_edge(a, b, Some(l(7)));

        let mut q2 = QueryGraph::new();
        let a = q2.add_vertex(LabelSet::single(l(0)));
        let b = q2.add_vertex(LabelSet::single(l(1)));
        let c = q2.add_vertex(LabelSet::single(l(0)));
        q2.add_edge(a, b, Some(l(7)));
        q2.add_edge(c, b, Some(l(8)));

        (g, vec![q1, q2])
    }

    fn ops() -> Vec<UpdateOp> {
        use UpdateOp::*;
        let v = VertexId;
        vec![
            InsertEdge { src: v(0), label: l(7), dst: v(1) },
            InsertEdge { src: v(2), label: l(8), dst: v(1) },
            InsertEdge { src: v(2), label: l(7), dst: v(1) },
            InsertEdge { src: v(0), label: l(7), dst: v(1) }, // duplicate: skip
            DeleteEdge { src: v(0), label: l(7), dst: v(1) },
            DeleteEdge { src: v(0), label: l(7), dst: v(1) }, // missing: skip
            AddVertex { id: v(3), labels: LabelSet::single(l(0)) },
            InsertEdge { src: v(3), label: l(7), dst: v(1) },
        ]
    }

    fn collect_batch(
        fleet: &mut Fleet,
        ops: &[UpdateOp],
        parallel: bool,
    ) -> Vec<(usize, usize, Positiveness, MatchRecord)> {
        let mut out = Vec::new();
        let mut sink = |d: FleetDelta<'_>| {
            out.push((d.engine, d.op_index, d.positiveness, d.record.clone()));
        };
        if parallel {
            fleet.apply_batch(ops, &mut sink);
        } else {
            fleet.apply_batch_sequential(ops, &mut sink);
        }
        out
    }

    #[test]
    fn parallel_equals_sequential_equals_standalone() {
        let (g0, queries) = setup();

        let mut par = Fleet::with_threads(g0.clone(), 4);
        let mut seq = Fleet::with_threads(g0.clone(), 1);
        for q in &queries {
            par.register(q.clone(), TurboFluxConfig::default());
            seq.register(q.clone(), TurboFluxConfig::default());
        }
        let got_par = collect_batch(&mut par, &ops(), true);
        let got_seq = collect_batch(&mut seq, &ops(), false);
        assert_eq!(got_par, got_seq);
        assert!(!got_par.is_empty());
        assert_eq!(par.graph().edge_count(), seq.graph().edge_count());

        // Standalone engines applying the ops one by one are the oracle.
        let mut want = Vec::new();
        for (id, q) in queries.iter().enumerate() {
            let mut engine = TurboFlux::new(q.clone(), g0.clone(), TurboFluxConfig::default());
            for (op_index, op) in ops().iter().enumerate() {
                engine.apply_op(op, &mut |p, r| want.push((id, op_index, p, r.clone())));
            }
        }
        assert_eq!(got_par, want);
    }

    #[test]
    fn deltas_are_ordered_and_graph_advances() {
        let (g0, queries) = setup();
        let mut fleet = Fleet::with_threads(g0, 4);
        for q in queries {
            fleet.register(q, TurboFluxConfig::default());
        }
        let got = collect_batch(&mut fleet, &ops(), true);
        assert!(
            got.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "deltas must be sorted by (engine, op_index)"
        );
        // Final graph state: edges 2-8->1, 2-7->1, 3-7->1 and vertex 3.
        assert_eq!(fleet.graph().vertex_count(), 4);
        assert_eq!(fleet.graph().edge_count(), 3);
    }

    #[test]
    fn report_initial_sees_registration_time_state() {
        let (mut g0, queries) = setup();
        g0.insert_edge(VertexId(0), l(7), VertexId(1));
        let mut fleet = Fleet::new(g0);
        let id = fleet.register(queries[0].clone(), TurboFluxConfig::default());
        let mut n = 0;
        fleet.report_initial(id, &mut |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_batches_and_empty_fleets_are_fine() {
        let (g0, queries) = setup();
        let mut fleet = Fleet::with_threads(g0, 8);
        assert_eq!(fleet.engine_count(), 0);
        // No engines: the graph still advances.
        fleet.apply_batch(&ops()[..3], &mut |_| panic!("no engines, no deltas"));
        assert_eq!(fleet.graph().edge_count(), 3);
        let id = fleet.register(queries[0].clone(), TurboFluxConfig::default());
        fleet.apply_batch(&[], &mut |_| panic!("empty batch"));
        assert_eq!(id, 0);
    }
}
