//! Plain-text table printing plus JSON dumps for the experiment binaries.

use std::time::Duration;

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (figure id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (pre-formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a caption and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Serializes the table as a single JSON object (hand-rolled; the build
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"title\":");
        json_string(&mut out, &self.title);
        out.push_str(",\"headers\":");
        json_string_array(&mut out, &self.headers);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string_array(&mut out, row);
        }
        out.push_str("]}");
        out
    }

    /// Prints the table and, when `TFX_JSON` is set, a JSON line.
    pub fn emit(&self) {
        println!("{}", self.render());
        if std::env::var("TFX_JSON").is_ok() {
            println!("{}", self.to_json());
        }
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, s);
    }
    out.push(']');
}

/// Formats a duration in adaptive units (µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Arithmetic mean of durations (zero for an empty slice).
pub fn mean_duration(ds: &[Duration]) -> Duration {
    if ds.is_empty() {
        return Duration::ZERO;
    }
    let total: Duration = ds.iter().sum();
    total / ds.len() as u32
}

/// Ratio `a / b` guarding against zero (returns infinity-ish marker).
pub fn speedup(a: Duration, b: Duration) -> String {
    if b.is_zero() {
        return "-".into();
    }
    format!("{:.1}x", a.as_secs_f64() / b.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", &["size", "time"]);
        t.row(vec!["3".into(), "1.2ms".into()]);
        t.row(vec!["12".into(), "100.00ms".into()]);
        let s = t.render();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("size"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut t = Table::new("q\"uote\n", &["a"]);
        t.row(vec!["x\\y".into()]);
        assert_eq!(t.to_json(), r#"{"title":"q\"uote\n","headers":["a"],"rows":[["x\\y"]]}"#);
    }

    #[test]
    fn means_and_speedups() {
        let ds = [Duration::from_millis(10), Duration::from_millis(30)];
        assert_eq!(mean_duration(&ds), Duration::from_millis(20));
        assert_eq!(mean_duration(&[]), Duration::ZERO);
        assert_eq!(speedup(Duration::from_secs(10), Duration::from_secs(2)), "5.0x");
        assert_eq!(speedup(Duration::from_secs(1), Duration::ZERO), "-");
    }
}
