//! Ablation — TurboFlux design choices:
//!
//! * `AdjustMatchingOrder` on/off (§4.1): does re-deriving the matching
//!   order from DCG statistics pay off as the stream shifts the data?
//! * Order-drift sensitivity: a very lax drift factor approximates a
//!   never-recomputed (static) order.

use std::time::Duration;
use tfx_bench::harness::bare_update_time;
use tfx_bench::report::{fmt_duration, mean_duration, Table};
use tfx_bench::workloads::{lsbench_dataset, tree_query_sets};
use tfx_bench::Params;
use tfx_core::{TurboFlux, TurboFluxConfig};
use tfx_query::{ContinuousMatcher, MatchSemantics, QueryGraph};

fn run_variant(
    queries: &[QueryGraph],
    g0: &tfx_graph::DynamicGraph,
    stream: &tfx_graph::UpdateStream,
    bare: Duration,
    cfg: TurboFluxConfig,
) -> (Duration, u64) {
    let mut costs = Vec::new();
    let mut matches = 0u64;
    for q in queries {
        let mut engine = TurboFlux::new(q.clone(), g0.clone(), cfg);
        let t = std::time::Instant::now();
        for op in stream {
            engine.apply(op, &mut |_, _| matches += 1);
        }
        costs.push(t.elapsed().saturating_sub(bare));
    }
    (mean_duration(&costs), matches)
}

fn main() {
    let p = Params::from_env();
    let d = lsbench_dataset(&p);
    let sets = tree_query_sets(&d, &p, &[Params::DEFAULT_TREE_SIZE]);
    let (_, queries) = &sets[0];
    eprintln!("{} selective tree queries of size {}", queries.len(), Params::DEFAULT_TREE_SIZE);
    let bare = bare_update_time(&d.g0, &d.stream);

    let variants: [(&str, TurboFluxConfig); 3] = [
        ("adjust-order (default)", TurboFluxConfig::default()),
        (
            "static order",
            TurboFluxConfig { adjust_matching_order: false, ..TurboFluxConfig::default() },
        ),
        (
            "lax drift (8x)",
            TurboFluxConfig { order_drift_factor: 8.0, ..TurboFluxConfig::default() },
        ),
    ];

    let mut t = Table::new(
        "Ablation: matching-order maintenance (LSBench tree q6)",
        &["variant", "avg cost(M(Δg,q))", "positives"],
    );
    let mut baseline_matches = None;
    for (name, cfg) in variants {
        let (cost, matches) = run_variant(queries, &d.g0, &d.stream, bare, cfg);
        // Every variant must report the same matches — the order only
        // affects speed, never results.
        if let Some(base) = baseline_matches {
            assert_eq!(matches, base, "ablation variant changed the results!");
        } else {
            baseline_matches = Some(matches);
        }
        t.row(vec![name.into(), fmt_duration(cost), matches.to_string()]);
    }
    t.emit();

    // Semantics comparison rides along: homomorphism vs isomorphism DCG
    // sizes are identical (the DCG is semantics-independent).
    let q = &queries[0];
    let hom = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
    let iso = TurboFlux::new(
        q.clone(),
        d.g0.clone(),
        TurboFluxConfig::with_semantics(MatchSemantics::Isomorphism),
    );
    let mut t2 = Table::new(
        "Ablation: DCG size is semantics-independent",
        &["semantics", "DCG edges", "bytes"],
    );
    t2.row(vec![
        "homomorphism".into(),
        hom.dcg().stored_edge_count().to_string(),
        hom.intermediate_result_bytes().to_string(),
    ]);
    t2.row(vec![
        "isomorphism".into(),
        iso.dcg().stored_edge_count().to_string(),
        iso.intermediate_result_bytes().to_string(),
    ]);
    t2.emit();
}
