//! Figure 6 — LSBench tree queries, sizes 3/6/9/12.
//!
//! * 6a: average `cost(M(Δg, q))` per engine (TurboFlux / SJ-Tree /
//!   Graphflow) with per-engine timeout counts,
//! * 6b: average intermediate-result size, TurboFlux vs SJ-Tree,
//! * 6c/6d (with `--scatter`): per-query cost scatter rows.

use tfx_bench::harness::RunConfig;
use tfx_bench::suite::{compare_engines, cost_table, scatter_table, storage_table};
use tfx_bench::workloads::{lsbench_dataset, tree_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let scatter = std::env::args().any(|a| a == "--scatter");
    let d = lsbench_dataset(&p);
    eprintln!(
        "LSBench: |V(g0)|={} |E(g0)|={} |Δg|={} inserts",
        d.g0.vertex_count(),
        d.g0.edge_count(),
        d.stream.insert_count()
    );
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow];

    let sets = tree_query_sets(&d, &p, &p.tree_sizes);
    let mut sizes = Vec::new();
    let mut summaries = Vec::new();
    for (size, qs) in &sets {
        eprintln!("size {size}: {} selective queries", qs.len());
        sizes.push(*size);
        summaries.push(compare_engines(&engines, qs, &d.g0, &d.stream, &cfg));
    }

    cost_table("Fig 6a: LSBench tree queries — avg cost(M(Δg,q))", &sizes, &summaries).emit();
    storage_table("Fig 6b: LSBench tree queries — avg intermediate results", &sizes, &summaries)
        .emit();
    if scatter {
        for (i, size) in sizes.iter().enumerate() {
            let tf = &summaries[i][0];
            scatter_table(
                &format!("Fig 6c: TurboFlux vs SJ-Tree (size {size})"),
                tf,
                &summaries[i][1],
            )
            .emit();
            scatter_table(
                &format!("Fig 6d: TurboFlux vs Graphflow (size {size})"),
                tf,
                &summaries[i][2],
            )
            .emit();
        }
    }
}
