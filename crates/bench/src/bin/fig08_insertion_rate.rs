//! Figure 8 — varying the insertion rate (2–10% of the update stream's
//! triples), LSBench tree queries of size 6.

use tfx_bench::harness::RunConfig;
use tfx_bench::report::{fmt_bytes, fmt_duration, Table};
use tfx_bench::suite::compare_engines;
use tfx_bench::workloads::{lsbench_dataset, tree_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let d = lsbench_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow];
    let sets = tree_query_sets(&d, &p, &[Params::DEFAULT_TREE_SIZE]);
    let (_, queries) = &sets[0];
    eprintln!("{} selective tree queries of size {}", queries.len(), Params::DEFAULT_TREE_SIZE);

    let mut cost = Table::new(
        "Fig 8a: varying insertion rate — avg cost(M(Δg,q))",
        &["rate %", "TurboFlux", "SJ-Tree", "Graphflow", "timeouts (TF/SJ/GF)"],
    );
    let mut storage = Table::new(
        "Fig 8b: varying insertion rate — avg intermediate results",
        &["rate %", "TurboFlux", "SJ-Tree", "ratio"],
    );
    for &rate in &p.insertion_rates {
        // The full stream is 10% of the dataset's triples; rate r% keeps
        // r/10 of it.
        let stream = d.stream_at_rate(f64::from(rate) / 10.0);
        let sums = compare_engines(&engines, queries, &d.g0, &stream, &cfg);
        cost.row(vec![
            rate.to_string(),
            if sums[0].completed == 0 { "-".into() } else { fmt_duration(sums[0].mean_cost) },
            if sums[1].completed == 0 { "-".into() } else { fmt_duration(sums[1].mean_cost) },
            if sums[2].completed == 0 { "-".into() } else { fmt_duration(sums[2].mean_cost) },
            format!("{}/{}/{}", sums[0].timeouts, sums[1].timeouts, sums[2].timeouts),
        ]);
        let ratio = if sums[0].mean_bytes > 0 {
            format!("{:.1}x", sums[1].mean_bytes as f64 / sums[0].mean_bytes as f64)
        } else {
            "-".into()
        };
        storage.row(vec![
            rate.to_string(),
            fmt_bytes(sums[0].mean_bytes),
            fmt_bytes(sums[1].mean_bytes),
            ratio,
        ]);
    }
    cost.emit();
    storage.emit();
}
