//! Figure 10 (Appendix B.1) — subgraph-isomorphism semantics on LSBench
//! tree and graph queries.

use tfx_bench::harness::RunConfig;
use tfx_bench::suite::{compare_engines, cost_table};
use tfx_bench::workloads::{graph_query_sets, lsbench_dataset, tree_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let d = lsbench_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Isomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow];

    let tree_sets = tree_query_sets(&d, &p, &p.tree_sizes);
    let mut sizes = Vec::new();
    let mut summaries = Vec::new();
    for (size, qs) in &tree_sets {
        sizes.push(*size);
        summaries.push(compare_engines(&engines, qs, &d.g0, &d.stream, &cfg));
    }
    cost_table("Fig 10a: isomorphism — LSBench tree queries", &sizes, &summaries).emit();

    let graph_sets = graph_query_sets(&d, &p, &p.graph_sizes);
    let mut sizes = Vec::new();
    let mut summaries = Vec::new();
    for (size, qs) in &graph_sets {
        sizes.push(*size);
        summaries.push(compare_engines(&engines, qs, &d.g0, &d.stream, &cfg));
    }
    cost_table("Fig 10b: isomorphism — LSBench graph queries", &sizes, &summaries).emit();
}
