//! Appendix B.5 — SJ-Tree with NEC query compression.
//!
//! The paper compresses SJ-Tree's query with TurboISO's neighborhood
//! equivalence classes: only a small fraction of queries compress at all
//! (~9.5% of the LSBench tree queries), and for those the cost and
//! intermediate-result size shrink by a few percent to a few tens of
//! percent — TurboFlux still wins by orders of magnitude.
//!
//! This binary generates star-heavy tree queries until it finds
//! compressible ones, then compares plain SJ-Tree, SJ-Tree+NEC, and
//! TurboFlux on the same stream.

use std::time::Instant;
use tfx_baselines::{nec_compress, NecSjTree, SjTree};
use tfx_bench::report::{fmt_bytes, fmt_duration, Table};
use tfx_bench::workloads::lsbench_dataset;
use tfx_bench::Params;
use tfx_core::{TurboFlux, TurboFluxConfig};
use tfx_datagen::{queries, Pcg32};
use tfx_query::{ContinuousMatcher, MatchSemantics, QueryGraph};

fn main() {
    let p = Params::from_env();
    let d = lsbench_dataset(&p);

    // Hunt for compressible tree queries (star shapes compress).
    let mut compressible: Vec<QueryGraph> = Vec::new();
    let mut tried = 0u64;
    while compressible.len() < 5 && tried < 4000 {
        let mut rng = Pcg32::with_stream(p.seed ^ 0xB5 ^ tried, 0x7);
        tried += 1;
        let q = queries::random_tree_query(&d.schema, 6, &mut rng);
        if nec_compress(&q).is_some() {
            compressible.push(q);
        }
    }
    eprintln!(
        "{} compressible queries among {} generated ({:.1}%)",
        compressible.len(),
        tried,
        compressible.len() as f64 * 100.0 / tried as f64
    );

    let mut t = Table::new(
        "App B.5: SJ-Tree vs SJ-Tree+NEC vs TurboFlux (compressible tree q6)",
        &[
            "query",
            "SJ-Tree cost",
            "SJ+NEC cost",
            "SJ bytes",
            "SJ+NEC bytes",
            "TurboFlux cost",
            "counts agree",
        ],
    );
    for (i, q) in compressible.iter().enumerate() {
        // SJ-Tree can burn minutes reaching a large budget on these
        // star-heavy queries; a tighter cap keeps the appendix run short.
        let budget = p.work_budget.min(5_000_000);

        let t0 = Instant::now();
        let mut plain =
            SjTree::with_budget(q.clone(), d.g0.clone(), MatchSemantics::Homomorphism, budget);
        let mut n_plain = 0u64;
        for op in &d.stream {
            plain.apply(op, &mut |_, _| n_plain += 1);
        }
        let plain_cost = t0.elapsed();

        let t0 = Instant::now();
        let mut nec =
            NecSjTree::try_with_budget(q, d.g0.clone(), MatchSemantics::Homomorphism, budget)
                .expect("selected as compressible");
        for op in &d.stream {
            nec.apply(op, &mut |_, _| {});
        }
        let nec_cost = t0.elapsed();

        let t0 = Instant::now();
        let mut tf = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
        tf.set_deadline(Some(Instant::now() + p.timeout));
        let mut n_tf = 0u64;
        for op in &d.stream {
            tf.apply(op, &mut |_, _| n_tf += 1);
            if tf.timed_out() {
                break;
            }
        }
        let tf_cost = t0.elapsed();

        // The NEC engine must represent the same number of original-query
        // matches as the plain engines (final-state check).
        let mut plain_total = 0u64;
        plain.initial_matches(&mut |_| plain_total += 1);
        let timed_out = plain.timed_out() || nec.timed_out() || tf.timed_out();
        let agree = timed_out || nec.original_match_count() == plain_total;

        t.row(vec![
            format!("Q{i}"),
            fmt_duration(plain_cost),
            fmt_duration(nec_cost),
            fmt_bytes(plain.intermediate_result_bytes()),
            fmt_bytes(nec.intermediate_result_bytes()),
            fmt_duration(tf_cost),
            if timed_out { "timeout".into() } else { agree.to_string() },
        ]);
        assert!(agree, "NEC expansion must match the plain count");
        let _ = n_plain;
        let _ = n_tf;
    }
    t.emit();
}
