//! Figure 17 (Appendix C) — distribution of query selectivity: per
//! queryset, the number of queries whose positive-match count over the
//! insertion stream falls into each of eight ranges.

use tfx_bench::harness::count_stream_positives;
use tfx_bench::report::Table;
use tfx_bench::workloads::{lsbench_dataset, netflow_dataset};
use tfx_bench::Params;
use tfx_datagen::{queries, Dataset};
use tfx_query::QueryGraph;

const BUCKETS: [(&str, u64, u64); 8] = [
    ("0", 0, 0),
    ("1-10", 1, 10),
    ("11-100", 11, 100),
    ("101-1K", 101, 1_000),
    ("1K-10K", 1_001, 10_000),
    ("10K-100K", 10_001, 100_000),
    ("100K-1M", 100_001, 1_000_000),
    (">1M", 1_000_001, u64::MAX),
];

fn distribution(qs: &[QueryGraph], d: &Dataset, timeout: std::time::Duration) -> [usize; 8] {
    let mut counts = [0usize; 8];
    for q in qs {
        let Some(n) = count_stream_positives(q, d, &d.stream, timeout) else {
            continue; // timeout: not counted, as in the paper's figures
        };
        for (i, &(_, lo, hi)) in BUCKETS.iter().enumerate() {
            if n >= lo && n <= hi {
                counts[i] += 1;
                break;
            }
        }
    }
    counts
}

fn main() {
    let p = Params::from_env();
    let ls = lsbench_dataset(&p);
    let nf = netflow_dataset(&p);

    let mut t = Table::new(
        "Fig 17: selectivity distribution (#queries per positive-match range)",
        &["queryset", "0", "1-10", "11-100", "101-1K", "1K-10K", "10K-100K", "100K-1M", ">1M"],
    );

    let mk_row = |t: &mut Table, name: &str, dist: [usize; 8]| {
        let mut row = vec![name.to_owned()];
        row.extend(dist.iter().map(ToString::to_string));
        t.row(row);
    };

    // (a) LSBench tree, (b) LSBench graph, (c) Netflow tree, (d) Netflow
    // graph, (e) Netflow paths [7], (f) Netflow binary trees [7].
    let n = p.queries_per_set;
    let tree_ls = queries::query_set(n, &queries::QueryGenConfig { seed: p.seed ^ 1 }, |rng| {
        Some(queries::random_tree_query(&ls.schema, 6, rng))
    });
    mk_row(&mut t, "LSBench tree q6", distribution(&tree_ls, &ls, p.timeout));

    let mut made = 0usize;
    let graph_ls = queries::query_set(n, &queries::QueryGenConfig { seed: p.seed ^ 2 }, |rng| {
        let cycle = [3, 4, 5][made % 3];
        made += 1;
        queries::random_cyclic_query(&ls.schema, cycle, 6, rng)
    });
    mk_row(&mut t, "LSBench graph q6", distribution(&graph_ls, &ls, p.timeout));

    let tree_nf = queries::query_set(n, &queries::QueryGenConfig { seed: p.seed ^ 3 }, |rng| {
        Some(queries::random_tree_query(&nf.schema, 6, rng))
    });
    mk_row(&mut t, "Netflow tree q6", distribution(&tree_nf, &nf, p.timeout));

    let mut made = 0usize;
    let graph_nf = queries::query_set(n, &queries::QueryGenConfig { seed: p.seed ^ 4 }, |rng| {
        let cycle = [3, 4, 5][made % 3];
        made += 1;
        queries::random_cyclic_query(&nf.schema, cycle, 6, rng)
    });
    mk_row(&mut t, "Netflow graph q6", distribution(&graph_nf, &nf, p.timeout));

    let paths = queries::query_set(n, &queries::QueryGenConfig { seed: p.seed ^ 5 }, |rng| {
        Some(queries::random_path_query(&nf.schema, 4, rng))
    });
    mk_row(&mut t, "Netflow paths [7]", distribution(&paths, &nf, p.timeout));

    let btrees = queries::query_set(n, &queries::QueryGenConfig { seed: p.seed ^ 6 }, |rng| {
        Some(queries::random_binary_tree_query(&nf.schema, 6, rng))
    });
    mk_row(&mut t, "Netflow btrees [7]", distribution(&btrees, &nf, p.timeout));

    t.emit();
}
