//! Figure 9 — varying the dataset size (three scale factors) with a fixed
//! update-stream size, LSBench tree queries of size 6.
//!
//! The paper grows `g0` from 0.1M to 10M users while keeping `Δg` fixed; we
//! scale users by 1× / 4× / 16× and truncate every stream to the smallest
//! scale's edge-op count.

use tfx_bench::harness::RunConfig;
use tfx_bench::report::{fmt_bytes, fmt_duration, Table};
use tfx_bench::suite::compare_engines;
use tfx_bench::workloads::{lsbench_dataset_scaled, tree_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow];
    let factors = [1usize, 4, 16];
    let datasets: Vec<_> = factors.iter().map(|&f| lsbench_dataset_scaled(&p, f)).collect();
    let fixed_stream_len =
        datasets.iter().map(|d| d.stream.insert_count()).min().expect("non-empty dataset list");

    // Queries come from the smallest scale (same schema everywhere).
    let sets = tree_query_sets(&datasets[0], &p, &[Params::DEFAULT_TREE_SIZE]);
    let (_, queries) = &sets[0];
    eprintln!("{} selective queries; stream fixed to {} inserts", queries.len(), fixed_stream_len);

    let mut cost = Table::new(
        "Fig 9a: varying dataset size — avg cost(M(Δg,q))",
        &["users", "|E(g0)|", "TurboFlux", "SJ-Tree", "Graphflow", "timeouts (TF/SJ/GF)"],
    );
    let mut storage = Table::new(
        "Fig 9b: varying dataset size — avg intermediate results",
        &["users", "TurboFlux", "SJ-Tree"],
    );
    for (f, d) in factors.iter().zip(&datasets) {
        let stream = d.stream.truncate_edge_ops(fixed_stream_len);
        let sums = compare_engines(&engines, queries, &d.g0, &stream, &cfg);
        let users = (p.users * f).to_string();
        cost.row(vec![
            users.clone(),
            d.g0.edge_count().to_string(),
            if sums[0].completed == 0 { "-".into() } else { fmt_duration(sums[0].mean_cost) },
            if sums[1].completed == 0 { "-".into() } else { fmt_duration(sums[1].mean_cost) },
            if sums[2].completed == 0 { "-".into() } else { fmt_duration(sums[2].mean_cost) },
            format!("{}/{}/{}", sums[0].timeouts, sums[1].timeouts, sums[2].timeouts),
        ]);
        storage.row(vec![users, fmt_bytes(sums[0].mean_bytes), fmt_bytes(sums[1].mean_bytes)]);
    }
    cost.emit();
    storage.emit();
}
