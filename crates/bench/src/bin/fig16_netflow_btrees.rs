//! Figure 16 (Appendix B.6) — Netflow complete-binary-tree queries from
//! the SJ-Tree paper [7], sizes 4–14, all three engines.

use tfx_bench::harness::RunConfig;
use tfx_bench::suite::{compare_engines, cost_table};
use tfx_bench::workloads::{btree_query_sets, netflow_dataset};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let d = netflow_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow];

    let sets = btree_query_sets(&d, &p);
    let mut sizes = Vec::new();
    let mut summaries = Vec::new();
    for (size, qs) in &sets {
        eprintln!("size {size}: {} selective binary-tree queries", qs.len());
        sizes.push(*size);
        summaries.push(compare_engines(&engines, qs, &d.g0, &d.stream, &cfg));
    }
    cost_table(
        "Fig 16: Netflow binary-tree queries from [7] — avg cost(M(Δg,q))",
        &sizes,
        &summaries,
    )
    .emit();
}
