//! Figure 7 — LSBench graph (cyclic) queries, sizes 6/9/12.
//!
//! Cyclic query sets mix triangles, squares and pentagons grown to the
//! target size (§5.1). Tables mirror Figure 6: average cost, average
//! intermediate size, and optional per-query scatters (`--scatter`).

use tfx_bench::harness::RunConfig;
use tfx_bench::suite::{compare_engines, cost_table, scatter_table, storage_table};
use tfx_bench::workloads::{graph_query_sets, lsbench_dataset};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let scatter = std::env::args().any(|a| a == "--scatter");
    let d = lsbench_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow];

    let sets = graph_query_sets(&d, &p, &p.graph_sizes);
    let mut sizes = Vec::new();
    let mut summaries = Vec::new();
    for (size, qs) in &sets {
        eprintln!("size {size}: {} selective cyclic queries", qs.len());
        sizes.push(*size);
        summaries.push(compare_engines(&engines, qs, &d.g0, &d.stream, &cfg));
    }

    cost_table("Fig 7a: LSBench graph queries — avg cost(M(Δg,q))", &sizes, &summaries).emit();
    storage_table("Fig 7b: LSBench graph queries — avg intermediate results", &sizes, &summaries)
        .emit();
    if scatter {
        for (i, size) in sizes.iter().enumerate() {
            let tf = &summaries[i][0];
            scatter_table(
                &format!("Fig 7c: TurboFlux vs SJ-Tree (size {size})"),
                tf,
                &summaries[i][1],
            )
            .emit();
            scatter_table(
                &format!("Fig 7d: TurboFlux vs Graphflow (size {size})"),
                tf,
                &summaries[i][2],
            )
            .emit();
        }
    }
}
