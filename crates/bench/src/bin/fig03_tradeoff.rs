//! Figure 3 — the performance-vs-storage trade-off.
//!
//! One row per method with its average matching cost and average
//! intermediate-result size on the default workload (LSBench tree queries
//! of size 6): IncIsoMat and Graphflow store nothing but recompute, SJ-Tree
//! stores everything, TurboFlux sits in the sweet spot.

use tfx_bench::harness::RunConfig;
use tfx_bench::report::{fmt_bytes, fmt_duration, Table};
use tfx_bench::suite::compare_engines;
use tfx_bench::workloads::{lsbench_dataset, tree_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let d = lsbench_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let sets = tree_query_sets(&d, &p, &[Params::DEFAULT_TREE_SIZE]);
    let (_, queries) = &sets[0];
    eprintln!("{} selective tree queries of size {}", queries.len(), Params::DEFAULT_TREE_SIZE);

    // IncIsoMat is orders of magnitude slower; cap its query count so the
    // figure still completes quickly.
    let engines =
        [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow, EngineKind::IncIsoMat];
    let small: Vec<_> = queries.iter().take(queries.len().min(5)).cloned().collect();
    let summaries = compare_engines(&engines, &small, &d.g0, &d.stream, &cfg);

    let mut t = Table::new(
        "Fig 3: performance vs storage trade-off (LSBench tree q6)",
        &["method", "avg cost(M(Δg,q))", "avg intermediate bytes", "timeouts"],
    );
    for s in &summaries {
        t.row(vec![
            s.engine.name().to_owned(),
            if s.completed == 0 { "-".into() } else { fmt_duration(s.mean_cost) },
            fmt_bytes(s.mean_bytes),
            s.timeouts.to_string(),
        ]);
    }
    t.emit();
}
