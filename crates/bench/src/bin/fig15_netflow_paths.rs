//! Figure 15 (Appendix B.6) — Netflow path queries from the SJ-Tree paper
//! [7], sizes 3–5, all three engines.

use tfx_bench::harness::RunConfig;
use tfx_bench::suite::{compare_engines, cost_table};
use tfx_bench::workloads::{netflow_dataset, path_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let d = netflow_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::SjTree, EngineKind::Graphflow];

    let sets = path_query_sets(&d, &p);
    let mut sizes = Vec::new();
    let mut summaries = Vec::new();
    for (size, qs) in &sets {
        eprintln!("size {size}: {} selective path queries", qs.len());
        sizes.push(*size);
        summaries.push(compare_engines(&engines, qs, &d.g0, &d.stream, &cfg));
    }
    cost_table("Fig 15: Netflow path queries from [7] — avg cost(M(Δg,q))", &sizes, &summaries)
        .emit();
}
