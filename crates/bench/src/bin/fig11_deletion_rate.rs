//! Figure 11 (Appendix B.2) — varying the deletion rate (2–10% of the
//! insertions), insertion rate fixed at 6%. SJ-Tree is excluded: it does
//! not support deletion.

use tfx_bench::harness::RunConfig;
use tfx_bench::report::{fmt_bytes, fmt_duration, Table};
use tfx_bench::suite::compare_engines;
use tfx_bench::workloads::{lsbench_dataset, tree_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let d = lsbench_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let engines = [EngineKind::TurboFlux, EngineKind::Graphflow];
    let sets = tree_query_sets(&d, &p, &[Params::DEFAULT_TREE_SIZE]);
    let (_, queries) = &sets[0];
    eprintln!("{} selective tree queries of size {}", queries.len(), Params::DEFAULT_TREE_SIZE);

    let mut cost = Table::new(
        "Fig 11a: varying deletion rate — avg cost(M(Δg,q))",
        &["del rate %", "TurboFlux", "Graphflow", "timeouts (TF/GF)"],
    );
    let mut storage = Table::new(
        "Fig 11b: varying deletion rate — avg intermediate results",
        &["del rate %", "TurboFlux bytes"],
    );
    for &rate in &p.deletion_rates {
        // Insertion rate fixed at 6% of the stream scale; deletions are
        // `rate`% of those insertions appended afterwards.
        let mut scoped = tfx_datagen::Dataset {
            g0: d.g0.clone(),
            stream: d.stream_at_rate(0.6),
            interner: d.interner.clone(),
            schema: d.schema.clone(),
            vertex_types: d.vertex_types.clone(),
        };
        scoped.append_deletions(f64::from(rate) / 100.0, p.seed ^ u64::from(rate));
        let sums = compare_engines(&engines, queries, &scoped.g0, &scoped.stream, &cfg);
        cost.row(vec![
            rate.to_string(),
            if sums[0].completed == 0 { "-".into() } else { fmt_duration(sums[0].mean_cost) },
            if sums[1].completed == 0 { "-".into() } else { fmt_duration(sums[1].mean_cost) },
            format!("{}/{}", sums[0].timeouts, sums[1].timeouts),
        ]);
        storage.row(vec![rate.to_string(), fmt_bytes(sums[0].mean_bytes)]);
    }
    cost.emit();
    storage.emit();
}
