//! Figure 14 (Appendix B.4) — Netflow graph (cyclic) queries, sizes
//! 6/9/12: TurboFlux cost on non-selective cyclic queries.

use tfx_bench::harness::RunConfig;
use tfx_bench::report::{fmt_duration, Table};
use tfx_bench::suite::compare_engines;
use tfx_bench::workloads::netflow_dataset;
use tfx_bench::{EngineKind, Params};
use tfx_datagen::queries;
use tfx_query::{MatchSemantics, QueryGraph};

fn main() {
    let p = Params::from_env();
    let d = netflow_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);

    let mut t = Table::new(
        "Fig 14: Netflow graph queries — TurboFlux avg cost(M(Δg,q))",
        &["query size", "TurboFlux avg cost", "timeouts", "queries"],
    );
    for &size in &p.graph_sizes {
        let mut made = 0usize;
        let qs: Vec<QueryGraph> = queries::query_set(
            p.queries_per_set.min(10),
            &queries::QueryGenConfig { seed: p.seed ^ 0xF14 ^ (size as u64) << 3 },
            |rng| {
                let cycle = [3, 4, 5][made % 3];
                made += 1;
                queries::random_cyclic_query(&d.schema, cycle, size, rng)
            },
        );
        let sums = compare_engines(&[EngineKind::TurboFlux], &qs, &d.g0, &d.stream, &cfg);
        let tf = &sums[0];
        t.row(vec![
            size.to_string(),
            if tf.completed == 0 { "-".into() } else { fmt_duration(tf.mean_cost) },
            tf.timeouts.to_string(),
            qs.len().to_string(),
        ]);
    }
    t.emit();
}
