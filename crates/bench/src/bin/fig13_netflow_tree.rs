//! Figures 13 + B.4 — Netflow tree queries, sizes 3/6/9/12.
//!
//! Netflow has no vertex labels and only eight edge labels, so SJ-Tree and
//! Graphflow time out on almost everything (the paper could only estimate
//! lower bounds). As in §B.4 we report TurboFlux's cost per size on the
//! full set, plus the competitors on the minimum-cost query per size.

use tfx_bench::harness::{bare_update_time, run_query_on_engine, RunConfig};
use tfx_bench::report::{fmt_duration, Table};
use tfx_bench::suite::compare_engines;
use tfx_bench::workloads::netflow_dataset;
use tfx_bench::{EngineKind, Params};
use tfx_datagen::queries;
use tfx_query::{MatchSemantics, QueryGraph};

fn main() {
    let p = Params::from_env();
    let d = netflow_dataset(&p);
    eprintln!(
        "Netflow: |V(g0)|={} |E(g0)|={} |Δg|={}",
        d.g0.vertex_count(),
        d.g0.edge_count(),
        d.stream.insert_count()
    );
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);

    let mut tf_table = Table::new(
        "Fig 13: Netflow tree queries — TurboFlux avg cost(M(Δg,q))",
        &["query size", "TurboFlux avg cost", "timeouts", "queries"],
    );
    let mut vs_table = Table::new(
        "B.4: min-cost query per size — all engines",
        &["query size", "TurboFlux", "SJ-Tree", "SJ timeout", "Graphflow", "GF timeout"],
    );
    let bare = bare_update_time(&d.g0, &d.stream);
    for &size in &p.tree_sizes {
        let qs: Vec<QueryGraph> = queries::query_set(
            p.queries_per_set.min(10),
            &queries::QueryGenConfig { seed: p.seed ^ 0xF13 ^ (size as u64) << 3 },
            |rng| Some(queries::random_tree_query(&d.schema, size, rng)),
        );
        let sums = compare_engines(&[EngineKind::TurboFlux], &qs, &d.g0, &d.stream, &cfg);
        let tf = &sums[0];
        tf_table.row(vec![
            size.to_string(),
            if tf.completed == 0 { "-".into() } else { fmt_duration(tf.mean_cost) },
            tf.timeouts.to_string(),
            qs.len().to_string(),
        ]);

        // Minimum-cost completed query → run the competitors on it.
        let min = tf
            .per_query
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.timed_out)
            .min_by_key(|(_, r)| r.matching_cost);
        if let Some((idx, tfr)) = min {
            let q = &qs[idx];
            let sj = run_query_on_engine(EngineKind::SjTree, q, &d.g0, &d.stream, bare, &cfg);
            let gf = run_query_on_engine(EngineKind::Graphflow, q, &d.g0, &d.stream, bare, &cfg);
            vs_table.row(vec![
                size.to_string(),
                fmt_duration(tfr.matching_cost),
                fmt_duration(sj.matching_cost),
                sj.timed_out.to_string(),
                fmt_duration(gf.matching_cost),
                gf.timed_out.to_string(),
            ]);
        }
    }
    tf_table.emit();
    vs_table.emit();
}
