//! Figure 12 (Appendix B.3) — comparison with IncIsoMat.
//!
//! As in the paper: take the two tree queries of size 6 with the minimum
//! and maximum TurboFlux cost, run a 10 000-insertion stream (12a) and the
//! same stream plus 6% deletions (12b).

use tfx_bench::harness::{bare_update_time, run_query_on_engine, RunConfig};
use tfx_bench::report::{fmt_duration, speedup, Table};
use tfx_bench::workloads::{lsbench_dataset, tree_query_sets};
use tfx_bench::{EngineKind, Params};
use tfx_query::MatchSemantics;

fn main() {
    let p = Params::from_env();
    let d = lsbench_dataset(&p);
    let cfg = RunConfig::new(MatchSemantics::Homomorphism, p.timeout, p.work_budget);
    let sets = tree_query_sets(&d, &p, &[Params::DEFAULT_TREE_SIZE]);
    let (_, queries) = &sets[0];
    assert!(!queries.is_empty(), "no selective queries — increase TFX_USERS");

    // Rank the queries by TurboFlux cost to select min / max.
    let ins_stream = d.stream.truncate_edge_ops(10_000.min(d.stream.insert_count()));
    let bare = bare_update_time(&d.g0, &ins_stream);
    let mut ranked: Vec<(usize, std::time::Duration)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let r = run_query_on_engine(EngineKind::TurboFlux, q, &d.g0, &ins_stream, bare, &cfg);
            (i, r.matching_cost)
        })
        .collect();
    ranked.sort_by_key(|&(_, c)| c);
    let picks = [("min-cost", ranked[0].0), ("max-cost", ranked[ranked.len() - 1].0)];

    // ~6% deletions of the inserted edges (the paper's "600 deletions per
    // 10 000 insertions").
    let del_stream = {
        let mut scoped = tfx_datagen::Dataset {
            g0: d.g0.clone(),
            stream: ins_stream.clone(),
            interner: d.interner.clone(),
            schema: d.schema.clone(),
            vertex_types: d.vertex_types.clone(),
        };
        scoped.append_deletions(0.06, p.seed ^ 12);
        scoped.stream
    };

    for (label, stream) in
        [("Fig 12a: 10K insertions", &ins_stream), ("Fig 12b: +6% deletions", &del_stream)]
    {
        let bare = bare_update_time(&d.g0, stream);
        let mut t = Table::new(
            format!("{label} — TurboFlux vs IncIsoMat"),
            &["query", "TurboFlux", "IncIsoMat", "slowdown", "IncIsoMat timeout"],
        );
        for (name, idx) in picks {
            let q = &queries[idx];
            let tf = run_query_on_engine(EngineKind::TurboFlux, q, &d.g0, stream, bare, &cfg);
            let inc = run_query_on_engine(EngineKind::IncIsoMat, q, &d.g0, stream, bare, &cfg);
            t.row(vec![
                name.into(),
                fmt_duration(tf.matching_cost),
                fmt_duration(inc.matching_cost),
                speedup(inc.matching_cost, tf.matching_cost),
                inc.timed_out.to_string(),
            ]);
        }
        t.emit();
    }
}
