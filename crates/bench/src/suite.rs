//! Query-set level experiment drivers shared by the figure binaries.

use std::time::Duration;
use tfx_graph::{DynamicGraph, UpdateStream};
use tfx_query::QueryGraph;

use crate::harness::{bare_update_time, run_query_on_engine, EngineKind, QueryRun, RunConfig};
use crate::report::{fmt_bytes, fmt_duration, mean_duration, Table};

/// Aggregate of one engine over one query set.
#[derive(Debug, Clone)]
pub struct EngineSummary {
    /// The engine.
    pub engine: EngineKind,
    /// Number of queries that finished within the budget.
    pub completed: usize,
    /// Number of timed-out queries (excluded from the means, as in §5).
    pub timeouts: usize,
    /// Mean `cost(M(Δg, q))` over completed queries.
    pub mean_cost: Duration,
    /// Mean of the per-query average intermediate-result sizes.
    pub mean_bytes: usize,
    /// All per-query runs, in query order.
    pub per_query: Vec<QueryRun>,
}

impl EngineSummary {
    fn from_runs(engine: EngineKind, per_query: Vec<QueryRun>) -> Self {
        let done: Vec<&QueryRun> = per_query.iter().filter(|r| !r.timed_out).collect();
        let costs: Vec<Duration> = done.iter().map(|r| r.matching_cost).collect();
        let mean_cost = mean_duration(&costs);
        let mean_bytes = if done.is_empty() {
            0
        } else {
            done.iter().map(|r| r.avg_intermediate_bytes).sum::<usize>() / done.len()
        };
        EngineSummary {
            engine,
            completed: done.len(),
            timeouts: per_query.len() - done.len(),
            mean_cost,
            mean_bytes,
            per_query,
        }
    }
}

/// Runs every query of a set on every engine and aggregates.
pub fn compare_engines(
    engines: &[EngineKind],
    queries: &[QueryGraph],
    g0: &DynamicGraph,
    stream: &UpdateStream,
    cfg: &RunConfig,
) -> Vec<EngineSummary> {
    let bare = bare_update_time(g0, stream);
    engines
        .iter()
        .map(|&kind| {
            let runs: Vec<QueryRun> = queries
                .iter()
                .map(|q| run_query_on_engine(kind, q, g0, stream, bare, cfg))
                .collect();
            EngineSummary::from_runs(kind, runs)
        })
        .collect()
}

/// Standard per-size cost table (Figures 6a, 7a, 10, 13, 14): one row per
/// query size, one column per engine plus timeout counts.
pub fn cost_table(
    title: &str,
    sizes: &[usize],
    summaries_per_size: &[Vec<EngineSummary>],
) -> Table {
    let engines: Vec<EngineKind> = summaries_per_size[0].iter().map(|s| s.engine).collect();
    let mut headers: Vec<String> = vec!["query size".into()];
    for e in &engines {
        headers.push(format!("{} avg cost", e.name()));
        headers.push(format!("{} timeouts", e.name()));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &hdr_refs);
    for (i, &size) in sizes.iter().enumerate() {
        let mut row = vec![size.to_string()];
        for s in &summaries_per_size[i] {
            row.push(if s.completed == 0 { "-".into() } else { fmt_duration(s.mean_cost) });
            row.push(s.timeouts.to_string());
        }
        t.row(row);
    }
    t
}

/// Standard per-size storage table (Figures 6b, 7b): TurboFlux vs SJ-Tree
/// average intermediate-result sizes.
pub fn storage_table(
    title: &str,
    sizes: &[usize],
    summaries_per_size: &[Vec<EngineSummary>],
) -> Table {
    let mut t =
        Table::new(title, &["query size", "TurboFlux avg bytes", "SJ-Tree avg bytes", "ratio"]);
    for (i, &size) in sizes.iter().enumerate() {
        let tf = summaries_per_size[i]
            .iter()
            .find(|s| s.engine == EngineKind::TurboFlux)
            .expect("TurboFlux present");
        let sj = summaries_per_size[i]
            .iter()
            .find(|s| s.engine == EngineKind::SjTree)
            .filter(|s| s.completed > 0);
        let (sj_bytes, ratio) = match sj {
            Some(s) if tf.mean_bytes > 0 => (
                fmt_bytes(s.mean_bytes),
                format!("{:.1}x", s.mean_bytes as f64 / tf.mean_bytes as f64),
            ),
            Some(s) => (fmt_bytes(s.mean_bytes), "-".into()),
            None => ("- (all timeout)".into(), "-".into()),
        };
        t.row(vec![size.to_string(), fmt_bytes(tf.mean_bytes), sj_bytes, ratio]);
    }
    t
}

/// Per-query scatter rows (Figures 6c/d, 7c/d): TurboFlux cost vs a
/// competitor's cost, excluding the competitor's timeouts.
pub fn scatter_table(title: &str, tf: &EngineSummary, other: &EngineSummary) -> Table {
    let mut t = Table::new(title, &["query", "TurboFlux", other.engine.name(), "slowdown"]);
    for (i, (a, b)) in tf.per_query.iter().zip(&other.per_query).enumerate() {
        if a.timed_out || b.timed_out {
            continue;
        }
        let slow = if a.matching_cost.is_zero() {
            "-".to_string()
        } else {
            format!("{:.1}x", b.matching_cost.as_secs_f64() / a.matching_cost.as_secs_f64())
        };
        t.row(vec![
            format!("Q{i}"),
            fmt_duration(a.matching_cost),
            fmt_duration(b.matching_cost),
            slow,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RunConfig;
    use tfx_datagen::{lsbench, LsBenchConfig, Pcg32};
    use tfx_query::MatchSemantics;

    #[test]
    fn compare_and_tabulate() {
        let d = lsbench::generate(&LsBenchConfig { users: 25, seed: 2, stream_frac: 0.2 });
        let mut rng = Pcg32::new(1);
        let queries: Vec<QueryGraph> = (0..3)
            .map(|_| tfx_datagen::queries::random_tree_query(&d.schema, 3, &mut rng))
            .collect();
        let cfg = RunConfig::new(MatchSemantics::Homomorphism, Duration::from_secs(5), u64::MAX);
        let sums = compare_engines(
            &[EngineKind::TurboFlux, EngineKind::SjTree],
            &queries,
            &d.g0,
            &d.stream,
            &cfg,
        );
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].per_query.len(), 3);
        assert_eq!(sums[0].completed, 3);

        let per_size = vec![sums];
        let t = cost_table("test", &[3], &per_size);
        assert!(t.render().contains("TurboFlux"));
        let s = storage_table("storage", &[3], &per_size);
        assert!(s.render().contains("ratio"));
        let sc = scatter_table("scatter", &per_size[0][0], &per_size[0][1]);
        assert_eq!(sc.rows.len(), 3);
    }
}
