//! Canonical datasets and query sets shared by the figure binaries
//! (§5.1's workload description, scaled).

use tfx_datagen::{lsbench, netflow, queries, Dataset, LsBenchConfig, NetflowConfig, Pcg32};
use tfx_query::QueryGraph;

use crate::harness::filter_selective_queries;
use crate::params::Params;

/// The default LSBench-like dataset.
pub fn lsbench_dataset(p: &Params) -> Dataset {
    lsbench::generate(&LsBenchConfig { users: p.users, seed: p.seed, stream_frac: 0.1 })
}

/// An LSBench-like dataset scaled by `factor` users (Fig. 9).
pub fn lsbench_dataset_scaled(p: &Params, factor: usize) -> Dataset {
    lsbench::generate(&LsBenchConfig { users: p.users * factor, seed: p.seed, stream_frac: 0.1 })
}

/// The default Netflow-like dataset.
pub fn netflow_dataset(p: &Params) -> Dataset {
    netflow::generate(&NetflowConfig {
        hosts: p.hosts,
        flows: p.flows,
        seed: p.seed,
        stream_frac: 0.1,
    })
}

/// Tree query sets per size, built the paper's way: generate size-12
/// queries by schema traversal and shrink them (connected) to the smaller
/// sizes, then drop queries without positive matches over the stream.
pub fn tree_query_sets(
    dataset: &Dataset,
    p: &Params,
    sizes: &[usize],
) -> Vec<(usize, Vec<QueryGraph>)> {
    let base = queries::query_set(
        p.queries_per_set,
        &queries::QueryGenConfig { seed: p.seed ^ 0x7EE5 },
        |rng| Some(queries::random_tree_query(&dataset.schema, 12, rng)),
    );
    sizes
        .iter()
        .map(|&size| {
            let mut rng = Pcg32::with_stream(p.seed ^ size as u64, 0x51);
            let qs: Vec<QueryGraph> = base
                .iter()
                .filter_map(|q12| {
                    if size == 12 {
                        Some(q12.clone())
                    } else {
                        queries::shrink_query(q12, size, &mut rng)
                    }
                })
                .collect();
            let kept = filter_selective_queries(qs, dataset, p.timeout)
                .into_iter()
                .map(|(q, _)| q)
                .collect();
            (size, kept)
        })
        .collect()
}

/// Graph (cyclic) query sets per size: cycles of length 3/4/5 in equal
/// proportion grown to the target size, filtered for positive matches.
pub fn graph_query_sets(
    dataset: &Dataset,
    p: &Params,
    sizes: &[usize],
) -> Vec<(usize, Vec<QueryGraph>)> {
    sizes
        .iter()
        .map(|&size| {
            let mut made = 0usize;
            let qs = queries::query_set(
                p.queries_per_set,
                &queries::QueryGenConfig { seed: p.seed ^ 0xC1C1 ^ (size as u64) << 8 },
                |rng| {
                    let cycle = [3, 4, 5][made % 3];
                    made += 1;
                    queries::random_cyclic_query(&dataset.schema, cycle, size, rng)
                },
            );
            let kept = filter_selective_queries(qs, dataset, p.timeout)
                .into_iter()
                .map(|(q, _)| q)
                .collect();
            (size, kept)
        })
        .collect()
}

/// Path query sets (the [7] queryset; Fig. 15): sizes 3–5.
pub fn path_query_sets(dataset: &Dataset, p: &Params) -> Vec<(usize, Vec<QueryGraph>)> {
    [3usize, 4, 5]
        .iter()
        .map(|&size| {
            let qs = queries::query_set(
                p.queries_per_set.min(30),
                &queries::QueryGenConfig { seed: p.seed ^ 0x9A7 ^ (size as u64) << 4 },
                |rng| Some(queries::random_path_query(&dataset.schema, size, rng)),
            );
            let kept = filter_selective_queries(qs, dataset, p.timeout)
                .into_iter()
                .map(|(q, _)| q)
                .collect();
            (size, kept)
        })
        .collect()
}

/// Binary-tree query sets (the [7] queryset; Fig. 16): sizes 4–14 step 2,
/// three queries per size as in the paper.
pub fn btree_query_sets(dataset: &Dataset, p: &Params) -> Vec<(usize, Vec<QueryGraph>)> {
    [4usize, 6, 8, 10, 12, 14]
        .iter()
        .map(|&size| {
            let qs = queries::query_set(
                3,
                &queries::QueryGenConfig { seed: p.seed ^ 0xB7EE ^ (size as u64) << 4 },
                |rng| Some(queries::random_binary_tree_query(&dataset.schema, size, rng)),
            );
            let kept = filter_selective_queries(qs, dataset, p.timeout)
                .into_iter()
                .map(|(q, _)| q)
                .collect();
            (size, kept)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Params {
        Params {
            users: 60,
            hosts: 60,
            flows: 1200,
            queries_per_set: 4,
            timeout: std::time::Duration::from_secs(5),
            ..Params::default()
        }
    }

    #[test]
    fn tree_sets_have_right_sizes() {
        let p = tiny_params();
        let d = lsbench_dataset(&p);
        let sets = tree_query_sets(&d, &p, &[3, 6]);
        assert_eq!(sets.len(), 2);
        for (size, qs) in &sets {
            for q in qs {
                assert_eq!(q.edge_count(), *size);
                assert!(q.is_connected());
            }
        }
    }

    #[test]
    fn graph_sets_are_cyclic() {
        let p = tiny_params();
        let d = lsbench_dataset(&p);
        let sets = graph_query_sets(&d, &p, &[6]);
        for (_, qs) in &sets {
            for q in qs {
                assert!(q.edge_count() >= q.vertex_count(), "has a cycle");
            }
        }
    }

    #[test]
    fn netflow_path_sets() {
        let p = tiny_params();
        let d = netflow_dataset(&p);
        let sets = path_query_sets(&d, &p);
        assert_eq!(sets.len(), 3);
        // Netflow is so unselective that path queries almost always match.
        assert!(sets.iter().any(|(_, qs)| !qs.is_empty()));
    }
}
