//! Driving one (engine, query, stream) run and collecting the paper's two
//! measures: `cost(M(Δg, q))` and the intermediate-result size.
//!
//! Per §5.1, `cost(M(Δg, q))` is the elapsed time of processing the update
//! stream *minus* the plain graph-maintenance cost, so the harness measures
//! the bare `DynamicGraph` replay separately and subtracts it.

use std::time::{Duration, Instant};
use tfx_baselines::{Graphflow, IncIsoMat, SjTree};
use tfx_core::{TurboFlux, TurboFluxConfig};
use tfx_datagen::Dataset;
use tfx_graph::{DynamicGraph, UpdateStream};
use tfx_query::{ContinuousMatcher, MatchSemantics, Positiveness, QueryGraph};

/// Which engine to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// The paper's system (tfx-core).
    TurboFlux,
    /// SJ-Tree [7] (insert-only).
    SjTree,
    /// Graphflow [16].
    Graphflow,
    /// IncIsoMat [10].
    IncIsoMat,
}

impl EngineKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::TurboFlux => "TurboFlux",
            EngineKind::SjTree => "SJ-Tree",
            EngineKind::Graphflow => "Graphflow",
            EngineKind::IncIsoMat => "IncIsoMat",
        }
    }
}

/// Per-run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Matching semantics.
    pub semantics: MatchSemantics,
    /// Wall-clock budget per query (construction + stream).
    pub timeout: Duration,
    /// Abstract work budget for engines with internal budgets.
    pub work_budget: u64,
    /// Sample the intermediate-result size every this many operations.
    pub sample_every: usize,
}

impl RunConfig {
    /// Standard configuration from experiment parameters.
    pub fn new(semantics: MatchSemantics, timeout: Duration, work_budget: u64) -> Self {
        RunConfig { semantics, timeout, work_budget, sample_every: 64 }
    }
}

/// Result of running one query over one stream on one engine.
#[derive(Clone, Debug)]
pub struct QueryRun {
    /// Engine.
    pub engine: EngineKind,
    /// Total wall time spent in `apply` over the stream.
    pub stream_time: Duration,
    /// `cost(M(Δg, q))`: stream time minus the bare graph-update time.
    pub matching_cost: Duration,
    /// Time to construct the engine over `g0` (incl. initial DCG / SJ-Tree
    /// ingestion).
    pub build_time: Duration,
    /// Mean sampled intermediate-result size (bytes).
    pub avg_intermediate_bytes: usize,
    /// Peak sampled intermediate-result size (bytes).
    pub peak_intermediate_bytes: usize,
    /// Positive matches reported over the stream.
    pub positives: u64,
    /// Negative matches reported over the stream.
    pub negatives: u64,
    /// True if the wall-clock or work budget was exhausted.
    pub timed_out: bool,
}

/// Wall time of replaying `stream` on a bare graph (the cost excluded from
/// `cost(M(Δg, q))`).
pub fn bare_update_time(g0: &DynamicGraph, stream: &UpdateStream) -> Duration {
    let mut g = g0.clone();
    let t = Instant::now();
    for op in stream {
        g.apply(op);
    }
    t.elapsed()
}

/// Builds an engine of `kind` for (`q`, `g0`), bounded by `deadline` /
/// the work budget so a single explosive update cannot stall a run.
pub fn make_engine(
    kind: EngineKind,
    q: QueryGraph,
    g0: DynamicGraph,
    cfg: &RunConfig,
    deadline: Instant,
) -> Box<dyn ContinuousMatcher> {
    match kind {
        EngineKind::TurboFlux => {
            let mut e = TurboFlux::new(q, g0, TurboFluxConfig::with_semantics(cfg.semantics));
            e.set_deadline(Some(deadline));
            Box::new(e)
        }
        EngineKind::SjTree => Box::new(SjTree::with_budget(q, g0, cfg.semantics, cfg.work_budget)),
        EngineKind::Graphflow => {
            Box::new(Graphflow::new(q, g0, cfg.semantics).with_budget(cfg.work_budget))
        }
        EngineKind::IncIsoMat => {
            let mut e = IncIsoMat::new(q, g0, cfg.semantics);
            e.set_deadline(Some(deadline));
            Box::new(e)
        }
    }
}

/// Runs `q` on `kind` over `stream`, counting matches (never materializing
/// them) and sampling intermediate-result sizes.
pub fn run_query_on_engine(
    kind: EngineKind,
    q: &QueryGraph,
    g0: &DynamicGraph,
    stream: &UpdateStream,
    bare_time: Duration,
    cfg: &RunConfig,
) -> QueryRun {
    let deadline = Instant::now() + cfg.timeout;
    let t0 = Instant::now();
    let mut engine = make_engine(kind, q.clone(), g0.clone(), cfg, deadline);
    let build_time = t0.elapsed();

    let mut positives = 0u64;
    let mut negatives = 0u64;
    let mut samples = 0u64;
    let mut sum_bytes = 0u128;
    let mut peak_bytes = engine.intermediate_result_bytes();
    let mut timed_out = engine.timed_out() || Instant::now() > deadline;

    let t1 = Instant::now();
    if !timed_out {
        for (i, op) in stream.ops().iter().enumerate() {
            engine.apply(op, &mut |p, _| match p {
                Positiveness::Positive => positives += 1,
                Positiveness::Negative => negatives += 1,
            });
            if i % cfg.sample_every == 0 {
                let b = engine.intermediate_result_bytes();
                sum_bytes += b as u128;
                samples += 1;
                peak_bytes = peak_bytes.max(b);
            }
            if engine.timed_out() || Instant::now() > deadline {
                timed_out = true;
                break;
            }
        }
    }
    let stream_time = t1.elapsed();
    let b = engine.intermediate_result_bytes();
    sum_bytes += b as u128;
    samples += 1;
    peak_bytes = peak_bytes.max(b);
    timed_out |= engine.timed_out();

    QueryRun {
        engine: kind,
        stream_time,
        matching_cost: stream_time.saturating_sub(bare_time),
        build_time,
        avg_intermediate_bytes: (sum_bytes / u128::from(samples)) as usize,
        peak_intermediate_bytes: peak_bytes,
        positives,
        negatives,
        timed_out,
    }
}

/// Counts the positive matches a query produces over a stream (TurboFlux,
/// bounded by `timeout`); `None` on timeout. Used to drop no-match queries
/// as in §5.1 and for the selectivity distribution (Fig. 17).
pub fn count_stream_positives(
    q: &QueryGraph,
    dataset: &Dataset,
    stream: &UpdateStream,
    timeout: Duration,
) -> Option<u64> {
    let deadline = Instant::now() + timeout;
    let mut engine = TurboFlux::new(q.clone(), dataset.g0.clone(), TurboFluxConfig::default());
    engine.set_deadline(Some(deadline));
    let mut positives = 0u64;
    for op in stream.ops() {
        engine.apply_op(op, &mut |p, _| {
            if p == Positiveness::Positive {
                positives += 1;
            }
        });
        if engine.timed_out() || Instant::now() > deadline {
            return None;
        }
    }
    Some(positives)
}

/// Filters a query set down to queries with ≥1 positive match over the
/// stream ("we excluded queries that have no positive matches for the
/// entire insertion stream", §5.1).
pub fn filter_selective_queries(
    queries: Vec<QueryGraph>,
    dataset: &Dataset,
    timeout: Duration,
) -> Vec<(QueryGraph, u64)> {
    queries
        .into_iter()
        .filter_map(|q| {
            count_stream_positives(&q, dataset, &dataset.stream, timeout)
                .filter(|&n| n > 0)
                .map(|n| (q, n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_datagen::lsbench;

    #[test]
    fn run_all_engines_on_a_small_workload() {
        let d =
            lsbench::generate(&tfx_datagen::LsBenchConfig { users: 30, seed: 1, stream_frac: 0.2 });
        let mut rng = tfx_datagen::Pcg32::new(3);
        let q = tfx_datagen::queries::random_tree_query(&d.schema, 3, &mut rng);
        let cfg = RunConfig::new(MatchSemantics::Homomorphism, Duration::from_secs(10), u64::MAX);
        let bare = bare_update_time(&d.g0, &d.stream);
        let runs: Vec<QueryRun> = [
            EngineKind::TurboFlux,
            EngineKind::SjTree,
            EngineKind::Graphflow,
            EngineKind::IncIsoMat,
        ]
        .into_iter()
        .map(|k| run_query_on_engine(k, &q, &d.g0, &d.stream, bare, &cfg))
        .collect();
        // All engines agree on the positive-match count and none time out.
        for r in &runs {
            assert!(!r.timed_out, "{:?} timed out", r.engine);
            assert_eq!(r.positives, runs[0].positives, "{:?} diverges", r.engine);
            assert_eq!(r.negatives, 0);
        }
        // Only the materializing engines report storage.
        assert!(runs[0].avg_intermediate_bytes > 0, "TurboFlux DCG");
        assert_eq!(runs[2].avg_intermediate_bytes, 0, "Graphflow stores nothing");
    }

    #[test]
    fn selectivity_filter_drops_no_match_queries() {
        let d =
            lsbench::generate(&tfx_datagen::LsBenchConfig { users: 30, seed: 1, stream_frac: 0.2 });
        let mut rng = tfx_datagen::Pcg32::new(5);
        let qs: Vec<QueryGraph> = (0..6)
            .map(|_| tfx_datagen::queries::random_tree_query(&d.schema, 4, &mut rng))
            .collect();
        let kept = filter_selective_queries(qs.clone(), &d, Duration::from_secs(5));
        assert!(kept.len() <= qs.len());
        for (_, n) in &kept {
            assert!(*n > 0);
        }
    }
}
