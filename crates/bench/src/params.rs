//! Table 1 of the paper ("Parameters used in the experiments"), scaled to
//! laptop size, with environment-variable overrides.
//!
//! | Parameter        | Paper values                  | Here (defaults)   |
//! |------------------|-------------------------------|-------------------|
//! | Datasets         | LSBench, Netflow              | same (synthetic)  |
//! | Query size       | 3, **6**, 9, 12 (tree); **6**, 9, 12 (graph) | same |
//! | Insertion rate   | 2, 4, 6, 8, 10 (%)            | same              |
//! | Dataset size     | 0.1M / 1M / 10M users         | 1× / 4× / 16× of `TFX_USERS` |
//! | Deletion rate    | 2, 4, 6, 8, 10 (%)            | same              |
//! | Semantics        | homomorphism, isomorphism     | same              |
//! | Queries per set  | 100                           | `TFX_QUERIES` (20) |
//! | Timeout          | 2 hours                       | `TFX_TIMEOUT_MS` (3000 ms) |

use std::time::Duration;

/// Experiment-wide parameters (Table 1, scaled).
#[derive(Clone, Debug)]
pub struct Params {
    /// LSBench scale factor (users) for the default dataset.
    pub users: usize,
    /// Netflow host count.
    pub hosts: usize,
    /// Netflow flow count.
    pub flows: usize,
    /// Queries per query set (paper: 100).
    pub queries_per_set: usize,
    /// Per-query wall-clock timeout (paper: 2 h).
    pub timeout: Duration,
    /// Abstract work budget backing the timeout for engines whose single
    /// update can run away (SJ-Tree, Graphflow).
    pub work_budget: u64,
    /// Tree query sizes (paper: 3, 6, 9, 12).
    pub tree_sizes: Vec<usize>,
    /// Graph (cyclic) query sizes (paper: 6, 9, 12).
    pub graph_sizes: Vec<usize>,
    /// Insertion rates in percent (paper: 2..10).
    pub insertion_rates: Vec<u32>,
    /// Deletion rates in percent (paper: 2..10).
    pub deletion_rates: Vec<u32>,
    /// Base seed for datasets and query sets.
    pub seed: u64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Default for Params {
    fn default() -> Self {
        let users = env_usize("TFX_USERS", 800);
        Params {
            users,
            hosts: env_usize("TFX_HOSTS", 1500),
            flows: env_usize("TFX_FLOWS", 30_000),
            queries_per_set: env_usize("TFX_QUERIES", 20),
            timeout: Duration::from_millis(env_u64("TFX_TIMEOUT_MS", 3000)),
            work_budget: env_u64("TFX_WORK_BUDGET", 40_000_000),
            tree_sizes: vec![3, 6, 9, 12],
            graph_sizes: vec![6, 9, 12],
            insertion_rates: vec![2, 4, 6, 8, 10],
            deletion_rates: vec![2, 4, 6, 8, 10],
            seed: env_u64("TFX_SEED", 2018),
        }
    }
}

impl Params {
    /// Default tree query size (bold in Table 1).
    pub const DEFAULT_TREE_SIZE: usize = 6;
    /// Default graph query size (bold in Table 1).
    pub const DEFAULT_GRAPH_SIZE: usize = 6;

    /// Reads the parameters, applying environment overrides.
    pub fn from_env() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = Params::default();
        assert!(p.users >= 50);
        assert!(p.queries_per_set >= 1);
        assert_eq!(p.tree_sizes, vec![3, 6, 9, 12]);
        assert_eq!(p.insertion_rates.len(), 5);
        assert!(p.timeout > Duration::from_millis(10));
    }
}
