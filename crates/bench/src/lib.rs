//! `tfx-bench` — the experiment harness reproducing every table and figure
//! of the paper's evaluation (§5 + Appendices B and C).
//!
//! Each figure has a dedicated binary (`fig03_tradeoff` …
//! `fig17_selectivity`, see DESIGN.md's per-experiment index) that prints
//! the same rows/series the paper plots, plus a JSON dump for downstream
//! tooling. Criterion micro-benchmarks live under `benches/`.
//!
//! Scales are laptop-sized by default and adjustable through environment
//! variables (see [`params`]); the *shapes* of the results — who wins, by
//! roughly what factor — are the reproduction target, not absolute
//! numbers.

pub mod harness;
pub mod params;
pub mod report;
pub mod suite;
pub mod workloads;

pub use harness::{run_query_on_engine, EngineKind, QueryRun, RunConfig};
pub use params::Params;
pub use report::Table;
pub use suite::{compare_engines, EngineSummary};
