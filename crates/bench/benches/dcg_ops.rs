//! DCG maintenance micro-benchmarks over the arena storage layout.
//!
//! Two workload shapes stress the two run representations:
//!
//! * `uniform` — thousands of parents with 2 children each: every run fits
//!   the inline layout, so this guards the common low-fanout case against
//!   regressions from the pool indirection;
//! * `hub` — a handful of parents with a 512-edge fanout: runs live in
//!   pool slots and every insert/delete binary-searches and shifts inside
//!   one contiguous slot (the pre-arena layout paid a linear scan over a
//!   per-run `Vec` here).
//!
//! Four phases mirror the engine's hot paths: `insert_delete` (BuildDCG /
//! ClearDCG churn — the full cycle is self-inverting so nothing is cloned
//! inside the measurement loop and pool slots recycle through the free
//! lists), `transit` (Transitions 0–5 state flips on standing edges),
//! and `climb_enumerate` (the `build_upwards` in-edge walk plus the
//! `SubgraphSearch` explicit-out enumeration).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tfx_core::{Dcg, EdgeState};
use tfx_graph::VertexId;
use tfx_query::QVertexId;

const NQ: usize = 8;

type Edge = (VertexId, QVertexId, VertexId);

/// (name, edges) per shape; edges are distinct (parent, u, child) triples.
fn shapes() -> Vec<(&'static str, Vec<Edge>)> {
    // Uniform: 4096 parents, 2 children each — inline runs on both sides.
    let uniform: Vec<_> = (0..4096u32)
        .flat_map(|p| {
            (0..2u32).map(move |j| {
                let u = QVertexId(1 + (p % 7));
                (VertexId(p), u, VertexId(4096 + (p * 2 + j * 1017) % 8192))
            })
        })
        .collect();
    // Hub: 16 parents, one 512-edge run each — pooled runs, and children
    // shared across hubs so the in-edge side grows multi-entry runs too.
    let hub: Vec<_> = (0..16u32)
        .flat_map(|h| {
            (0..512u32).map(move |j| {
                let u = QVertexId(1 + (h % 7));
                (VertexId(h), u, VertexId(64 + (h * 37 + j * 13) % 2048))
            })
        })
        .collect();
    vec![("uniform", uniform), ("hub", hub)]
}

/// BuildDCG/ClearDCG churn: insert every edge, then delete in reverse.
/// Self-inverting, so the warmed arena recycles its slots every pass.
fn dcg_insert_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcg_insert_delete");
    for (name, edges) in shapes() {
        group.throughput(Throughput::Elements(2 * edges.len() as u64));
        let mut dcg = Dcg::new(NQ, QVertexId(0));
        group.bench_function(name, |b| {
            b.iter(|| {
                for &(pv, u, cv) in &edges {
                    dcg.transit(Some(pv), u, cv, Some(EdgeState::Implicit));
                }
                for &(pv, u, cv) in edges.iter().rev() {
                    dcg.transit(Some(pv), u, cv, None);
                }
                black_box(dcg.stored_edge_count())
            });
        });
        assert_eq!(dcg.stored_edge_count(), 0);
    }
    group.finish();
}

/// Transitions 0–5 on standing edges: implicit → explicit → implicit.
fn dcg_transit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcg_transit_states");
    for (name, edges) in shapes() {
        group.throughput(Throughput::Elements(2 * edges.len() as u64));
        let mut dcg = Dcg::new(NQ, QVertexId(0));
        for &(pv, u, cv) in &edges {
            dcg.transit(Some(pv), u, cv, Some(EdgeState::Implicit));
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                for &(pv, u, cv) in &edges {
                    dcg.transit(Some(pv), u, cv, Some(EdgeState::Explicit));
                }
                for &(pv, u, cv) in &edges {
                    dcg.transit(Some(pv), u, cv, Some(EdgeState::Implicit));
                }
                black_box(dcg.take_dirty_expl())
            });
        });
    }
    group.finish();
}

/// The `build_upwards` climb (in-edge walks from every child) plus the
/// `SubgraphSearch` explicit-out enumeration from every parent.
fn dcg_climb_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcg_climb_enumerate");
    for (name, edges) in shapes() {
        let mut dcg = Dcg::new(NQ, QVertexId(0));
        for (i, &(pv, u, cv)) in edges.iter().enumerate() {
            let st = if i % 3 == 0 { EdgeState::Explicit } else { EdgeState::Implicit };
            dcg.transit(Some(pv), u, cv, Some(st));
        }
        let mut ins: Vec<(VertexId, QVertexId)> = edges.iter().map(|&(_, u, cv)| (cv, u)).collect();
        ins.sort_unstable_by_key(|&(v, u)| (v.0, u.0));
        ins.dedup();
        let mut outs: Vec<(VertexId, QVertexId)> =
            edges.iter().map(|&(pv, u, _)| (pv, u)).collect();
        outs.sort_unstable_by_key(|&(v, u)| (v.0, u.0));
        outs.dedup();
        group.throughput(Throughput::Elements(2 * edges.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut n = 0u64;
                for &(cv, u) in &ins {
                    for &(pv, st) in dcg.in_edge_slice(cv, u) {
                        n = n.wrapping_add(pv.0 as u64 + (st == EdgeState::Explicit) as u64);
                    }
                }
                for &(pv, u) in &outs {
                    dcg.for_each_expl_out(pv, u, &mut |w| {
                        n = n.wrapping_add(w.0 as u64);
                        true
                    });
                }
                black_box(n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, dcg_insert_delete, dcg_transit, dcg_climb_enumerate);
criterion_main!(benches);
