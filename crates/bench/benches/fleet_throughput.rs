//! Fleet benchmarks: multi-query registration × streaming batches.
//!
//! Three families:
//!
//! * `fleet_throughput/q{N}` — N random queries × batch size, parallel
//!   `apply_batch` vs the single-threaded `apply_batch_sequential`
//!   baseline, on the LSBench-like insert stream. Parallelism is across
//!   engines, so one query cannot speed up and sixteen should approach the
//!   core count; batch size (1 / 64 / 1024) amortizes thread-scope setup.
//!   On a single-core host the parallel path cannot win (the per-op
//!   barrier rounds just add overhead); `scripts/bench_snapshot.sh`
//!   records the host's core count next to the numbers.
//! * `fleet_shared/overlap_q{N}` — N copies of one deep path query over a
//!   two-level star graph with wide mid-level adjacency: every insert
//!   forces each engine to collect grandchild candidates, so the shared
//!   candidate-prefix index (`shared`) replaces N O(degree) adjacency
//!   scans per op with one index lookup each. `naive` is the
//!   `fleet_shared_index = false` ablation. Sweeps q ∈ {1, 4, 16, 64}.
//! * `fleet_routing/disjoint` — N queries with pairwise-disjoint edge
//!   labels while the stream only touches one label: the routing table
//!   dispatches each op to a single engine, so throughput should stay
//!   near-flat in N instead of degrading linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tfx_core::{Fleet, TurboFlux, TurboFluxConfig};
use tfx_datagen::{lsbench, queries, LsBenchConfig, Pcg32};
use tfx_graph::{DynamicGraph, LabelId, LabelSet, UpdateOp, VertexId};
use tfx_query::{ContinuousMatcher, QueryGraph};

const STREAM_OPS: usize = 1024;

/// Per-query delta budget over the whole stream. Random tree queries on the
/// skewed LSBench-like graph occasionally explode (tens of millions of
/// matches); since the fleet buffers one record per delta per batch, such a
/// query measures allocator throughput, not engine throughput — screen them
/// out deterministically by replaying the stream on a standalone engine.
const MAX_DELTAS_PER_QUERY: u64 = 50_000;

fn setup() -> (tfx_graph::DynamicGraph, Vec<QueryGraph>, Vec<UpdateOp>) {
    let d = lsbench::generate(&LsBenchConfig { users: 150, seed: 7, stream_frac: 0.15 });
    let ops: Vec<UpdateOp> = d.stream.ops().iter().take(STREAM_OPS).cloned().collect();
    let mut rng = Pcg32::new(21);
    let mut queries: Vec<QueryGraph> = Vec::new();
    while queries.len() < 16 {
        let q = queries::random_tree_query(&d.schema, 5, &mut rng);
        let mut probe = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
        let mut n = 0u64;
        for op in &ops {
            probe.apply(op, &mut |_, _| n += 1);
            if n > MAX_DELTAS_PER_QUERY {
                break;
            }
        }
        if n <= MAX_DELTAS_PER_QUERY {
            queries.push(q);
        }
    }
    (d.g0, queries, ops)
}

fn fleet_throughput(c: &mut Criterion) {
    let (g0, queries, ops) = setup();
    for &nq in &[1usize, 4, 16] {
        let mut group = c.benchmark_group(format!("fleet_throughput/q{nq}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(ops.len() as u64));
        for &batch in &[1usize, 64, 1024] {
            group.bench_with_input(BenchmarkId::new("fleet", batch), &batch, |b, &batch| {
                b.iter(|| {
                    let mut fleet = Fleet::new(g0.clone());
                    for q in &queries[..nq] {
                        fleet.register(q.clone(), TurboFluxConfig::default());
                    }
                    let mut n = 0u64;
                    for chunk in ops.chunks(batch) {
                        fleet.apply_batch(chunk, &mut |_| n += 1);
                    }
                    black_box(n)
                });
            });
            group.bench_with_input(BenchmarkId::new("sequential", batch), &batch, |b, &batch| {
                b.iter(|| {
                    let mut fleet = Fleet::with_threads(g0.clone(), 1);
                    for q in &queries[..nq] {
                        fleet.register(q.clone(), TurboFluxConfig::default());
                    }
                    let mut n = 0u64;
                    for chunk in ops.chunks(batch) {
                        fleet.apply_batch_sequential(chunk, &mut |_| n += 1);
                    }
                    black_box(n)
                });
            });
        }
        group.finish();
    }
}

/// Vertex labels of the star workload: root / mid / target / junk.
const L_ROOT: LabelId = LabelId(0);
const L_MID: LabelId = LabelId(1);
const L_TARGET: LabelId = LabelId(2);
const L_JUNK: LabelId = LabelId(3);
/// The single edge label every star edge carries, so label filtering alone
/// cannot prune the mid-level adjacency scan.
const L_EDGE: LabelId = LabelId(10);

const STAR_MIDS: usize = 8;
const STAR_TARGETS: usize = 4;
const STAR_JUNK: usize = 4096;
const STAR_OPS: usize = 256;

/// Two-level star: one root-labeled vertex, `STAR_MIDS` mids each with
/// `STAR_TARGETS + STAR_JUNK` out-edges (only the target-labeled few are
/// query-relevant), and a churn stream that deletes/re-inserts root→mid
/// edges. The path query root→mid→target makes every insert rebuild a
/// mid's DCG subtree, which collects target candidates from the wide
/// adjacency — the cost the shared index amortizes across engines.
fn star_setup() -> (DynamicGraph, QueryGraph, Vec<UpdateOp>) {
    let mut g = DynamicGraph::new();
    let root = g.add_vertex(LabelSet::single(L_ROOT));
    let mids: Vec<VertexId> =
        (0..STAR_MIDS).map(|_| g.add_vertex(LabelSet::single(L_MID))).collect();
    let targets: Vec<VertexId> =
        (0..STAR_TARGETS).map(|_| g.add_vertex(LabelSet::single(L_TARGET))).collect();
    let junk: Vec<VertexId> =
        (0..STAR_JUNK).map(|_| g.add_vertex(LabelSet::single(L_JUNK))).collect();
    for &m in &mids {
        for &t in &targets {
            g.insert_edge(m, L_EDGE, t);
        }
        for &j in &junk {
            g.insert_edge(m, L_EDGE, j);
        }
    }
    // A few root→mid edges up front keep the root-side query edge the rarest
    // (so the start-vertex heuristic roots the tree at the star's root).
    let churn = &mids[..STAR_MIDS / 2];
    for &m in churn {
        g.insert_edge(root, L_EDGE, m);
    }

    let mut q = QueryGraph::new();
    let a = q.add_vertex(LabelSet::single(L_ROOT));
    let b = q.add_vertex(LabelSet::single(L_MID));
    let c = q.add_vertex(LabelSet::single(L_TARGET));
    q.add_edge(a, b, Some(L_EDGE));
    q.add_edge(b, c, Some(L_EDGE));

    // Delete/insert pairs restore graph and DCG state every full replay, so
    // a fleet can be registered once and measured in steady state.
    let mut ops = Vec::with_capacity(STAR_OPS);
    for i in 0..STAR_OPS / 2 {
        let m = churn[i % churn.len()];
        ops.push(UpdateOp::DeleteEdge { src: root, label: L_EDGE, dst: m });
        ops.push(UpdateOp::InsertEdge { src: root, label: L_EDGE, dst: m });
    }
    (g, q, ops)
}

fn star_fleet(
    g0: &DynamicGraph,
    q: &QueryGraph,
    nq: usize,
    shared: bool,
) -> (Fleet, TurboFluxConfig) {
    // Subtree sharing pinned off: this group isolates the phase-1 per-edge
    // candidate index, and with the default phase-2 path on, the star
    // query's whole mid-branch would be served by a shared instance and
    // never consult the index. `fleet_shared/prefix_q*` measures phase 2.
    let cfg = TurboFluxConfig {
        fleet_shared_index: shared,
        fleet_shared_subtrees: false,
        ..TurboFluxConfig::default()
    };
    let mut fleet = Fleet::with_threads(g0.clone(), 1);
    for _ in 0..nq {
        fleet.register(q.clone(), cfg);
    }
    (fleet, cfg)
}

fn replay(fleet: &mut Fleet, ops: &[UpdateOp]) -> u64 {
    let mut n = 0u64;
    fleet.apply_batch_sequential(ops, &mut |_| n += 1);
    n
}

/// Shared candidate-prefix index vs per-engine candidate scans, on the
/// overlapping-labels star workload.
fn fleet_shared_overlap(c: &mut Criterion) {
    let (g0, q, ops) = star_setup();

    // Sanity: the workload must actually exercise the shared path (hits)
    // and both modes must emit the same delta sequence length.
    {
        let (mut on, _) = star_fleet(&g0, &q, 2, true);
        let (mut off, _) = star_fleet(&g0, &q, 2, false);
        let n_on = replay(&mut on, &ops);
        let n_off = replay(&mut off, &ops);
        assert_eq!(n_on, n_off, "shared/naive fleets disagree on delta count");
        assert!(n_on > 0, "star workload produced no deltas");
        let stats = on.stats();
        assert!(stats.shared_hits > 0, "star workload never hit the shared index");
        assert_eq!(off.stats().shared_hits, 0, "ablation consulted the index");
    }

    for &nq in &[1usize, 4, 16, 64] {
        let mut group = c.benchmark_group(format!("fleet_shared/overlap_q{nq}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(ops.len() as u64));
        for (id, shared) in [("shared", true), ("naive", false)] {
            let (mut fleet, _) = star_fleet(&g0, &q, nq, shared);
            group.bench_function(id, |b| b.iter(|| black_box(replay(&mut fleet, &ops))));
        }
        group.finish();
    }
}

/// Extra labels of the prefix-sharing workload: the deep level below the
/// targets and the per-query private suffix vertices.
const L_DEEP: LabelId = LabelId(4);
const L_SUF: LabelId = LabelId(5);

const PREFIX_MIDS: usize = 8;
const PREFIX_TARGETS: usize = 2048;
const PREFIX_DEEPS: usize = 2;
const PREFIX_QMAX: usize = 64;
const PREFIX_OPS: usize = 256;

/// Prefix-sharing workload: every query is the 3-edge chain
/// root→mid→target→deep (the shared DCG subtree) plus one private suffix
/// edge root→suffix with a query-unique edge label. The target level is
/// candidate-wide (2048 targets per mid), so each root→mid (re)insert
/// rebuilds a 2048-entry DCG region per engine — per-edge candidate
/// sharing (phase 1) amortizes the *scans* but still pays the per-engine
/// DCG writes; subtree sharing (phase 2) maintains the region once.
fn prefix_setup() -> (DynamicGraph, Vec<QueryGraph>, Vec<UpdateOp>) {
    let mut g = DynamicGraph::new();
    let root = g.add_vertex(LabelSet::single(L_ROOT));
    let mids: Vec<VertexId> =
        (0..PREFIX_MIDS).map(|_| g.add_vertex(LabelSet::single(L_MID))).collect();
    let targets: Vec<VertexId> =
        (0..PREFIX_TARGETS).map(|_| g.add_vertex(LabelSet::single(L_TARGET))).collect();
    let deeps: Vec<VertexId> =
        (0..PREFIX_DEEPS).map(|_| g.add_vertex(LabelSet::single(L_DEEP))).collect();
    for &m in &mids {
        for &t in &targets {
            g.insert_edge(m, L_EDGE, t);
        }
    }
    // Only the first two targets reach the deep level, so the candidate
    // region is wide (2048 DCG entries per mid) while complete matches — a
    // per-engine cost no sharing scheme can amortize — stay few.
    for &t in &targets[..2] {
        for &d in &deeps {
            g.insert_edge(t, L_EDGE, d);
        }
    }
    // One private suffix vertex per query, each reachable over a
    // query-unique edge label.
    for i in 0..PREFIX_QMAX {
        let s = g.add_vertex(LabelSet::single(L_SUF));
        g.insert_edge(root, LabelId(100 + i as u32), s);
    }
    let churn = &mids[..PREFIX_MIDS / 2];
    for &m in churn {
        g.insert_edge(root, L_EDGE, m);
    }

    let queries = (0..PREFIX_QMAX)
        .map(|i| {
            let mut q = QueryGraph::new();
            let a = q.add_vertex(LabelSet::single(L_ROOT));
            let b = q.add_vertex(LabelSet::single(L_MID));
            let c = q.add_vertex(LabelSet::single(L_TARGET));
            let d = q.add_vertex(LabelSet::single(L_DEEP));
            let e = q.add_vertex(LabelSet::single(L_SUF));
            q.add_edge(a, b, Some(L_EDGE));
            q.add_edge(b, c, Some(L_EDGE));
            q.add_edge(c, d, Some(L_EDGE));
            q.add_edge(a, e, Some(LabelId(100 + i as u32)));
            q
        })
        .collect();

    let mut ops = Vec::with_capacity(PREFIX_OPS);
    for i in 0..PREFIX_OPS / 2 {
        let m = churn[i % churn.len()];
        ops.push(UpdateOp::DeleteEdge { src: root, label: L_EDGE, dst: m });
        ops.push(UpdateOp::InsertEdge { src: root, label: L_EDGE, dst: m });
    }
    (g, queries, ops)
}

fn prefix_fleet(
    g0: &DynamicGraph,
    queries: &[QueryGraph],
    nq: usize,
    subtrees: bool,
    index: bool,
) -> Fleet {
    let cfg = TurboFluxConfig {
        fleet_shared_subtrees: subtrees,
        fleet_shared_index: index,
        ..TurboFluxConfig::default()
    };
    let mut fleet = Fleet::with_threads(g0.clone(), 1);
    for q in &queries[..nq] {
        fleet.register(q.clone(), cfg);
    }
    fleet
}

/// Shared DCG subtree prefixes (phase 2) vs the per-edge candidate index
/// (phase 1) vs no sharing, on the common-prefix workload.
fn fleet_shared_prefix(c: &mut Criterion) {
    let (g0, queries, ops) = prefix_setup();

    // Sanity: the three modes must emit identical delta counts, the
    // phase-2 fleet must actually serve regions from shared instances, and
    // each ablation must leave its layer untouched.
    {
        let mut shared = prefix_fleet(&g0, &queries, 2, true, true);
        let mut phase1 = prefix_fleet(&g0, &queries, 2, false, true);
        let mut naive = prefix_fleet(&g0, &queries, 2, false, false);
        let n_shared = replay(&mut shared, &ops);
        assert!(n_shared > 0, "prefix workload produced no deltas");
        assert_eq!(n_shared, replay(&mut phase1, &ops), "phase1 fleet delta count diverged");
        assert_eq!(n_shared, replay(&mut naive, &ops), "naive fleet delta count diverged");
        let st = shared.stats();
        assert!(st.subtrees_shared >= 1, "prefix queries did not fold into a shared subtree");
        assert!(st.subtree_hits > 0, "shared subtree never served a DCG region");
        assert!(st.suffix_evals > 0, "no suffix evaluations ran");
        assert_eq!(phase1.stats().subtree_hits, 0, "subtree ablation still skipped regions");
        assert!(phase1.stats().shared_hits > 0, "phase-1 fleet never hit the candidate index");
        assert_eq!(naive.stats().shared_hits, 0, "naive fleet consulted the candidate index");
    }

    for &nq in &[4usize, 16, 64] {
        let mut group = c.benchmark_group(format!("fleet_shared/prefix_q{nq}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(ops.len() as u64));
        for (id, subtrees, index) in
            [("shared", true, true), ("phase1", false, true), ("naive", false, false)]
        {
            let mut fleet = prefix_fleet(&g0, &queries, nq, subtrees, index);
            group.bench_function(id, |b| b.iter(|| black_box(replay(&mut fleet, &ops))));
        }
        group.finish();
    }
}

/// Label-disjoint fleets: engine i matches only edge label `100 + i`, the
/// stream only carries label 100. With op routing, every op reaches exactly
/// one engine regardless of fleet size.
fn fleet_routing_disjoint(c: &mut Criterion) {
    let mut g0 = DynamicGraph::new();
    let nv = 16usize;
    for i in 0..nv {
        g0.add_vertex(LabelSet::single(LabelId(i as u32 % 2)));
    }
    let mut ops = Vec::with_capacity(STAR_OPS);
    for i in 0..STAR_OPS / 2 {
        let src = VertexId((2 * i % nv) as u32);
        let dst = VertexId(((2 * i + 1) % nv) as u32);
        ops.push(UpdateOp::InsertEdge { src, label: LabelId(100), dst });
        ops.push(UpdateOp::DeleteEdge { src, label: LabelId(100), dst });
    }
    let query_for = |i: usize| {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(LabelId(0)));
        let b = q.add_vertex(LabelSet::single(LabelId(1)));
        q.add_edge(a, b, Some(LabelId(100 + i as u32)));
        q
    };

    // Sanity: with ≥2 disjoint engines the routing table must skip.
    {
        let mut fleet = Fleet::with_threads(g0.clone(), 1);
        for i in 0..2 {
            fleet.register(query_for(i), TurboFluxConfig::default());
        }
        replay(&mut fleet, &ops);
        assert!(fleet.stats().ops_skipped > 0, "disjoint fleet never skipped an engine");
    }

    let mut group = c.benchmark_group("fleet_routing/disjoint");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops.len() as u64));
    for &nq in &[1usize, 4, 16, 64] {
        let mut fleet = Fleet::with_threads(g0.clone(), 1);
        for i in 0..nq {
            fleet.register(query_for(i), TurboFluxConfig::default());
        }
        group.bench_function(format!("q{nq}"), |b| b.iter(|| black_box(replay(&mut fleet, &ops))));
    }
    group.finish();
}

criterion_group!(
    benches,
    fleet_throughput,
    fleet_shared_overlap,
    fleet_shared_prefix,
    fleet_routing_disjoint
);
criterion_main!(benches);
