//! Fleet benchmark: N registered queries × batch size, parallel
//! `apply_batch` vs the single-threaded `apply_batch_sequential` baseline,
//! on the LSBench-like insert stream.
//!
//! The interesting axes:
//!
//! * query count (1 / 4 / 16) — parallelism is across engines, so one query
//!   cannot speed up and sixteen should approach the core count,
//! * batch size (1 / 64 / 1024) — batches amortize thread-scope setup; a
//!   batch of 1 measures the worst-case round-trip overhead.
//!
//! On a single-core host the parallel path cannot win (the per-op barrier
//! rounds just add overhead); run this on a multi-core machine to see the
//! fan-out effect. `scripts/bench_snapshot.sh` records the host's core
//! count next to the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tfx_core::{Fleet, TurboFlux, TurboFluxConfig};
use tfx_datagen::{lsbench, queries, LsBenchConfig, Pcg32};
use tfx_graph::UpdateOp;
use tfx_query::{ContinuousMatcher, QueryGraph};

const STREAM_OPS: usize = 1024;

/// Per-query delta budget over the whole stream. Random tree queries on the
/// skewed LSBench-like graph occasionally explode (tens of millions of
/// matches); since the fleet buffers one record per delta per batch, such a
/// query measures allocator throughput, not engine throughput — screen them
/// out deterministically by replaying the stream on a standalone engine.
const MAX_DELTAS_PER_QUERY: u64 = 50_000;

fn setup() -> (tfx_graph::DynamicGraph, Vec<QueryGraph>, Vec<UpdateOp>) {
    let d = lsbench::generate(&LsBenchConfig { users: 150, seed: 7, stream_frac: 0.15 });
    let ops: Vec<UpdateOp> = d.stream.ops().iter().take(STREAM_OPS).cloned().collect();
    let mut rng = Pcg32::new(21);
    let mut queries: Vec<QueryGraph> = Vec::new();
    while queries.len() < 16 {
        let q = queries::random_tree_query(&d.schema, 5, &mut rng);
        let mut probe = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
        let mut n = 0u64;
        for op in &ops {
            probe.apply(op, &mut |_, _| n += 1);
            if n > MAX_DELTAS_PER_QUERY {
                break;
            }
        }
        if n <= MAX_DELTAS_PER_QUERY {
            queries.push(q);
        }
    }
    (d.g0, queries, ops)
}

fn fleet_throughput(c: &mut Criterion) {
    let (g0, queries, ops) = setup();
    for &nq in &[1usize, 4, 16] {
        let mut group = c.benchmark_group(format!("fleet_throughput/q{nq}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(ops.len() as u64));
        for &batch in &[1usize, 64, 1024] {
            group.bench_with_input(BenchmarkId::new("fleet", batch), &batch, |b, &batch| {
                b.iter(|| {
                    let mut fleet = Fleet::new(g0.clone());
                    for q in &queries[..nq] {
                        fleet.register(q.clone(), TurboFluxConfig::default());
                    }
                    let mut n = 0u64;
                    for chunk in ops.chunks(batch) {
                        fleet.apply_batch(chunk, &mut |_| n += 1);
                    }
                    black_box(n)
                });
            });
            group.bench_with_input(BenchmarkId::new("sequential", batch), &batch, |b, &batch| {
                b.iter(|| {
                    let mut fleet = Fleet::with_threads(g0.clone(), 1);
                    for q in &queries[..nq] {
                        fleet.register(q.clone(), TurboFluxConfig::default());
                    }
                    let mut n = 0u64;
                    for chunk in ops.chunks(batch) {
                        fleet.apply_batch_sequential(chunk, &mut |_| n += 1);
                    }
                    black_box(n)
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fleet_throughput);
criterion_main!(benches);
