//! Streaming-ingestion benchmarks: sliding-window churn and source parsing.
//!
//! Three groups cover the `tfx-stream` layers:
//!
//! * `window_churn` — a netflow-like insert stream pushed through a
//!   count-window into a no-op target, at window sizes 1k and 16k. This
//!   isolates the window's ring-buffer + live-count bookkeeping and the
//!   driver's batching from engine cost; every insert past the warm-up
//!   also evicts, so the measured rate is the sustained churn rate.
//! * `windowed_netflow` — the same stream and windows applied to a real
//!   TurboFlux engine monitoring a two-hop tcp→udp relay, end to end
//!   (window expiry deletes drive real negative-delta work).
//! * `file_source_parse` — text-format throughput of `FileSource` over an
//!   in-memory stream file with a mix of implicit and `@ts` timestamps.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::io::Cursor;
use tfx_core::{TurboFlux, TurboFluxConfig};
use tfx_datagen::{netflow, Dataset, NetflowConfig};
use tfx_graph::{LabelInterner, LabelSet, UpdateOp};
use tfx_query::{MatchRecord, Positiveness, QueryGraph};
use tfx_stream::{
    BatchPolicy, BatchTarget, ErrorMode, FileSource, NullSink, SlidingWindow, StreamDriver,
    StreamEvent, StreamSource, SyntheticSource, VecSource, WindowSpec,
};

/// 2 000 hosts, 24 000 streamed flows: large enough that both window sizes
/// spend most of the run in steady-state evict-on-insert churn.
fn trace() -> (Dataset, Vec<StreamEvent>) {
    let mut dataset = netflow::generate(&NetflowConfig {
        hosts: 2_000,
        flows: 30_000,
        seed: 0xC4A,
        stream_frac: 0.8,
    });
    let stream = std::mem::take(&mut dataset.stream);
    let mut source = SyntheticSource::from_stream(stream, 1);
    let mut events = Vec::new();
    while let Some(ev) = source.next_event().expect("synthetic sources never fail") {
        events.push(ev);
    }
    (dataset, events)
}

/// Swallows batches without touching an engine.
struct NullTarget;

impl BatchTarget for NullTarget {
    fn apply_batch(
        &mut self,
        ops: &[UpdateOp],
        _sink: &mut dyn FnMut(usize, usize, Positiveness, &MatchRecord),
    ) {
        black_box(ops.len());
    }
}

const WINDOWS: [(&str, usize); 2] = [("1k", 1 << 10), ("16k", 1 << 14)];

/// Window + driver bookkeeping alone: push every event, count the ops out.
fn window_churn(c: &mut Criterion) {
    let (_, events) = trace();
    let mut group = c.benchmark_group("window_churn");
    group.throughput(Throughput::Elements(events.len() as u64));
    for (name, capacity) in WINDOWS {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut source = VecSource::new(events.clone());
                let mut driver = StreamDriver::new(
                    SlidingWindow::new(WindowSpec::Count { capacity }),
                    BatchPolicy::by_ops(256),
                );
                let summary =
                    driver.run(&mut source, &mut NullTarget, &mut NullSink).expect("vec source");
                black_box(summary.ops)
            });
        });
    }
    group.finish();
}

/// The full pipeline: windowed stream into a live engine, expiry deletes
/// included.
fn windowed_netflow(c: &mut Criterion) {
    let (dataset, events) = trace();
    let tcp = dataset.interner.get("tcp").expect("generator defines tcp");
    let udp = dataset.interner.get("udp").expect("generator defines udp");
    let mut q = QueryGraph::new();
    let v: Vec<_> = (0..3).map(|_| q.add_vertex(LabelSet::empty())).collect();
    q.add_edge(v[0], v[1], Some(tcp));
    q.add_edge(v[1], v[2], Some(udp));

    let mut group = c.benchmark_group("windowed_netflow");
    group.throughput(Throughput::Elements(events.len() as u64));
    for (name, capacity) in WINDOWS {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine =
                    TurboFlux::new(q.clone(), dataset.g0.clone(), TurboFluxConfig::default());
                let mut source = VecSource::new(events.clone());
                let mut driver = StreamDriver::new(
                    SlidingWindow::new(WindowSpec::Count { capacity }),
                    BatchPolicy::by_ops(256),
                );
                let summary =
                    driver.run(&mut source, &mut engine, &mut NullSink).expect("vec source");
                black_box((summary.positive, summary.negative))
            });
        });
    }
    group.finish();
}

/// Text parsing throughput: the stream-file grammar with a 50/50 mix of
/// implicit and explicit timestamps, measured in input bytes.
fn file_source_parse(c: &mut Criterion) {
    let (dataset, events) = trace();
    let mut text = String::new();
    for (i, ev) in events.iter().enumerate() {
        if let UpdateOp::InsertEdge { src, label, dst } = ev.op {
            let name = dataset.interner.name(label).expect("streamed labels are interned");
            if i % 2 == 0 {
                text.push_str(&format!("@{} + {} {} {name}\n", ev.ts, src.0, dst.0));
            } else {
                text.push_str(&format!("+ {} {} {name}\n", src.0, dst.0));
            }
        }
    }
    let bytes = text.into_bytes();
    let mut group = c.benchmark_group("file_source_parse");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("netflow_text", |b| {
        b.iter(|| {
            let mut interner = LabelInterner::new();
            let mut source =
                FileSource::new(Cursor::new(bytes.as_slice()), &mut interner, ErrorMode::Strict);
            let mut n = 0u64;
            while let Some(ev) = source.next_event().expect("well-formed text") {
                n = n.wrapping_add(ev.ts);
            }
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, window_churn, windowed_netflow, file_source_parse);
criterion_main!(benches);
