//! Motif counting through the backtracking matcher: the end-to-end gauge
//! for the candidate-intersection rewrite.
//!
//! Two layers:
//!
//! * `motif` — count directed triangles and 4-cycles on a uniform random
//!   graph under both extension strategies. `PivotScan` is the pre-kernel
//!   path (scan the single cheapest bound neighbor's list, reject per edge
//!   with hash probes); `Intersect` folds *every* bound neighbor's sorted
//!   run through the merge/gallop kernels. Same match counts, different
//!   work per extension.
//! * `intersect_kernels` — the raw kernels on synthetic sorted runs at the
//!   size ratios the dispatcher distinguishes (balanced → linear/SIMD,
//!   skewed → gallop), against the scalar reference merge.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tfx_datagen::{uniform, UniformConfig};
use tfx_graph::intersect::{
    intersect_gallop_into, intersect_into, intersect_linear_into, intersect_reference,
};
use tfx_graph::VertexId;
use tfx_match::{enumerate_matches_with, ExtendStrategy};
use tfx_query::{MatchSemantics, QueryGraph};

/// Directed k-cycle with one concrete edge label and wildcard vertices.
fn cycle_query(k: usize, label: tfx_graph::LabelId) -> QueryGraph {
    let mut q = QueryGraph::new();
    let vs: Vec<_> = (0..k).map(|_| q.add_vertex(tfx_graph::LabelSet::empty())).collect();
    for i in 0..k {
        q.add_edge(vs[i], vs[(i + 1) % k], Some(label));
    }
    q
}

fn motif(c: &mut Criterion) {
    // Dense enough that hot vertices cross the promotion threshold and the
    // intersection sees real promoted runs; single edge label keeps every
    // query edge on the concrete zero-copy path.
    let d = uniform::generate(&UniformConfig {
        vertices: 600,
        vertex_labels: 1,
        edge_labels: 1,
        edges: 12_000,
        seed: 2018,
        stream_frac: 0.0,
    });
    let g = d.final_graph();
    let label = d.interner.get("r0").expect("uniform datagen interns r0");

    let mut group = c.benchmark_group("motif");
    group.sample_size(10);
    for (name, k) in [("triangle", 3), ("four_cycle", 4)] {
        let q = cycle_query(k, label);
        // Both strategies must agree on the count — guard before timing.
        let count = |s: ExtendStrategy| {
            let mut n = 0u64;
            enumerate_matches_with(&g, &q, MatchSemantics::Homomorphism, s, &mut |_| {
                n += 1;
                true
            });
            n
        };
        let expected = count(ExtendStrategy::PivotScan);
        assert_eq!(expected, count(ExtendStrategy::Intersect), "{name}: strategies disagree");
        assert!(expected > 0, "{name}: workload produced no matches — bench is vacuous");
        group.throughput(Throughput::Elements(expected));
        for strategy in [ExtendStrategy::Intersect, ExtendStrategy::PivotScan] {
            group.bench_function(format!("{name}/{strategy:?}"), |b| {
                b.iter(|| black_box(count(strategy)));
            });
        }
    }
    group.finish();
}

/// Sorted run of `len` ids: every `stride`-th value from `start`.
fn run(start: u32, stride: u32, len: usize) -> Vec<VertexId> {
    (0..len as u32).map(|i| VertexId(start + i * stride)).collect()
}

fn intersect_kernels(c: &mut Criterion) {
    // Balanced overlap (co-prime strides → sparse hits) and skewed
    // needle-in-haystack, the two regimes the dispatcher splits on.
    let balanced = (run(0, 3, 4096), run(0, 7, 4096));
    let skewed = (run(0, 64, 128), run(0, 1, 65_536));

    let mut group = c.benchmark_group("intersect_kernels");
    for (name, (a, b)) in [("balanced_4k", &balanced), ("skewed_128_64k", &skewed)] {
        group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        group.bench_function(format!("{name}/auto"), |bch| {
            bch.iter(|| {
                out.clear();
                intersect_into(black_box(a), black_box(b), &mut out);
                black_box(out.len())
            });
        });
        group.bench_function(format!("{name}/linear"), |bch| {
            bch.iter(|| {
                out.clear();
                intersect_linear_into(black_box(a), black_box(b), &mut out);
                black_box(out.len())
            });
        });
        group.bench_function(format!("{name}/gallop"), |bch| {
            bch.iter(|| {
                out.clear();
                intersect_gallop_into(black_box(a), black_box(b), &mut out);
                black_box(out.len())
            });
        });
        group.bench_function(format!("{name}/reference"), |bch| {
            bch.iter(|| black_box(intersect_reference(black_box(a), black_box(b)).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, motif, intersect_kernels);
criterion_main!(benches);
