//! Label-partitioned adjacency index vs flat scan.
//!
//! Two layers:
//!
//! * `adjacency_lookup` — the raw accessor: enumerate a hub's rare `probe`
//!   group (and a uniform lsbench vertex's neighbors) through
//!   [`AdjacencyMode::Indexed`] vs [`AdjacencyMode::FlatScan`]. Same
//!   storage, two access paths, identical output order.
//! * `hub_eval` — the engine-level hot path on the skewed hub workload:
//!   every stream insert gives a hub its first incoming `feed` edge, so
//!   `BuildDCG`'s check-and-avoid rule re-enumerates the hub's children on
//!   each update. With the index that walks the 4-edge `probe` group; the
//!   flat-scan ablation (`label_indexed_adjacency: false`) walks all ~8k
//!   bulk edges per update. The stream is self-inverting (insert+delete
//!   pairs), so graph, DCG, and engine return to their initial state every
//!   pass and nothing is cloned inside the measurement loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tfx_core::{TurboFlux, TurboFluxConfig};
use tfx_datagen::{hub, lsbench, HubConfig, LsBenchConfig};
use tfx_graph::{AdjacencyMode, UpdateOp, VertexId};

fn adjacency_lookup(c: &mut Criterion) {
    let cfg = HubConfig::with_spokes_per_hub(2048);
    let d = hub::generate(&cfg);
    let probe = d.interner.get("probe").unwrap();
    let hubs: Vec<VertexId> = (0..cfg.hubs).map(|h| VertexId((cfg.sources + h) as u32)).collect();

    let mut group = c.benchmark_group("adjacency_lookup");
    group.throughput(Throughput::Elements(hubs.len() as u64));
    for mode in [AdjacencyMode::Indexed, AdjacencyMode::FlatScan] {
        group.bench_function(format!("hub_probe/{mode:?}"), |b| {
            b.iter(|| {
                let mut n = 0u64;
                for &h in &hubs {
                    for v in d.g0.out_neighbors_matching(h, Some(probe), mode) {
                        n = n.wrapping_add(v.0 as u64);
                    }
                }
                black_box(n)
            });
        });
    }

    // Uniform low-degree graph: both paths touch the same handful of
    // entries, so this guards against the index slowing the common case.
    let u = lsbench::generate(&LsBenchConfig { users: 200, seed: 7, stream_frac: 0.1 });
    let g = u.final_graph();
    let label = u.interner.get("follows").or_else(|| u.interner.get("knows"));
    let vertices: Vec<VertexId> = g.vertices().collect();
    group.throughput(Throughput::Elements(vertices.len() as u64));
    for mode in [AdjacencyMode::Indexed, AdjacencyMode::FlatScan] {
        group.bench_function(format!("uniform/{mode:?}"), |b| {
            b.iter(|| {
                let mut n = 0u64;
                for &v in &vertices {
                    for w in g.out_neighbors_matching(v, label, mode) {
                        n = n.wrapping_add(w.0 as u64);
                    }
                }
                black_box(n)
            });
        });
    }
    group.finish();
}

fn hub_eval(c: &mut Criterion) {
    let d = hub::generate(&HubConfig::with_spokes_per_hub(8192));
    let q = hub::probe_query(&d);
    let ops: Vec<UpdateOp> = d.stream.ops().to_vec();

    let mut group = c.benchmark_group("hub_eval");
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.sample_size(10);
    for indexed in [true, false] {
        let cfg = TurboFluxConfig { label_indexed_adjacency: indexed, ..Default::default() };
        let name = if indexed { "indexed" } else { "flat_scan" };
        // Externally driven mode: one graph, one engine, reused across
        // iterations — the insert/delete pairs restore both exactly.
        let mut g = d.g0.clone();
        let mut e = TurboFlux::register(q.clone(), &g, cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut n = 0u64;
                for op in &ops {
                    match *op {
                        UpdateOp::InsertEdge { src, label, dst } => {
                            g.insert_edge(src, label, dst);
                            e.eval_inserted_edge(&g, src, label, dst, &mut |_, _| n += 1);
                        }
                        UpdateOp::DeleteEdge { src, label, dst } => {
                            e.eval_deleting_edge(&g, src, label, dst, &mut |_, _| n += 1);
                            g.delete_edge(src, label, dst);
                        }
                        UpdateOp::AddVertex { .. } => unreachable!("hub stream is edges only"),
                    }
                }
                black_box(n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, adjacency_lookup, hub_eval);
criterion_main!(benches);
