//! Shard-scaling benchmarks: the sharded execution runtime at shards ∈
//! {1, 2, 4, 8} against the unsharded engine, on three stream shapes:
//!
//! * `shard_scaling/uniform` — unskewed endpoints; partitions stay
//!   balanced, so this is the best case for shard parallelism.
//! * `shard_scaling/hub` — hub-dominated endpoints; most root candidates
//!   hash to a few shards, the worst case for partition balance.
//! * `shard_scaling/netflow_windowed` — the full ingestion pipeline
//!   (count window + batching driver) over the netflow trace with a
//!   `ShardedEngine` batch target.
//!
//! The `unsharded` baseline is the plain engine with the same pinned
//! (static) matching order the sharded runtime uses, so the comparison
//! isolates partitioning cost/benefit from plan differences. Shard
//! parallelism is across partition slices; on a single-core host the
//! barrier rounds can only add overhead (shards=1 stays sequential and
//! must track the baseline closely) — `scripts/bench_snapshot.sh` refuses
//! to snapshot this group on 1 core and records the core count otherwise.
//!
//! Before timing, every group self-checks that all shard counts emit
//! exactly as many deltas as the unsharded baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tfx_core::{ShardedEngine, TurboFlux, TurboFluxConfig};
use tfx_datagen::{hub, queries, uniform, Dataset, HubConfig, Pcg32, UniformConfig};
use tfx_graph::{DynamicGraph, UpdateOp};
use tfx_query::{ContinuousMatcher, QueryGraph};
use tfx_stream::{
    BatchPolicy, BatchTarget, CountingSink, SlidingWindow, StreamDriver, SyntheticKind,
    SyntheticSource, WindowSpec,
};

const STREAM_OPS: usize = 1024;
const BATCH: usize = 256;

/// Delta budget per candidate query (see `fleet_throughput`): random tree
/// queries occasionally explode on skewed graphs, and an exploding query
/// benchmarks the delta buffer, not the runtime.
const MAX_DELTAS: u64 = 50_000;

/// The config every engine in this bench runs: the sharded runtime pins
/// the matching order static, so the unsharded baseline does too.
fn cfg(shards: usize) -> TurboFluxConfig {
    TurboFluxConfig { shards, adjust_matching_order: false, ..TurboFluxConfig::default() }
}

/// Picks the first random tree query that produces deltas on this
/// dataset's stream prefix while staying under the delta budget (a
/// no-match query would benchmark op staging alone).
fn pick_query(d: &Dataset, ops: &[UpdateOp], rng_seed: u64) -> QueryGraph {
    let mut rng = Pcg32::new(rng_seed);
    loop {
        let q = queries::random_tree_query(&d.schema, 4, &mut rng);
        let mut probe = TurboFlux::new(q.clone(), d.g0.clone(), cfg(1));
        let mut n = 0u64;
        for op in ops {
            probe.apply(op, &mut |_, _| n += 1);
            if n > MAX_DELTAS {
                break;
            }
        }
        if n > 0 && n <= MAX_DELTAS {
            return q;
        }
    }
}

fn unsharded_deltas(g0: &DynamicGraph, q: &QueryGraph, ops: &[UpdateOp]) -> u64 {
    let mut engine = TurboFlux::new(q.clone(), g0.clone(), cfg(1));
    let mut n = 0u64;
    for op in ops {
        engine.apply(op, &mut |_, _| n += 1);
    }
    n
}

fn sharded_deltas(g0: &DynamicGraph, q: &QueryGraph, ops: &[UpdateOp], shards: usize) -> u64 {
    let mut engine = ShardedEngine::new(vec![q.clone()], g0.clone(), cfg(shards), shards);
    let mut n = 0u64;
    for chunk in ops.chunks(BATCH) {
        engine.apply_batch(chunk, &mut |_, _, _, _| n += 1);
    }
    n
}

fn bench_shape(c: &mut Criterion, name: &str, d: &Dataset, query_seed: u64) {
    let ops: Vec<UpdateOp> = d.stream.ops().iter().take(STREAM_OPS).cloned().collect();
    let q = pick_query(d, &ops, query_seed);

    // Sanity: every shard count reports exactly the baseline's deltas.
    let want = unsharded_deltas(&d.g0, &q, &ops);
    for shards in [1usize, 2, 4, 8] {
        let got = sharded_deltas(&d.g0, &q, &ops, shards);
        assert_eq!(got, want, "{name}: shards={shards} delta count diverged");
    }

    // Regression guard: the single-shard fast path must track the unsharded
    // engine. Min-of-N damps scheduler noise; the 1.5× bound is generous
    // (measured parity ±5% on both uniform and hub — see DESIGN.md's
    // sharded-execution notes and `examples/shard_probe.rs`).
    let min_of = |f: &dyn Fn() -> u64| {
        (0..7)
            .map(|_| {
                let t = std::time::Instant::now();
                black_box(f());
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let base = min_of(&|| unsharded_deltas(&d.g0, &q, &ops));
    let single = min_of(&|| sharded_deltas(&d.g0, &q, &ops, 1));
    assert!(
        single <= base.mul_f64(1.5),
        "{name}: shards=1 fast path regressed: {single:?} vs unsharded {base:?}"
    );

    let mut group = c.benchmark_group(format!("shard_scaling/{name}"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.bench_function("unsharded", |b| b.iter(|| black_box(unsharded_deltas(&d.g0, &q, &ops))));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| black_box(sharded_deltas(&d.g0, &q, &ops, shards)))
        });
    }
    group.finish();
}

fn shard_scaling_uniform(c: &mut Criterion) {
    let d = uniform::generate(&UniformConfig { seed: 31, ..UniformConfig::default() });
    bench_shape(c, "uniform", &d, 77);
}

fn shard_scaling_hub(c: &mut Criterion) {
    let d = hub::generate(&HubConfig { seed: 31, ..HubConfig::default() });
    bench_shape(c, "hub", &d, 77);
}

/// Full pipeline: count-windowed netflow replay through the batching
/// driver into a sharded (or plain) batch target.
fn shard_scaling_netflow_windowed(c: &mut Criterion) {
    let mut interner = tfx_graph::LabelInterner::new();
    let q = tfx_query::parser::parse_query("v 0\nv 1\nv 2\ne 0 1 tcp\ne 1 2 udp\n", &mut interner)
        .expect("static query parses");

    let run = |shards: usize| -> u64 {
        let (dataset, mut source) = SyntheticSource::demo(SyntheticKind::Netflow, 2018, 1);
        let mut driver = StreamDriver::new(
            SlidingWindow::new(WindowSpec::Count { capacity: 1000 }),
            BatchPolicy::by_ops(BATCH),
        );
        let mut sink = CountingSink::default();
        let summary = if shards == 0 {
            let mut engine = TurboFlux::new(q.clone(), dataset.g0, cfg(1));
            driver.run(&mut source, &mut engine, &mut sink)
        } else {
            let mut engine = ShardedEngine::new(vec![q.clone()], dataset.g0, cfg(shards), shards);
            let engine: &mut dyn BatchTarget = &mut engine;
            driver.run(&mut source, engine, &mut sink)
        };
        summary.expect("synthetic source never errors");
        sink.positive + sink.negative
    };

    // Sanity: windowed delta totals agree across all targets.
    let want = run(0);
    assert!(want > 0, "netflow workload produced no deltas");
    for shards in [1usize, 2, 4, 8] {
        assert_eq!(run(shards), want, "netflow: shards={shards} delta count diverged");
    }

    let mut group = c.benchmark_group("shard_scaling/netflow_windowed");
    group.sample_size(10);
    group.bench_function("unsharded", |b| b.iter(|| black_box(run(0))));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards{shards}"), |b| b.iter(|| black_box(run(shards))));
    }
    group.finish();
}

criterion_group!(benches, shard_scaling_uniform, shard_scaling_hub, shard_scaling_netflow_windowed);
criterion_main!(benches);
