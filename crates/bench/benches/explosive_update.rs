//! Intra-update parallel enumeration vs the sequential ablation.
//!
//! Two layers:
//!
//! * `explosive_update` — the tentpole scenario: a star-of-stars where one
//!   feed insert completes `mids × leaves` matches at once, with `mids`
//!   explicit candidates at the parallel split depth. `workers/1` is the
//!   sequential baseline; `workers/4` fans the frontier out across scoped
//!   threads (deltas are byte-identical either way, so the two series are
//!   directly comparable). Speedup requires real cores — on a single-core
//!   host the parallel series only measures the fan-out overhead.
//! * `small_frontier_fallback` — the same shape shrunk below the default
//!   `parallel_min_frontier`, so a `workers/4` engine must take the
//!   sequential path; any gap between the two series here is pure
//!   regression in the fallback gate.
//!
//! Both streams are self-inverting (insert + delete of the feed edge), so
//! graph, DCG, and engine return to their initial state every iteration
//! and nothing is cloned inside the measurement loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tfx_core::{TurboFlux, TurboFluxConfig};
use tfx_graph::{DynamicGraph, LabelId, LabelSet, VertexId};
use tfx_query::QueryGraph;

/// Source `a:A`, hub `h:H`, `mids` M-vertices each with `leaves`
/// L-children, pre-wired below the hub; query `A -f-> H -m-> M -l-> L`.
/// Returns the feed edge whose insertion completes `mids × leaves`
/// matches in one update.
fn star_of_stars(
    mids: u32,
    leaves: u32,
) -> (DynamicGraph, QueryGraph, (VertexId, LabelId, VertexId)) {
    let (f, m, lv) = (LabelId(10), LabelId(11), LabelId(12));
    let mut g = DynamicGraph::new();
    let a = g.add_vertex(LabelSet::single(LabelId(0)));
    let h = g.add_vertex(LabelSet::single(LabelId(1)));
    for _ in 0..mids {
        let mid = g.add_vertex(LabelSet::single(LabelId(2)));
        g.insert_edge(h, m, mid);
        for _ in 0..leaves {
            let leaf = g.add_vertex(LabelSet::single(LabelId(3)));
            g.insert_edge(mid, lv, leaf);
        }
    }
    let mut q = QueryGraph::new();
    let u0 = q.add_vertex(LabelSet::single(LabelId(0)));
    let u1 = q.add_vertex(LabelSet::single(LabelId(1)));
    let u2 = q.add_vertex(LabelSet::single(LabelId(2)));
    let u3 = q.add_vertex(LabelSet::single(LabelId(3)));
    q.add_edge(u0, u1, Some(f));
    q.add_edge(u1, u2, Some(m));
    q.add_edge(u2, u3, Some(lv));
    (g, q, (a, f, h))
}

/// One self-inverting feed cycle: insert (explodes positives), delete
/// (retracts the same set). Returns the delta count as an optimization
/// barrier.
fn feed_cycle(
    e: &mut TurboFlux,
    g: &mut DynamicGraph,
    (src, label, dst): (VertexId, LabelId, VertexId),
) -> u64 {
    let mut n = 0u64;
    g.insert_edge(src, label, dst);
    e.eval_inserted_edge(g, src, label, dst, &mut |_, _| n += 1);
    e.eval_deleting_edge(g, src, label, dst, &mut |_, _| n += 1);
    g.delete_edge(src, label, dst);
    n
}

fn explosive_update(c: &mut Criterion) {
    const MIDS: u32 = 256;
    const LEAVES: u32 = 64;
    let (g0, q, feed) = star_of_stars(MIDS, LEAVES);

    let mut group = c.benchmark_group("explosive_update");
    group.sample_size(10);
    // Deltas per iteration: positives plus negatives.
    group.throughput(Throughput::Elements(2 * (MIDS as u64) * (LEAVES as u64)));
    for workers in [1usize, 4] {
        let cfg = TurboFluxConfig {
            parallel_workers: workers,
            parallel_min_frontier: 16, // MIDS ≫ 16: always fan out
            ..Default::default()
        };
        let mut g = g0.clone();
        let mut e = TurboFlux::register(q.clone(), &g, cfg);
        group.bench_function(format!("workers/{workers}"), |b| {
            b.iter(|| black_box(feed_cycle(&mut e, &mut g, feed)));
        });
    }
    group.finish();
}

fn small_frontier_fallback(c: &mut Criterion) {
    const MIDS: u32 = 4; // below the default parallel_min_frontier
    const LEAVES: u32 = 4;
    let (g0, q, feed) = star_of_stars(MIDS, LEAVES);

    let mut group = c.benchmark_group("small_frontier_fallback");
    group.throughput(Throughput::Elements(2 * (MIDS as u64) * (LEAVES as u64)));
    for workers in [1usize, 4] {
        let cfg = TurboFluxConfig { parallel_workers: workers, ..Default::default() };
        assert!(
            (MIDS as usize) < cfg.parallel_min_frontier,
            "fallback group must stay under the threshold"
        );
        let mut g = g0.clone();
        let mut e = TurboFlux::register(q.clone(), &g, cfg);
        group.bench_function(format!("workers/{workers}"), |b| {
            b.iter(|| black_box(feed_cycle(&mut e, &mut g, feed)));
        });
    }
    group.finish();
}

criterion_group!(benches, explosive_update, small_frontier_fallback);
criterion_main!(benches);
