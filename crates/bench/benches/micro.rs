//! Criterion micro-benchmarks for the core building blocks:
//!
//! * `dcg_transit` — raw DCG edge state transitions,
//! * `build_dcg` — initial DCG construction, scaling with `|E(g)| · |V(q)|`
//!   (Lemma 4.1),
//! * `insert_throughput` / `delete_throughput` — per-engine update costs on
//!   the LSBench-like stream,
//! * `subgraph_search` — enumeration rate on a match-heavy query,
//! * `static_match` — the backtracking matcher used by the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tfx_baselines::{Graphflow, SjTree};
use tfx_core::{Dcg, EdgeState, TurboFlux, TurboFluxConfig};
use tfx_datagen::{lsbench, queries, LsBenchConfig, Pcg32};
use tfx_graph::VertexId;
use tfx_query::{ContinuousMatcher, MatchSemantics, QVertexId};

fn dcg_transit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcg_transit");
    group.throughput(Throughput::Elements(1));
    group.bench_function("set_implicit_then_clear", |b| {
        let mut dcg = Dcg::new(8, QVertexId(0));
        let mut i = 0u32;
        b.iter(|| {
            let pv = VertexId(i % 1024);
            let cv = VertexId((i * 7 + 1) % 1024);
            dcg.transit(Some(pv), QVertexId(1 + (i % 7)), cv, Some(EdgeState::Implicit));
            dcg.transit(Some(pv), QVertexId(1 + (i % 7)), cv, Some(EdgeState::Explicit));
            dcg.transit(Some(pv), QVertexId(1 + (i % 7)), cv, None);
            i = i.wrapping_add(1);
        });
    });
    group.finish();
}

fn build_dcg(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_dcg_initial");
    for users in [100usize, 200, 400] {
        let d = lsbench::generate(&LsBenchConfig { users, seed: 7, stream_frac: 0.1 });
        let mut rng = Pcg32::new(11);
        let q = queries::random_tree_query(&d.schema, 6, &mut rng);
        group.throughput(Throughput::Elements(d.g0.edge_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, _| {
            b.iter(|| {
                let e = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
                black_box(e.dcg().stored_edge_count())
            });
        });
    }
    group.finish();
}

fn insert_throughput(c: &mut Criterion) {
    let d = lsbench::generate(&LsBenchConfig { users: 200, seed: 7, stream_frac: 0.1 });
    let mut rng = Pcg32::new(13);
    let q = queries::random_tree_query(&d.schema, 6, &mut rng);
    let ops: Vec<_> = d.stream.ops().to_vec();

    let mut group = c.benchmark_group("insert_throughput");
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.sample_size(10);
    group.bench_function("turboflux", |b| {
        b.iter(|| {
            let mut e = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
            let mut n = 0u64;
            for op in &ops {
                e.apply(op, &mut |_, _| n += 1);
            }
            black_box(n)
        });
    });
    group.bench_function("graphflow", |b| {
        b.iter(|| {
            let mut e = Graphflow::new(q.clone(), d.g0.clone(), MatchSemantics::Homomorphism);
            let mut n = 0u64;
            for op in &ops {
                e.apply(op, &mut |_, _| n += 1);
            }
            black_box(n)
        });
    });
    group.bench_function("sj_tree", |b| {
        b.iter(|| {
            let mut e = SjTree::with_budget(
                q.clone(),
                d.g0.clone(),
                MatchSemantics::Homomorphism,
                20_000_000,
            );
            let mut n = 0u64;
            for op in &ops {
                e.apply(op, &mut |_, _| n += 1);
            }
            black_box(n)
        });
    });
    group.finish();
}

fn delete_throughput(c: &mut Criterion) {
    let mut d = lsbench::generate(&LsBenchConfig { users: 200, seed: 7, stream_frac: 0.1 });
    d.append_deletions(0.5, 99);
    let mut rng = Pcg32::new(13);
    let q = queries::random_tree_query(&d.schema, 6, &mut rng);
    let ops: Vec<_> = d.stream.ops().to_vec();

    let mut group = c.benchmark_group("mixed_stream_throughput");
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.sample_size(10);
    group.bench_function("turboflux", |b| {
        b.iter(|| {
            let mut e = TurboFlux::new(q.clone(), d.g0.clone(), TurboFluxConfig::default());
            let mut n = 0u64;
            for op in &ops {
                e.apply(op, &mut |_, _| n += 1);
            }
            black_box(n)
        });
    });
    group.finish();
}

fn static_match(c: &mut Criterion) {
    let d = lsbench::generate(&LsBenchConfig { users: 150, seed: 7, stream_frac: 0.1 });
    let g = d.final_graph();
    let mut rng = Pcg32::new(17);
    let q = queries::random_tree_query(&d.schema, 6, &mut rng);
    let mut group = c.benchmark_group("static_match");
    group.sample_size(10);
    group.bench_function("count_q6", |b| {
        b.iter(|| black_box(tfx_match::count_matches(&g, &q, MatchSemantics::Homomorphism)));
    });
    group.finish();
}

criterion_group!(
    benches,
    dcg_transit,
    build_dcg,
    insert_throughput,
    delete_throughput,
    static_match
);
criterion_main!(benches);
