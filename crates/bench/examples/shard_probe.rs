//! Min-of-N probe for the shards=1 fast path vs the unsharded engine
//! (investigation harness for the PR-8 hub-apply gap).

use std::time::Instant;
use tfx_core::{ShardedEngine, TurboFlux, TurboFluxConfig};
use tfx_datagen::{hub, queries, uniform, Dataset, HubConfig, Pcg32, UniformConfig};
use tfx_graph::UpdateOp;
use tfx_query::{ContinuousMatcher, QueryGraph};

const STREAM_OPS: usize = 1024;
const BATCH: usize = 256;
const PROBES: usize = 20;
const MAX_DELTAS: u64 = 50_000;

fn cfg(shards: usize) -> TurboFluxConfig {
    TurboFluxConfig { shards, adjust_matching_order: false, ..TurboFluxConfig::default() }
}

fn pick_query(d: &Dataset, ops: &[UpdateOp], rng_seed: u64) -> QueryGraph {
    let mut rng = Pcg32::new(rng_seed);
    loop {
        let q = queries::random_tree_query(&d.schema, 4, &mut rng);
        let mut probe = TurboFlux::new(q.clone(), d.g0.clone(), cfg(1));
        let mut n = 0u64;
        for op in ops {
            probe.apply(op, &mut |_, _| n += 1);
            if n > MAX_DELTAS {
                break;
            }
        }
        if n > 0 && n <= MAX_DELTAS {
            return q;
        }
    }
}

fn probe(name: &str, d: &Dataset) {
    let ops: Vec<UpdateOp> = d.stream.ops().iter().take(STREAM_OPS).cloned().collect();
    let q = pick_query(d, &ops, 77);

    let mut best_unsharded = f64::MAX;
    let mut best_sharded = f64::MAX;
    let mut best_unsharded_apply = f64::MAX;
    let mut best_sharded_apply = f64::MAX;
    for _ in 0..PROBES {
        let t = Instant::now();
        let mut engine = TurboFlux::new(q.clone(), d.g0.clone(), cfg(1));
        let setup = t.elapsed().as_secs_f64();
        let mut n = 0u64;
        for op in &ops {
            engine.apply(op, &mut |_, _| n += 1);
        }
        let total = t.elapsed().as_secs_f64();
        best_unsharded = best_unsharded.min(total);
        best_unsharded_apply = best_unsharded_apply.min(total - setup);
        std::hint::black_box(n);

        let t = Instant::now();
        let mut engine = ShardedEngine::new(vec![q.clone()], d.g0.clone(), cfg(1), 1);
        let setup = t.elapsed().as_secs_f64();
        let mut m = 0u64;
        for chunk in ops.chunks(BATCH) {
            engine.apply_batch(chunk, &mut |_, _, _, _| m += 1);
        }
        let total = t.elapsed().as_secs_f64();
        best_sharded = best_sharded.min(total);
        best_sharded_apply = best_sharded_apply.min(total - setup);
        std::hint::black_box(m);
        assert_eq!(n, m);
    }
    println!(
        "{name}: total unsharded {:.3}ms shards1 {:.3}ms ratio {:.3}x | apply-only unsharded {:.3}ms shards1 {:.3}ms ratio {:.3}x",
        best_unsharded * 1e3,
        best_sharded * 1e3,
        best_unsharded / best_sharded,
        best_unsharded_apply * 1e3,
        best_sharded_apply * 1e3,
        best_unsharded_apply / best_sharded_apply,
    );
}

fn main() {
    probe("uniform", &uniform::generate(&UniformConfig { seed: 31, ..UniformConfig::default() }));
    probe("hub", &hub::generate(&HubConfig { seed: 31, ..HubConfig::default() }));
}
