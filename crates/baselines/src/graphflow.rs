//! Graphflow (Kankanamge et al. [16]), as described in §2.2.
//!
//! Graphflow maintains no intermediate results. For each updated edge
//! `(v, v')` and each query edge `(u, u')` it matches, the engine evaluates
//! subgraph matching *from scratch* starting from the partial solution
//! `{(u, v), (u', v')}` with a Generic-Join-style worst-case-optimal
//! extension: each remaining query vertex is bound by intersecting the
//! adjacency lists of its already-bound neighbors, cheapest list first.
//!
//! Duplicate suppression across the per-query-edge delta evaluations uses
//! the standard delta-query rule: a solution is kept only in the evaluation
//! of the *smallest* query edge that maps onto the updated data edge.

use tfx_graph::{intersect_into, AdjacencyMode, DynamicGraph, LabelId, UpdateOp, VertexId};
use tfx_query::{
    ContinuousMatcher, EdgeId, MatchRecord, MatchSemantics, Positiveness, QVertexId, QueryGraph,
};

use crate::common::{matching_query_edges, WorkBudget};

/// The Graphflow baseline engine.
pub struct Graphflow {
    g: DynamicGraph,
    q: QueryGraph,
    semantics: MatchSemantics,
    budget: WorkBudget,
}

impl Graphflow {
    /// Registers `q` over `g0` with an unlimited work budget.
    pub fn new(q: QueryGraph, g0: DynamicGraph, semantics: MatchSemantics) -> Self {
        assert!(q.edge_count() > 0, "query must have at least one edge");
        assert!(q.is_connected(), "query must be connected");
        Graphflow { g: g0, q, semantics, budget: WorkBudget::unlimited() }
    }

    /// Caps the abstract work per run; once exhausted the engine stops
    /// producing results (the harness treats that as a timeout).
    pub fn with_budget(mut self, units: u64) -> Self {
        self.budget = WorkBudget::new(units);
        self
    }

    /// True once the work budget ran out.
    pub fn timed_out(&self) -> bool {
        self.budget.is_exhausted()
    }

    /// The data graph as maintained by the engine.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// All query edges between `u` and bound vertices hold for `m[u] = v`?
    fn joinable(&self, u: QVertexId, v: VertexId, m: &[Option<VertexId>]) -> bool {
        if self.semantics == MatchSemantics::Isomorphism
            && m.iter().enumerate().any(|(i, mv)| *mv == Some(v) && i != u.index())
        {
            return false;
        }
        for &(w, e) in self.q.out_adj(u) {
            let pair = if w == u { Some((v, v)) } else { m[w.index()].map(|mw| (v, mw)) };
            if let Some((s, d)) = pair {
                if !self.g.has_edge_matching(s, d, self.q.edge(e).label) {
                    return false;
                }
            }
        }
        for &(w, e) in self.q.in_adj(u) {
            if w == u {
                continue; // handled above
            }
            if let Some(mw) = m[w.index()] {
                if !self.g.has_edge_matching(mw, v, self.q.edge(e).label) {
                    return false;
                }
            }
        }
        true
    }

    /// Candidates for `u` as the generic-join intersection of *every*
    /// bound neighbor's adjacency list (smallest-first, through the
    /// vectorized merge/gallop kernels). `joinable` re-verifies each edge
    /// afterwards, so the intersection only prunes — it cannot change the
    /// reported match set.
    fn candidates(&self, u: QVertexId, m: &[Option<VertexId>]) -> Vec<VertexId> {
        // (zero-copy promoted run | materialized sorted+deduped list)
        enum Src<'g> {
            Borrowed(&'g [VertexId]),
            Owned(Vec<VertexId>),
        }
        impl Src<'_> {
            fn as_slice(&self) -> &[VertexId] {
                match self {
                    Src::Borrowed(s) => s,
                    Src::Owned(v) => v,
                }
            }
        }
        let mut sources: Vec<Src<'_>> = Vec::new();
        let mut push = |follow_out: bool, mw: VertexId, label: Option<LabelId>| match label {
            Some(l) => {
                let run = if follow_out {
                    self.g.out_neighbors_labeled(mw, l)
                } else {
                    self.g.in_neighbors_labeled(mw, l)
                };
                match run.as_id_slice() {
                    Some(ids) => sources.push(Src::Borrowed(ids)),
                    None => {
                        let mut buf = Vec::with_capacity(run.len());
                        run.extend_into(&mut buf);
                        sources.push(Src::Owned(buf));
                    }
                }
            }
            None => {
                // Wildcard: neighbors repeat across label groups.
                let mut buf: Vec<VertexId> = if follow_out {
                    self.g.out_neighbors_matching(mw, None, AdjacencyMode::Indexed).collect()
                } else {
                    self.g.in_neighbors_matching(mw, None, AdjacencyMode::Indexed).collect()
                };
                buf.sort_unstable();
                buf.dedup();
                sources.push(Src::Owned(buf));
            }
        };
        for &(w, e) in self.q.in_adj(u) {
            if w == u {
                continue;
            }
            if let Some(mw) = m[w.index()] {
                // edge w -> u: follow out-edges of m(w)
                push(true, mw, self.q.edge(e).label);
            }
        }
        for &(w, e) in self.q.out_adj(u) {
            if w == u {
                continue;
            }
            if let Some(mw) = m[w.index()] {
                // edge u -> w: follow in-edges of m(w)
                push(false, mw, self.q.edge(e).label);
            }
        }
        sources.sort_by_key(|s| s.as_slice().len());
        let mut iter = sources.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut cur: Vec<VertexId> = first.as_slice().to_vec();
        let mut tmp: Vec<VertexId> = Vec::new();
        for s in iter {
            if cur.is_empty() {
                break;
            }
            tmp.clear();
            intersect_into(&cur, s.as_slice(), &mut tmp);
            std::mem::swap(&mut cur, &mut tmp);
        }
        cur
    }

    /// Next unbound query vertex adjacent to a bound one.
    fn next_vertex(&self, m: &[Option<VertexId>]) -> Option<QVertexId> {
        self.q.vertices().filter(|u| m[u.index()].is_none()).find(|&u| {
            self.q.out_adj(u).iter().chain(self.q.in_adj(u)).any(|&(w, _)| m[w.index()].is_some())
        })
    }

    /// Keep a solution only in the evaluation of the smallest query edge
    /// mapping onto the updated data edge (with the updated edge as sole
    /// support).
    fn is_canonical(
        &self,
        eq: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        m: &[Option<VertexId>],
    ) -> bool {
        for i in 0..eq.0 {
            let e = EdgeId(i);
            let qe = self.q.edge(e);
            let (Some(ms), Some(md)) = (m[qe.src.index()], m[qe.dst.index()]) else {
                continue;
            };
            if (ms, md) == (src, dst)
                && qe.label.is_none_or(|ql| ql == label)
                && self.g.count_edges_matching(src, dst, qe.label) == 1
            {
                return false;
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn extend(
        &mut self,
        eq: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        m: &mut Vec<Option<VertexId>>,
        p: Positiveness,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        if !self.budget.consume(1) {
            return;
        }
        let Some(u) = self.next_vertex(m) else {
            if self.is_canonical(eq, src, label, dst, m) {
                sink(p, &MatchRecord::from_partial(m));
            }
            return;
        };
        for v in self.candidates(u, m) {
            if !self.budget.consume(1) {
                return;
            }
            if !self.q.labels(u).is_subset_of(self.g.labels(v)) {
                continue;
            }
            if !self.joinable(u, v, m) {
                continue;
            }
            m[u.index()] = Some(v);
            self.extend(eq, src, label, dst, m, p, sink);
            m[u.index()] = None;
        }
    }

    fn eval_update(
        &mut self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        p: Positiveness,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        for e in matching_query_edges(&self.g, &self.q, src, label, dst) {
            // With surviving / pre-existing parallel support the mapping set
            // does not change through this query edge.
            if self.g.count_edges_matching(src, dst, self.q.edge(e).label) > 1 {
                continue;
            }
            let qe = *self.q.edge(e);
            if self.semantics == MatchSemantics::Isomorphism && qe.src != qe.dst && src == dst {
                continue;
            }
            let mut m: Vec<Option<VertexId>> = vec![None; self.q.vertex_count()];
            m[qe.src.index()] = Some(src);
            m[qe.dst.index()] = Some(dst);
            // Validate the seed binding itself (labels were checked by
            // edge_matches; cross-edges between the two seeds were not).
            if !self.joinable(qe.src, src, &m) || !self.joinable(qe.dst, dst, &m) {
                continue;
            }
            self.extend(e, src, label, dst, &mut m, p, sink);
        }
    }
}

impl ContinuousMatcher for Graphflow {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        tfx_match::enumerate_matches(&self.g, &self.q, self.semantics, &mut |m| {
            sink(m);
            true
        });
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        match op {
            UpdateOp::AddVertex { .. } => {
                self.g.apply(op);
            }
            UpdateOp::InsertEdge { src, label, dst } => {
                if self.g.apply(op) {
                    self.eval_update(*src, *label, *dst, Positiveness::Positive, sink);
                }
            }
            UpdateOp::DeleteEdge { src, label, dst } => {
                if self.g.has_edge(*src, *label, *dst) {
                    self.eval_update(*src, *label, *dst, Positiveness::Negative, sink);
                    self.g.delete_edge(*src, *label, *dst);
                }
            }
        }
    }

    fn timed_out(&self) -> bool {
        self.budget.is_exhausted()
    }

    fn name(&self) -> &'static str {
        "Graphflow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn triangle_setup() -> (DynamicGraph, QueryGraph) {
        let mut g = DynamicGraph::new();
        for _ in 0..3 {
            g.add_vertex(LabelSet::empty());
        }
        g.insert_edge(VertexId(0), l(0), VertexId(1));
        g.insert_edge(VertexId(1), l(0), VertexId(2));
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        let c = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(b, c, None);
        q.add_edge(c, a, None);
        (g, q)
    }

    #[test]
    fn closing_a_triangle_reports_three_rotations_once_each() {
        let (g, q) = triangle_setup();
        let mut e = Graphflow::new(q, g, MatchSemantics::Homomorphism);
        let op = UpdateOp::InsertEdge { src: VertexId(2), label: l(0), dst: VertexId(0) };
        let mut got = Vec::new();
        e.apply(&op, &mut |p, m| got.push((p, m.clone())));
        assert_eq!(got.len(), 3, "three rotations, no duplicates: {got:?}");
        assert!(got.iter().all(|(p, _)| *p == Positiveness::Positive));
    }

    #[test]
    fn deleting_the_closing_edge_reports_them_negative() {
        let (mut g, q) = triangle_setup();
        g.insert_edge(VertexId(2), l(0), VertexId(0));
        let mut e = Graphflow::new(q, g, MatchSemantics::Homomorphism);
        let op = UpdateOp::DeleteEdge { src: VertexId(2), label: l(0), dst: VertexId(0) };
        let mut got = Vec::new();
        e.apply(&op, &mut |p, m| got.push((p, m.clone())));
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(p, _)| *p == Positiveness::Negative));
        assert!(!e.graph().has_edge(VertexId(2), l(0), VertexId(0)));
    }

    #[test]
    fn budget_stops_work() {
        let (g, q) = triangle_setup();
        let mut e = Graphflow::new(q, g, MatchSemantics::Homomorphism).with_budget(1);
        let op = UpdateOp::InsertEdge { src: VertexId(2), label: l(0), dst: VertexId(0) };
        let mut got = Vec::new();
        e.apply(&op, &mut |p, m| got.push((p, m.clone())));
        assert!(e.timed_out());
        assert!(got.len() < 3);
    }
}
