//! NEC query compression for SJ-Tree (Appendix B.5).
//!
//! The paper applies TurboISO's [14] *neighborhood equivalence class* (NEC)
//! compression to SJ-Tree's query: query leaf vertices with identical label
//! sets hanging off the same neighbor via the same edge label and direction
//! are interchangeable, so the query can be evaluated with one
//! representative per class and the per-class multiplicity recorded. The
//! join tree then has fewer leaves and smaller materialized tables.
//!
//! Match counts over the *original* query are recoverable from the
//! compressed root table: for a fixed assignment of the non-merged
//! vertices, the class members choose independently (homomorphism) from
//! the class's candidate set of size `c`, contributing `c^k` original
//! solutions — or falling-factorial `c·(c−1)···(c−k+1)` under isomorphism.
//! [`NecSjTree::original_match_count`] implements exactly that.
//!
//! As in the paper, few queries compress (only equivalent leaves qualify);
//! [`nec_compress`] returns `None` for incompressible queries.

use rustc_hash::FxHashMap;
use tfx_graph::LabelSet;
use tfx_graph::{DynamicGraph, LabelId, UpdateOp, VertexId};
use tfx_query::{
    ContinuousMatcher, MatchRecord, MatchSemantics, Positiveness, QVertexId, QueryGraph,
};

use crate::sj_tree::SjTree;

/// The result of compressing a query by neighborhood equivalence classes.
pub struct NecCompression {
    /// The compressed query (one representative per class).
    pub compressed: QueryGraph,
    /// Multiplicity of each compressed vertex (1 for unmerged ones).
    pub multiplicity: Vec<u32>,
    /// Map original query vertex → compressed query vertex.
    pub class_of: Vec<QVertexId>,
}

/// Signature of a mergeable leaf: (labels, neighbor, edge label, leaf is
/// the edge target).
type LeafSig = (LabelSet, QVertexId, Option<LabelId>, bool);

/// Compresses `q` by merging NEC-equivalent leaf vertices. Returns `None`
/// when no two leaves are equivalent (the common case: the paper found
/// only ~9.5% of its tree queries compressible).
pub fn nec_compress(q: &QueryGraph) -> Option<NecCompression> {
    let n = q.vertex_count();
    // A leaf has exactly one incident edge (and no self-loop).
    let mut groups: FxHashMap<LeafSig, Vec<QVertexId>> = FxHashMap::default();
    for u in q.vertices() {
        if q.degree(u) != 1 {
            continue;
        }
        let sig = if let Some(&(w, e)) = q.out_adj(u).first() {
            if w == u {
                continue;
            }
            (q.labels(u).clone(), w, q.edge(e).label, false)
        } else {
            let &(w, e) = q.in_adj(u).first().expect("degree-1 vertex has an edge");
            if w == u {
                continue;
            }
            (q.labels(u).clone(), w, q.edge(e).label, true)
        };
        groups.entry(sig).or_default().push(u);
    }
    if groups.values().all(|g| g.len() < 2) {
        return None;
    }

    // Representative = smallest id of the class; everything else remaps.
    let mut class_rep: Vec<QVertexId> = q.vertices().collect();
    let mut multiplicity_of_rep = vec![1u32; n];
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let rep = *members.iter().min().expect("non-empty class");
        for &m in members {
            class_rep[m.index()] = rep;
        }
        multiplicity_of_rep[rep.index()] = members.len() as u32;
    }

    // Rebuild the query over the representatives.
    let mut compressed = QueryGraph::new();
    let mut new_id = vec![QVertexId(u32::MAX); n];
    let mut multiplicity = Vec::new();
    for u in q.vertices() {
        if class_rep[u.index()] == u {
            new_id[u.index()] = compressed.add_vertex(q.labels(u).clone());
            multiplicity.push(multiplicity_of_rep[u.index()]);
        }
    }
    let mut seen_edges = rustc_hash::FxHashSet::default();
    for e in q.edges() {
        let s = new_id[class_rep[e.src.index()].index()];
        let d = new_id[class_rep[e.dst.index()].index()];
        if seen_edges.insert((s, d, e.label)) {
            compressed.add_edge(s, d, e.label);
        }
    }
    let class_of = q.vertices().map(|u| new_id[class_rep[u.index()].index()]).collect();
    Some(NecCompression { compressed, multiplicity, class_of })
}

/// SJ-Tree running on the NEC-compressed query.
///
/// `apply` reports *compressed* matches (one per representative
/// assignment); [`NecSjTree::original_match_count`] recovers the original
/// query's complete-match count from the materialized root table.
pub struct NecSjTree {
    inner: SjTree,
    compression: NecCompression,
    semantics: MatchSemantics,
}

impl NecSjTree {
    /// Builds the engine if `q` is compressible; `None` otherwise.
    pub fn try_new(q: &QueryGraph, g0: DynamicGraph, semantics: MatchSemantics) -> Option<Self> {
        Self::try_with_budget(q, g0, semantics, u64::MAX)
    }

    /// Like [`NecSjTree::try_new`] with an abstract work budget.
    pub fn try_with_budget(
        q: &QueryGraph,
        g0: DynamicGraph,
        semantics: MatchSemantics,
        units: u64,
    ) -> Option<Self> {
        let compression = nec_compress(q)?;
        let inner = SjTree::with_budget(compression.compressed.clone(), g0, semantics, units);
        Some(NecSjTree { inner, compression, semantics })
    }

    /// The compression in effect.
    pub fn compression(&self) -> &NecCompression {
        &self.compression
    }

    /// The wrapped SJ-Tree.
    pub fn inner(&self) -> &SjTree {
        &self.inner
    }

    /// Number of complete matches of the *original* query represented by
    /// the materialized compressed root table.
    pub fn original_match_count(&mut self) -> u64 {
        let nq = self.compression.compressed.vertex_count();
        let merged: Vec<usize> =
            (0..nq).filter(|&i| self.compression.multiplicity[i] > 1).collect();
        // Group compressed root tuples by the non-merged columns; within a
        // group, class images are independent, so the group is a cross
        // product of per-class candidate sets.
        let mut groups: FxHashMap<Vec<VertexId>, Vec<Vec<VertexId>>> = FxHashMap::default();
        let mut records = Vec::new();
        self.inner.initial_matches(&mut |m| records.push(m.clone()));
        for m in &records {
            let key: Vec<VertexId> = (0..nq)
                .filter(|i| !merged.contains(i))
                .map(|i| m.get(QVertexId(i as u32)))
                .collect();
            let vals: Vec<VertexId> = merged.iter().map(|&i| m.get(QVertexId(i as u32))).collect();
            groups.entry(key).or_default().push(vals);
        }
        let mut total = 0u64;
        for tuples in groups.values() {
            let mut group_total = 1u64;
            for (pos, &col) in merged.iter().enumerate() {
                let mut distinct: Vec<VertexId> = tuples.iter().map(|t| t[pos]).collect();
                distinct.sort_unstable();
                distinct.dedup();
                let c = distinct.len() as u64;
                let k = u64::from(self.compression.multiplicity[col]);
                group_total = group_total.saturating_mul(match self.semantics {
                    MatchSemantics::Homomorphism => c.saturating_pow(k as u32),
                    MatchSemantics::Isomorphism => {
                        // falling factorial c·(c−1)···(c−k+1)
                        (0..k).map(|i| c.saturating_sub(i)).product()
                    }
                });
            }
            total = total.saturating_add(group_total);
        }
        total
    }
}

impl ContinuousMatcher for NecSjTree {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        self.inner.initial_matches(sink);
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        self.inner.apply(op, sink);
    }

    fn intermediate_result_bytes(&self) -> usize {
        self.inner.intermediate_result_bytes()
    }

    fn timed_out(&self) -> bool {
        self.inner.timed_out()
    }

    fn name(&self) -> &'static str {
        "SJ-Tree+NEC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;
    use tfx_match::count_matches;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// Star query: u0:A with three identical C leaves and one B leaf.
    fn star() -> QueryGraph {
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        for _ in 0..3 {
            let c = q.add_vertex(LabelSet::single(l(2)));
            q.add_edge(u0, c, Some(l(9)));
        }
        let b = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(u0, b, Some(l(9)));
        q
    }

    #[test]
    fn compresses_identical_leaves() {
        let q = star();
        let c = nec_compress(&q).expect("star compresses");
        assert_eq!(c.compressed.vertex_count(), 3, "A + merged C + B");
        assert_eq!(c.compressed.edge_count(), 2);
        let merged_mult: Vec<u32> = c.multiplicity.iter().copied().filter(|&m| m > 1).collect();
        assert_eq!(merged_mult, vec![3]);
    }

    #[test]
    fn incompressible_returns_none() {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(a, b, Some(l(9)));
        assert!(nec_compress(&q).is_none());
        // Same labels but different edge labels: not equivalent.
        let mut q2 = QueryGraph::new();
        let a = q2.add_vertex(LabelSet::single(l(0)));
        let b1 = q2.add_vertex(LabelSet::single(l(1)));
        let b2 = q2.add_vertex(LabelSet::single(l(1)));
        q2.add_edge(a, b1, Some(l(8)));
        q2.add_edge(a, b2, Some(l(9)));
        assert!(nec_compress(&q2).is_none());
    }

    #[test]
    fn direction_distinguishes_classes() {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b1 = q.add_vertex(LabelSet::single(l(1)));
        let b2 = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(a, b1, Some(l(9)));
        q.add_edge(b2, a, Some(l(9)));
        assert!(nec_compress(&q).is_none(), "opposite directions never merge");
    }

    fn star_data(n_c: u32) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a, l(9), b);
        for _ in 0..n_c {
            let c = g.add_vertex(LabelSet::single(l(2)));
            g.insert_edge(a, l(9), c);
        }
        g
    }

    #[test]
    fn original_count_recovered_homomorphism() {
        let q = star();
        let g = star_data(5);
        let expected = count_matches(&g, &q, MatchSemantics::Homomorphism);
        assert_eq!(expected, 125, "5^3 choices for the C leaves");
        let mut e = NecSjTree::try_new(&q, g, MatchSemantics::Homomorphism).expect("compresses");
        assert_eq!(e.original_match_count(), expected);
    }

    #[test]
    fn original_count_recovered_isomorphism() {
        let q = star();
        let g = star_data(5);
        let expected = count_matches(&g, &q, MatchSemantics::Isomorphism);
        assert_eq!(expected, 60, "5·4·3 injective choices");
        let mut e = NecSjTree::try_new(&q, g, MatchSemantics::Isomorphism).expect("compresses");
        assert_eq!(e.original_match_count(), expected);
    }

    #[test]
    fn compressed_tables_are_smaller() {
        let q = star();
        let g = star_data(30);
        let plain = SjTree::new(q.clone(), g.clone(), MatchSemantics::Homomorphism);
        let mut nec = NecSjTree::try_new(&q, g, MatchSemantics::Homomorphism).expect("compresses");
        assert!(
            nec.intermediate_result_bytes() < plain.intermediate_result_bytes(),
            "NEC must shrink the materialized state ({} vs {})",
            nec.intermediate_result_bytes(),
            plain.intermediate_result_bytes()
        );
        // And still represent the same original match count.
        let expected = 30u64.pow(3);
        assert_eq!(nec.original_match_count(), expected);
    }

    #[test]
    fn streaming_updates_keep_counts_consistent() {
        let q = star();
        let g = star_data(3);
        let mut plain = SjTree::new(q.clone(), g.clone(), MatchSemantics::Homomorphism);
        let mut nec =
            NecSjTree::try_new(&q, g.clone(), MatchSemantics::Homomorphism).expect("compresses");
        // Stream three more C vertices + edges.
        let mut ops = Vec::new();
        for i in 0..3u32 {
            let id = VertexId(g.vertex_count() as u32 + i);
            ops.push(UpdateOp::AddVertex { id, labels: LabelSet::single(l(2)) });
            ops.push(UpdateOp::InsertEdge { src: VertexId(0), label: l(9), dst: id });
        }
        for op in &ops {
            plain.apply(op, &mut |_, _| {});
            nec.apply(op, &mut |_, _| {});
        }
        let mut plain_count = 0u64;
        plain.initial_matches(&mut |_| plain_count += 1);
        assert_eq!(plain_count, 6u64.pow(3));
        assert_eq!(nec.original_match_count(), plain_count);
    }
}
