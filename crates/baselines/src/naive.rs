//! The naive approach from §1: recompute subgraph matching from scratch for
//! every update operation and take the set difference. Practically
//! infeasible on real streams, but the ground truth every other engine is
//! tested against.

use rustc_hash::FxHashSet;
use tfx_graph::{DynamicGraph, UpdateOp};
use tfx_match::match_set;
use tfx_query::{ContinuousMatcher, MatchRecord, MatchSemantics, Positiveness, QueryGraph};

/// Full-recompute continuous matcher.
pub struct NaiveRecompute {
    g: DynamicGraph,
    q: QueryGraph,
    semantics: MatchSemantics,
}

impl NaiveRecompute {
    /// Registers `q` over `g0`.
    pub fn new(q: QueryGraph, g0: DynamicGraph, semantics: MatchSemantics) -> Self {
        NaiveRecompute { g: g0, q, semantics }
    }

    /// The data graph as maintained by the engine.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }
}

impl ContinuousMatcher for NaiveRecompute {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        tfx_match::enumerate_matches(&self.g, &self.q, self.semantics, &mut |m| {
            sink(m);
            true
        });
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        // Vertex arrivals cannot change the match set of a query with ≥1
        // edge; skip the expensive double enumeration.
        if let UpdateOp::AddVertex { .. } = op {
            self.g.apply(op);
            return;
        }
        let before: FxHashSet<MatchRecord> = match_set(&self.g, &self.q, self.semantics);
        if !self.g.apply(op) {
            return; // duplicate insert / absent delete: nothing changed
        }
        let after: FxHashSet<MatchRecord> = match_set(&self.g, &self.q, self.semantics);
        for m in after.difference(&before) {
            sink(Positiveness::Positive, m);
        }
        for m in before.difference(&after) {
            sink(Positiveness::Negative, m);
        }
    }

    fn name(&self) -> &'static str {
        "NaiveRecompute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{LabelId, LabelSet, VertexId};

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn setup() -> (DynamicGraph, QueryGraph) {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a, l(9), b);
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(u0, u1, Some(l(9)));
        (g, q)
    }

    #[test]
    fn reports_positive_then_negative() {
        let (mut g, q) = setup();
        let c = g.add_vertex(LabelSet::single(l(1)));
        let mut e = NaiveRecompute::new(q, g, MatchSemantics::Homomorphism);
        let mut init = 0;
        e.initial_matches(&mut |_| init += 1);
        assert_eq!(init, 1);

        let ins = UpdateOp::InsertEdge { src: VertexId(0), label: l(9), dst: c };
        let mut got = Vec::new();
        e.apply(&ins, &mut |p, m| got.push((p, m.clone())));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Positiveness::Positive);

        let del = UpdateOp::DeleteEdge { src: VertexId(0), label: l(9), dst: c };
        got.clear();
        e.apply(&del, &mut |p, m| got.push((p, m.clone())));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Positiveness::Negative);
    }

    #[test]
    fn vertex_arrival_reports_nothing() {
        let (g, q) = setup();
        let mut e = NaiveRecompute::new(q, g, MatchSemantics::Homomorphism);
        let op = UpdateOp::AddVertex { id: VertexId(2), labels: LabelSet::single(l(0)) };
        e.apply(&op, &mut |_, _| panic!("no matches expected"));
        assert_eq!(e.graph().vertex_count(), 3);
    }
}
