//! IncIsoMat (Fan et al. [10]), as described in §2.2 of the paper.
//!
//! For each update on edge `(v, v')`, the affected subgraph `g'` consists of
//! the data vertices within distance `diameter(q)` of either endpoint
//! (undirected), plus the edges among them. Any match that gains or loses
//! validity through the update lies entirely inside `g'`, so matching `g'`
//! before and after the update and diffing yields exactly the positive /
//! negative matches. The method maintains no intermediate results; its cost
//! is two full subgraph matchings on a (potentially large) neighborhood per
//! update.

use rustc_hash::FxHashSet;
use std::collections::VecDeque;
use tfx_graph::{DynamicGraph, LabelId, UpdateOp, VertexId};
use tfx_query::{
    diameter, ContinuousMatcher, MatchRecord, MatchSemantics, Positiveness, QueryGraph,
};

/// The IncIsoMat baseline engine.
pub struct IncIsoMat {
    g: DynamicGraph,
    q: QueryGraph,
    semantics: MatchSemantics,
    diameter: usize,
    deadline: Option<std::time::Instant>,
    deadline_hit: bool,
}

impl IncIsoMat {
    /// Registers `q` over `g0`.
    pub fn new(q: QueryGraph, g0: DynamicGraph, semantics: MatchSemantics) -> Self {
        assert!(q.edge_count() > 0, "query must have at least one edge");
        let d = diameter(&q); // panics on a disconnected query
        IncIsoMat { g: g0, q, semantics, diameter: d, deadline: None, deadline_hit: false }
    }

    /// Sets a wall-clock deadline; once passed, per-update matching aborts
    /// and [`ContinuousMatcher::timed_out`] latches true.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        self.deadline_hit = false;
    }

    /// Enumerates matches of `q` in `g` into a set, aborting on deadline.
    /// Returns `None` when aborted.
    fn bounded_match_set(&self, g: &DynamicGraph) -> Option<FxHashSet<MatchRecord>> {
        let mut out = FxHashSet::default();
        let mut tick = 0u32;
        let deadline = self.deadline;
        let res = tfx_match::enumerate_matches(g, &self.q, self.semantics, &mut |m| {
            out.insert(m.clone());
            tick = tick.wrapping_add(1);
            if tick.is_multiple_of(4096) {
                if let Some(d) = deadline {
                    return std::time::Instant::now() < d;
                }
            }
            true
        });
        res.completed.then_some(out)
    }

    /// The data graph as maintained by the engine.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The query diameter used for extraction.
    pub fn query_diameter(&self) -> usize {
        self.diameter
    }

    /// Extracts the affected subgraph around the updated edge: same vertex
    /// id space, but only edges whose endpoints are both within distance
    /// `diameter(q)` of `src` or `dst`.
    fn affected_subgraph(&self, src: VertexId, dst: VertexId) -> DynamicGraph {
        let mut dist_ok: FxHashSet<VertexId> = FxHashSet::default();
        let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
        for s in [src, dst] {
            if dist_ok.insert(s) {
                queue.push_back((s, 0));
            }
        }
        while let Some((v, d)) = queue.pop_front() {
            if d == self.diameter {
                continue;
            }
            for (w, _) in self.g.out_neighbors(v).chain(self.g.in_neighbors(v)) {
                if dist_ok.insert(w) {
                    queue.push_back((w, d + 1));
                }
            }
        }
        let mut sub = DynamicGraph::new();
        for v in self.g.vertices() {
            sub.add_vertex(self.g.labels(v).clone());
        }
        for e in self.g.edges() {
            if dist_ok.contains(&e.src) && dist_ok.contains(&e.dst) {
                sub.insert_edge(e.src, e.label, e.dst);
            }
        }
        sub
    }

    fn eval_edge_update(
        &mut self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        insert: bool,
        sink: &mut dyn FnMut(Positiveness, &MatchRecord),
    ) {
        // Extract with the edge present (after an insert / before the
        // delete applies), then derive the "without" version locally.
        let with_edge = self.affected_subgraph(src, dst);
        debug_assert!(with_edge.has_edge(src, label, dst));
        let mut without_edge = with_edge.clone();
        without_edge.delete_edge(src, label, dst);
        let (Some(m_without), Some(m_with)) =
            (self.bounded_match_set(&without_edge), self.bounded_match_set(&with_edge))
        else {
            self.deadline_hit = true;
            return;
        };
        if insert {
            for m in m_with.difference(&m_without) {
                sink(Positiveness::Positive, m);
            }
        } else {
            for m in m_with.difference(&m_without) {
                sink(Positiveness::Negative, m);
            }
        }
    }
}

impl ContinuousMatcher for IncIsoMat {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        tfx_match::enumerate_matches(&self.g, &self.q, self.semantics, &mut |m| {
            sink(m);
            true
        });
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        match op {
            UpdateOp::AddVertex { .. } => {
                self.g.apply(op);
            }
            UpdateOp::InsertEdge { src, label, dst } => {
                if self.g.apply(op) {
                    self.eval_edge_update(*src, *label, *dst, true, sink);
                }
            }
            UpdateOp::DeleteEdge { src, label, dst } => {
                if self.g.has_edge(*src, *label, *dst) {
                    self.eval_edge_update(*src, *label, *dst, false, sink);
                    self.g.delete_edge(*src, *label, *dst);
                }
            }
        }
    }

    fn timed_out(&self) -> bool {
        self.deadline_hit
    }

    fn name(&self) -> &'static str {
        "IncIsoMat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// Path query A->B->C over a path data graph; diameter 2.
    fn setup() -> (DynamicGraph, QueryGraph) {
        let mut g = DynamicGraph::new();
        for i in 0..6 {
            g.add_vertex(LabelSet::single(l(i % 3)));
        }
        // 0:A -> 1:B, far away 3:A, 4:B, 5:C with 4->5 edge
        g.insert_edge(VertexId(0), l(9), VertexId(1));
        g.insert_edge(VertexId(4), l(9), VertexId(5));
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b = q.add_vertex(LabelSet::single(l(1)));
        let c = q.add_vertex(LabelSet::single(l(2)));
        q.add_edge(a, b, Some(l(9)));
        q.add_edge(b, c, Some(l(9)));
        (g, q)
    }

    #[test]
    fn diameter_two_for_path_query() {
        let (g, q) = setup();
        let e = IncIsoMat::new(q, g, MatchSemantics::Homomorphism);
        assert_eq!(e.query_diameter(), 2);
    }

    #[test]
    fn insert_completing_a_match_is_positive() {
        let (g, q) = setup();
        let mut e = IncIsoMat::new(q, g, MatchSemantics::Homomorphism);
        // 1:B -> 2:C completes A->B->C on 0,1,2.
        let op = UpdateOp::InsertEdge { src: VertexId(1), label: l(9), dst: VertexId(2) };
        let mut got = Vec::new();
        e.apply(&op, &mut |p, m| got.push((p, m.clone())));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Positiveness::Positive);
        assert_eq!(got[0].1.as_slice(), &[VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn delete_reports_negative() {
        let (mut g, q) = setup();
        g.insert_edge(VertexId(1), l(9), VertexId(2));
        let mut e = IncIsoMat::new(q, g, MatchSemantics::Homomorphism);
        let op = UpdateOp::DeleteEdge { src: VertexId(0), label: l(9), dst: VertexId(1) };
        let mut got = Vec::new();
        e.apply(&op, &mut |p, m| got.push((p, m.clone())));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Positiveness::Negative);
        assert!(!e.graph().has_edge(VertexId(0), l(9), VertexId(1)));
    }

    #[test]
    fn subgraph_extraction_is_distance_bounded() {
        let (mut g, q) = setup();
        // Chain far from the update: 3 -> 4 -> 5 at distance > 2 from (0,1).
        g.insert_edge(VertexId(3), l(9), VertexId(4));
        let e = IncIsoMat::new(q, g, MatchSemantics::Homomorphism);
        let sub = e.affected_subgraph(VertexId(0), VertexId(1));
        assert!(sub.has_edge(VertexId(0), l(9), VertexId(1)));
        assert!(!sub.has_edge(VertexId(4), l(9), VertexId(5)), "outside the bound");
    }
}
