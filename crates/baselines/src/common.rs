//! Shared helpers for the baseline engines.

use tfx_graph::{DynamicGraph, LabelId, VertexId};
use tfx_query::{EdgeId, QueryGraph};

/// Ids of the query edges matching the data edge `(src, label, dst)`
/// (labels of endpoints + edge label, self-loop rule included).
pub fn matching_query_edges(
    g: &DynamicGraph,
    q: &QueryGraph,
    src: VertexId,
    label: LabelId,
    dst: VertexId,
) -> Vec<EdgeId> {
    (0..q.edge_count() as u32)
        .map(EdgeId)
        .filter(|&e| q.edge_matches(g, e, src, label, dst))
        .collect()
}

/// A deadline/work budget shared by engines that can blow up on a single
/// update (SJ-Tree, Graphflow). Once exhausted the engine stops producing
/// results and reports itself as timed out; the harness then discards the
/// query, mirroring the paper's per-query timeouts.
#[derive(Debug, Clone)]
pub struct WorkBudget {
    remaining: u64,
    exhausted: bool,
}

impl WorkBudget {
    /// A budget of `units` abstract work units (tuple generations,
    /// candidate extensions, ...).
    pub fn new(units: u64) -> Self {
        WorkBudget { remaining: units, exhausted: false }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Consumes `n` units; returns `false` once the budget is exhausted.
    #[inline]
    pub fn consume(&mut self, n: u64) -> bool {
        if self.exhausted {
            return false;
        }
        if self.remaining < n {
            self.exhausted = true;
            return false;
        }
        self.remaining -= n;
        true
    }

    /// True once the budget ran out (results are incomplete from then on).
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;
    use tfx_query::QVertexId;

    #[test]
    fn budget_exhausts_and_sticks() {
        let mut b = WorkBudget::new(3);
        assert!(b.consume(2));
        assert!(!b.is_exhausted());
        assert!(!b.consume(2));
        assert!(b.is_exhausted());
        assert!(!b.consume(0), "stays exhausted");
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut b = WorkBudget::unlimited();
        assert!(b.consume(u64::MAX / 2));
        assert!(!b.is_exhausted());
    }

    #[test]
    fn matching_edges_respect_all_filters() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(LabelId(0)));
        let b = g.add_vertex(LabelSet::single(LabelId(1)));
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(LabelId(0)));
        let u1 = q.add_vertex(LabelSet::single(LabelId(1)));
        q.add_edge(u0, u1, Some(LabelId(5))); // e0
        q.add_edge(u0, u1, None); // e1 wildcard
        q.add_edge(u1, u0, Some(LabelId(5))); // e2 wrong direction
        q.add_edge(u0, u0, Some(LabelId(5))); // e3 self loop
        let _ = (u0, u1);
        let es = matching_query_edges(&g, &q, a, LabelId(5), b);
        assert_eq!(es, vec![EdgeId(0), EdgeId(1)]);
        let es = matching_query_edges(&g, &q, a, LabelId(6), b);
        assert_eq!(es, vec![EdgeId(1)], "only the wildcard edge");
        let _ = QVertexId(0);
    }
}
