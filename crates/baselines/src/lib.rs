//! `tfx-baselines` — the competitor systems TurboFlux is evaluated against
//! (§2.2, §5), re-implemented from their descriptions in the paper:
//!
//! * [`NaiveRecompute`] — full subgraph matching per update plus set
//!   difference (the strawman of §1; also the test oracle),
//! * [`IncIsoMat`] — Fan et al. [10]: extract the diameter-bounded affected
//!   subgraph, match it before and after the update, diff,
//! * [`Graphflow`] — Kankanamge et al. [16]: delta evaluation with a
//!   Generic-Join-style worst-case-optimal join, no maintained state,
//! * [`SjTree`] — Choudhury et al. [7]: a left-deep join tree of
//!   materialized partial solutions with the generate-and-discard
//!   duplicate-elimination strategy (insert-only, as in the paper).
//!
//! All engines implement [`tfx_query::ContinuousMatcher`], so the benchmark
//! harness and the oracle tests drive them uniformly.

pub mod common;
pub mod graphflow;
pub mod inc_iso_mat;
pub mod naive;
pub mod nec;
pub mod sj_tree;

pub use graphflow::Graphflow;
pub use inc_iso_mat::IncIsoMat;
pub use naive::NaiveRecompute;
pub use nec::{nec_compress, NecCompression, NecSjTree};
pub use sj_tree::SjTree;
