//! SJ-Tree (Choudhury et al. [7]), as described in §2.2 and Figure 2.
//!
//! The query is decomposed into a left-deep join tree: leaf `i` covers the
//! single query edge `e_i` (chosen in a selectivity-ascending, connected
//! order), internal node `i` covers edges `e_0..=e_i` and materializes the
//! *partial solutions* of that subquery in a hash table. An inserted data
//! edge enters every matching leaf, joins against the sibling's
//! materialized table, and the join results propagate upward; tuples newly
//! materialized at the root are the positive matches.
//!
//! Duplicate elimination follows the paper's description of the
//! generate-and-discard strategy: every node's table is a set, and a
//! regenerated partial solution is discarded on arrival.
//!
//! As in the paper, SJ-Tree supports insertions only — [`SjTree::apply`]
//! panics on an edge deletion — and its materialized partial solutions are
//! the storage cost TurboFlux's DCG is compared against (Figures 6b, 7b).

use rustc_hash::{FxHashMap, FxHashSet};
use tfx_graph::{DynamicGraph, GraphStats, LabelId, UpdateOp, VertexId};
use tfx_query::{
    ContinuousMatcher, EdgeId, MatchRecord, MatchSemantics, Positiveness, QVertexId, QueryGraph,
};

use crate::common::{matching_query_edges, WorkBudget};

type Tuple = Box<[VertexId]>;

/// One materialized table (a leaf or an internal node).
struct NodeTable {
    /// Covered query vertices, ascending.
    cover: Vec<QVertexId>,
    /// All materialized partial solutions (the generate-and-discard set).
    tuples: FxHashSet<Tuple>,
    /// Join index: key values (per `key_pos`) → tuples.
    index: FxHashMap<Tuple, Vec<Tuple>>,
    /// Positions (into `cover`) of the join-key vertices, if this table is
    /// a probe target.
    key_pos: Vec<usize>,
}

impl NodeTable {
    fn new(cover: Vec<QVertexId>, key: &[QVertexId]) -> Self {
        let key_pos = key
            .iter()
            .map(|k| cover.binary_search(k).expect("key vertex must be covered"))
            .collect();
        NodeTable { cover, tuples: FxHashSet::default(), index: FxHashMap::default(), key_pos }
    }

    fn key_of(&self, t: &[VertexId]) -> Tuple {
        self.key_pos.iter().map(|&p| t[p]).collect()
    }

    /// Inserts a tuple; returns false if it was already materialized.
    fn insert(&mut self, t: Tuple) -> bool {
        if !self.tuples.insert(t.clone()) {
            return false;
        }
        if !self.key_pos.is_empty() {
            let key = self.key_of(&t);
            self.index.entry(key).or_default().push(t);
        }
        true
    }

    fn probe(&self, key: &[VertexId]) -> &[Tuple] {
        self.index.get(key).map_or(&[][..], Vec::as_slice)
    }

    fn bytes(&self) -> usize {
        self.tuples.len() * self.cover.len() * std::mem::size_of::<VertexId>()
    }
}

/// Plan for merging a left (node) tuple with a right (leaf) tuple.
struct JoinPlan {
    /// Output position ← (from_left?, source position).
    sources: Vec<(bool, usize)>,
    /// Positions in the *left* cover forming the join key.
    left_key_pos: Vec<usize>,
    /// The join key as query vertices.
    key: Vec<QVertexId>,
}

/// The SJ-Tree baseline engine.
pub struct SjTree {
    g: DynamicGraph,
    q: QueryGraph,
    semantics: MatchSemantics,
    /// Leaf order `e_0..e_{m-1}` (selectivity-ascending, connected).
    edge_order: Vec<EdgeId>,
    leaves: Vec<NodeTable>,
    /// `nodes[i]` covers edges `e_0..=e_{i+1}` (node 0 is leaf 0 itself, so
    /// internal nodes start at join level 1).
    nodes: Vec<NodeTable>,
    plans: Vec<JoinPlan>,
    budget: WorkBudget,
}

impl SjTree {
    /// Registers `q` over `g0`, ingesting every edge of `g0` through the
    /// join tree (that is how SJ-Tree bootstraps its materialized state).
    pub fn new(q: QueryGraph, g0: DynamicGraph, semantics: MatchSemantics) -> Self {
        Self::with_budget(q, g0, semantics, u64::MAX)
    }

    /// Like [`SjTree::new`] but caps the abstract work (tuple generations);
    /// once exhausted the engine stops producing results and
    /// [`SjTree::timed_out`] turns true.
    pub fn with_budget(
        q: QueryGraph,
        g0: DynamicGraph,
        semantics: MatchSemantics,
        units: u64,
    ) -> Self {
        assert!(q.edge_count() > 0, "query must have at least one edge");
        assert!(q.is_connected(), "query must be connected");
        let edge_order = choose_edge_order(&q, &g0);
        let m = edge_order.len();

        // Build covers, keys and plans for the left-deep tree.
        let leaf_cover = |e: EdgeId| {
            let qe = q.edge(e);
            let mut c = vec![qe.src, qe.dst];
            c.sort_unstable();
            c.dedup();
            c
        };
        let mut covers: Vec<Vec<QVertexId>> = Vec::with_capacity(m);
        covers.push(leaf_cover(edge_order[0]));
        for i in 1..m {
            let mut c = covers[i - 1].clone();
            for v in leaf_cover(edge_order[i]) {
                if !c.contains(&v) {
                    c.push(v);
                }
            }
            c.sort_unstable();
            covers.push(c);
        }
        let mut leaves = Vec::with_capacity(m);
        let mut plans = Vec::with_capacity(m.saturating_sub(1));
        let mut nodes = Vec::with_capacity(m.saturating_sub(1));
        for i in 0..m {
            let lc = leaf_cover(edge_order[i]);
            if i == 0 {
                leaves.push(NodeTable::new(lc, &[]));
                continue;
            }
            // Join key: covered(prefix i-1) ∩ leaf cover.
            let key: Vec<QVertexId> =
                lc.iter().copied().filter(|v| covers[i - 1].contains(v)).collect();
            assert!(!key.is_empty(), "connected edge order guarantees a join key");
            leaves.push(NodeTable::new(lc.clone(), &key));
            // The left input (node i-1) is indexed by the same key.
            let left_cover = &covers[i - 1];
            let left_key_pos: Vec<usize> = key
                .iter()
                .map(|k| left_cover.binary_search(k).expect("key in left cover"))
                .collect();
            let sources = covers[i]
                .iter()
                .map(|v| match left_cover.binary_search(v) {
                    Ok(p) => (true, p),
                    Err(_) => (false, lc.binary_search(v).expect("in leaf cover")),
                })
                .collect();
            plans.push(JoinPlan { sources, left_key_pos, key: key.clone() });
            nodes.push(NodeTable::new(covers[i].clone(), &[]));
        }
        // Node i is the left input of join i+1, so it is probed with
        // plan[i+1]'s key (the root needs no index). Rebuild the node
        // tables with those probe keys.
        let mut nodes2 = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.into_iter().enumerate() {
            // join level i+1 produced node i; it is probed with plan i+1's
            // key (if any).
            let probe_key: &[QVertexId] = if i + 1 < plans.len() { &plans[i + 1].key } else { &[] };
            nodes2.push(NodeTable::new(n.cover, probe_key));
        }
        // Leaf 0 participates as the left side of join 1: it is probed with
        // plan[0].key.
        if !plans.is_empty() {
            let key = plans[0].key.clone();
            let cover = leaves[0].cover.clone();
            leaves[0] = NodeTable::new(cover, &key);
        }

        let mut engine = SjTree {
            g: DynamicGraph::new(),
            q,
            semantics,
            edge_order,
            leaves,
            nodes: nodes2,
            plans,
            budget: WorkBudget::new(units),
        };
        // Ingest g0 edge by edge without reporting.
        for v in g0.vertices() {
            engine.g.add_vertex(g0.labels(v).clone());
        }
        let mut edges: Vec<_> = g0.edges().collect();
        edges.sort_unstable();
        for e in edges {
            engine.g.insert_edge(e.src, e.label, e.dst);
            engine.ingest_edge(e.src, e.label, e.dst, &mut |_| {});
        }
        engine
    }

    /// True once the work budget ran out (materialized state and reports
    /// are incomplete from then on).
    pub fn timed_out(&self) -> bool {
        self.budget.is_exhausted()
    }

    /// The data graph as maintained by the engine.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The leaf (query-edge) order of the join tree.
    pub fn edge_order(&self) -> &[EdgeId] {
        &self.edge_order
    }

    /// Total number of materialized partial solutions across all nodes —
    /// the paper's intermediate-result count for SJ-Tree.
    pub fn materialized_tuples(&self) -> usize {
        self.leaves.iter().map(|t| t.tuples.len()).sum::<usize>()
            + self.nodes.iter().map(|t| t.tuples.len()).sum::<usize>()
    }

    fn tuple_injective(t: &[VertexId]) -> bool {
        let mut s: Vec<VertexId> = t.to_vec();
        s.sort_unstable();
        s.windows(2).all(|w| w[0] != w[1])
    }

    /// Feeds one data edge through every matching leaf and propagates.
    fn ingest_edge(
        &mut self,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
        on_match: &mut dyn FnMut(&MatchRecord),
    ) {
        for e in matching_query_edges(&self.g, &self.q, src, label, dst) {
            let Some(leaf_idx) = self.edge_order.iter().position(|&x| x == e) else {
                unreachable!("every query edge is a leaf");
            };
            let qe = self.q.edge(e);
            if self.semantics == MatchSemantics::Isomorphism && qe.src != qe.dst && src == dst {
                continue;
            }
            // Leaf tuple over the leaf cover (sorted qvs).
            let tuple: Tuple = self.leaves[leaf_idx]
                .cover
                .iter()
                .map(|&u| if u == qe.src { src } else { dst })
                .collect();
            if !self.budget.consume(1) {
                return;
            }
            if !self.leaves[leaf_idx].insert(tuple.clone()) {
                continue; // discard: already materialized
            }
            if leaf_idx == 0 {
                // Leaf 0 *is* node level 0.
                if self.edge_order.len() == 1 {
                    self.report_root_tuple(&tuple, on_match);
                } else {
                    self.propagate(0, tuple, on_match);
                }
            } else {
                // Probe the left sibling (node leaf_idx-1, or leaf 0 when
                // leaf_idx == 1) and push join results up.
                let plan = &self.plans[leaf_idx - 1];
                let key = self.leaves[leaf_idx].key_of(&tuple);
                let left: Vec<Tuple> = if leaf_idx == 1 {
                    self.leaves[0].probe(&key).to_vec()
                } else {
                    self.nodes[leaf_idx - 2].probe(&key).to_vec()
                };
                let _ = plan;
                for lt in left {
                    if let Some(combined) = self.merge(leaf_idx - 1, &lt, &tuple) {
                        self.insert_node(leaf_idx - 1, combined, on_match);
                    }
                }
            }
        }
    }

    /// Merges a left tuple with a leaf tuple per `plans[level]`. Returns
    /// `None` when isomorphism's injectivity is violated.
    fn merge(&self, level: usize, left: &[VertexId], right: &[VertexId]) -> Option<Tuple> {
        let plan = &self.plans[level];
        let combined: Tuple = plan
            .sources
            .iter()
            .map(|&(from_left, p)| if from_left { left[p] } else { right[p] })
            .collect();
        if self.semantics == MatchSemantics::Isomorphism && !Self::tuple_injective(&combined) {
            return None;
        }
        Some(combined)
    }

    /// Inserts a fresh tuple into internal node `level` (covering edges
    /// `e_0..=e_{level+1}`), reporting and/or propagating further up.
    fn insert_node(&mut self, level: usize, tuple: Tuple, on_match: &mut dyn FnMut(&MatchRecord)) {
        if !self.budget.consume(1) {
            return;
        }
        if !self.nodes[level].insert(tuple.clone()) {
            return; // discard duplicates
        }
        if level + 1 == self.nodes.len() {
            self.report_root_tuple(&tuple, on_match);
        } else {
            self.propagate(level + 1, tuple, on_match);
        }
    }

    /// Joins new left-side tuples (node `level-1` output, i.e. the prefix
    /// covering `e_0..=e_level`) against leaf `level+1`... — concretely:
    /// `propagate(j, t)` joins tuple `t` of join level `j` (prefix of
    /// `j+1` edges) with leaf `j+1`'s table into node level `j`.
    fn propagate(&mut self, level: usize, tuple: Tuple, on_match: &mut dyn FnMut(&MatchRecord)) {
        let plan = &self.plans[level];
        let key: Tuple = plan.left_key_pos.iter().map(|&p| tuple[p]).collect();
        let rights: Vec<Tuple> = self.leaves[level + 1].probe(&key).to_vec();
        for rt in rights {
            if let Some(combined) = self.merge(level, &tuple, &rt) {
                self.insert_node(level, combined, on_match);
            }
        }
    }

    fn report_root_tuple(&self, tuple: &[VertexId], on_match: &mut dyn FnMut(&MatchRecord)) {
        // Root cover is all query vertices, sorted = identity order.
        debug_assert_eq!(tuple.len(), self.q.vertex_count());
        on_match(&MatchRecord::new(tuple.to_vec()));
    }
}

/// Selectivity-ascending, connected leaf order (first the globally most
/// selective query edge, then always the most selective edge sharing a
/// vertex with the covered prefix).
///
/// A query edge with *zero* matches in `g0` sorts last, not first: in a
/// continuous setting an empty edge type only means its matches have not
/// streamed in yet, so [7] plans around known-selective edges. (This is
/// also what reproduces Figure 2b's 11 311 partial solutions for a query
/// with zero complete matches.)
fn choose_edge_order(q: &QueryGraph, g0: &DynamicGraph) -> Vec<EdgeId> {
    let stats = GraphStats::new(g0);
    let cost: Vec<usize> = q
        .edges()
        .iter()
        .map(|e| match stats.matching_edge_count(q.labels(e.src), e.label, q.labels(e.dst)) {
            0 => usize::MAX,
            n => n,
        })
        .collect();
    let m = q.edge_count();
    let mut chosen = vec![false; m];
    let mut covered: FxHashSet<QVertexId> = FxHashSet::default();
    let mut order = Vec::with_capacity(m);
    for step in 0..m {
        let pick = (0..m)
            .filter(|&i| !chosen[i])
            .filter(|&i| {
                if step == 0 {
                    true
                } else {
                    let e = &q.edges()[i];
                    covered.contains(&e.src) || covered.contains(&e.dst)
                }
            })
            .min_by_key(|&i| (cost[i], i))
            .expect("connected query always has a frontier edge");
        chosen[pick] = true;
        let e = &q.edges()[pick];
        covered.insert(e.src);
        covered.insert(e.dst);
        order.push(EdgeId(pick as u32));
    }
    order
}

impl ContinuousMatcher for SjTree {
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord)) {
        let root = if self.nodes.is_empty() { &self.leaves[0] } else { self.nodes.last().unwrap() };
        let mut tuples: Vec<&Tuple> = root.tuples.iter().collect();
        tuples.sort_unstable();
        for t in tuples {
            sink(&MatchRecord::new(t.to_vec()));
        }
    }

    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord)) {
        match op {
            UpdateOp::AddVertex { .. } => {
                self.g.apply(op);
            }
            UpdateOp::InsertEdge { src, label, dst } => {
                if self.g.apply(op) {
                    self.ingest_edge(*src, *label, *dst, &mut |m| sink(Positiveness::Positive, m));
                }
            }
            UpdateOp::DeleteEdge { .. } => {
                panic!("SJ-Tree does not support edge deletion (as in the paper, §B.2)");
            }
        }
    }

    fn intermediate_result_bytes(&self) -> usize {
        self.leaves.iter().map(NodeTable::bytes).sum::<usize>()
            + self.nodes.iter().map(NodeTable::bytes).sum::<usize>()
    }

    fn timed_out(&self) -> bool {
        self.budget.is_exhausted()
    }

    fn name(&self) -> &'static str {
        "SJ-Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelSet;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    fn path_setup() -> (DynamicGraph, QueryGraph) {
        // A -> B -> C data path, query A->B->C.
        let mut g = DynamicGraph::new();
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(1)));
        g.add_vertex(LabelSet::single(l(2)));
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b = q.add_vertex(LabelSet::single(l(1)));
        let c = q.add_vertex(LabelSet::single(l(2)));
        q.add_edge(a, b, Some(l(9)));
        q.add_edge(b, c, Some(l(9)));
        (g, q)
    }

    #[test]
    fn incremental_inserts_complete_a_match() {
        let (g, q) = path_setup();
        let mut e = SjTree::new(q, g, MatchSemantics::Homomorphism);
        let mut got = Vec::new();
        e.apply(
            &UpdateOp::InsertEdge { src: VertexId(0), label: l(9), dst: VertexId(1) },
            &mut |p, m| got.push((p, m.clone())),
        );
        assert!(got.is_empty(), "half a path is no match");
        e.apply(
            &UpdateOp::InsertEdge { src: VertexId(1), label: l(9), dst: VertexId(2) },
            &mut |p, m| got.push((p, m.clone())),
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.as_slice(), &[VertexId(0), VertexId(1), VertexId(2)]);
        assert!(e.materialized_tuples() >= 3, "two leaf tuples + root tuple");
    }

    #[test]
    fn g0_ingestion_yields_initial_matches() {
        let (mut g, q) = path_setup();
        g.insert_edge(VertexId(0), l(9), VertexId(1));
        g.insert_edge(VertexId(1), l(9), VertexId(2));
        let mut e = SjTree::new(q, g, MatchSemantics::Homomorphism);
        let mut init = Vec::new();
        e.initial_matches(&mut |m| init.push(m.clone()));
        assert_eq!(init.len(), 1);
    }

    #[test]
    fn duplicate_root_tuples_are_discarded() {
        // Query A->B with parallel-capable wildcard: inserting the same
        // logical match via two different labels must report once per new
        // mapping only.
        let mut g = DynamicGraph::new();
        g.add_vertex(LabelSet::single(l(0)));
        g.add_vertex(LabelSet::single(l(1)));
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b = q.add_vertex(LabelSet::single(l(1)));
        q.add_edge(a, b, None);
        let mut e = SjTree::new(q, g, MatchSemantics::Homomorphism);
        let mut got = 0;
        e.apply(
            &UpdateOp::InsertEdge { src: VertexId(0), label: l(1), dst: VertexId(1) },
            &mut |_, _| got += 1,
        );
        assert_eq!(got, 1);
        e.apply(
            &UpdateOp::InsertEdge { src: VertexId(0), label: l(2), dst: VertexId(1) },
            &mut |_, _| got += 1,
        );
        assert_eq!(got, 1, "same mapping via a parallel edge is discarded");
    }

    #[test]
    #[should_panic(expected = "does not support edge deletion")]
    fn deletion_panics() {
        let (g, q) = path_setup();
        let mut e = SjTree::new(q, g, MatchSemantics::Homomorphism);
        e.apply(
            &UpdateOp::DeleteEdge { src: VertexId(0), label: l(9), dst: VertexId(1) },
            &mut |_, _| {},
        );
    }

    #[test]
    fn storage_grows_with_partial_solutions() {
        let (g, q) = path_setup();
        let mut e = SjTree::new(q, g, MatchSemantics::Homomorphism);
        let b0 = e.intermediate_result_bytes();
        e.apply(
            &UpdateOp::InsertEdge { src: VertexId(0), label: l(9), dst: VertexId(1) },
            &mut |_, _| {},
        );
        assert!(e.intermediate_result_bytes() > b0);
    }

    #[test]
    fn isomorphism_discards_non_injective_tuples() {
        // Query A->A over a self... two query vertices same label; data has
        // one A with a self-loop: homomorphism matches, isomorphism not.
        let mut g = DynamicGraph::new();
        g.add_vertex(LabelSet::single(l(0)));
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(l(0)));
        let b = q.add_vertex(LabelSet::single(l(0)));
        q.add_edge(a, b, None);
        let op = UpdateOp::InsertEdge { src: VertexId(0), label: l(1), dst: VertexId(0) };

        let mut hom = SjTree::new(q.clone(), g.clone(), MatchSemantics::Homomorphism);
        let mut n = 0;
        hom.apply(&op, &mut |_, _| n += 1);
        assert_eq!(n, 1);

        let mut iso = SjTree::new(q, g, MatchSemantics::Isomorphism);
        let mut n = 0;
        iso.apply(&op, &mut |_, _| n += 1);
        assert_eq!(n, 0);
    }
}
