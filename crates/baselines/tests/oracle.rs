//! Randomized cross-checks: every baseline must report exactly the oracle's
//! positive/negative match sets (SJ-Tree on insert-only streams, as in the
//! paper).

use rustc_hash::FxHashSet;
use tfx_baselines::{Graphflow, IncIsoMat, NaiveRecompute, SjTree};
use tfx_graph::{DynamicGraph, LabelId, LabelSet, UpdateOp, VertexId};
use tfx_match::match_set;
use tfx_query::{
    ContinuousMatcher, MatchRecord, MatchSemantics, Positiveness, QVertexId, QueryGraph,
};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn l(i: u32) -> LabelId {
    LabelId(i)
}

fn v(i: u32) -> VertexId {
    VertexId(i)
}

struct Case {
    g0: DynamicGraph,
    q: QueryGraph,
    ops: Vec<UpdateOp>,
}

fn random_case(rng: &mut Rng, cyclic: bool, with_deletes: bool) -> Case {
    let n_vlabels = 2 + rng.below(2);
    let n_elabels = 1 + rng.below(2);
    let n_vertices = 5 + rng.below(4);

    let mut g0 = DynamicGraph::new();
    for _ in 0..n_vertices {
        let labels = if rng.below(5) == 0 {
            LabelSet::empty()
        } else {
            LabelSet::single(l(rng.below(n_vlabels) as u32))
        };
        g0.add_vertex(labels);
    }
    for _ in 0..(5 + rng.below(6)) {
        let s = v(rng.below(n_vertices) as u32);
        let d = v(rng.below(n_vertices) as u32);
        g0.insert_edge(s, l(10 + rng.below(n_elabels) as u32), d);
    }

    let nq = 3 + rng.below(2);
    let mut q = QueryGraph::new();
    for _ in 0..nq {
        let labels = if rng.below(4) == 0 {
            LabelSet::empty()
        } else {
            LabelSet::single(l(rng.below(n_vlabels) as u32))
        };
        q.add_vertex(labels);
    }
    for i in 1..nq as u32 {
        let other = rng.below(i as usize) as u32;
        let (s, d) = if rng.below(2) == 0 { (other, i) } else { (i, other) };
        let label =
            if rng.below(5) == 0 { None } else { Some(l(10 + rng.below(n_elabels) as u32)) };
        q.add_edge(QVertexId(s), QVertexId(d), label);
    }
    if cyclic {
        let a = rng.below(nq) as u32;
        let b = rng.below(nq) as u32;
        let label = Some(l(10 + rng.below(n_elabels) as u32));
        let (s, d) = (QVertexId(a), QVertexId(b));
        if !q.edges().iter().any(|e| e.src == s && e.dst == d && e.label == label) {
            q.add_edge(s, d, label);
        }
    }

    let mut ops = Vec::new();
    let mut live: Vec<(VertexId, LabelId, VertexId)> =
        g0.edges().map(|e| (e.src, e.label, e.dst)).collect();
    let mut vcount = n_vertices as u32;
    for _ in 0..25 {
        let roll = rng.below(10);
        if roll == 0 {
            ops.push(UpdateOp::AddVertex {
                id: v(vcount),
                labels: LabelSet::single(l(rng.below(n_vlabels) as u32)),
            });
            vcount += 1;
        } else if with_deletes && roll < 4 && !live.is_empty() {
            let i = rng.below(live.len());
            let (s, lb, d) = live.swap_remove(i);
            ops.push(UpdateOp::DeleteEdge { src: s, label: lb, dst: d });
        } else {
            let s = v(rng.below(vcount as usize) as u32);
            let d = v(rng.below(vcount as usize) as u32);
            let lb = l(10 + rng.below(n_elabels) as u32);
            if !live.contains(&(s, lb, d)) {
                live.push((s, lb, d));
                ops.push(UpdateOp::InsertEdge { src: s, label: lb, dst: d });
            }
        }
    }
    Case { g0, q, ops }
}

fn check_engine(
    make: &dyn Fn(&Case, MatchSemantics) -> Box<dyn ContinuousMatcher>,
    case: &Case,
    semantics: MatchSemantics,
) {
    let mut engine = make(case, semantics);
    let mut shadow = case.g0.clone();

    let name = engine.name();
    let mut initial: FxHashSet<MatchRecord> = FxHashSet::default();
    engine.initial_matches(&mut |m| {
        assert!(initial.insert(m.clone()), "duplicate initial match from {name}");
    });
    assert_eq!(initial, match_set(&shadow, &case.q, semantics), "{name} initial");

    for (step, op) in case.ops.iter().enumerate() {
        let before = match_set(&shadow, &case.q, semantics);
        shadow.apply(op);
        let after = match_set(&shadow, &case.q, semantics);
        let want_pos: FxHashSet<_> = after.difference(&before).cloned().collect();
        let want_neg: FxHashSet<_> = before.difference(&after).cloned().collect();

        let mut got_pos: FxHashSet<MatchRecord> = FxHashSet::default();
        let mut got_neg: FxHashSet<MatchRecord> = FxHashSet::default();
        engine.apply(op, &mut |p, m| {
            let fresh = match p {
                Positiveness::Positive => got_pos.insert(m.clone()),
                Positiveness::Negative => got_neg.insert(m.clone()),
            };
            assert!(fresh, "{name}: duplicate report at step {step}: {m:?} ({op:?})");
        });
        assert_eq!(got_pos, want_pos, "{name} positives diverge at step {step} ({op:?})");
        assert_eq!(got_neg, want_neg, "{name} negatives diverge at step {step} ({op:?})");
    }
}

#[test]
fn graphflow_matches_oracle() {
    let mut rng = Rng::new(41);
    for i in 0..40 {
        let cyclic = i % 2 == 0;
        let case = random_case(&mut rng, cyclic, true);
        for sem in [MatchSemantics::Homomorphism, MatchSemantics::Isomorphism] {
            check_engine(
                &|c, s| Box::new(Graphflow::new(c.q.clone(), c.g0.clone(), s)),
                &case,
                sem,
            );
        }
    }
}

#[test]
fn inc_iso_mat_matches_oracle() {
    let mut rng = Rng::new(42);
    for i in 0..25 {
        let cyclic = i % 2 == 0;
        let case = random_case(&mut rng, cyclic, true);
        for sem in [MatchSemantics::Homomorphism, MatchSemantics::Isomorphism] {
            check_engine(
                &|c, s| Box::new(IncIsoMat::new(c.q.clone(), c.g0.clone(), s)),
                &case,
                sem,
            );
        }
    }
}

#[test]
fn sj_tree_matches_oracle_insert_only() {
    let mut rng = Rng::new(43);
    for i in 0..40 {
        let cyclic = i % 2 == 0;
        let case = random_case(&mut rng, cyclic, false);
        for sem in [MatchSemantics::Homomorphism, MatchSemantics::Isomorphism] {
            check_engine(&|c, s| Box::new(SjTree::new(c.q.clone(), c.g0.clone(), s)), &case, sem);
        }
    }
}

#[test]
fn naive_is_self_consistent() {
    // NaiveRecompute *is* the oracle; this exercises its own trait plumbing.
    let mut rng = Rng::new(44);
    let case = random_case(&mut rng, true, true);
    check_engine(
        &|c, s| Box::new(NaiveRecompute::new(c.q.clone(), c.g0.clone(), s)),
        &case,
        MatchSemantics::Homomorphism,
    );
}
