//! A tiny text format for authoring query graphs (and small data graphs) in
//! examples and tests.
//!
//! ```text
//! # Fraud-ring pattern
//! v 0 Account
//! v 1 Account
//! v 2 Card
//! e 0 1 transfer
//! e 1 2 uses
//! e 0 2 uses
//! ```
//!
//! * `v <id> [label ...]` — declares vertex `<id>` with zero or more labels.
//!   Ids must be dense `0..n` but may appear in any order.
//! * `e <src> <dst> [label]` — a directed edge; omitting the label produces
//!   a wildcard query edge.
//! * `#` starts a comment; blank lines are ignored.

use crate::qgraph::{QVertexId, QueryGraph};
use tfx_graph::{DynamicGraph, LabelInterner, LabelSet, VertexId};

/// A parse failure, with a 1-based line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

struct RawGraph {
    vertices: Vec<(u32, LabelSet)>,
    edges: Vec<(u32, u32, Option<tfx_graph::LabelId>)>,
}

fn parse_raw(text: &str, interner: &mut LabelInterner) -> Result<RawGraph, ParseError> {
    let mut vertices: Vec<(u32, LabelSet)> = Vec::new();
    let mut edges = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let id: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "v needs an id"))?
                    .parse()
                    .map_err(|_| err(lineno, "v id must be an integer"))?;
                let labels: LabelSet = parts.map(|s| interner.intern(s)).collect();
                if vertices.iter().any(|&(v, _)| v == id) {
                    return Err(err(lineno, format!("vertex {id} declared twice")));
                }
                vertices.push((id, labels));
            }
            Some("e") => {
                let src: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "e needs a source id"))?
                    .parse()
                    .map_err(|_| err(lineno, "e source must be an integer"))?;
                let dst: u32 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "e needs a destination id"))?
                    .parse()
                    .map_err(|_| err(lineno, "e destination must be an integer"))?;
                let label = parts.next().map(|s| interner.intern(s));
                if parts.next().is_some() {
                    return Err(err(lineno, "trailing tokens after edge"));
                }
                edges.push((src, dst, label));
            }
            Some(other) => return Err(err(lineno, format!("unknown directive `{other}`"))),
            None => unreachable!(),
        }
    }
    vertices.sort_by_key(|&(id, _)| id);
    for (expect, &(id, _)) in vertices.iter().enumerate() {
        if id as usize != expect {
            return Err(err(0, format!("vertex ids must be dense 0..n, missing {expect}")));
        }
    }
    for &(s, d, _) in &edges {
        let n = vertices.len() as u32;
        if s >= n || d >= n {
            return Err(err(0, format!("edge ({s},{d}) references undeclared vertex")));
        }
    }
    Ok(RawGraph { vertices, edges })
}

/// Parses a [`QueryGraph`], interning labels into `interner`.
pub fn parse_query(text: &str, interner: &mut LabelInterner) -> Result<QueryGraph, ParseError> {
    let raw = parse_raw(text, interner)?;
    let mut q = QueryGraph::new();
    for (_, labels) in raw.vertices {
        q.add_vertex(labels);
    }
    for (s, d, l) in raw.edges {
        q.add_edge(QVertexId(s), QVertexId(d), l);
    }
    Ok(q)
}

/// Parses a [`DynamicGraph`] from the same format (every edge needs a
/// concrete label here, so unlabeled edges get a synthetic `"_"` label).
pub fn parse_data_graph(
    text: &str,
    interner: &mut LabelInterner,
) -> Result<DynamicGraph, ParseError> {
    let raw = parse_raw(text, interner)?;
    let mut g = DynamicGraph::new();
    for (_, labels) in raw.vertices {
        g.add_vertex(labels);
    }
    for (s, d, l) in raw.edges {
        let label = l.unwrap_or_else(|| interner.intern("_"));
        g.insert_edge(VertexId(s), label, VertexId(d));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_with_labels_and_comments() {
        let mut it = LabelInterner::new();
        let q = parse_query(
            "# fraud ring\n v 0 Account\n v 1 Account Vip\n e 0 1 transfer\n e 1 0\n",
            &mut it,
        )
        .unwrap();
        assert_eq!(q.vertex_count(), 2);
        assert_eq!(q.edge_count(), 2);
        let acct = it.get("Account").unwrap();
        assert!(q.labels(QVertexId(0)).contains(acct));
        assert_eq!(q.labels(QVertexId(1)).len(), 2);
        assert_eq!(q.edge(crate::qgraph::EdgeId(0)).label, it.get("transfer"));
        assert_eq!(q.edge(crate::qgraph::EdgeId(1)).label, None, "wildcard edge");
    }

    #[test]
    fn out_of_order_vertex_ids_ok() {
        let mut it = LabelInterner::new();
        let q = parse_query("v 1 B\nv 0 A\ne 0 1 x\n", &mut it).unwrap();
        assert!(q.labels(QVertexId(0)).contains(it.get("A").unwrap()));
    }

    #[test]
    fn sparse_ids_rejected() {
        let mut it = LabelInterner::new();
        let e = parse_query("v 0 A\nv 2 B\n", &mut it).unwrap_err();
        assert!(e.message.contains("dense"));
    }

    #[test]
    fn duplicate_vertex_rejected() {
        let mut it = LabelInterner::new();
        let e = parse_query("v 0 A\nv 0 B\n", &mut it).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut it = LabelInterner::new();
        assert!(parse_query("v 0 A\ne 0 3 x\n", &mut it).is_err());
    }

    #[test]
    fn unknown_directive_rejected() {
        let mut it = LabelInterner::new();
        let e = parse_query("q 0\n", &mut it).unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn parses_data_graph() {
        let mut it = LabelInterner::new();
        let g = parse_data_graph("v 0 A\nv 1 B\ne 0 1 rel\ne 1 0\n", &mut it).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(VertexId(0), it.get("rel").unwrap(), VertexId(1)));
        assert!(g.has_edge(VertexId(1), it.get("_").unwrap(), VertexId(0)));
    }
}
