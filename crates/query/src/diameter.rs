//! Query diameter (used by the IncIsoMat baseline).
//!
//! §2.2: "the diameter of q is defined as the length of the longest of all
//! pairs' shortest paths in q by regarding q as an undirected graph".

use crate::qgraph::QueryGraph;
use std::collections::VecDeque;

/// The undirected diameter of `q`. Returns 0 for single-vertex queries.
///
/// Panics if `q` is disconnected (the diameter would be infinite).
pub fn diameter(q: &QueryGraph) -> usize {
    assert!(q.is_connected(), "diameter of a disconnected query is infinite");
    let n = q.vertex_count();
    let mut best = 0usize;
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for s in q.vertices() {
        dist.fill(usize::MAX);
        dist[s.index()] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            best = best.max(du);
            for &(w, _) in q.out_adj(u).iter().chain(q.in_adj(u).iter()) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = du + 1;
                    queue.push_back(w);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgraph::QVertexId;
    use tfx_graph::LabelSet;

    fn path(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new();
        let vs: Vec<QVertexId> = (0..n).map(|_| q.add_vertex(LabelSet::empty())).collect();
        for w in vs.windows(2) {
            q.add_edge(w[0], w[1], None);
        }
        q
    }

    #[test]
    fn path_diameter() {
        assert_eq!(diameter(&path(1)), 0);
        assert_eq!(diameter(&path(2)), 1);
        assert_eq!(diameter(&path(5)), 4);
    }

    #[test]
    fn direction_is_ignored() {
        // u0 -> u1 <- u2: directed paths don't connect u0 and u2 but the
        // undirected diameter is 2.
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        let c = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(c, b, None);
        assert_eq!(diameter(&q), 2);
    }

    #[test]
    fn cycle_diameter() {
        // triangle: diameter 1
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        let c = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(b, c, None);
        q.add_edge(c, a, None);
        assert_eq!(diameter(&q), 1);
    }

    /// Figure 1a's query has diameter 3 per the paper's own example.
    #[test]
    fn fig1_query_diameter_is_three() {
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::empty());
        let u1 = q.add_vertex(LabelSet::empty());
        let u2 = q.add_vertex(LabelSet::empty());
        let u3 = q.add_vertex(LabelSet::empty());
        let u4 = q.add_vertex(LabelSet::empty());
        q.add_edge(u0, u1, None);
        q.add_edge(u1, u2, None);
        q.add_edge(u1, u3, None);
        q.add_edge(u3, u4, None);
        let _ = u2;
        assert_eq!(diameter(&q), 3); // longest shortest path: u2 .. u4
    }
}
