//! `tfx-query` — query graphs, query trees, and the matching interface shared
//! by every continuous-subgraph-matching engine in this workspace.
//!
//! * [`QueryGraph`] — a small directed, labeled pattern graph. A query vertex
//!   carries a label set (`L(u) ⊆ L(v)` matching, Def. 1); a query edge
//!   carries an optional label (`None` = wildcard).
//! * [`QueryTree`] — the spanning tree `q'` produced by `TransformToTree`
//!   (§4.1), with the remaining edges classified as non-tree edges.
//! * [`choose_start_vertex`] — the paper's `ChooseStartQVertex` heuristic.
//! * [`MatchRecord`], [`Positiveness`], [`MatchSemantics`],
//!   [`ContinuousMatcher`] — the reporting interface (Definition 3).

pub mod diameter;
pub mod matches;
pub mod parser;
pub mod qgraph;
pub mod start;
pub mod tree;

pub use diameter::diameter;
pub use matches::{ContinuousMatcher, MatchRecord, MatchSemantics, Positiveness};
pub use qgraph::{EdgeId, QEdge, QVertexId, QueryGraph};
pub use start::choose_start_vertex;
pub use tree::QueryTree;
