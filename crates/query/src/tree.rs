//! The query tree `q'` (§4.1, `TransformToTree`).
//!
//! TurboFlux converts the query graph into a spanning tree rooted at the
//! starting query vertex `u_s`; edges left out become *non-tree* edges and
//! are verified during `SubgraphSearch` instead of being represented in the
//! DCG. The tree is grown greedily, one query edge at a time, always picking
//! the frontier edge with the smallest estimated number of matching data
//! edges ("minimizes the estimated intermediate result size").
//!
//! Tree edges keep their original direction: the paper's exposition draws
//! parent→child edges, but a spanning tree of a directed query can traverse
//! an edge against its direction, so each non-root vertex records whether it
//! is the *target* ([`QueryTree::child_is_target`]) of its parent edge.

use crate::qgraph::{EdgeId, QVertexId, QueryGraph};
use tfx_graph::GraphStats;

/// A rooted spanning tree of a [`QueryGraph`] plus the non-tree edges.
#[derive(Clone, Debug)]
pub struct QueryTree {
    root: QVertexId,
    parent: Vec<Option<QVertexId>>,
    parent_edge: Vec<Option<EdgeId>>,
    child_is_target: Vec<bool>,
    children: Vec<Vec<QVertexId>>,
    non_tree_edges: Vec<EdgeId>,
    is_tree_edge: Vec<bool>,
    bfs_order: Vec<QVertexId>,
    depth: Vec<u32>,
}

impl QueryTree {
    /// Builds a spanning tree rooted at `root`, choosing edges greedily by
    /// ascending estimated matching-edge cardinality from `stats`.
    ///
    /// Panics if `q` is not connected or is empty.
    pub fn build(q: &QueryGraph, root: QVertexId, stats: &GraphStats<'_>) -> QueryTree {
        assert!(q.vertex_count() > 0, "empty query");
        assert!(q.is_connected(), "query graph must be connected");
        let n = q.vertex_count();
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut child_is_target = vec![false; n];
        let mut children = vec![Vec::new(); n];
        let mut in_tree = vec![false; n];
        let mut is_tree_edge = vec![false; q.edge_count()];
        let mut bfs_order = vec![root];
        let mut depth = vec![0u32; n];
        in_tree[root.index()] = true;

        // Estimated data-edge match count per query edge, computed once.
        let cost: Vec<usize> = q
            .edges()
            .iter()
            .map(|e| stats.matching_edge_count(q.labels(e.src), e.label, q.labels(e.dst)))
            .collect();

        while bfs_order.len() < n {
            // Frontier edges: exactly one endpoint in the tree. Pick the
            // cheapest (ties broken by edge id for determinism).
            let mut best: Option<(usize, EdgeId, QVertexId, QVertexId)> = None;
            for (idx, e) in q.edges().iter().enumerate() {
                let eid = EdgeId(idx as u32);
                let (inside, outside) = match (in_tree[e.src.index()], in_tree[e.dst.index()]) {
                    (true, false) => (e.src, e.dst),
                    (false, true) => (e.dst, e.src),
                    _ => continue,
                };
                if best.is_none_or(|(c, _, _, _)| cost[idx] < c) {
                    best = Some((cost[idx], eid, inside, outside));
                }
            }
            let (_, eid, par, child) = best.expect("connected graph always has a frontier edge");
            in_tree[child.index()] = true;
            parent[child.index()] = Some(par);
            parent_edge[child.index()] = Some(eid);
            child_is_target[child.index()] = q.edge(eid).dst == child;
            children[par.index()].push(child);
            is_tree_edge[eid.index()] = true;
            depth[child.index()] = depth[par.index()] + 1;
            bfs_order.push(child);
        }
        // bfs_order was filled in tree-growth order, which already satisfies
        // "parent precedes child". Re-sort by depth for a true BFS order.
        bfs_order.sort_by_key(|u| depth[u.index()]);

        let non_tree_edges =
            (0..q.edge_count() as u32).map(EdgeId).filter(|e| !is_tree_edge[e.index()]).collect();

        QueryTree {
            root,
            parent,
            parent_edge,
            child_is_target,
            children,
            non_tree_edges,
            is_tree_edge,
            bfs_order,
            depth,
        }
    }

    /// The starting query vertex `u_s`.
    #[inline]
    pub fn root(&self) -> QVertexId {
        self.root
    }

    /// `P(u)`: the parent of `u`, `None` for the root.
    #[inline]
    pub fn parent(&self, u: QVertexId) -> Option<QVertexId> {
        self.parent[u.index()]
    }

    /// The query edge connecting `u` to its parent.
    #[inline]
    pub fn parent_edge(&self, u: QVertexId) -> Option<EdgeId> {
        self.parent_edge[u.index()]
    }

    /// True iff `u` is the *target* of its parent edge (the edge is directed
    /// parent → `u`). False means the edge is directed `u` → parent.
    #[inline]
    pub fn child_is_target(&self, u: QVertexId) -> bool {
        self.child_is_target[u.index()]
    }

    /// `Children(u)`.
    #[inline]
    pub fn children(&self, u: QVertexId) -> &[QVertexId] {
        &self.children[u.index()]
    }

    /// True iff query edge `e` is in the tree.
    #[inline]
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.is_tree_edge[e.index()]
    }

    /// The non-tree edges in id order.
    #[inline]
    pub fn non_tree_edges(&self) -> &[EdgeId] {
        &self.non_tree_edges
    }

    /// A breadth-first vertex order (parents before children).
    #[inline]
    pub fn bfs_order(&self) -> &[QVertexId] {
        &self.bfs_order
    }

    /// Depth of `u` (root = 0).
    #[inline]
    pub fn depth(&self, u: QVertexId) -> u32 {
        self.depth[u.index()]
    }

    /// Number of query vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.parent.len()
    }

    /// True iff `u` is a leaf of the tree.
    #[inline]
    pub fn is_leaf(&self, u: QVertexId) -> bool {
        self.children[u.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{DynamicGraph, LabelId, LabelSet};

    fn triangle() -> QueryGraph {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::single(LabelId(0)));
        let b = q.add_vertex(LabelSet::single(LabelId(1)));
        let c = q.add_vertex(LabelSet::single(LabelId(2)));
        q.add_edge(a, b, None); // e0
        q.add_edge(b, c, None); // e1
        q.add_edge(c, a, None); // e2
        q
    }

    fn empty_stats_graph() -> DynamicGraph {
        DynamicGraph::new()
    }

    #[test]
    fn spanning_tree_of_triangle_has_one_non_tree_edge() {
        let q = triangle();
        let g = empty_stats_graph();
        let t = QueryTree::build(&q, QVertexId(0), &GraphStats::new(&g));
        assert_eq!(t.root(), QVertexId(0));
        assert_eq!(t.non_tree_edges().len(), 1);
        assert_eq!(t.bfs_order().len(), 3);
        assert_eq!(t.bfs_order()[0], QVertexId(0));
        // Every non-root vertex has a parent and the tree covers all edges
        // except one.
        for u in q.vertices() {
            if u == t.root() {
                assert!(t.parent(u).is_none());
            } else {
                assert!(t.parent(u).is_some());
                assert!(t.parent_edge(u).is_some());
            }
        }
    }

    #[test]
    fn reversed_edge_direction_recorded() {
        // u0 <- u1: tree rooted at u0 must traverse the edge backwards.
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        q.add_edge(b, a, None);
        let g = empty_stats_graph();
        let t = QueryTree::build(&q, a, &GraphStats::new(&g));
        assert_eq!(t.parent(b), Some(a));
        assert!(!t.child_is_target(b), "b is the source of the parent edge");
    }

    #[test]
    fn greedy_prefers_selective_edges() {
        // Query: u0 -x-> u1, u0 -y-> u1 (parallel, different labels).
        // Data has many x edges and one y edge, so the tree should pick y.
        let mut g = DynamicGraph::new();
        let l0 = LabelSet::single(LabelId(0));
        let l1 = LabelSet::single(LabelId(1));
        let s = g.add_vertex(l0.clone());
        for i in 0..5 {
            let t = g.add_vertex(l1.clone());
            g.insert_edge(s, LabelId(10), t);
            let _ = i;
        }
        let t2 = g.add_vertex(l1.clone());
        g.insert_edge(s, LabelId(11), t2);

        let mut q = QueryGraph::new();
        let a = q.add_vertex(l0);
        let b = q.add_vertex(l1);
        let _ex = q.add_edge(a, b, Some(LabelId(10)));
        let ey = q.add_edge(a, b, Some(LabelId(11)));
        let t = QueryTree::build(&q, a, &GraphStats::new(&g));
        assert_eq!(t.parent_edge(b), Some(ey), "cheap edge chosen for tree");
        assert_eq!(t.non_tree_edges().len(), 1);
    }

    #[test]
    fn depths_and_leaves() {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        let c = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(b, c, None);
        let g = empty_stats_graph();
        let t = QueryTree::build(&q, a, &GraphStats::new(&g));
        assert_eq!(t.depth(a), 0);
        assert_eq!(t.depth(b), 1);
        assert_eq!(t.depth(c), 2);
        assert!(t.is_leaf(c));
        assert!(!t.is_leaf(b));
        assert_eq!(t.children(a), &[b]);
    }
}
