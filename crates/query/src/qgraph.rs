//! The query (pattern) graph.

use tfx_graph::{GraphView, LabelId, LabelSet, VertexId};

/// Identifier of a query vertex (`u` in the paper). Dense `0..|V(q)|`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QVertexId(pub u32);

/// Identifier of a query edge. Dense `0..|E(q)|`; doubles as the paper's
/// total order `<` over query edges used for duplicate-free reporting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct EdgeId(pub u32);

impl QVertexId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for QVertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl std::fmt::Display for QVertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A directed query edge with an optional label (`None` matches any data
/// edge label).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QEdge {
    /// Source query vertex.
    pub src: QVertexId,
    /// Destination query vertex.
    pub dst: QVertexId,
    /// Edge label; `None` is a wildcard.
    pub label: Option<LabelId>,
}

impl QEdge {
    /// The endpoint opposite to `u`; `None` if `u` is not an endpoint.
    pub fn other(&self, u: QVertexId) -> Option<QVertexId> {
        if self.src == u {
            Some(self.dst)
        } else if self.dst == u {
            Some(self.src)
        } else {
            None
        }
    }
}

/// A small directed, labeled pattern graph.
///
/// Self-loops are allowed; duplicate edges (same `src`, `dst`, `label`) are
/// rejected by [`QueryGraph::add_edge`].
#[derive(Clone, Default, Debug)]
pub struct QueryGraph {
    labels: Vec<LabelSet>,
    edges: Vec<QEdge>,
    out_adj: Vec<Vec<(QVertexId, EdgeId)>>,
    in_adj: Vec<Vec<(QVertexId, EdgeId)>>,
}

impl QueryGraph {
    /// An empty query graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a query vertex with the given label set.
    pub fn add_vertex(&mut self, labels: LabelSet) -> QVertexId {
        let id = QVertexId(self.labels.len() as u32);
        self.labels.push(labels);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge. Panics on duplicate `(src, dst, label)`.
    pub fn add_edge(&mut self, src: QVertexId, dst: QVertexId, label: Option<LabelId>) -> EdgeId {
        assert!(src.index() < self.labels.len() && dst.index() < self.labels.len());
        let e = QEdge { src, dst, label };
        assert!(!self.edges.contains(&e), "duplicate query edge {e:?}");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(e);
        self.out_adj[src.index()].push((dst, id));
        self.in_adj[dst.index()].push((src, id));
        id
    }

    /// Number of query vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges (the paper's query *size*, counted in triples).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label set of query vertex `u`.
    #[inline]
    pub fn labels(&self, u: QVertexId) -> &LabelSet {
        &self.labels[u.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &QEdge {
        &self.edges[e.index()]
    }

    /// All edges in id order.
    #[inline]
    pub fn edges(&self) -> &[QEdge] {
        &self.edges
    }

    /// Out-adjacency of `u`: `(neighbor, edge id)` pairs.
    #[inline]
    pub fn out_adj(&self, u: QVertexId) -> &[(QVertexId, EdgeId)] {
        &self.out_adj[u.index()]
    }

    /// In-adjacency of `u`: `(neighbor, edge id)` pairs.
    #[inline]
    pub fn in_adj(&self, u: QVertexId) -> &[(QVertexId, EdgeId)] {
        &self.in_adj[u.index()]
    }

    /// Undirected degree of `u` (self-loops count twice).
    pub fn degree(&self, u: QVertexId) -> usize {
        self.out_adj[u.index()].len() + self.in_adj[u.index()].len()
    }

    /// Iterates over all query vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = QVertexId> + '_ {
        (0..self.labels.len() as u32).map(QVertexId)
    }

    /// Undirected incident edges of `u` (both directions), without
    /// duplicates for self-loops.
    pub fn incident_edges(&self, u: QVertexId) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = self.out_adj[u.index()].iter().map(|&(_, e)| e).collect();
        for &(_, e) in &self.in_adj[u.index()] {
            if self.edge(e).src != u {
                out.push(e);
            }
        }
        out
    }

    /// True iff the query graph is weakly connected (required by every
    /// engine; disconnected patterns would need a Cartesian product).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![QVertexId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(w, _) in self.out_adj(u).iter().chain(self.in_adj(u).iter()) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Def. 1 edge match: does the data edge `(v, l, v')` match the query
    /// edge `e = (u, u')`? Checks the edge label and both endpoint label
    /// sets; a self-loop query edge only matches a data self-loop (both
    /// endpoints are images of the same query vertex).
    pub fn edge_matches<G: GraphView>(
        &self,
        g: &G,
        e: EdgeId,
        src: VertexId,
        label: LabelId,
        dst: VertexId,
    ) -> bool {
        let qe = self.edge(e);
        (qe.src != qe.dst || src == dst)
            && qe.label.is_none_or(|ql| ql == label)
            && self.labels(qe.src).is_subset_of(g.labels(src))
            && self.labels(qe.dst).is_subset_of(g.labels(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::LabelId;

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// Builds the paper's Figure 1a query: u0:A with children u1:B, u2:C,
    /// u3:C; u3 -> u4:E; plus vertex u5:D hanging off u2 (tree query used in
    /// Fig. 4 has a similar shape).
    fn fig1_query() -> QueryGraph {
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0))); // A
        let u1 = q.add_vertex(LabelSet::single(l(1))); // B
        let u2 = q.add_vertex(LabelSet::single(l(2))); // C
        let u3 = q.add_vertex(LabelSet::single(l(2))); // C
        let u4 = q.add_vertex(LabelSet::single(l(4))); // E
        q.add_edge(u0, u1, None);
        q.add_edge(u0, u2, None);
        q.add_edge(u0, u3, None);
        q.add_edge(u3, u4, None);
        q
    }

    #[test]
    fn build_and_accessors() {
        let q = fig1_query();
        assert_eq!(q.vertex_count(), 5);
        assert_eq!(q.edge_count(), 4);
        assert_eq!(q.degree(QVertexId(0)), 3);
        assert_eq!(q.degree(QVertexId(3)), 2);
        assert_eq!(q.out_adj(QVertexId(0)).len(), 3);
        assert_eq!(q.in_adj(QVertexId(4)).len(), 1);
        assert!(q.is_connected());
    }

    #[test]
    fn incident_edges_undirected() {
        let q = fig1_query();
        let inc = q.incident_edges(QVertexId(3));
        assert_eq!(inc.len(), 2); // (u0,u3) in, (u3,u4) out
    }

    #[test]
    fn disconnected_detected() {
        let mut q = QueryGraph::new();
        q.add_vertex(LabelSet::empty());
        q.add_vertex(LabelSet::empty());
        assert!(!q.is_connected());
    }

    #[test]
    fn edge_other_endpoint() {
        let q = fig1_query();
        let e = q.edge(EdgeId(3));
        assert_eq!(e.other(QVertexId(3)), Some(QVertexId(4)));
        assert_eq!(e.other(QVertexId(4)), Some(QVertexId(3)));
        assert_eq!(e.other(QVertexId(0)), None);
    }

    #[test]
    fn edge_matches_checks_labels() {
        use tfx_graph::DynamicGraph;
        let q = fig1_query();
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        let c = g.add_vertex(LabelSet::single(l(2)));
        // edge 0 = (u0:A, u1:B)
        assert!(q.edge_matches(&g, EdgeId(0), a, l(9), b));
        assert!(!q.edge_matches(&g, EdgeId(0), a, l(9), c), "dst label mismatch");
        assert!(!q.edge_matches(&g, EdgeId(0), b, l(9), a), "src label mismatch");
    }

    #[test]
    #[should_panic(expected = "duplicate query edge")]
    fn duplicate_edge_rejected() {
        let mut q = QueryGraph::new();
        let a = q.add_vertex(LabelSet::empty());
        let b = q.add_vertex(LabelSet::empty());
        q.add_edge(a, b, None);
        q.add_edge(a, b, None);
    }
}
