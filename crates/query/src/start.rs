//! `ChooseStartQVertex` (§4.1).
//!
//! To minimize the number of data vertices matching the starting query
//! vertex, the paper first selects the query edge with the smallest number
//! of matching data edges; between its two endpoints it picks the one with
//! fewer matching data vertices, breaking ties by larger degree.

use crate::qgraph::{QVertexId, QueryGraph};
use tfx_graph::GraphStats;

/// Picks the starting query vertex `u_s` for `q` against the statistics of
/// the initial data graph.
///
/// Panics if the query has no edges.
pub fn choose_start_vertex(q: &QueryGraph, stats: &GraphStats<'_>) -> QVertexId {
    assert!(q.edge_count() > 0, "query must have at least one edge");

    // Edge with the smallest number of matching data edges (ties: lowest id,
    // for determinism). A zero count sorts last, not first: in a continuous
    // setting an edge type with no matches *yet* carries no selectivity
    // information, and rooting the DCG there would leave it empty until the
    // first such edge streams in, forcing full rebuilds (the paper's running
    // example accordingly roots at `u0`, not at the empty `(u3, u4)`).
    let (best_edge, _) = q
        .edges()
        .iter()
        .map(|e| match stats.matching_edge_count(q.labels(e.src), e.label, q.labels(e.dst)) {
            0 => usize::MAX,
            n => n,
        })
        .enumerate()
        .min_by_key(|&(i, c)| (c, i))
        .expect("non-empty edge list");
    let e = &q.edges()[best_edge];

    let cnt_src = stats.matching_vertex_count(q.labels(e.src));
    let cnt_dst = stats.matching_vertex_count(q.labels(e.dst));
    match cnt_src.cmp(&cnt_dst) {
        std::cmp::Ordering::Less => e.src,
        std::cmp::Ordering::Greater => e.dst,
        std::cmp::Ordering::Equal => {
            // Tie: the vertex with the larger degree.
            if q.degree(e.src) >= q.degree(e.dst) {
                e.src
            } else {
                e.dst
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfx_graph::{DynamicGraph, LabelId, LabelSet};

    fn l(i: u32) -> LabelId {
        LabelId(i)
    }

    /// Figure 1's setup, condensed: (u0,u1) is the most selective query edge
    /// and u0 has larger degree than u1, so u0 is chosen.
    #[test]
    fn picks_selective_edge_then_larger_degree() {
        let mut g = DynamicGraph::new();
        let a0 = g.add_vertex(LabelSet::single(l(0))); // A
        let a1 = g.add_vertex(LabelSet::single(l(0))); // A
        let b = g.add_vertex(LabelSet::single(l(1))); // B
        for _ in 0..10 {
            let c = g.add_vertex(LabelSet::single(l(2))); // C
            g.insert_edge(a0, l(9), c);
        }
        g.insert_edge(a0, l(9), b); // one A->B edge
        g.insert_edge(a1, l(9), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0))); // A, degree 2
        let u1 = q.add_vertex(LabelSet::single(l(1))); // B, degree 1
        let u2 = q.add_vertex(LabelSet::single(l(2))); // C, degree 1
        q.add_edge(u0, u1, None); // 2 matching data edges
        q.add_edge(u0, u2, None); // 10 matching data edges
        let _ = u1;

        let stats = GraphStats::new(&g);
        // Most selective edge is (u0,u1). A-vertices: 2, B-vertices: 1, so
        // u1 has strictly fewer matches and wins despite lower degree.
        assert_eq!(choose_start_vertex(&q, &stats), u1);
    }

    #[test]
    fn zero_match_edges_sort_last() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a, l(5), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        let u2 = q.add_vertex(LabelSet::single(l(2)));
        q.add_edge(u0, u1, Some(l(5)));
        q.add_edge(u0, u2, Some(l(6)));
        // Edge (u0,u2) has 0 matches but carries no selectivity information
        // in a continuous setting, so the start vertex comes from (u0,u1):
        // u0 and u1 both match one data vertex; the tie goes to u0 (larger
        // query degree).
        assert_eq!(choose_start_vertex(&q, &GraphStats::new(&g)), u0);
    }

    #[test]
    fn tie_broken_by_degree() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex(LabelSet::single(l(0)));
        let b = g.add_vertex(LabelSet::single(l(1)));
        g.insert_edge(a, l(5), b);

        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(LabelSet::single(l(0)));
        let u1 = q.add_vertex(LabelSet::single(l(1)));
        let u2 = q.add_vertex(LabelSet::single(l(2)));
        q.add_edge(u0, u1, Some(l(5)));
        q.add_edge(u2, u0, Some(l(6)));
        // Counts tie at 1 apiece on (u0,u1); u0 (degree 2) beats u1
        // (degree 1).
        assert_eq!(choose_start_vertex(&q, &GraphStats::new(&g)), u0);
    }
}
