//! Match records and the engine interface shared by TurboFlux and all
//! baselines (Definition 3 of the paper).

use crate::qgraph::QVertexId;
use tfx_graph::{UpdateOp, VertexId};

/// Matching semantics (§2.1). The paper's default is graph homomorphism;
/// subgraph isomorphism adds the injectivity constraint (Appendix B.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MatchSemantics {
    /// Def. 1: a (not necessarily injective) label/edge-preserving mapping.
    #[default]
    Homomorphism,
    /// Homomorphism plus injectivity of the vertex mapping.
    Isomorphism,
}

/// Whether a reported match appeared (`M(g_i) − M(g_{i−1})`) or disappeared
/// (`M(g_{i−1}) − M(g_i)`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Positiveness {
    /// The match exists after the update but not before.
    Positive,
    /// The match existed before the update but not after.
    Negative,
}

/// A complete solution: the mapping `m : V(q) → V(g)`, indexed by query
/// vertex id.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MatchRecord {
    mapping: Vec<VertexId>,
}

impl MatchRecord {
    /// Wraps a complete mapping (one data vertex per query vertex).
    pub fn new(mapping: Vec<VertexId>) -> Self {
        MatchRecord { mapping }
    }

    /// Builds a record from a partial-mapping slice (used by engines that
    /// track `Option<VertexId>` internally). Panics if any entry is `None`.
    pub fn from_partial(partial: &[Option<VertexId>]) -> Self {
        let mut rec = MatchRecord::default();
        rec.fill_from_partial(partial);
        rec
    }

    /// Refills this record from a partial mapping without reallocating —
    /// engines report millions of matches through one scratch record.
    /// Panics if any entry is `None`.
    pub fn fill_from_partial(&mut self, partial: &[Option<VertexId>]) {
        self.mapping.clear();
        self.mapping.extend(
            partial.iter().map(|m| m.expect("complete solution must map every query vertex")),
        );
    }

    /// Refills this record from a complete mapping slice without
    /// reallocating.
    pub fn fill_from_slice(&mut self, mapping: &[VertexId]) {
        self.mapping.clear();
        self.mapping.extend_from_slice(mapping);
    }

    /// `m(u)`.
    #[inline]
    pub fn get(&self, u: QVertexId) -> VertexId {
        self.mapping[u.index()]
    }

    /// The mapping as a slice indexed by query vertex id.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.mapping
    }

    /// Number of query vertices mapped.
    #[inline]
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// Always false for a complete solution of a non-empty query.
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }

    /// True iff the mapping is injective (needed when filtering
    /// homomorphisms down to isomorphisms).
    pub fn is_injective(&self) -> bool {
        let mut seen: Vec<VertexId> = self.mapping.to_vec();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }
}

impl std::fmt::Debug for MatchRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pairs: Vec<String> =
            self.mapping.iter().enumerate().map(|(u, v)| format!("u{u}->{v}")).collect();
        write!(f, "{{{}}}", pairs.join(", "))
    }
}

/// A continuous subgraph matching engine.
///
/// The driver is expected to call [`ContinuousMatcher::initial_matches`]
/// once, then [`ContinuousMatcher::apply`] for every operation of the update
/// stream in order. Matches are streamed into a sink so counting-only
/// benchmark runs never materialize them.
pub trait ContinuousMatcher {
    /// Reports all matches of the initial data graph `g0`.
    fn initial_matches(&mut self, sink: &mut dyn FnMut(&MatchRecord));

    /// Applies one update operation, reporting every positive match (for an
    /// insertion) or negative match (for a deletion).
    fn apply(&mut self, op: &UpdateOp, sink: &mut dyn FnMut(Positiveness, &MatchRecord));

    /// Current size of maintained intermediate results, in bytes (§5's
    /// second measure). Zero for engines that maintain nothing.
    fn intermediate_result_bytes(&self) -> usize {
        0
    }

    /// True once an internal work budget was exhausted, meaning results
    /// are incomplete from then on. The harness treats this as the paper's
    /// per-query timeout.
    fn timed_out(&self) -> bool {
        false
    }

    /// Engine name for reports.
    fn name(&self) -> &'static str;
}

/// Convenience: applies `op` and collects the reported matches.
pub fn apply_collect(
    engine: &mut dyn ContinuousMatcher,
    op: &UpdateOp,
) -> Vec<(Positiveness, MatchRecord)> {
    let mut out = Vec::new();
    engine.apply(op, &mut |p, m| out.push((p, m.clone())));
    out
}

/// Convenience: collects the initial matches.
pub fn initial_collect(engine: &mut dyn ContinuousMatcher) -> Vec<MatchRecord> {
    let mut out = Vec::new();
    engine.initial_matches(&mut |m| out.push(m.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accessors() {
        let r = MatchRecord::new(vec![VertexId(3), VertexId(1), VertexId(3)]);
        assert_eq!(r.get(QVertexId(0)), VertexId(3));
        assert_eq!(r.get(QVertexId(1)), VertexId(1));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(!r.is_injective());
        let inj = MatchRecord::new(vec![VertexId(3), VertexId(1)]);
        assert!(inj.is_injective());
    }

    #[test]
    fn from_partial() {
        let r = MatchRecord::from_partial(&[Some(VertexId(0)), Some(VertexId(5))]);
        assert_eq!(r.as_slice(), &[VertexId(0), VertexId(5)]);
    }

    #[test]
    #[should_panic(expected = "complete solution")]
    fn from_partial_rejects_incomplete() {
        MatchRecord::from_partial(&[Some(VertexId(0)), None]);
    }

    #[test]
    fn debug_format() {
        let r = MatchRecord::new(vec![VertexId(2)]);
        assert_eq!(format!("{r:?}"), "{u0->v2}");
    }

    #[test]
    fn records_order_and_hash() {
        use std::collections::HashSet;
        let a = MatchRecord::new(vec![VertexId(1)]);
        let b = MatchRecord::new(vec![VertexId(2)]);
        assert!(a < b);
        let mut s = HashSet::new();
        s.insert(a.clone());
        assert!(s.contains(&a));
        assert!(!s.contains(&b));
    }
}
